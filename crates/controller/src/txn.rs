//! Transactional network-wide reconfiguration: two-phase commit over the
//! control fabric.
//!
//! A FlexNet reconfiguration usually spans several devices — the paper's
//! E1 scenario reprograms every switch on a path — and partial
//! deployment is worse than no deployment: half the network running the
//! new program breaks end-to-end invariants that each device's local
//! hitless flip preserves. [`transactional_reconfig`] makes the
//! network-wide change atomic:
//!
//! 1. **Prepare** — every affected device builds a shadow program
//!    ([`Device::begin_runtime_reconfig`]) while traffic continues on the
//!    old one. A device that is down, out of resources, or rejects the
//!    target fails the prepare.
//! 2. **Commit** — only when *all* devices acked their prepare, the
//!    coordinator aligns their atomic flips on the slowest participant
//!    ([`Device::hold_pending_until`]), so the whole network switches
//!    programs at a single simulated instant.
//! 3. **Abort** — on any prepare failure (or an undeliverable command past
//!    the retry deadline) every already-prepared device rolls back
//!    ([`Device::abort_reconfig`]) to its exact pre-reconfig program,
//!    entries, state, and placement.
//!
//! Commands travel over a [`LossyFabric`] under a [`RetryPolicy`], so the
//! coordinator tolerates controller-fabric message loss; the returned
//! [`TxnReport`] records the outcome, message cost, and — on abort — the
//! rollback latency.
//!
//! [`Device::begin_runtime_reconfig`]: flexnet_dataplane::Device::begin_runtime_reconfig
//! [`Device::hold_pending_until`]: flexnet_dataplane::Device::hold_pending_until
//! [`Device::abort_reconfig`]: flexnet_dataplane::Device::abort_reconfig

use crate::core::FailureDetector;
use crate::resync::IntendedStore;
use crate::retry::{command_rtt, with_retry, LossyFabric, RetryPolicy};
use crate::wal::{IntentRecord, ReplicatedIntentLog};
use flexnet_dataplane::{ReconfigOutcome, ReconfigReport, TxnTag};
use flexnet_lang::diff::ProgramBundle;
use flexnet_sim::{CrashPhase, Simulation};
use flexnet_types::{FlexError, NodeId, Result, SimDuration, SimTime};

/// How a network-wide reconfiguration transaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Every device prepared; all flips are aligned at [`TxnReport::commit_at`].
    Committed,
    /// At least one prepare failed; every prepared device was rolled back.
    Aborted,
}

/// The coordinator's account of one transaction.
#[derive(Debug, Clone)]
pub struct TxnReport {
    /// How the transaction ended.
    pub outcome: TxnOutcome,
    /// Devices named in the transaction.
    pub devices: usize,
    /// Devices that successfully prepared a shadow.
    pub prepared: usize,
    /// The aligned flip instant (committed transactions only).
    pub commit_at: Option<SimTime>,
    /// Time from the first abort decision until the last prepared device
    /// finished rolling back (aborted transactions only).
    pub rollback_latency: Option<SimDuration>,
    /// Why the transaction aborted, when it did.
    pub reason: Option<String>,
    /// Control messages sent (attempts, including lost ones).
    pub messages: u32,
    /// When the coordinator finished the protocol.
    pub finished_at: SimTime,
}

impl TxnReport {
    /// Whether the transaction committed.
    pub fn is_committed(&self) -> bool {
        self.outcome == TxnOutcome::Committed
    }
}

/// Runs a two-phase-commit reconfiguration over a reliable fabric.
///
/// Equivalent to [`transactional_reconfig_over`] with a lossless channel
/// and the default retry policy.
pub fn transactional_reconfig(
    sim: &mut Simulation,
    targets: &[(NodeId, ProgramBundle)],
    now: SimTime,
) -> TxnReport {
    let mut fabric = LossyFabric::reliable();
    transactional_reconfig_over(sim, targets, now, &mut fabric, &RetryPolicy::default())
}

/// Runs a two-phase-commit reconfiguration, sending every command through
/// `fabric` under `policy`.
///
/// Per-device prepare/abort reports are appended to
/// `sim.reconfig_reports` so experiments observe the transaction with the
/// same instrumentation as single-device reconfigurations. A target
/// device with no active program installs immediately (there is no old
/// program to keep serving), so such a device cannot be rolled back if a
/// *later* participant fails its prepare; coordinators that need full
/// atomicity should bootstrap devices before including them in a
/// transaction.
pub fn transactional_reconfig_over(
    sim: &mut Simulation,
    targets: &[(NodeId, ProgramBundle)],
    now: SimTime,
    fabric: &mut LossyFabric,
    policy: &RetryPolicy,
) -> TxnReport {
    let mut t = now;
    let mut messages = 0u32;
    // Devices whose prepare acked with a pending (abortable) transition.
    let mut in_flight: Vec<NodeId> = Vec::new();
    let mut prepared = 0usize;
    let mut latest_ready = now;
    let mut failure: Option<(usize, String)> = None;

    // Phase 1: prepare a shadow on every device, in order.
    for (i, (node, bundle)) in targets.iter().enumerate() {
        let mut acked: Option<ReconfigReport> = None;
        let out = with_retry(policy, fabric, t, command_rtt(), |at| {
            // Idempotent under response loss: if our earlier attempt
            // reached the device, re-report its ack instead of re-preparing.
            if let Some(rep) = &acked {
                return Ok(rep.clone());
            }
            let dev = &mut sim
                .topo
                .node_mut(*node)
                .ok_or_else(|| FlexError::Sim(format!("prepare: unknown node {node}")))?
                .device;
            let rep = dev.begin_runtime_reconfig(bundle.clone(), at)?;
            acked = Some(rep.clone());
            Ok(rep)
        });
        messages += out.attempts;
        t = out.finished_at;
        match out.result {
            Ok(rep) => {
                prepared += 1;
                if rep.ready_at > latest_ready {
                    latest_ready = rep.ready_at;
                }
                if rep.outcome == ReconfigOutcome::InFlight {
                    in_flight.push(*node);
                }
                sim.reconfig_reports.push((t, *node, rep));
            }
            Err(e) => {
                failure = Some((i, format!("prepare on {node} failed: {e}")));
                break;
            }
        }
    }

    if let Some((failed_idx, reason)) = failure {
        // Phase 2 (abort): roll back every device the coordinator talked
        // to — including the failed one, whose prepare may have taken
        // effect even though the ack was lost (orphaned shadow).
        let abort_started = t;
        for (node, _) in targets[..=failed_idx].iter().rev() {
            let mut done: Option<Option<ReconfigReport>> = None;
            let out = with_retry(policy, fabric, t, command_rtt(), |at| {
                if let Some(cached) = &done {
                    return Ok(cached.clone());
                }
                let dev = &mut sim
                    .topo
                    .node_mut(*node)
                    .ok_or_else(|| FlexError::Sim(format!("abort: unknown node {node}")))?
                    .device;
                let rep = match dev.abort_reconfig(at) {
                    Ok(rep) => Some(rep),
                    // Nothing pending (never prepared, or a crash already
                    // discarded the volatile shadow): abort is a no-op.
                    Err(FlexError::Reconfig(_)) => None,
                    Err(e) => return Err(e),
                };
                done = Some(rep.clone());
                Ok(rep)
            });
            messages += out.attempts;
            t = out.finished_at;
            match out.result {
                Ok(Some(rep)) => sim.reconfig_reports.push((t, *node, rep)),
                Ok(None) => {}
                Err(e) => sim.errors.push((t, format!("txn abort on {node}: {e}"))),
            }
        }
        return TxnReport {
            outcome: TxnOutcome::Aborted,
            devices: targets.len(),
            prepared,
            commit_at: None,
            rollback_latency: Some(t.saturating_since(abort_started)),
            reason: Some(reason),
            messages,
            finished_at: t,
        };
    }

    // Phase 2 (commit): align every flip on the slowest participant.
    // hold_pending_until never moves a flip earlier, so holding after the
    // protocol's own message delays keeps every device consistent.
    let commit_at = if latest_ready > t { latest_ready } else { t };
    for node in &in_flight {
        let out = with_retry(policy, fabric, t, command_rtt(), |_| {
            let dev = &mut sim
                .topo
                .node_mut(*node)
                .ok_or_else(|| FlexError::Sim(format!("hold: unknown node {node}")))?
                .device;
            dev.hold_pending_until(commit_at)
        });
        messages += out.attempts;
        t = out.finished_at;
        if let Err(e) = out.result {
            // The device still flips — at its own (earlier) ready_at — so
            // the network converges, just not at one aligned instant.
            sim.errors.push((t, format!("txn hold on {node}: {e}")));
        }
    }
    TxnReport {
        outcome: TxnOutcome::Committed,
        devices: targets.len(),
        prepared,
        commit_at: Some(commit_at),
        rollback_latency: None,
        reason: None,
        messages,
        finished_at: t,
    }
}

/// How a journaled transaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoggedTxnOutcome {
    /// Every device prepared, the flip was scheduled, and every commit
    /// command was delivered.
    Committed,
    /// A prepare failed; every prepared device was rolled back.
    Aborted,
    /// The coordinator died at the given phase, leaving the transaction
    /// in-doubt for [`crate::recovery::recover`] to resolve.
    Crashed(CrashPhase),
}

/// The coordinator's account of one journaled transaction.
#[derive(Debug, Clone)]
pub struct LoggedTxnReport {
    /// Transaction id allocated from the intent log.
    pub txn: u64,
    /// Controller epoch (Raft leader term) the transaction ran under.
    pub epoch: u64,
    /// How it ended (from this coordinator's point of view).
    pub outcome: LoggedTxnOutcome,
    /// Devices that acked a prepare before the end.
    pub prepared: Vec<NodeId>,
    /// The aligned flip instant, once scheduled.
    pub commit_at: Option<SimTime>,
    /// Control messages sent (attempts, including lost ones).
    pub messages: u32,
    /// When the coordinator stopped working on the transaction.
    pub finished_at: SimTime,
}

/// Runs a journaled two-phase-commit reconfiguration: every phase
/// transition is made durable in the replicated intent `log` *before* the
/// corresponding data-plane commands are sent (write-ahead), and every
/// command carries a [`TxnTag`] so devices fence stale epochs and hold
/// prepared shadows in-doubt until an explicit decision.
///
/// `crash`, when set, kills the coordinator at that protocol point: the
/// function returns immediately with [`LoggedTxnOutcome::Crashed`],
/// leaving devices exactly as a real mid-protocol coordinator death would
/// — shadows prepared but undecided, commits possibly half-delivered.
/// [`crate::recovery::recover`] then resolves the wreckage from the log.
///
/// `intent`, when set, records every committed target in the
/// intended-state store (journaling a durable
/// [`IntentRecord::IntendedState`] per device), keeping the
/// reconciliation baseline for device restart recovery up to date.
///
/// `gate`, when set, health-gates admission: every participant must be
/// graded Healthy by the failure detector or the transaction is refused
/// up front with the typed, retryable [`FlexError::DegradedDevice`] —
/// *before* anything is journaled or any shadow prepared, instead of
/// discovering a suspect/dead/gray participant mid-2PC. Pass `None` for
/// remedial transactions (rollback, resync) whose whole point is to fix
/// an unhealthy device.
#[allow(clippy::too_many_arguments)]
pub fn logged_transactional_reconfig(
    sim: &mut Simulation,
    targets: &[(NodeId, ProgramBundle)],
    now: SimTime,
    fabric: &mut LossyFabric,
    policy: &RetryPolicy,
    log: &mut ReplicatedIntentLog,
    crash: Option<CrashPhase>,
    intent: Option<&mut IntendedStore>,
    gate: Option<&FailureDetector>,
) -> Result<LoggedTxnReport> {
    if let Some(detector) = gate {
        for (node, _) in targets {
            detector.admit(*node)?;
        }
    }
    let txn = log.next_txn_id();
    let epoch = log.epoch()?;
    let tag = TxnTag { txn_id: txn, epoch };
    let devices: Vec<u64> = targets.iter().map(|(n, _)| n.0 as u64).collect();
    let mut t = now;
    let mut messages = 0u32;
    let mut prepared: Vec<NodeId> = Vec::new();

    let report = |outcome, prepared, commit_at, messages, finished_at| LoggedTxnReport {
        txn,
        epoch,
        outcome,
        prepared,
        commit_at,
        messages,
        finished_at,
    };

    // Write-ahead: the intent is durable before any device hears from us.
    log.append(&IntentRecord::Intent {
        txn,
        devices: devices.clone(),
    })?;
    if crash == Some(CrashPhase::AfterIntent) {
        return Ok(report(
            LoggedTxnOutcome::Crashed(CrashPhase::AfterIntent),
            prepared,
            None,
            messages,
            t,
        ));
    }

    // Phase 1: prepare a tagged, in-doubt shadow on every device. A
    // MidPrepare crash dies after roughly half the participants acked.
    let crash_after = match crash {
        Some(CrashPhase::MidPrepare) => targets.len().div_ceil(2),
        _ => usize::MAX,
    };
    let mut latest_ready = now;
    let mut failure: Option<(usize, String)> = None;
    for (i, (node, bundle)) in targets.iter().enumerate() {
        if i >= crash_after {
            return Ok(report(
                LoggedTxnOutcome::Crashed(CrashPhase::MidPrepare),
                prepared,
                None,
                messages,
                t,
            ));
        }
        let mut acked: Option<ReconfigReport> = None;
        let out = with_retry(policy, fabric, t, command_rtt(), |at| {
            if let Some(rep) = &acked {
                return Ok(rep.clone());
            }
            let dev = &mut sim
                .topo
                .node_mut(*node)
                .ok_or_else(|| FlexError::Sim(format!("prepare: unknown node {node}")))?
                .device;
            let rep = dev.prepare_txn_reconfig(bundle.clone(), at, tag)?;
            acked = Some(rep.clone());
            Ok(rep)
        });
        messages += out.attempts;
        t = out.finished_at;
        match out.result {
            Ok(rep) => {
                prepared.push(*node);
                if rep.ready_at > latest_ready {
                    latest_ready = rep.ready_at;
                }
                sim.reconfig_reports.push((t, *node, rep));
            }
            Err(e) => {
                failure = Some((i, format!("prepare on {node} failed: {e}")));
                break;
            }
        }
    }

    if let Some((failed_idx, reason)) = failure {
        // Log the abort decision first (presumed abort: recovery rolls a
        // prepared-only transaction back anyway, so a lost record is
        // safe), then roll back every device we talked to.
        if let Err(e) = log.append(&IntentRecord::Aborted { txn }) {
            sim.errors
                .push((t, format!("txn {txn}: abort record not durable: {e}")));
        }
        for (node, _) in targets[..=failed_idx].iter().rev() {
            let mut done: Option<Option<ReconfigReport>> = None;
            let out = with_retry(policy, fabric, t, command_rtt(), |at| {
                if let Some(cached) = &done {
                    return Ok(cached.clone());
                }
                let dev = &mut sim
                    .topo
                    .node_mut(*node)
                    .ok_or_else(|| FlexError::Sim(format!("abort: unknown node {node}")))?
                    .device;
                let rep = match dev.abort_txn(tag, at) {
                    Ok(rep) => rep,
                    // A pending shadow we don't own (the prepare conflict
                    // that failed the transaction) is not ours to abort.
                    Err(FlexError::Conflict(_)) => None,
                    Err(e) => return Err(e),
                };
                done = Some(rep.clone());
                Ok(rep)
            });
            messages += out.attempts;
            t = out.finished_at;
            match out.result {
                Ok(Some(rep)) => sim.reconfig_reports.push((t, *node, rep)),
                Ok(None) => {}
                Err(e) => sim.errors.push((t, format!("txn abort on {node}: {e}"))),
            }
        }
        sim.errors.push((t, format!("txn {txn} aborted: {reason}")));
        return Ok(report(
            LoggedTxnOutcome::Aborted,
            prepared,
            None,
            messages,
            t,
        ));
    }

    // All participants hold in-doubt shadows: make that durable.
    log.append(&IntentRecord::Prepared {
        txn,
        devices: devices.clone(),
    })?;
    if crash == Some(CrashPhase::AfterPrepared) {
        return Ok(report(
            LoggedTxnOutcome::Crashed(CrashPhase::AfterPrepared),
            prepared,
            None,
            messages,
            t,
        ));
    }

    // The decision: align every flip on the slowest participant, and make
    // the decision durable *before* any commit command is sent — past
    // this record the transaction can only roll forward.
    let commit_at = if latest_ready > t { latest_ready } else { t };
    log.append(&IntentRecord::FlipScheduled { txn, commit_at })?;
    if crash == Some(CrashPhase::AfterFlipScheduled) {
        return Ok(report(
            LoggedTxnOutcome::Crashed(CrashPhase::AfterFlipScheduled),
            prepared,
            Some(commit_at),
            messages,
            t,
        ));
    }

    // Phase 2: release every shadow to flip at commit_at.
    for (node, _) in targets {
        let mut acked: Option<bool> = None;
        let out = with_retry(policy, fabric, t, command_rtt(), |_| {
            if let Some(done) = acked {
                return Ok(done);
            }
            let dev = &mut sim
                .topo
                .node_mut(*node)
                .ok_or_else(|| FlexError::Sim(format!("commit: unknown node {node}")))?
                .device;
            let released = dev.commit_txn(tag, commit_at)?;
            acked = Some(released);
            Ok(released)
        });
        messages += out.attempts;
        t = out.finished_at;
        if let Err(e) = out.result {
            // The device keeps its in-doubt shadow; the recovery sweep
            // (same roll-forward rule) will release it.
            sim.errors.push((t, format!("txn commit on {node}: {e}")));
        }
    }
    if let Err(e) = log.append(&IntentRecord::Committed { txn }) {
        // Recovery re-runs the (idempotent) roll-forward from FlipScheduled.
        sim.errors
            .push((t, format!("txn {txn}: committed record not durable: {e}")));
    }
    // The transaction is past its point of no return: the targets are now
    // the per-device intended state (a crash before this point rolls the
    // txn back or forward from the phase records alone, so the store only
    // ever describes configurations the network is converging to).
    if let Some(store) = intent {
        for (node, bundle) in targets {
            if let Err(e) = store.commit_target(log, txn, *node, bundle.clone()) {
                sim.errors
                    .push((t, format!("txn {txn}: intended state for {node}: {e}")));
            }
        }
    }
    Ok(report(
        LoggedTxnOutcome::Committed,
        prepared,
        Some(commit_at),
        messages,
        t,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexnet_lang::parser::parse_source;
    use flexnet_sim::Topology;
    use flexnet_types::SimDuration;

    fn bundle(src: &str) -> ProgramBundle {
        let file = parse_source(src).unwrap();
        ProgramBundle {
            headers: file.headers,
            program: file.programs.into_iter().next().unwrap(),
        }
    }

    fn v1() -> ProgramBundle {
        bundle("program app kind any { handler ingress(pkt) { forward(1); } }")
    }

    fn v2() -> ProgramBundle {
        bundle(
            "program app kind any {
               counter c;
               handler ingress(pkt) { count(c); forward(2); }
             }",
        )
    }

    /// A line topology with v1 installed on its three programmable devices.
    fn prepared_sim() -> (Simulation, [NodeId; 3]) {
        let (topo, nodes) = Topology::host_nic_switch_line();
        let devices = [nodes[1], nodes[2], nodes[3]];
        let mut sim = Simulation::new(topo);
        for d in devices {
            sim.topo.node_mut(d).unwrap().device.install(v1()).unwrap();
        }
        (sim, devices)
    }

    #[test]
    fn commit_aligns_every_flip_on_the_slowest_device() {
        let (mut sim, devices) = prepared_sim();
        let targets: Vec<_> = devices.iter().map(|d| (*d, v2())).collect();
        let t0 = SimTime::from_secs(1);
        let report = transactional_reconfig(&mut sim, &targets, t0);
        assert_eq!(report.outcome, TxnOutcome::Committed);
        assert_eq!(report.prepared, 3);
        let commit_at = report.commit_at.unwrap();
        assert!(commit_at > t0);

        // Just before the aligned instant every device still runs v1...
        let before = SimTime::from_nanos(commit_at.as_nanos() - 1);
        for d in devices {
            let dev = &mut sim.topo.node_mut(d).unwrap().device;
            dev.tick(before);
            assert!(dev.reconfig_in_progress(), "{d} must not flip early");
        }
        // ...and at it, all flip together.
        for d in devices {
            let dev = &mut sim.topo.node_mut(d).unwrap().device;
            dev.tick(commit_at);
            assert!(!dev.reconfig_in_progress(), "{d} flips at commit_at");
            assert_eq!(dev.program().unwrap().bundle, v2(), "{d} runs v2");
        }
    }

    #[test]
    fn prepare_failure_rolls_back_every_prepared_device() {
        let (mut sim, devices) = prepared_sim();
        // The last participant is down: its prepare must fail.
        sim.topo
            .node_mut(devices[2])
            .unwrap()
            .device
            .crash(SimTime::from_millis(500));
        let targets: Vec<_> = devices.iter().map(|d| (*d, v2())).collect();
        let report = transactional_reconfig(&mut sim, &targets, SimTime::from_secs(1));
        assert_eq!(report.outcome, TxnOutcome::Aborted);
        assert_eq!(report.prepared, 2);
        assert!(report.reason.as_deref().unwrap().contains("unavailable"));
        assert!(report.rollback_latency.is_some());
        for d in &devices[..2] {
            let dev = &sim.topo.node(*d).unwrap().device;
            assert!(!dev.reconfig_in_progress(), "{d} rolled back");
            assert_eq!(
                dev.program().unwrap().bundle,
                v1(),
                "{d} still runs the pre-transaction program"
            );
        }
    }

    #[test]
    fn empty_transaction_commits_trivially() {
        let (mut sim, _) = prepared_sim();
        let report = transactional_reconfig(&mut sim, &[], SimTime::ZERO);
        assert_eq!(report.outcome, TxnOutcome::Committed);
        assert_eq!(report.devices, 0);
        assert_eq!(report.messages, 0);
    }

    #[test]
    fn commit_survives_30_percent_controller_fabric_loss() {
        let (mut sim, devices) = prepared_sim();
        let targets: Vec<_> = devices.iter().map(|d| (*d, v2())).collect();
        let mut fabric = LossyFabric::new(0.3, 42);
        let policy = RetryPolicy {
            max_attempts: 12,
            ..RetryPolicy::default()
        };
        let report = transactional_reconfig_over(
            &mut sim,
            &targets,
            SimTime::from_secs(1),
            &mut fabric,
            &policy,
        );
        assert_eq!(report.outcome, TxnOutcome::Committed, "{:?}", report.reason);
        assert!(
            report.messages > report.devices as u32 * 2,
            "retries happened: {} messages",
            report.messages
        );
        assert!(fabric.dropped > 0, "the fabric really was lossy");
        let commit_at = report.commit_at.unwrap();
        for d in devices {
            let dev = &mut sim.topo.node_mut(d).unwrap().device;
            dev.tick(commit_at + SimDuration::from_nanos(1));
            assert_eq!(dev.program().unwrap().bundle, v2());
        }
    }

    #[test]
    fn failed_prepare_with_orphan_shadow_is_rolled_back_too() {
        let (mut sim, devices) = prepared_sim();
        // An earlier, unacknowledged prepare left a shadow on the first
        // device (the coordinator's ack was lost). Its re-prepare fails
        // ("already in progress"), so the transaction aborts — and the
        // abort phase must discard that orphan, not just acked prepares.
        sim.topo
            .node_mut(devices[0])
            .unwrap()
            .device
            .begin_runtime_reconfig(v2(), SimTime::from_millis(900))
            .unwrap();
        let targets: Vec<_> = devices.iter().map(|d| (*d, v2())).collect();
        let report = transactional_reconfig(&mut sim, &targets, SimTime::from_secs(1));
        assert_eq!(report.outcome, TxnOutcome::Aborted);
        assert_eq!(report.prepared, 0);
        for d in devices {
            let dev = &sim.topo.node(d).unwrap().device;
            assert!(!dev.reconfig_in_progress(), "{d} has no orphan shadow");
            assert_eq!(dev.program().unwrap().bundle, v1());
        }
    }

    fn logged(
        sim: &mut Simulation,
        targets: &[(NodeId, ProgramBundle)],
        log: &mut ReplicatedIntentLog,
        crash: Option<CrashPhase>,
    ) -> LoggedTxnReport {
        let mut fabric = LossyFabric::reliable();
        logged_transactional_reconfig(
            sim,
            targets,
            SimTime::from_secs(1),
            &mut fabric,
            &RetryPolicy::default(),
            log,
            crash,
            None,
            None,
        )
        .unwrap()
    }

    #[test]
    fn unhealthy_participant_is_refused_before_the_protocol_starts() {
        use crate::core::FailureDetector;
        let (mut sim, devices) = prepared_sim();
        let targets: Vec<_> = devices.iter().map(|d| (*d, v2())).collect();
        let mut log = ReplicatedIntentLog::new(3, 17).unwrap();
        // The detector has seen the middle device go silent: Suspect.
        let mut detector = FailureDetector::default();
        for d in devices {
            detector.observe(d, SimTime::ZERO);
        }
        detector.observe(devices[0], SimTime::from_millis(800));
        detector.observe(devices[2], SimTime::from_millis(800));
        detector.poll(SimTime::from_millis(850));
        let mut fabric = LossyFabric::reliable();
        let err = logged_transactional_reconfig(
            &mut sim,
            &targets,
            SimTime::from_secs(1),
            &mut fabric,
            &RetryPolicy::default(),
            &mut log,
            None,
            None,
            Some(&detector),
        )
        .unwrap_err();
        assert!(
            matches!(err, FlexError::DegradedDevice { .. }),
            "typed refusal, got {err:?}"
        );
        assert!(err.is_retryable(), "the grade clears; callers may retry");
        // Refused up front: nothing journaled, no shadows anywhere.
        assert!(log.records().unwrap().is_empty(), "no Intent was logged");
        for d in devices {
            assert!(
                !sim.topo.node(d).unwrap().device.reconfig_in_progress(),
                "{d} must hold no shadow after an up-front refusal"
            );
        }
        // With every device healthy again, the same transaction commits.
        detector.observe(devices[1], SimTime::from_millis(900));
        detector.poll(SimTime::from_millis(910));
        let report = logged_transactional_reconfig(
            &mut sim,
            &targets,
            SimTime::from_secs(1),
            &mut fabric,
            &RetryPolicy::default(),
            &mut log,
            None,
            None,
            Some(&detector),
        )
        .unwrap();
        assert_eq!(report.outcome, LoggedTxnOutcome::Committed);
    }

    #[test]
    fn multi_wave_aborts_report_rollback_latency_per_wave() {
        // Two consecutive wave transactions abort (their last participant
        // is down). Each wave's report must carry its own rollback
        // latency, and the second wave's rollback must not disturb the
        // first wave's already-rolled-back devices.
        let (mut sim, devices) = prepared_sim();
        sim.topo
            .node_mut(devices[2])
            .unwrap()
            .device
            .crash(SimTime::from_millis(500));
        let wave1: Vec<_> = vec![(devices[0], v2()), (devices[2], v2())];
        let wave2: Vec<_> = vec![(devices[1], v2()), (devices[2], v2())];
        let r1 = transactional_reconfig(&mut sim, &wave1, SimTime::from_secs(1));
        assert_eq!(r1.outcome, TxnOutcome::Aborted);
        let lat1 = r1.rollback_latency.expect("wave 1 rolled back");
        assert!(lat1 > SimDuration::ZERO, "rollback costs control RTTs");
        let r2 = transactional_reconfig(&mut sim, &wave2, r1.finished_at);
        assert_eq!(r2.outcome, TxnOutcome::Aborted);
        let lat2 = r2.rollback_latency.expect("wave 2 rolled back");
        assert!(lat2 > SimDuration::ZERO);
        assert!(
            r2.finished_at > r1.finished_at,
            "waves abort in sequence, not on top of each other"
        );
        // Both live devices still run v1 — neither wave leaked its shadow.
        for d in &devices[..2] {
            let dev = &sim.topo.node(*d).unwrap().device;
            assert!(!dev.reconfig_in_progress(), "{d} rolled back");
            assert_eq!(dev.program().unwrap().bundle, v1());
        }
    }

    #[test]
    fn logged_commit_journals_every_phase_and_flips_together() {
        let (mut sim, devices) = prepared_sim();
        let targets: Vec<_> = devices.iter().map(|d| (*d, v2())).collect();
        let mut log = ReplicatedIntentLog::new(3, 42).unwrap();
        let report = logged(&mut sim, &targets, &mut log, None);
        assert_eq!(report.outcome, LoggedTxnOutcome::Committed);
        assert_eq!(report.prepared, devices.to_vec());

        let devs: Vec<u64> = devices.iter().map(|d| d.0 as u64).collect();
        let commit_at = report.commit_at.unwrap();
        assert_eq!(
            log.records().unwrap(),
            vec![
                IntentRecord::Intent {
                    txn: report.txn,
                    devices: devs.clone(),
                },
                IntentRecord::Prepared {
                    txn: report.txn,
                    devices: devs,
                },
                IntentRecord::FlipScheduled {
                    txn: report.txn,
                    commit_at,
                },
                IntentRecord::Committed { txn: report.txn },
            ],
            "write-ahead order: one record per phase transition"
        );
        for d in devices {
            let dev = &mut sim.topo.node_mut(d).unwrap().device;
            dev.tick(commit_at);
            assert_eq!(dev.program().unwrap().bundle, v2(), "{d} flipped");
            assert_eq!(dev.fence(), report.epoch, "{d} observed the epoch");
        }
    }

    #[test]
    fn coordinator_death_after_prepared_leaves_devices_in_doubt() {
        let (mut sim, devices) = prepared_sim();
        let targets: Vec<_> = devices.iter().map(|d| (*d, v2())).collect();
        let mut log = ReplicatedIntentLog::new(3, 7).unwrap();
        let report = logged(
            &mut sim,
            &targets,
            &mut log,
            Some(CrashPhase::AfterPrepared),
        );
        assert_eq!(
            report.outcome,
            LoggedTxnOutcome::Crashed(CrashPhase::AfterPrepared)
        );
        // The log's last word is Prepared — recovery must roll back.
        assert!(matches!(
            log.records().unwrap().last(),
            Some(IntentRecord::Prepared { .. })
        ));
        // Devices hold their shadows forever: in-doubt means no unilateral
        // flip, even long past the transition's ready time.
        for d in devices {
            let dev = &mut sim.topo.node_mut(d).unwrap().device;
            dev.tick(SimTime::from_secs(3600));
            assert!(dev.reconfig_in_progress(), "{d} must stay in-doubt");
            assert_eq!(dev.program().unwrap().bundle, v1(), "{d} still runs v1");
        }
    }

    #[test]
    fn logged_prepare_failure_aborts_and_journals_it() {
        let (mut sim, devices) = prepared_sim();
        sim.topo
            .node_mut(devices[2])
            .unwrap()
            .device
            .crash(SimTime::from_millis(500));
        let targets: Vec<_> = devices.iter().map(|d| (*d, v2())).collect();
        let mut log = ReplicatedIntentLog::new(3, 11).unwrap();
        let report = logged(&mut sim, &targets, &mut log, None);
        assert_eq!(report.outcome, LoggedTxnOutcome::Aborted);
        assert_eq!(report.prepared, devices[..2].to_vec());
        assert!(matches!(
            log.records().unwrap().last(),
            Some(IntentRecord::Aborted { .. })
        ));
        for d in &devices[..2] {
            let dev = &sim.topo.node(*d).unwrap().device;
            assert!(!dev.reconfig_in_progress(), "{d} rolled back");
            assert_eq!(dev.program().unwrap().bundle, v1());
        }
    }

    #[test]
    fn mid_prepare_death_stops_after_half_the_participants() {
        let (mut sim, devices) = prepared_sim();
        let targets: Vec<_> = devices.iter().map(|d| (*d, v2())).collect();
        let mut log = ReplicatedIntentLog::new(3, 13).unwrap();
        let report = logged(&mut sim, &targets, &mut log, Some(CrashPhase::MidPrepare));
        assert_eq!(
            report.outcome,
            LoggedTxnOutcome::Crashed(CrashPhase::MidPrepare)
        );
        assert_eq!(report.prepared, devices[..2].to_vec(), "ceil(3/2) prepared");
        // The log never saw Prepared: its last word is the Intent.
        assert!(matches!(
            log.records().unwrap().last(),
            Some(IntentRecord::Intent { .. })
        ));
        assert!(sim
            .topo
            .node(devices[0])
            .unwrap()
            .device
            .reconfig_in_progress());
        assert!(!sim
            .topo
            .node(devices[2])
            .unwrap()
            .device
            .reconfig_in_progress());
    }
}

