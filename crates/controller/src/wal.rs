//! The replicated write-ahead intent log.
//!
//! Crash-recovery for transactional reconfiguration (ISSUE 2) needs the
//! coordinator's *intent* to survive the coordinator: if the controller
//! node driving a two-phase commit dies between "every device prepared"
//! and "every device flipped", someone must be able to tell, after the
//! fact, whether the transaction was past its point of no return. This
//! module journals every phase transition of every transaction as an
//! [`IntentRecord`] and replicates it through the controller's own
//! [`RaftCluster`] *before* the corresponding command is sent to the data
//! plane — the classic write-ahead rule. A record is only considered
//! durable once Raft has committed it on a majority, so any surviving
//! controller node can replay the log ([`crate::recovery`]) and resolve
//! every in-doubt transaction deterministically.
//!
//! Records are encoded as small stable strings (Raft commands are opaque
//! `String`s), e.g. `intent 3 dev 1,2,4` or `flip 3 at 1500000000` —
//! human-readable in test failures and trivially round-trippable.

use crate::raft::RaftCluster;
use crate::storage::{compact_records, NodeStorage};
use flexnet_types::{FlexError, Result, SimDuration, SimTime};

/// One durable phase transition of a reconfiguration transaction.
///
/// The record sequence for a transaction `t` is a prefix of
/// `Intent → Prepared → FlipScheduled → Committed`, or ends in `Aborted`
/// after any of the first two. The *last* record for `t` determines how
/// recovery resolves it (see `DESIGN.md` §8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntentRecord {
    /// The coordinator decided to run transaction `txn` over `devices`.
    /// Logged before the first prepare is sent.
    Intent {
        /// Transaction id (monotone per log).
        txn: u64,
        /// Node ids of every participant.
        devices: Vec<u64>,
    },
    /// Every participant acked its prepare; `devices` now hold shadow
    /// programs awaiting the coordinator's decision.
    Prepared {
        /// Transaction id.
        txn: u64,
        /// Node ids that hold a prepared shadow.
        devices: Vec<u64>,
    },
    /// The coordinator chose to commit and scheduled the aligned flip.
    /// Logged before any commit command is sent — past this record the
    /// transaction must roll *forward*.
    FlipScheduled {
        /// Transaction id.
        txn: u64,
        /// The aligned flip instant sent to every participant.
        commit_at: SimTime,
    },
    /// Every participant confirmed the commit. Terminal.
    Committed {
        /// Transaction id.
        txn: u64,
    },
    /// The transaction was rolled back everywhere. Terminal.
    Aborted {
        /// Transaction id.
        txn: u64,
    },
    /// The controller's intended configuration for one device changed:
    /// transaction `txn` (0 for out-of-band table-entry updates) left
    /// `device` with intended-state digest `digest`. Journaled by the
    /// intended-state store ([`crate::resync::IntendedStore`]) so the
    /// per-device reconciliation target survives coordinator failover.
    /// Orthogonal to the 2PC phase machine — recovery's in-doubt
    /// resolution ignores these records.
    IntendedState {
        /// Transaction that produced this intended state (0 = entry-level
        /// update outside any transaction).
        txn: u64,
        /// The device this intent describes.
        device: u64,
        /// Digest of the full intended configuration
        /// ([`flexnet_dataplane::config_digest_of`]).
        digest: u64,
    },
    /// A canary rollout started. Logged with the full wave plan before
    /// the first wave deploys, so a failed-over coordinator knows the
    /// membership of every wave without the originator's memory. Rollout
    /// ids share the transaction-id space (one allocator, so they stay
    /// unique and monotone across failover).
    RolloutStarted {
        /// Rollout id.
        rollout: u64,
        /// The wave plan: `waves[k]` is the device set of wave `k+1`.
        waves: Vec<Vec<u64>>,
    },
    /// Wave `wave` (1-based) of `rollout` flipped to the candidate via
    /// per-wave transaction `txn`. The set of `WaveCommitted` records is
    /// exactly the set of waves a rollback must un-flip.
    WaveCommitted {
        /// Rollout id.
        rollout: u64,
        /// 1-based wave number.
        wave: u32,
        /// The logged 2PC transaction that deployed the wave.
        txn: u64,
    },
    /// A soak-window SLO guard breached: the rollout halted at `wave`
    /// and rollback of every committed wave is owed. Logged before the
    /// first rollback command, so a coordinator that dies mid-rollback
    /// leaves an `Aborted`-without-`RolledBack` suffix for its successor
    /// to finish.
    RolloutAborted {
        /// Rollout id.
        rollout: u64,
        /// 1-based wave whose soak breached.
        wave: u32,
        /// Single-token guard label (e.g. `loss-delta`, `p99-delta`).
        guard: String,
    },
    /// Every wave committed and every soak stayed under its guards: the
    /// candidate is fleet-wide. Terminal for the rollout.
    RolloutCompleted {
        /// Rollout id.
        rollout: u64,
    },
    /// Every committed wave was rolled back to the prior program.
    /// Terminal for the rollout.
    RolledBack {
        /// Rollout id.
        rollout: u64,
    },
    /// Log-compaction marker: everything before this record was folded
    /// into a snapshot summary and `txn` is the id allocator's
    /// high-water mark at compaction time. Written first in every
    /// snapshot ([`crate::storage::compact_records`]) so a failed-over
    /// coordinator never reuses an id whose records were compacted
    /// away. Recovery's in-doubt resolution ignores it.
    Compacted {
        /// Highest transaction/rollout id seen before compaction.
        txn: u64,
    },
}

impl IntentRecord {
    /// The transaction this record belongs to.
    pub fn txn(&self) -> u64 {
        match self {
            IntentRecord::Intent { txn, .. }
            | IntentRecord::Prepared { txn, .. }
            | IntentRecord::FlipScheduled { txn, .. }
            | IntentRecord::Committed { txn }
            | IntentRecord::Aborted { txn }
            | IntentRecord::IntendedState { txn, .. }
            | IntentRecord::Compacted { txn } => *txn,
            // Rollout ids share the allocator, so they count here too —
            // a failed-over coordinator must not reuse them.
            IntentRecord::RolloutStarted { rollout, .. }
            | IntentRecord::RolloutAborted { rollout, .. }
            | IntentRecord::RolloutCompleted { rollout }
            | IntentRecord::RolledBack { rollout } => *rollout,
            IntentRecord::WaveCommitted { rollout, txn, .. } => (*rollout).max(*txn),
        }
    }

    /// Stable wire encoding (a Raft command string).
    pub fn encode(&self) -> String {
        fn devs(devices: &[u64]) -> String {
            devices
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join(",")
        }
        match self {
            IntentRecord::Intent { txn, devices } => {
                format!("intent {txn} dev {}", devs(devices))
            }
            IntentRecord::Prepared { txn, devices } => {
                format!("prepared {txn} dev {}", devs(devices))
            }
            IntentRecord::FlipScheduled { txn, commit_at } => {
                format!("flip {txn} at {}", commit_at.as_nanos())
            }
            IntentRecord::Committed { txn } => format!("committed {txn}"),
            IntentRecord::Aborted { txn } => format!("aborted {txn}"),
            IntentRecord::IntendedState {
                txn,
                device,
                digest,
            } => format!("intended {txn} dev {device} digest {digest}"),
            IntentRecord::RolloutStarted { rollout, waves } => {
                let plan = waves
                    .iter()
                    .map(|w| devs(w))
                    .collect::<Vec<_>>()
                    .join(";");
                format!("rollout-started {rollout} waves {plan}")
            }
            IntentRecord::WaveCommitted { rollout, wave, txn } => {
                format!("wave-committed {rollout} wave {wave} txn {txn}")
            }
            IntentRecord::RolloutAborted {
                rollout,
                wave,
                guard,
            } => format!("rollout-aborted {rollout} wave {wave} guard {guard}"),
            IntentRecord::RolloutCompleted { rollout } => {
                format!("rollout-completed {rollout}")
            }
            IntentRecord::RolledBack { rollout } => format!("rolled-back {rollout}"),
            IntentRecord::Compacted { txn } => format!("compacted {txn}"),
        }
    }

    /// Parses a record previously produced by [`IntentRecord::encode`].
    pub fn decode(s: &str) -> Result<IntentRecord> {
        let bad = || FlexError::Consensus(format!("malformed intent record: {s:?}"));
        let mut parts = s.split_whitespace();
        let kind = parts.next().ok_or_else(bad)?;
        let txn: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let parse_devs = |list: &str| -> Result<Vec<u64>> {
            if list.is_empty() {
                return Ok(Vec::new());
            }
            list.split(',')
                .map(|d| d.parse().map_err(|_| bad()))
                .collect()
        };
        let rec = match kind {
            "intent" | "prepared" => {
                if parts.next() != Some("dev") {
                    return Err(bad());
                }
                let devices = parse_devs(parts.next().unwrap_or(""))?;
                if kind == "intent" {
                    IntentRecord::Intent { txn, devices }
                } else {
                    IntentRecord::Prepared { txn, devices }
                }
            }
            "flip" => {
                if parts.next() != Some("at") {
                    return Err(bad());
                }
                let ns: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                IntentRecord::FlipScheduled {
                    txn,
                    commit_at: SimTime::from_nanos(ns),
                }
            }
            "committed" => IntentRecord::Committed { txn },
            "aborted" => IntentRecord::Aborted { txn },
            "rollout-started" => {
                if parts.next() != Some("waves") {
                    return Err(bad());
                }
                let plan = parts.next().ok_or_else(bad)?;
                let waves = plan
                    .split(';')
                    .map(parse_devs)
                    .collect::<Result<Vec<Vec<u64>>>>()?;
                if waves.iter().any(Vec::is_empty) {
                    return Err(bad());
                }
                IntentRecord::RolloutStarted {
                    rollout: txn,
                    waves,
                }
            }
            "wave-committed" => {
                if parts.next() != Some("wave") {
                    return Err(bad());
                }
                let wave: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                if parts.next() != Some("txn") {
                    return Err(bad());
                }
                let wave_txn: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                IntentRecord::WaveCommitted {
                    rollout: txn,
                    wave,
                    txn: wave_txn,
                }
            }
            "rollout-aborted" => {
                if parts.next() != Some("wave") {
                    return Err(bad());
                }
                let wave: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                if parts.next() != Some("guard") {
                    return Err(bad());
                }
                let guard = parts.next().ok_or_else(bad)?.to_string();
                IntentRecord::RolloutAborted {
                    rollout: txn,
                    wave,
                    guard,
                }
            }
            "rollout-completed" => IntentRecord::RolloutCompleted { rollout: txn },
            "rolled-back" => IntentRecord::RolledBack { rollout: txn },
            "compacted" => IntentRecord::Compacted { txn },
            "intended" => {
                if parts.next() != Some("dev") {
                    return Err(bad());
                }
                let device: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                if parts.next() != Some("digest") {
                    return Err(bad());
                }
                let digest: u64 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
                IntentRecord::IntendedState {
                    txn,
                    device,
                    digest,
                }
            }
            _ => return Err(bad()),
        };
        if parts.next().is_some() {
            return Err(bad());
        }
        Ok(rec)
    }
}

/// How long [`ReplicatedIntentLog::append`] drives the cluster waiting for
/// a majority commit before declaring the append failed.
const APPEND_TIMEOUT: SimDuration = SimDuration::from_secs(5);

/// Prefix of the no-op barrier entries [`ReplicatedIntentLog::elect`]
/// commits so a new leader can commit its predecessors' records (Raft
/// only commits prior-term entries transitively through a current-term
/// entry).
const BARRIER: &str = "barrier";

/// The write-ahead intent log, replicated over a [`RaftCluster`].
///
/// `append` blocks (in simulated time) until the record is *committed* on
/// a majority — only then may the coordinator act on it. The current Raft
/// leader's term doubles as the **controller epoch** used for fencing
/// ([`flexnet_dataplane::Device::observe_epoch`]): terms are monotone and
/// unique per leader, so a deposed coordinator necessarily carries a
/// smaller epoch than its successor.
#[derive(Debug)]
pub struct ReplicatedIntentLog {
    cluster: RaftCluster,
    next_txn: u64,
}

impl ReplicatedIntentLog {
    /// A log replicated over `n` controller nodes; runs the initial
    /// election so the log is immediately usable.
    pub fn new(n: usize, seed: u64) -> Result<ReplicatedIntentLog> {
        let mut cluster = RaftCluster::new(n, seed);
        cluster
            .run_until_leader(SimDuration::from_secs(10))
            .ok_or_else(|| FlexError::Consensus("initial election never converged".into()))?;
        Ok(ReplicatedIntentLog {
            cluster,
            next_txn: 1,
        })
    }

    /// Like [`ReplicatedIntentLog::new`], but each node persists to the
    /// given [`NodeStorage`] (one per node, possibly armed with fault
    /// plans) instead of default fault-free disks.
    pub fn new_with(n: usize, seed: u64, storages: Vec<NodeStorage>) -> Result<ReplicatedIntentLog> {
        let mut cluster = RaftCluster::new_with(n, seed, storages);
        cluster
            .run_until_leader(SimDuration::from_secs(10))
            .ok_or_else(|| FlexError::Consensus("initial election never converged".into()))?;
        Ok(ReplicatedIntentLog {
            cluster,
            next_txn: 1,
        })
    }

    /// The underlying cluster (for fault injection in tests/harnesses).
    pub fn cluster_mut(&mut self) -> &mut RaftCluster {
        &mut self.cluster
    }

    /// Current simulated time of the controller fabric.
    pub fn now(&self) -> SimTime {
        self.cluster.now()
    }

    /// The current controller epoch: the leader's Raft term.
    ///
    /// Fails with the retryable [`FlexError::NoLeader`] during elections.
    pub fn epoch(&self) -> Result<u64> {
        match self.cluster.leader() {
            Some(l) => Ok(self.cluster.term(l)),
            None => Err(FlexError::NoLeader {
                hint: None,
                retry_after: crate::raft::ELECTION_TIMEOUT_MAX,
            }),
        }
    }

    /// Allocates the next transaction id.
    ///
    /// Ids are derived from the committed log on construction and after
    /// failover ([`ReplicatedIntentLog::elect`]), so a successor
    /// coordinator never reuses a predecessor's id.
    pub fn next_txn_id(&mut self) -> u64 {
        let id = self.next_txn;
        self.next_txn += 1;
        id
    }

    /// Durably appends `record`: proposes it to the leader and drives the
    /// cluster until a majority has committed it.
    ///
    /// Returns [`FlexError::NoLeader`] (retryable) when no leader exists,
    /// and [`FlexError::Consensus`] when the leader was deposed before the
    /// record committed — in both cases the record is *not* durable and
    /// the coordinator must not act on it.
    pub fn append(&mut self, record: &IntentRecord) -> Result<()> {
        self.commit_command(record.encode())
    }

    /// Proposes `command` and drives the cluster until a majority commits
    /// it under the same leader.
    fn commit_command(&mut self, command: String) -> Result<()> {
        self.cluster.propose(&command)?;
        // `propose` only succeeds under a leader, but the leader's
        // durable append can trip its own disk mid-propose — re-check
        // instead of unwrapping.
        let leader = self.cluster.leader().ok_or(FlexError::NoLeader {
            hint: None,
            retry_after: crate::raft::ELECTION_TIMEOUT_MAX,
        })?;
        // The command's global index: the leader appended it at the end
        // of its log (uncommitted entries may precede it, so length of
        // the committed prefix alone would be the wrong slot).
        let target = self.cluster.log_len(leader)? as u64;
        let deadline = self.cluster.now() + APPEND_TIMEOUT;
        while self.cluster.now() < deadline {
            self.cluster.step(SimDuration::from_millis(10));
            if !self.cluster.is_alive(leader) || self.cluster.leader() != Some(leader) {
                return Err(FlexError::Consensus(format!(
                    "leader {leader} deposed before {command:?} committed"
                )));
            }
            if self.cluster.commit_index(leader)? < target {
                continue;
            }
            // Commit reached the slot under the same leader, so the
            // entry there is ours (a `None` means a concurrent local
            // compaction folded it into the snapshot — equally durable).
            match self.cluster.command_at(leader, target)? {
                Some(c) if c == command => return Ok(()),
                None => return Ok(()),
                Some(other) => {
                    return Err(FlexError::Consensus(format!(
                        "slot {target} committed {other:?}, not {command:?}"
                    )))
                }
            }
        }
        Err(FlexError::Consensus(format!(
            "append of {command:?} did not commit within {APPEND_TIMEOUT}"
        )))
    }

    /// The committed record sequence, decoded, as seen by the current
    /// leader. Election barriers (see [`ReplicatedIntentLog::elect`]) are
    /// internal bookkeeping and filtered out.
    pub fn records(&self) -> Result<Vec<IntentRecord>> {
        let leader = self.cluster.leader().ok_or(FlexError::NoLeader {
            hint: None,
            retry_after: crate::raft::ELECTION_TIMEOUT_MAX,
        })?;
        self.cluster
            .committed(leader)?
            .iter()
            .filter(|s| !s.starts_with(BARRIER))
            .map(|s| IntentRecord::decode(s))
            .collect()
    }

    /// Kills the current leader (the crash under test); returns its index.
    pub fn kill_leader(&mut self) -> Result<usize> {
        let leader = self.cluster.leader().ok_or(FlexError::NoLeader {
            hint: None,
            retry_after: crate::raft::ELECTION_TIMEOUT_MAX,
        })?;
        self.cluster.kill(leader)?;
        Ok(leader)
    }

    /// Runs the cluster until a (new) leader emerges, commits a barrier
    /// entry in the new term (Raft's rule: prior-term entries only commit
    /// transitively through a current-term entry, so without the barrier
    /// the predecessor's durable records would stay invisible), and
    /// re-derives `next_txn` from the committed log so the new
    /// coordinator's ids continue where the old one's left off. Returns
    /// the leader index.
    pub fn elect(&mut self) -> Result<usize> {
        let leader = self
            .cluster
            .run_until_leader(SimDuration::from_secs(10))
            .ok_or_else(|| FlexError::Consensus("no quorum: election never converged".into()))?;
        let term = self.cluster.term(leader);
        self.commit_command(format!("{BARRIER} {term}"))?;
        // An undecodable committed log (bit rot replicated with checksums
        // disabled) must not wedge failover — the id allocator keeps its
        // current high-water mark and the divergence surfaces in grading.
        let max_seen = self
            .records()
            .ok()
            .and_then(|records| records.iter().map(IntentRecord::txn).max());
        self.next_txn = self.next_txn.max(max_seen.map_or(1, |m| m + 1));
        Ok(leader)
    }

    /// Snapshot + compaction: folds the committed prefix into a summary
    /// ([`compact_records`]) and installs it as a snapshot on every
    /// caught-up node, deleting WAL segments behind the fallback
    /// horizon. Nodes whose commit lags, or whose snapshot disk refuses
    /// with [`flexnet_types::StorageError::NoSpace`], are skipped and
    /// keep their full log — compaction is per-node best-effort and
    /// never blocks the cluster.
    pub fn compact(&mut self) -> Result<CompactionReport> {
        let leader = self.cluster.leader().ok_or(FlexError::NoLeader {
            hint: None,
            retry_after: crate::raft::ELECTION_TIMEOUT_MAX,
        })?;
        let upto = self.cluster.commit_index(leader)?;
        let base = self.cluster.base_index(leader)?;
        let mut report = CompactionReport {
            upto,
            summary_len: 0,
            compacted: Vec::new(),
            skipped: Vec::new(),
            nospace: 0,
        };
        if upto <= base {
            return Ok(report);
        }
        // The summary replays to the same recovery state as the full
        // committed prefix (checked by `replay_digest` equality in the
        // property suite). Barriers are bookkeeping and fold away.
        let records: Vec<IntentRecord> = self
            .cluster
            .committed(leader)?
            .iter()
            .filter(|s| !s.starts_with(BARRIER))
            .map(|s| IntentRecord::decode(s))
            .collect::<Result<_>>()?;
        let summary: Vec<String> = compact_records(&records)
            .iter()
            .map(IntentRecord::encode)
            .collect();
        report.summary_len = summary.len();
        for i in 0..self.cluster.len() {
            if !self.cluster.is_alive(i) || self.cluster.commit_index(i)? < upto {
                report.skipped.push(i);
                continue;
            }
            match self.cluster.compact_to(i, upto, &summary) {
                Ok(()) => report.compacted.push(i),
                Err(FlexError::Storage(flexnet_types::StorageError::NoSpace { .. })) => {
                    report.nospace += 1;
                    report.skipped.push(i);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }
}

/// What one [`ReplicatedIntentLog::compact`] pass did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionReport {
    /// Global log index the snapshot covers through.
    pub upto: u64,
    /// Records in the snapshot summary.
    pub summary_len: usize,
    /// Nodes that installed the snapshot and dropped log segments.
    pub compacted: Vec<usize>,
    /// Nodes skipped (lagging commit, dead, or out of snapshot space).
    pub skipped: Vec<usize>,
    /// Skips caused specifically by `NoSpace`.
    pub nospace: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_records() -> Vec<IntentRecord> {
        vec![
            IntentRecord::Intent {
                txn: 3,
                devices: vec![1, 2, 4],
            },
            IntentRecord::Prepared {
                txn: 3,
                devices: vec![1, 2],
            },
            IntentRecord::FlipScheduled {
                txn: 3,
                commit_at: SimTime::from_millis(1500),
            },
            IntentRecord::Committed { txn: 3 },
            IntentRecord::Aborted { txn: 4 },
            IntentRecord::Intent {
                txn: 5,
                devices: vec![],
            },
            IntentRecord::IntendedState {
                txn: 3,
                device: 2,
                digest: 0xDEAD_BEEF_u64,
            },
            IntentRecord::IntendedState {
                txn: 0,
                device: 7,
                digest: u64::MAX,
            },
            IntentRecord::RolloutStarted {
                rollout: 6,
                waves: vec![vec![1], vec![2, 4], vec![5, 6, 7]],
            },
            IntentRecord::WaveCommitted {
                rollout: 6,
                wave: 2,
                txn: 9,
            },
            IntentRecord::RolloutAborted {
                rollout: 6,
                wave: 3,
                guard: "loss-delta".into(),
            },
            IntentRecord::RolloutCompleted { rollout: 8 },
            IntentRecord::RolledBack { rollout: 6 },
            IntentRecord::Compacted { txn: 11 },
        ]
    }

    #[test]
    fn records_round_trip_through_the_wire_encoding() {
        for rec in all_records() {
            let wire = rec.encode();
            assert_eq!(
                IntentRecord::decode(&wire).unwrap(),
                rec,
                "round-trip of {wire:?}"
            );
        }
    }

    #[test]
    fn malformed_records_are_typed_errors() {
        for bad in [
            "",
            "intent",
            "intent x dev 1",
            "intent 3 dev 1,x",
            "intent 3 devices 1",
            "flip 3 at",
            "flip 3 at 12 extra",
            "committed 3 extra",
            "exploded 3",
            "intended 3 dev 2",
            "intended 3 dev 2 digest",
            "intended 3 dev 2 digest x",
            "intended 3 device 2 digest 9",
            "rollout-started 6",
            "rollout-started 6 waves",
            "rollout-started 6 waves 1;;2",
            "rollout-started 6 waves 1,x",
            "wave-committed 6 wave 2",
            "wave-committed 6 wave 2 txn x",
            "rollout-aborted 6 wave 3",
            "rollout-aborted 6 wave 3 guard",
            "rollout-completed",
            "rolled-back 6 extra",
            "compacted",
            "compacted x",
            "compacted 3 extra",
        ] {
            assert!(
                matches!(IntentRecord::decode(bad), Err(FlexError::Consensus(_))),
                "{bad:?} must not decode"
            );
        }
    }

    #[test]
    fn append_is_durable_and_ordered() {
        let mut log = ReplicatedIntentLog::new(3, 42).unwrap();
        let recs = all_records();
        for rec in &recs {
            log.append(rec).unwrap();
        }
        assert_eq!(log.records().unwrap(), recs);
    }

    #[test]
    fn log_survives_leader_crash_and_epoch_rises() {
        let mut log = ReplicatedIntentLog::new(5, 7).unwrap();
        let epoch0 = log.epoch().unwrap();
        let rec = IntentRecord::Intent {
            txn: 9,
            devices: vec![1, 2],
        };
        log.append(&rec).unwrap();
        let old = log.kill_leader().unwrap();
        let new = log.elect().unwrap();
        assert_ne!(old, new);
        assert!(
            log.epoch().unwrap() > epoch0,
            "a successor's epoch strictly rises"
        );
        assert_eq!(log.records().unwrap(), vec![rec]);
        // The successor continues txn ids past everything durable.
        assert_eq!(log.next_txn_id(), 10);
    }

    #[test]
    fn append_without_quorum_fails_typed() {
        let mut log = ReplicatedIntentLog::new(3, 11).unwrap();
        // Kill both followers: the leader alone cannot commit.
        let leader = log.cluster.leader().unwrap();
        for i in 0..log.cluster.len() {
            if i != leader {
                log.cluster.kill(i).unwrap();
            }
        }
        let err = log
            .append(&IntentRecord::Committed { txn: 1 })
            .unwrap_err();
        assert!(matches!(err, FlexError::Consensus(_)), "got {err:?}");
    }

    #[test]
    fn txn_ids_are_monotone() {
        let mut log = ReplicatedIntentLog::new(3, 13).unwrap();
        let a = log.next_txn_id();
        let b = log.next_txn_id();
        assert!(b > a);
    }
}
