//! Canary rollouts: wave-by-wave program deployment with SLO guards,
//! gray-failure detection, and automatic rollback (experiment E15).
//!
//! The paper's runtime-programmable network only earns its keep if
//! *changing* the network is safe: a bad program pushed everywhere at
//! once is an outage, not an evolution. This module deploys a candidate
//! program in widening waves (canonically 1 → 2 → 4 → all devices), each
//! wave an ordinary journaled two-phase-commit transaction
//! ([`logged_transactional_reconfig`] — shadow + aligned atomic flip,
//! never in-place). After each wave flips, the orchestrator *soaks*: it
//! holds the rollout for a fixed window, feeding device heartbeats (with
//! data-path counters) to the [`FailureDetector`] and comparing live
//! metrics against the pre-rollout baseline. Four guards are evaluated,
//! most specific first:
//!
//! 1. **consistency** — every device's config digest is exactly the old
//!    XOR the new image, and nobody is stuck mid-reconfiguration;
//! 2. **drop-slope** — no flipped device's per-packet drop rate over the
//!    soak exceeds the gray threshold (catches the device-scoped bad
//!    build whose heartbeats stay punctual);
//! 3. **loss-delta** — fleet-wide loss rate minus the baseline's stays
//!    under the budget (catches uniform and slow-burn regressions: a
//!    per-device trickle too small for the slope guard crosses this one
//!    as waves widen exposure);
//! 4. **p99-delta** — fleet p99 latency minus the baseline's stays under
//!    the budget (catches pure compute inflation that loses nothing).
//!
//! A breach halts the rollout, journals a `RolloutAborted` record, and
//! rolls every flipped device back to its pre-rollout program — one
//! two-phase transaction per device (so one dead device cannot strand
//! its wave-mates on the candidate), shadow + flip, never in-place. A
//! device whose rollback transaction fails is **quarantined** by name in
//! the report — visibly diverged, never silently. The whole state
//! machine is journaled in the replicated intent log (`RolloutStarted`,
//! `WaveCommitted`, `RolloutAborted`, `RolloutCompleted`, `RolledBack`),
//! so a failed-over coordinator can finish an owed rollback with
//! [`resume_rollouts`].
//!
//! [`run_canary_seed`] is the seeded chaos harness: one seed expands to
//! a [`RolloutSchedule`] (which way the candidate is bad, which device
//! gets the gray build, how lossy the control fabric is) and a full
//! scenario on the 8-lane parallel topology with live traffic, returning
//! every invariant violation as a string.

use std::collections::{BTreeMap, BTreeSet};

use crate::core::{DataPathHealth, FailureDetector, Health, HealthEvent};
use crate::retry::{LossyFabric, RetryPolicy};
use crate::txn::{logged_transactional_reconfig, LoggedTxnOutcome};
use crate::wal::{IntentRecord, ReplicatedIntentLog};
use flexnet_lang::diff::ProgramBundle;
use flexnet_lang::parser::parse_source;
use flexnet_sim::metrics::{WindowDelta, WindowStats};
use flexnet_sim::{generate, FlowSpec, RolloutFault, RolloutSchedule, Simulation, Topology};
use flexnet_types::{FlexError, NodeId, Result, SimDuration, SimTime};

/// Heartbeat period during soak windows (matches the failure detector's
/// default suspect window of a few missed 50 ms periods).
fn heartbeat_period() -> SimDuration {
    SimDuration::from_millis(50)
}

/// The SLO budgets a wave must stay inside during its soak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloGuards {
    /// Fleet loss rate minus baseline loss rate, parts per million.
    pub loss_delta_ppm: u64,
    /// Fleet p99 latency minus baseline p99, nanoseconds.
    pub p99_delta_ns: u64,
    /// Per-device drop slope (dropped/processed over the soak), ppm —
    /// the gray-failure threshold.
    pub drop_slope_ppm: u64,
}

impl Default for SloGuards {
    /// 2% extra loss, 1 µs extra p99, 20% per-device drop slope.
    fn default() -> SloGuards {
        SloGuards {
            loss_delta_ppm: 20_000,
            p99_delta_ns: 1_000,
            drop_slope_ppm: 200_000,
        }
    }
}

/// A wave plan: which devices flip in which order, how long each wave
/// soaks, and the guard budgets.
#[derive(Debug, Clone)]
pub struct RolloutPlan {
    /// Disjoint device groups, in flip order.
    pub waves: Vec<Vec<NodeId>>,
    /// How long each wave (and the pre-rollout baseline) is observed.
    pub soak: SimDuration,
    /// The SLO budgets.
    pub guards: SloGuards,
}

impl RolloutPlan {
    /// The canonical doubling plan: cumulative exposure 1 → 2 → 4 → …
    /// until the whole fleet is covered (8 devices → waves of 1, 1, 2, 4).
    pub fn canonical(fleet: &[NodeId], soak: SimDuration, guards: SloGuards) -> RolloutPlan {
        let mut waves = Vec::new();
        let mut done = 0usize;
        let mut cumulative = 1usize;
        while done < fleet.len() {
            let upto = cumulative.min(fleet.len());
            waves.push(fleet[done..upto].to_vec());
            done = upto;
            cumulative *= 2;
        }
        RolloutPlan {
            waves,
            soak,
            guards,
        }
    }
}

/// Where the coordinator is killed mid-rollout (test instrumentation,
/// mirroring [`flexnet_sim::CrashPhase`] for single transactions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutCrash {
    /// Right after the given wave's `WaveCommitted` record is durable —
    /// flipped devices are live on the candidate, no verdict journaled.
    AfterWaveCommit(u32),
    /// Right after the `RolloutAborted` record is durable, before any
    /// rollback transaction runs — the rollback is owed to the log.
    AfterAbortRecord,
}

/// A guard breach: which budget, what was observed, what was allowed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloBreach {
    /// 1-based wave the breach was observed in.
    pub wave: u32,
    /// Guard label: `consistency`, `drop-slope`, `loss-delta`,
    /// `p99-delta`, `admission`, or `wave-txn`.
    pub guard: String,
    /// Observed value (ppm or ns, per the guard).
    pub observed: u64,
    /// The budget it exceeded.
    pub threshold: u64,
}

impl SloBreach {
    /// The breach as the typed error the rest of the stack speaks.
    pub fn to_error(&self) -> FlexError {
        FlexError::SloViolation {
            guard: self.guard.clone(),
            observed: self.observed,
            threshold: self.threshold,
        }
    }
}

/// How a rollout ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RolloutOutcome {
    /// Every wave committed and soaked clean.
    Completed,
    /// A guard breached in the given wave; every flipped device was
    /// driven back to its pre-rollout program (or quarantined).
    RolledBack {
        /// The wave the breach was observed in.
        wave: u32,
        /// The guard that fired.
        guard: String,
    },
    /// The coordinator died mid-rollout; [`resume_rollouts`] on the
    /// successor finishes the job from the journal.
    Crashed(RolloutCrash),
}

/// The orchestrator's account of one canary rollout.
#[derive(Debug, Clone)]
pub struct RolloutReport {
    /// Rollout id allocated from the intent log (shares the txn id space).
    pub rollout: u64,
    /// How it ended.
    pub outcome: RolloutOutcome,
    /// Waves that committed (and therefore flipped) before the end.
    pub waves_committed: u32,
    /// The per-wave transaction ids, in commit order.
    pub wave_txns: Vec<u64>,
    /// The pre-rollout baseline window.
    pub baseline: WindowStats,
    /// Per-wave soak deltas against the baseline, in wave order.
    pub deltas: Vec<(u32, WindowDelta)>,
    /// The breach that halted the rollout, if any.
    pub breach: Option<SloBreach>,
    /// Devices the failure detector graded [`Health::Degraded`] at any
    /// point during the rollout (punctual heartbeats, bad data path).
    pub degraded_seen: Vec<NodeId>,
    /// Abort decision → last rollback transaction finished.
    pub rollback_latency: Option<SimDuration>,
    /// Devices successfully driven back to their pre-rollout program.
    pub rolled_back: Vec<NodeId>,
    /// Devices whose rollback transaction failed: left on the candidate,
    /// named here — never silently diverged.
    pub quarantined: Vec<NodeId>,
    /// Control messages sent (attempts, including lost ones).
    pub messages: u32,
    /// When the orchestrator stopped working on the rollout.
    pub finished_at: SimTime,
}

/// Per-rollout pre-rollout targets, for rollback after a failover:
/// `rollout id → [(device, pre-rollout bundle)]`. Coordinators persist
/// this next to the log, exactly like the transaction-level
/// [`crate::recovery::TargetDirectory`].
pub type RolloutDirectory = BTreeMap<u64, Vec<(NodeId, ProgramBundle)>>;

/// Runs heartbeats over `[from, until]`: advances the simulation in
/// heartbeat steps and feeds every fleet device's liveness + data-path
/// counters to the detector.
fn soak_with_heartbeats(
    sim: &mut Simulation,
    fleet: &[NodeId],
    detector: &mut FailureDetector,
    from: SimTime,
    until: SimTime,
) {
    let mut t = from;
    while t < until {
        let next = t + heartbeat_period();
        t = if next > until { until } else { next };
        sim.run(t);
        for &d in fleet {
            let Some(node) = sim.topo.node(d) else { continue };
            let dev = &node.device;
            if !dev.is_up() {
                continue;
            }
            let stats = dev.stats();
            detector.observe_heartbeat_health(
                d,
                t,
                dev.boot_id(),
                dev.config_digest(),
                DataPathHealth {
                    processed: stats.processed,
                    dropped: stats.dropped,
                    traps: stats.traps,
                    quarantined: dev.quarantined(),
                },
            );
        }
    }
}

/// Drains a detector poll into `degraded_seen`, keeping it sorted-unique.
fn note_degraded(
    detector: &mut FailureDetector,
    now: SimTime,
    degraded_seen: &mut Vec<NodeId>,
) {
    for (node, event) in detector.poll(now) {
        if matches!(event, HealthEvent::Graded(Health::Degraded))
            && !degraded_seen.contains(&node)
        {
            degraded_seen.push(node);
        }
    }
    degraded_seen.sort_unstable();
}

/// Evaluates the guards for one soaked wave. Returns the window delta
/// (for the report) and the first breached guard, most specific first:
/// quarantine, consistency, drop-slope, loss-delta, p99-delta.
#[allow(clippy::too_many_arguments)]
fn evaluate_guards(
    sim: &Simulation,
    fleet: &[NodeId],
    flipped: &BTreeSet<NodeId>,
    old_digest: &BTreeMap<NodeId, u64>,
    new_digest: &BTreeMap<NodeId, u64>,
    pre_soak: &BTreeMap<NodeId, (u64, u64)>,
    guards: &SloGuards,
    baseline_window: (SimTime, SimTime),
    soak_window: (SimTime, SimTime),
) -> (WindowDelta, Option<(&'static str, u64, u64)>) {
    let delta = sim
        .metrics
        .window_delta(baseline_window, soak_window);

    // Quarantine: the most specific verdict there is — a device's own
    // sandbox already judged the program (trap storm) and swapped it
    // out. No slope arithmetic needed; one quarantined device condemns
    // the wave.
    for &d in fleet {
        let Some(node) = sim.topo.node(d) else { continue };
        if node.device.is_up() && node.device.quarantined() {
            return (delta, Some(("quarantine", d.0 as u64, 0)));
        }
    }

    // Consistency: old XOR new everywhere, nobody stuck mid-flip.
    let mut inconsistent = 0u64;
    for &d in fleet {
        let Some(node) = sim.topo.node(d) else {
            inconsistent += 1;
            continue;
        };
        let dev = &node.device;
        if !dev.is_up() {
            // A down device is a liveness problem for the detector, not
            // a version-consistency violation.
            continue;
        }
        let digest = dev.config_digest();
        let ok = if flipped.contains(&d) {
            new_digest.get(&d) == Some(&digest)
        } else {
            old_digest.get(&d) == Some(&digest)
        };
        if !ok || dev.reconfig_in_progress() {
            inconsistent += 1;
        }
    }
    if inconsistent > 0 {
        return (delta, Some(("consistency", inconsistent, 0)));
    }

    // Drop slope, per flipped device over this soak only.
    let mut worst_slope = 0u64;
    for &d in flipped {
        let Some(node) = sim.topo.node(d) else { continue };
        let stats = node.device.stats();
        let (pre_processed, pre_dropped) =
            pre_soak.get(&d).copied().unwrap_or((0, 0));
        let d_processed = stats.processed.saturating_sub(pre_processed);
        let d_dropped = stats.dropped.saturating_sub(pre_dropped);
        if d_processed >= 8 {
            let slope = d_dropped * 1_000_000 / d_processed;
            if slope > worst_slope {
                worst_slope = slope;
            }
        }
    }
    if worst_slope >= guards.drop_slope_ppm {
        return (delta, Some(("drop-slope", worst_slope, guards.drop_slope_ppm)));
    }

    if delta.loss_delta_ppm > guards.loss_delta_ppm as i64 {
        return (
            delta,
            Some(("loss-delta", delta.loss_delta_ppm as u64, guards.loss_delta_ppm)),
        );
    }
    if delta.p99_delta_ns > guards.p99_delta_ns as i64 {
        return (
            delta,
            Some(("p99-delta", delta.p99_delta_ns as u64, guards.p99_delta_ns)),
        );
    }
    (delta, None)
}

/// Rolls `devices` (already in rollback order) back to their pre-rollout
/// bundles, one journaled transaction per device — shadow + flip, never
/// in-place, and one unreachable device cannot strand the others. A
/// device whose transaction does not commit is quarantined.
fn rollback_devices(
    sim: &mut Simulation,
    devices: &[NodeId],
    baseline_of: &BTreeMap<NodeId, ProgramBundle>,
    mut t: SimTime,
    fabric: &mut LossyFabric,
    policy: &RetryPolicy,
    log: &mut ReplicatedIntentLog,
) -> (SimTime, u32, Vec<NodeId>, Vec<NodeId>) {
    let mut messages = 0u32;
    let mut rolled_back = Vec::new();
    let mut quarantined = Vec::new();
    for &d in devices {
        let Some(bundle) = baseline_of.get(&d) else {
            quarantined.push(d);
            continue;
        };
        // A crashed coordinator may have left this device with its wave
        // flip armed but never materialized; settle it so the rollback's
        // prepare doesn't see a reconfiguration in progress.
        if let Some(node) = sim.topo.node_mut(d) {
            node.device.tick(t);
        }
        // Remedial: no health gate — a breached or gray device must be
        // rollback-able, or quarantine would be forever.
        match logged_transactional_reconfig(
            sim,
            &[(d, bundle.clone())],
            t,
            fabric,
            policy,
            log,
            None,
            None,
            None,
        ) {
            Ok(rep) => {
                messages += rep.messages;
                let mut done = rep.finished_at;
                if let Some(commit_at) = rep.commit_at {
                    if commit_at > done {
                        done = commit_at;
                    }
                }
                if done > t {
                    t = done;
                }
                if rep.outcome == LoggedTxnOutcome::Committed {
                    rolled_back.push(d);
                } else {
                    quarantined.push(d);
                }
            }
            Err(_) => quarantined.push(d),
        }
    }
    // Materialize the rollback flips so digest probes see them.
    t += heartbeat_period();
    for &d in devices {
        if let Some(node) = sim.topo.node_mut(d) {
            node.device.tick(t);
        }
    }
    (t, messages, rolled_back, quarantined)
}

/// Runs a canary rollout of `candidate` over `plan`'s waves.
///
/// `baseline` names each device's pre-rollout bundle (the rollback
/// target); `candidate` names what each device should run afterwards —
/// per-device, so a device-scoped bad build is expressible. Traffic must
/// already be loaded into `sim`; the orchestrator advances simulated
/// time itself (baseline soak, then flip + soak per wave).
///
/// The first `plan.soak` window starting at `now` measures the
/// pre-rollout baseline; every wave's soak is judged against it. Wave
/// transactions are health-gated through `detector` (a degraded device
/// is refused admission → the rollout aborts); rollback transactions are
/// not. `crash`, when set, kills the coordinator at that point,
/// returning [`RolloutOutcome::Crashed`] with the journal exactly as a
/// real death would leave it.
#[allow(clippy::too_many_arguments)]
pub fn run_rollout(
    sim: &mut Simulation,
    plan: &RolloutPlan,
    baseline: &[(NodeId, ProgramBundle)],
    candidate: &[(NodeId, ProgramBundle)],
    now: SimTime,
    fabric: &mut LossyFabric,
    policy: &RetryPolicy,
    log: &mut ReplicatedIntentLog,
    detector: &mut FailureDetector,
    crash: Option<RolloutCrash>,
) -> Result<RolloutReport> {
    let fleet: Vec<NodeId> = plan.waves.iter().flatten().copied().collect();
    let baseline_of: BTreeMap<NodeId, ProgramBundle> = baseline.iter().cloned().collect();
    let candidate_of: BTreeMap<NodeId, ProgramBundle> = candidate.iter().cloned().collect();
    for &d in &fleet {
        if !candidate_of.contains_key(&d) || !baseline_of.contains_key(&d) {
            return Err(FlexError::NotFound(format!(
                "rollout: no baseline/candidate bundle for device {d}"
            )));
        }
    }

    // Pre-rollout baseline soak: establish the SLO reference and give
    // the detector a first judgement of every device.
    let mut degraded_seen: Vec<NodeId> = Vec::new();
    let baseline_window = (now, now + plan.soak);
    soak_with_heartbeats(sim, &fleet, detector, baseline_window.0, baseline_window.1);
    note_degraded(detector, baseline_window.1, &mut degraded_seen);
    let baseline_stats = sim.metrics.window_stats(baseline_window.0, baseline_window.1);
    let old_digest: BTreeMap<NodeId, u64> = fleet
        .iter()
        .filter_map(|&d| sim.topo.node(d).map(|n| (d, n.device.config_digest())))
        .collect();

    let rollout = log.next_txn_id();
    log.append(&IntentRecord::RolloutStarted {
        rollout,
        waves: plan
            .waves
            .iter()
            .map(|w| w.iter().map(|n| n.0 as u64).collect())
            .collect(),
    })?;

    let mut t = baseline_window.1;
    let mut messages = 0u32;
    let mut wave_txns: Vec<u64> = Vec::new();
    let mut deltas: Vec<(u32, WindowDelta)> = Vec::new();
    let mut flipped: BTreeSet<NodeId> = BTreeSet::new();
    let mut flip_order: Vec<NodeId> = Vec::new();
    let mut new_digest: BTreeMap<NodeId, u64> = BTreeMap::new();
    let mut breach: Option<SloBreach> = None;

    for (i, wave) in plan.waves.iter().enumerate() {
        let wave_no = (i + 1) as u32;
        let targets: Vec<(NodeId, ProgramBundle)> = wave
            .iter()
            .map(|d| (*d, candidate_of[d].clone()))
            .collect();
        let rep = match logged_transactional_reconfig(
            sim, &targets, t, fabric, policy, log, None, None,
            Some(detector),
        ) {
            Ok(rep) => rep,
            Err(FlexError::DegradedDevice { node, .. }) => {
                // Health-gated admission refused the wave: halt and roll
                // back what already flipped.
                breach = Some(SloBreach {
                    wave: wave_no,
                    guard: "admission".into(),
                    observed: node,
                    threshold: 0,
                });
                break;
            }
            Err(e) => return Err(e),
        };
        messages += rep.messages;
        if rep.finished_at > t {
            t = rep.finished_at;
        }
        if rep.outcome != LoggedTxnOutcome::Committed {
            // The wave's own 2PC aborted (and rolled its devices back):
            // treat as a breach of the rollout, not a silent retry.
            breach = Some(SloBreach {
                wave: wave_no,
                guard: "wave-txn".into(),
                observed: rep.txn,
                threshold: 0,
            });
            break;
        }
        log.append(&IntentRecord::WaveCommitted {
            rollout,
            wave: wave_no,
            txn: rep.txn,
        })?;
        wave_txns.push(rep.txn);
        flipped.extend(wave.iter().copied());
        flip_order.extend(wave.iter().copied());
        if crash == Some(RolloutCrash::AfterWaveCommit(wave_no)) {
            return Ok(RolloutReport {
                rollout,
                outcome: RolloutOutcome::Crashed(RolloutCrash::AfterWaveCommit(wave_no)),
                waves_committed: wave_no,
                wave_txns,
                baseline: baseline_stats,
                deltas,
                breach: None,
                degraded_seen,
                rollback_latency: None,
                rolled_back: Vec::new(),
                quarantined: Vec::new(),
                messages,
                finished_at: t,
            });
        }

        // Let the aligned flip land, then record the wave's new digests.
        let mut settle = rep.commit_at.unwrap_or(t);
        if t > settle {
            settle = t;
        }
        settle += heartbeat_period();
        sim.run(settle);
        for &d in wave {
            if let Some(node) = sim.topo.node_mut(d) {
                node.device.tick(settle);
                new_digest.insert(d, node.device.config_digest());
            }
        }
        // Per-device counter snapshot: the drop slope is judged over
        // this soak alone, not device lifetime.
        let pre_soak: BTreeMap<NodeId, (u64, u64)> = flipped
            .iter()
            .filter_map(|&d| {
                sim.topo.node(d).map(|n| {
                    let s = n.device.stats();
                    (d, (s.processed, s.dropped))
                })
            })
            .collect();

        let soak_window = (settle, settle + plan.soak);
        soak_with_heartbeats(sim, &fleet, detector, soak_window.0, soak_window.1);
        note_degraded(detector, soak_window.1, &mut degraded_seen);
        t = soak_window.1;

        let (delta, verdict) = evaluate_guards(
            sim,
            &fleet,
            &flipped,
            &old_digest,
            &new_digest,
            &pre_soak,
            &plan.guards,
            baseline_window,
            soak_window,
        );
        deltas.push((wave_no, delta));
        if let Some((guard, observed, threshold)) = verdict {
            breach = Some(SloBreach {
                wave: wave_no,
                guard: guard.into(),
                observed,
                threshold,
            });
            break;
        }
    }

    let waves_committed = wave_txns.len() as u32;
    let Some(breach) = breach else {
        // Every wave soaked clean.
        log.append(&IntentRecord::RolloutCompleted { rollout })?;
        return Ok(RolloutReport {
            rollout,
            outcome: RolloutOutcome::Completed,
            waves_committed,
            wave_txns,
            baseline: baseline_stats,
            deltas,
            breach: None,
            degraded_seen,
            rollback_latency: None,
            rolled_back: Vec::new(),
            quarantined: Vec::new(),
            messages,
            finished_at: t,
        });
    };

    // Halt: journal the verdict, then unwind every flipped device in
    // reverse flip order.
    log.append(&IntentRecord::RolloutAborted {
        rollout,
        wave: breach.wave,
        guard: breach.guard.clone(),
    })?;
    if crash == Some(RolloutCrash::AfterAbortRecord) {
        return Ok(RolloutReport {
            rollout,
            outcome: RolloutOutcome::Crashed(RolloutCrash::AfterAbortRecord),
            waves_committed,
            wave_txns,
            baseline: baseline_stats,
            deltas,
            breach: Some(breach),
            degraded_seen,
            rollback_latency: None,
            rolled_back: Vec::new(),
            quarantined: Vec::new(),
            messages,
            finished_at: t,
        });
    }
    let abort_at = t;
    flip_order.reverse();
    let (t, rb_messages, rolled_back, quarantined) =
        rollback_devices(sim, &flip_order, &baseline_of, t, fabric, policy, log);
    messages += rb_messages;
    log.append(&IntentRecord::RolledBack { rollout })?;
    note_degraded(detector, t, &mut degraded_seen);

    Ok(RolloutReport {
        rollout,
        outcome: RolloutOutcome::RolledBack {
            wave: breach.wave,
            guard: breach.guard.clone(),
        },
        waves_committed,
        wave_txns,
        baseline: baseline_stats,
        deltas,
        breach: Some(breach),
        degraded_seen,
        rollback_latency: Some(t.saturating_since(abort_at)),
        rolled_back,
        quarantined,
        messages,
        finished_at: t,
    })
}

/// [`run_rollout`] behind the overload governor's rollout gate: while
/// the controller is [`Degraded`](crate::core::ControllerMode::Degraded),
/// *new* rollouts are refused up front with the retryable
/// [`FlexError::Backpressure`] — before any baseline soak, journal
/// record, or fabric traffic. Rollouts are the one work class that is
/// pure optional load during an overload incident: nothing breaks by
/// starting them later, and every wave they would push contends with the
/// resyncs that end the incident.
#[allow(clippy::too_many_arguments)]
pub fn run_rollout_governed(
    governor: &crate::core::OverloadGovernor,
    sim: &mut Simulation,
    plan: &RolloutPlan,
    baseline: &[(NodeId, ProgramBundle)],
    candidate: &[(NodeId, ProgramBundle)],
    now: SimTime,
    fabric: &mut LossyFabric,
    policy: &RetryPolicy,
    log: &mut ReplicatedIntentLog,
    detector: &mut FailureDetector,
    crash: Option<RolloutCrash>,
) -> Result<RolloutReport> {
    governor.admit_rollout()?;
    run_rollout(
        sim, plan, baseline, candidate, now, fabric, policy, log, detector, crash,
    )
}

/// One rollout obligation the successor coordinator settled.
#[derive(Debug, Clone)]
pub struct RolloutResume {
    /// The rollout id.
    pub rollout: u64,
    /// Whether this pass had to journal the abort itself (the old
    /// coordinator died mid-rollout with no verdict on record).
    pub aborted_now: bool,
    /// Devices driven back to their pre-rollout program.
    pub rolled_back: Vec<NodeId>,
    /// Devices whose rollback failed — left on the candidate, by name.
    pub quarantined: Vec<NodeId>,
    /// Control messages sent.
    pub messages: u32,
    /// When this obligation was settled.
    pub finished_at: SimTime,
}

/// Scans the intent log for rollouts the dead coordinator left
/// unfinished and settles them.
///
/// Two obligations exist: a rollout with waves committed but no terminal
/// record (the coordinator died mid-soak — the candidate is unproven, so
/// the conservative resolution is abort + rollback), and a rollout whose
/// `RolloutAborted` is on record but whose `RolledBack` is not (the
/// rollback itself is owed). Both end with every flipped device driven
/// back to the `baselines` directory's bundle and a terminal
/// `RolledBack` record. Individual wave *transactions* left in doubt are
/// [`crate::recovery::recover`]'s job and must be resolved first.
///
/// Idempotent: a second pass finds only terminal rollouts and does
/// nothing.
pub fn resume_rollouts(
    sim: &mut Simulation,
    log: &mut ReplicatedIntentLog,
    baselines: &RolloutDirectory,
    now: SimTime,
    fabric: &mut LossyFabric,
    policy: &RetryPolicy,
) -> Result<Vec<RolloutResume>> {
    struct State {
        waves: Vec<Vec<u64>>,
        committed: u32,
        aborted: bool,
        terminal: bool,
    }
    let mut states: BTreeMap<u64, State> = BTreeMap::new();
    for rec in log.records()? {
        match rec {
            IntentRecord::RolloutStarted { rollout, waves } => {
                states.insert(
                    rollout,
                    State {
                        waves,
                        committed: 0,
                        aborted: false,
                        terminal: false,
                    },
                );
            }
            IntentRecord::WaveCommitted { rollout, wave, .. } => {
                if let Some(s) = states.get_mut(&rollout) {
                    if wave > s.committed {
                        s.committed = wave;
                    }
                }
            }
            IntentRecord::RolloutAborted { rollout, .. } => {
                if let Some(s) = states.get_mut(&rollout) {
                    s.aborted = true;
                }
            }
            IntentRecord::RolloutCompleted { rollout }
            | IntentRecord::RolledBack { rollout } => {
                if let Some(s) = states.get_mut(&rollout) {
                    s.terminal = true;
                }
            }
            _ => {}
        }
    }

    let mut resumed = Vec::new();
    let mut t = now;
    for (rollout, state) in states {
        if state.terminal {
            continue;
        }
        let aborted_now = !state.aborted;
        if aborted_now {
            // No verdict ever journaled: the candidate died unproven.
            log.append(&IntentRecord::RolloutAborted {
                rollout,
                wave: state.committed,
                guard: "coordinator-failover".into(),
            })?;
        }
        let flipped: Vec<NodeId> = state
            .waves
            .iter()
            .take(state.committed as usize)
            .flatten()
            .rev()
            .map(|&id| NodeId(id as u32))
            .collect();
        let baseline_of: BTreeMap<NodeId, ProgramBundle> = baselines
            .get(&rollout)
            .map(|ts| ts.iter().cloned().collect())
            .unwrap_or_default();
        let (done, messages, rolled_back, quarantined) =
            rollback_devices(sim, &flipped, &baseline_of, t, fabric, policy, log);
        t = done;
        log.append(&IntentRecord::RolledBack { rollout })?;
        resumed.push(RolloutResume {
            rollout,
            aborted_now,
            rolled_back,
            quarantined,
            messages,
            finished_at: t,
        });
    }
    Ok(resumed)
}

// ---------------------------------------------------------------------
// The seeded chaos harness (experiment E15).
// ---------------------------------------------------------------------

/// Controller nodes in the scenario's Raft cluster.
const CONTROLLERS: usize = 3;

/// Lanes (and therefore switches) in the canary fleet.
const LANES: usize = 8;

/// Packets per second per lane.
const LANE_PPS: u64 = 500;

/// Everything one canary chaos run observed.
#[derive(Debug, Clone)]
pub struct CanaryReport {
    /// The schedule the seed expanded to.
    pub schedule: RolloutSchedule,
    /// The orchestrator's account.
    pub rollout: RolloutReport,
    /// Packets delivered over the whole scenario.
    pub delivered: u64,
    /// Packets lost over the whole scenario.
    pub lost: u64,
    /// Every invariant violation observed (empty = the run passed).
    pub violations: Vec<String>,
}

impl CanaryReport {
    /// Whether the run upheld every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn bundle(src: &str) -> ProgramBundle {
    let file = parse_source(src).expect("canary program parses");
    ProgramBundle {
        headers: file.headers,
        program: file.programs.into_iter().next().expect("one program"),
    }
}

/// The pre-rollout program: plain forwarding down the lane.
fn lane_base() -> ProgramBundle {
    bundle("program lane kind any { handler ingress(pkt) { forward(1); } }")
}

/// The correct candidate: forwarding plus a counter — a real diff with
/// negligible cost.
fn lane_good() -> ProgramBundle {
    bundle(
        "program lane kind any {
           counter upgraded;
           handler ingress(pkt) { count(upgraded); forward(1); }
         }",
    )
}

/// Uniform drop: the loudest regression — every packet dies.
fn lane_drop_all() -> ProgramBundle {
    bundle("program lane kind any { handler ingress(pkt) { drop(); } }")
}

/// Latency inflation: ~2 µs of busy work per packet, zero loss.
fn lane_latency() -> ProgramBundle {
    bundle(
        "program lane kind any {
           register burn : u64[1];
           handler ingress(pkt) {
             repeat (64) {
               repeat (8) { reg_write(burn, 0, reg_read(burn, 0) + 1); }
             }
             forward(1);
           }
         }",
    )
}

/// Slow burn: a stateful 1-in-8 drop — per-device slope 12.5%, under
/// the 20% gray threshold, so only widening fleet exposure reveals it.
fn lane_slow_burn() -> ProgramBundle {
    bundle(
        "program lane kind any {
           counter seen;
           handler ingress(pkt) {
             count(seen);
             if (counter_read(seen) % 8 == 0) { drop(); }
             forward(1);
           }
         }",
    )
}

/// The candidate bundle each device receives under `schedule`.
fn candidate_targets(
    schedule: &RolloutSchedule,
    switches: &[NodeId],
) -> Vec<(NodeId, ProgramBundle)> {
    switches
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            let bundle = match schedule.fault {
                RolloutFault::Clean => lane_good(),
                RolloutFault::UniformDrop => lane_drop_all(),
                RolloutFault::GrayDrop => {
                    if Some(i) == schedule.gray_victim {
                        lane_drop_all()
                    } else {
                        lane_good()
                    }
                }
                RolloutFault::LatencyInflation => lane_latency(),
                RolloutFault::SlowBurn => lane_slow_burn(),
            };
            (d, bundle)
        })
        .collect()
}

/// The wave (1-based) in which fleet index `i` flips under the canonical
/// 8-device plan (waves of 1, 1, 2, 4).
fn wave_of_index(i: usize) -> u32 {
    match i {
        0 => 1,
        1 => 2,
        2 | 3 => 3,
        _ => 4,
    }
}

/// Runs the full canary scenario for one seed.
///
/// Errors only on harness plumbing failures; protocol misbehaviour is
/// reported as violations, so sweeps keep going and count.
pub fn run_canary_seed(seed: u64) -> Result<CanaryReport> {
    // -- setup: 8 parallel lanes, the baseline program everywhere -------
    let (topo, switches, lanes) = Topology::parallel_lanes(LANES);
    let mut sim = Simulation::new(topo);
    for &d in &switches {
        sim.topo
            .node_mut(d)
            .expect("lane switch exists")
            .device
            .install(lane_base())
            .map_err(|e| FlexError::Sim(format!("seed {seed}: install base on {d}: {e}")))?;
    }
    let schedule = RolloutSchedule::from_seed(seed, switches.len());
    let mut log = ReplicatedIntentLog::new(CONTROLLERS, schedule.raft_seed)?;
    let mut fabric = LossyFabric::new(schedule.fabric_loss, seed);
    let policy = RetryPolicy {
        max_attempts: 16,
        deadline: SimDuration::from_secs(60),
        ..RetryPolicy::default()
    };
    let mut detector = FailureDetector::default();
    let mut violations: Vec<String> = Vec::new();

    // Live traffic over the whole scenario: one CBR flow per lane.
    let flow_start = SimTime::from_millis(500);
    let flow_end = SimTime::from_secs(8);
    let flows: Vec<FlowSpec> = lanes
        .iter()
        .map(|&(src, dst)| {
            FlowSpec::udp_cbr(
                src,
                dst,
                LANE_PPS,
                flow_start,
                flow_end.saturating_since(flow_start),
            )
        })
        .collect();
    sim.load(generate(&flows, seed));
    sim.run(SimTime::from_secs(1));

    // -- the rollout -----------------------------------------------------
    let plan = RolloutPlan::canonical(
        &switches,
        SimDuration::from_secs(1),
        SloGuards::default(),
    );
    let baseline: Vec<(NodeId, ProgramBundle)> =
        switches.iter().map(|&d| (d, lane_base())).collect();
    let candidate = candidate_targets(&schedule, &switches);
    let old_digests: BTreeMap<NodeId, u64> = switches
        .iter()
        .map(|&d| (d, sim.topo.node(d).expect("switch").device.config_digest()))
        .collect();
    let report = run_rollout(
        &mut sim,
        &plan,
        &baseline,
        &candidate,
        SimTime::from_secs(1),
        &mut fabric,
        &policy,
        &mut log,
        &mut detector,
        None,
    )?;

    // Post-rollout convergence window, then drain the remaining traffic.
    let post_from = report.finished_at + SimDuration::from_millis(300);
    sim.run_to_completion();

    // -- invariants ------------------------------------------------------
    let total_waves = plan.waves.len() as u32;
    let flipped: BTreeSet<NodeId> = plan
        .waves
        .iter()
        .take(report.waves_committed as usize)
        .flatten()
        .copied()
        .collect();

    match schedule.fault {
        RolloutFault::Clean => {
            if report.outcome != RolloutOutcome::Completed {
                violations.push(format!(
                    "clean candidate did not complete: {:?} (false positive)",
                    report.outcome
                ));
            }
            if sim.metrics.total_lost() != 0 {
                violations.push(format!(
                    "clean rollout lost {} packets (must be zero)",
                    sim.metrics.total_lost()
                ));
            }
        }
        fault => {
            let (guard, wave) = match (&report.outcome, &report.breach) {
                (RolloutOutcome::RolledBack { .. }, Some(b)) => {
                    (b.guard.clone(), b.wave)
                }
                other => {
                    violations.push(format!(
                        "{} candidate was not rolled back: {other:?}",
                        fault.label()
                    ));
                    (String::new(), 0)
                }
            };
            if report.waves_committed >= total_waves {
                violations.push(format!(
                    "{} breached only after full-fleet exposure ({} waves)",
                    fault.label(),
                    report.waves_committed
                ));
            }
            // Each fault class must trip its designed guard in its
            // designed wave — detection before the blast radius grows.
            let expect: Option<(&str, u32)> = match fault {
                RolloutFault::UniformDrop => Some(("drop-slope", 1)),
                RolloutFault::LatencyInflation => Some(("p99-delta", 1)),
                RolloutFault::SlowBurn => Some(("loss-delta", 2)),
                RolloutFault::GrayDrop => {
                    let v = schedule.gray_victim.expect("gray runs pick a victim");
                    if !report.degraded_seen.contains(&switches[v]) {
                        violations.push(format!(
                            "gray victim {} was never graded Degraded",
                            switches[v]
                        ));
                    }
                    Some(("drop-slope", wave_of_index(v)))
                }
                RolloutFault::Clean => None,
            };
            if let Some((want_guard, want_wave)) = expect {
                if !guard.is_empty() && (guard != want_guard || wave != want_wave) {
                    violations.push(format!(
                        "{} tripped {guard} in wave {wave}, designed for {want_guard} in wave {want_wave}",
                        fault.label()
                    ));
                }
            }
            // Blast radius: every lost packet was dropped by a flipped
            // device; untouched waves never pay.
            let mut flipped_drops = 0u64;
            for &d in &switches {
                let dropped = sim.topo.node(d).expect("switch").device.stats().dropped;
                if flipped.contains(&d) {
                    flipped_drops += dropped;
                } else if dropped > 0 {
                    violations.push(format!(
                        "unflipped device {d} dropped {dropped} packets: blast radius leaked"
                    ));
                }
            }
            if sim.metrics.total_lost() != flipped_drops {
                violations.push(format!(
                    "{} packets lost but flipped devices only account for {}",
                    sim.metrics.total_lost(),
                    flipped_drops
                ));
            }
            if !report.quarantined.is_empty() {
                violations.push(format!(
                    "no device crashed, yet rollback quarantined {:?}",
                    report.quarantined
                ));
            }
            // Rollback converges: every device is digest-equal to its
            // pre-rollout baseline again.
            for &d in &switches {
                let got = sim.topo.node(d).expect("switch").device.config_digest();
                if Some(&got) != old_digests.get(&d) {
                    violations.push(format!(
                        "{d} not back on the baseline digest after rollback"
                    ));
                }
            }
            // And the network is clean again: the post-rollback window
            // pays no loss and its p99 is back at the baseline.
            let post = sim.metrics.window_stats(post_from, flow_end);
            if post.attempts() == 0 {
                violations.push("no post-rollback traffic observed".into());
            } else if post.lost > 0 {
                violations.push(format!(
                    "post-rollback window still losing: {}/{} packets",
                    post.lost,
                    post.attempts()
                ));
            }
            let post_delta = sim
                .metrics
                .window_delta((SimTime::from_secs(1), SimTime::from_secs(2)), (post_from, flow_end));
            if post_delta.p99_delta_ns.unsigned_abs() > plan.guards.p99_delta_ns {
                violations.push(format!(
                    "post-rollback p99 off baseline by {} ns",
                    post_delta.p99_delta_ns
                ));
            }
        }
    }

    // Journal coherence: the rollout's records tell the same story.
    let records = log.records()?;
    let mut started = 0usize;
    let mut waves_on_record = 0u32;
    let mut terminal: Vec<&'static str> = Vec::new();
    for rec in &records {
        match rec {
            IntentRecord::RolloutStarted { rollout, .. } if *rollout == report.rollout => {
                started += 1;
            }
            IntentRecord::WaveCommitted { rollout, .. } if *rollout == report.rollout => {
                waves_on_record += 1;
            }
            IntentRecord::RolloutCompleted { rollout } if *rollout == report.rollout => {
                terminal.push("completed");
            }
            IntentRecord::RolledBack { rollout } if *rollout == report.rollout => {
                terminal.push("rolled-back");
            }
            _ => {}
        }
    }
    if started != 1 {
        violations.push(format!("{started} RolloutStarted records (want 1)"));
    }
    if waves_on_record != report.waves_committed {
        violations.push(format!(
            "journal has {waves_on_record} committed waves, report says {}",
            report.waves_committed
        ));
    }
    let want_terminal = match report.outcome {
        RolloutOutcome::Completed => "completed",
        RolloutOutcome::RolledBack { .. } => "rolled-back",
        RolloutOutcome::Crashed(_) => "",
    };
    if terminal != vec![want_terminal] {
        violations.push(format!(
            "terminal records {terminal:?}, want [{want_terminal}]"
        ));
    }

    Ok(CanaryReport {
        schedule,
        rollout: report,
        delivered: sim.metrics.delivered,
        lost: sim.metrics.total_lost(),
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexnet_sim::rollout_sweep;

    /// A reliable-control-plane environment over `n` lanes, with the
    /// baseline program installed and traffic loaded.
    fn lanes_env(
        n: usize,
        seconds: u64,
    ) -> (Simulation, Vec<NodeId>, ReplicatedIntentLog, LossyFabric, RetryPolicy) {
        let (topo, switches, lanes) = Topology::parallel_lanes(n);
        let mut sim = Simulation::new(topo);
        for &d in &switches {
            sim.topo
                .node_mut(d)
                .unwrap()
                .device
                .install(lane_base())
                .unwrap();
        }
        let flows: Vec<FlowSpec> = lanes
            .iter()
            .map(|&(src, dst)| {
                FlowSpec::udp_cbr(
                    src,
                    dst,
                    LANE_PPS,
                    SimTime::from_millis(500),
                    SimDuration::from_millis(seconds * 1000 - 500),
                )
            })
            .collect();
        sim.load(generate(&flows, 7));
        let log = ReplicatedIntentLog::new(3, 41).unwrap();
        let fabric = LossyFabric::reliable();
        let policy = RetryPolicy::default();
        (sim, switches, log, fabric, policy)
    }

    fn pairs(switches: &[NodeId], bundle: ProgramBundle) -> Vec<(NodeId, ProgramBundle)> {
        switches.iter().map(|&d| (d, bundle.clone())).collect()
    }

    #[test]
    fn degraded_controller_pauses_new_rollouts_up_front() {
        use crate::core::{ControllerMode, OverloadGovernor};
        let (mut sim, switches, mut log, mut fabric, policy) = lanes_env(4, 4);
        let plan =
            RolloutPlan::canonical(&switches, SimDuration::from_millis(300), SloGuards::default());
        let mut detector = FailureDetector::default();
        let mut gov = OverloadGovernor::new(
            2,
            SimDuration::from_millis(100),
            SimDuration::from_millis(200),
        );
        gov.observe_sheds(SimTime::from_millis(10), 2);
        assert_eq!(gov.mode(), ControllerMode::Degraded);
        let journal_len = log.records().unwrap().len();
        let err = run_rollout_governed(
            &gov,
            &mut sim,
            &plan,
            &pairs(&switches, lane_base()),
            &pairs(&switches, lane_good()),
            SimTime::from_secs(1),
            &mut fabric,
            &policy,
            &mut log,
            &mut detector,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, FlexError::Backpressure { .. }), "{err}");
        assert!(err.is_retryable(), "paused, not cancelled");
        assert_eq!(
            log.records().unwrap().len(),
            journal_len,
            "refused before any journal record or fabric traffic"
        );
        // Once the governor recovers, the same rollout is admitted.
        gov.observe_sheds(SimTime::from_millis(400), 2);
        assert_eq!(gov.mode(), ControllerMode::Normal);
        let report = run_rollout_governed(
            &gov,
            &mut sim,
            &plan,
            &pairs(&switches, lane_base()),
            &pairs(&switches, lane_good()),
            SimTime::from_secs(1),
            &mut fabric,
            &policy,
            &mut log,
            &mut detector,
            None,
        )
        .unwrap();
        assert_eq!(report.outcome, RolloutOutcome::Completed);
    }

    #[test]
    fn canonical_plan_doubles_exposure() {
        let fleet: Vec<NodeId> = (0..8).map(NodeId).collect();
        let plan =
            RolloutPlan::canonical(&fleet, SimDuration::from_secs(1), SloGuards::default());
        let sizes: Vec<usize> = plan.waves.iter().map(Vec::len).collect();
        assert_eq!(sizes, vec![1, 1, 2, 4]);
        let flat: Vec<NodeId> = plan.waves.iter().flatten().copied().collect();
        assert_eq!(flat, fleet, "every device flips exactly once");
        let tiny = RolloutPlan::canonical(&fleet[..3], SimDuration::from_secs(1), SloGuards::default());
        assert_eq!(tiny.waves.iter().map(Vec::len).collect::<Vec<_>>(), vec![1, 1, 1]);
    }

    #[test]
    fn clean_candidate_completes_every_wave_with_zero_loss() {
        let report = run_canary_seed(0).unwrap();
        assert_eq!(report.schedule.fault, RolloutFault::Clean);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.rollout.outcome, RolloutOutcome::Completed);
        assert_eq!(report.rollout.waves_committed, 4);
        assert_eq!(report.lost, 0);
        assert!(report.rollout.breach.is_none());
    }

    #[test]
    fn uniform_drop_is_caught_in_wave_one() {
        let report = run_canary_seed(1).unwrap();
        assert_eq!(report.schedule.fault, RolloutFault::UniformDrop);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.rollout.waves_committed, 1, "one canary, not the fleet");
        let breach = report.rollout.breach.as_ref().unwrap();
        assert_eq!(breach.guard, "drop-slope");
        assert!(breach.observed >= 200_000, "a full drop: {}", breach.observed);
        assert!(report.rollout.rollback_latency.unwrap() > SimDuration::ZERO);
    }

    #[test]
    fn gray_victim_is_graded_degraded_and_never_reaches_the_fleet() {
        let report = run_canary_seed(2).unwrap();
        assert_eq!(report.schedule.fault, RolloutFault::GrayDrop);
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert!(report.rollout.waves_committed < 4);
        assert!(!report.rollout.degraded_seen.is_empty());
    }

    #[test]
    fn latency_inflation_trips_the_p99_guard_without_losing_a_packet() {
        let report = run_canary_seed(3).unwrap();
        assert_eq!(report.schedule.fault, RolloutFault::LatencyInflation);
        assert!(report.passed(), "violations: {:?}", report.violations);
        let breach = report.rollout.breach.as_ref().unwrap();
        assert_eq!(breach.guard, "p99-delta");
        assert_eq!(report.lost, 0, "inflation loses nothing; the guard still fires");
    }

    #[test]
    fn slow_burn_breaches_only_as_waves_widen_exposure() {
        let report = run_canary_seed(4).unwrap();
        assert_eq!(report.schedule.fault, RolloutFault::SlowBurn);
        assert!(report.passed(), "violations: {:?}", report.violations);
        // Wave 1's exposure (1/8 of the fleet at a 12.5% device rate) is
        // under the 2% budget; wave 2's is over: a multi-wave abort.
        assert_eq!(report.rollout.waves_committed, 2);
        assert_eq!(report.rollout.rolled_back.len(), 2);
        let lat = report.rollout.rollback_latency.unwrap();
        assert!(lat > SimDuration::ZERO, "two waves of rollback cost RTTs");
    }

    #[test]
    fn canary_runs_are_deterministic() {
        let a = run_canary_seed(9).unwrap();
        let b = run_canary_seed(9).unwrap();
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.lost, b.lost);
        assert_eq!(a.rollout.waves_committed, b.rollout.waves_committed);
    }

    #[test]
    fn degraded_device_is_excluded_from_wave_admission() {
        // Lane 1's device is gray from the start: its *baseline* program
        // already drops everything, so the baseline soak grades it
        // Degraded. The rollout must refuse the wave containing it and
        // roll wave 1 back — the candidate never reaches a sick device.
        let (mut sim, switches, mut log, mut fabric, policy) = lanes_env(4, 8);
        sim.topo
            .node_mut(switches[1])
            .unwrap()
            .device
            .install(lane_drop_all())
            .unwrap();
        let mut baseline = pairs(&switches, lane_base());
        baseline[1].1 = lane_drop_all();
        let candidate = pairs(&switches, lane_good());
        let plan = RolloutPlan::canonical(
            &switches,
            SimDuration::from_secs(1),
            SloGuards::default(),
        );
        let mut detector = FailureDetector::default();
        let report = run_rollout(
            &mut sim,
            &plan,
            &baseline,
            &candidate,
            SimTime::from_secs(1),
            &mut fabric,
            &policy,
            &mut log,
            &mut detector,
            None,
        )
        .unwrap();
        assert_eq!(
            report.outcome,
            RolloutOutcome::RolledBack {
                wave: 2,
                guard: "admission".into()
            },
            "the sick device sits in wave 2"
        );
        assert!(report.degraded_seen.contains(&switches[1]));
        assert_eq!(report.rolled_back, vec![switches[0]], "wave 1 unwound");
        // Wave 1's device is back on the baseline image.
        assert_eq!(
            sim.topo.node(switches[0]).unwrap().device.program().unwrap().bundle,
            lane_base()
        );
    }

    #[test]
    fn failed_rollback_quarantines_the_device_not_silently_diverges() {
        // A uniform-drop rollout breaches in wave 1; the coordinator dies
        // right after journaling the abort. Before the successor resumes,
        // the flipped device crashes — its rollback transaction cannot
        // prepare. It must come out *quarantined by name*, while the log
        // still closes with RolledBack.
        let (mut sim, switches, mut log, mut fabric, policy) = lanes_env(4, 8);
        let baseline = pairs(&switches, lane_base());
        let candidate = pairs(&switches, lane_drop_all());
        let plan = RolloutPlan::canonical(
            &switches,
            SimDuration::from_secs(1),
            SloGuards::default(),
        );
        let mut detector = FailureDetector::default();
        let report = run_rollout(
            &mut sim,
            &plan,
            &baseline,
            &candidate,
            SimTime::from_secs(1),
            &mut fabric,
            &policy,
            &mut log,
            &mut detector,
            Some(RolloutCrash::AfterAbortRecord),
        )
        .unwrap();
        assert_eq!(
            report.outcome,
            RolloutOutcome::Crashed(RolloutCrash::AfterAbortRecord)
        );
        assert_eq!(report.waves_committed, 1);

        // Failover; the flipped device dies before the rollback reaches it.
        log.kill_leader().unwrap();
        log.elect().unwrap();
        sim.topo
            .node_mut(switches[0])
            .unwrap()
            .device
            .crash(report.finished_at);
        let mut directory = RolloutDirectory::new();
        directory.insert(report.rollout, baseline.clone());
        let resumed = resume_rollouts(
            &mut sim,
            &mut log,
            &directory,
            report.finished_at + SimDuration::from_secs(1),
            &mut fabric,
            &policy,
        )
        .unwrap();
        assert_eq!(resumed.len(), 1);
        assert!(!resumed[0].aborted_now, "the abort was already on record");
        assert_eq!(
            resumed[0].quarantined,
            vec![switches[0]],
            "the dead device is named, not silently diverged"
        );
        assert!(resumed[0].rolled_back.is_empty(), "nothing else had flipped");
        // The log is terminal; a second resume pass is a no-op.
        let again = resume_rollouts(
            &mut sim,
            &mut log,
            &directory,
            resumed[0].finished_at,
            &mut fabric,
            &policy,
        )
        .unwrap();
        assert!(again.is_empty(), "resume is idempotent");
    }

    #[test]
    fn failed_over_coordinator_rolls_back_an_unproven_rollout() {
        // The coordinator dies right after wave 2's commit record, with
        // no verdict journaled. The successor must conservatively abort
        // and drive both flipped devices back to the baseline.
        let (mut sim, switches, mut log, mut fabric, policy) = lanes_env(4, 8);
        let baseline = pairs(&switches, lane_base());
        let candidate = pairs(&switches, lane_good());
        let plan = RolloutPlan::canonical(
            &switches,
            SimDuration::from_secs(1),
            SloGuards::default(),
        );
        let mut detector = FailureDetector::default();
        let report = run_rollout(
            &mut sim,
            &plan,
            &baseline,
            &candidate,
            SimTime::from_secs(1),
            &mut fabric,
            &policy,
            &mut log,
            &mut detector,
            Some(RolloutCrash::AfterWaveCommit(2)),
        )
        .unwrap();
        assert_eq!(report.waves_committed, 2);

        log.kill_leader().unwrap();
        log.elect().unwrap();
        let mut directory = RolloutDirectory::new();
        directory.insert(report.rollout, baseline.clone());
        let resumed = resume_rollouts(
            &mut sim,
            &mut log,
            &directory,
            report.finished_at + SimDuration::from_secs(1),
            &mut fabric,
            &policy,
        )
        .unwrap();
        assert_eq!(resumed.len(), 1);
        assert!(resumed[0].aborted_now, "the successor journals the verdict");
        assert_eq!(
            resumed[0].rolled_back,
            vec![switches[1], switches[0]],
            "reverse flip order"
        );
        assert!(resumed[0].quarantined.is_empty());
        for &d in &switches[..2] {
            assert_eq!(
                sim.topo.node(d).unwrap().device.program().unwrap().bundle,
                lane_base(),
                "{d} back on the baseline"
            );
        }
        // The journal closed with an abort + rollback pair.
        let records = log.records().unwrap();
        assert!(records.iter().any(|r| matches!(
            r,
            IntentRecord::RolloutAborted { rollout, guard, .. }
                if *rollout == report.rollout && guard == "coordinator-failover"
        )));
        assert!(records
            .iter()
            .any(|r| matches!(r, IntentRecord::RolledBack { rollout } if *rollout == report.rollout)));
    }

    #[test]
    fn every_fault_class_is_caught_before_full_fleet_exposure() {
        // One contiguous block of 5 seeds covers every fault class.
        for schedule in rollout_sweep(10, 5, LANES) {
            let report = run_canary_seed(schedule.seed).unwrap();
            assert!(
                report.passed(),
                "seed {} ({}) violations: {:?}",
                schedule.seed,
                schedule.fault.label(),
                report.violations
            );
        }
    }
}
