//! Retries with exponential backoff and deadlines over a lossy control
//! fabric.
//!
//! The paper's controller "pilots" the network over the same fabric it
//! reprograms, so control messages (dRPC invocations, reconfiguration
//! commands) can be lost mid-flight. This module models that channel: a
//! seeded [`LossyFabric`] drops each message with a fixed probability, and
//! [`with_retry`] drives an idempotent operation through it under a
//! [`RetryPolicy`] — exponential backoff between attempts, a hard
//! deadline, and simulated-time accounting so experiments can measure how
//! long recovery actually took.

use crate::drpc::{ServiceRegistry, CONTROLLER_RTT, DRPC_HOP_LATENCY};
use flexnet_types::{FlexError, NodeId, Result, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// How backoff intervals are spread to decorrelate concurrent retriers.
///
/// Pure exponential backoff keeps every caller that failed at the same
/// instant *synchronized*: they all sleep the same `base * m^k` and
/// re-arrive together, turning one burst of failures into a periodic
/// thundering herd. Decorrelated jitter (`sleep = rand(base, prev * 3)`,
/// capped) breaks the alignment — each retrier walks its own randomized
/// schedule, so re-arrivals smear out instead of spiking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Jitter {
    /// Deterministic exponential backoff (the pre-overload behavior;
    /// keeps timing-sensitive callers and tests exact).
    None,
    /// Decorrelated jitter: each backoff is drawn uniformly from
    /// `[base_backoff, prev * 3]`, clamped to `cap`. The draw stream is
    /// seeded from the exchange's start instant, so a retried call is
    /// deterministic in its inputs while *different* calls (different
    /// start times, different destinations) decorrelate.
    Decorrelated {
        /// Upper clamp on any single backoff.
        cap: SimDuration,
    },
}

/// How an operation is retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (including the first).
    pub max_attempts: u32,
    /// Backoff after the first failed attempt.
    pub base_backoff: SimDuration,
    /// Backoff growth factor per attempt.
    pub multiplier: u32,
    /// Give up when the next attempt would start later than this long
    /// after the first.
    pub deadline: SimDuration,
    /// How backoffs are spread across concurrent retriers.
    pub jitter: Jitter,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 8,
            base_backoff: SimDuration::from_millis(1),
            multiplier: 2,
            deadline: SimDuration::from_secs(1),
            jitter: Jitter::None,
        }
    }
}

impl RetryPolicy {
    /// The default policy with decorrelated jitter capped at 100× base —
    /// what every overload-aware caller should use.
    pub fn jittered() -> RetryPolicy {
        let base = RetryPolicy::default();
        RetryPolicy {
            jitter: Jitter::Decorrelated {
                cap: base.base_backoff.saturating_mul(100),
            },
            ..base
        }
    }

    /// The backoff inserted after failed attempt `attempt` (0-based):
    /// `base_backoff * multiplier^attempt`, saturating. This is the
    /// *deterministic* schedule; jittered callers use
    /// [`RetryPolicy::next_backoff`] instead.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        self.base_backoff
            .saturating_mul(self.multiplier.saturating_pow(attempt.min(20)) as u64)
    }

    /// The backoff after failed attempt `attempt`, given the previous
    /// backoff `prev` (ignored by [`Jitter::None`]) and the exchange's
    /// jitter stream `rng`.
    pub fn next_backoff(&self, attempt: u32, prev: SimDuration, rng: &mut StdRng) -> SimDuration {
        match self.jitter {
            Jitter::None => self.backoff(attempt),
            Jitter::Decorrelated { cap } => {
                let base = self.base_backoff.as_nanos().max(1);
                let hi = prev.as_nanos().saturating_mul(3).max(base + 1);
                let drawn = rng.gen_range(base..hi);
                SimDuration::from_nanos(drawn.min(cap.as_nanos().max(base)))
            }
        }
    }
}

/// splitmix64 — decorrelates jitter streams of nearby start instants.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A per-destination retry budget: the storm-suppression layer.
///
/// Every *successful* exchange with a destination earns a fraction of a
/// retry token ([`RetryBudget::ratio_ppm`]); every retry (second and
/// later attempt of an exchange) spends one. When a destination's bucket
/// is empty, further retries to it are refused with the non-retryable
/// [`FlexError::RetryBudgetExhausted`] — first attempts are *never*
/// refused. The effect is the classic retry-budget invariant: sustained
/// retries are capped at `ratio` × the first-attempt success rate, so a
/// retry storm against a struggling destination self-extinguishes
/// instead of amplifying, and the budget refills only as real successes
/// resume.
///
/// Token accounting is integer (millitokens), so budgets are exactly
/// deterministic across platforms.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    /// Millitokens earned per successful exchange (100_000 ppm = 0.1
    /// retries earned per success).
    ratio_ppm: u64,
    /// Bucket cap in millitokens (bounds the burst of retries a long
    /// success streak can bank).
    cap_millitokens: u64,
    /// Fresh destinations start with this many millitokens, so the very
    /// first failure of a healthy destination can still be retried.
    initial_millitokens: u64,
    tokens: BTreeMap<NodeId, u64>,
    /// Retries spent, total (observability).
    pub spent: u64,
    /// Retries refused, total (observability).
    pub refused: u64,
}

impl Default for RetryBudget {
    /// 10% retry ratio, 10-retry cap, 3 retries of initial credit.
    fn default() -> RetryBudget {
        RetryBudget::new(100_000, 10, 3)
    }
}

impl RetryBudget {
    /// A budget earning `ratio_ppm` of a retry per success, capped at
    /// `cap` retries, with `initial` retries of starting credit per
    /// destination.
    pub fn new(ratio_ppm: u64, cap: u64, initial: u64) -> RetryBudget {
        RetryBudget {
            ratio_ppm,
            cap_millitokens: cap.saturating_mul(1000),
            initial_millitokens: initial.saturating_mul(1000).min(cap.saturating_mul(1000)),
            tokens: BTreeMap::new(),
            spent: 0,
            refused: 0,
        }
    }

    /// The configured earn ratio in ppm.
    pub fn ratio_ppm(&self) -> u64 {
        self.ratio_ppm
    }

    /// Whole retry tokens currently available for `dest`.
    pub fn available(&self, dest: NodeId) -> u64 {
        self.tokens
            .get(&dest)
            .copied()
            .unwrap_or(self.initial_millitokens)
            / 1000
    }

    /// Records a successful exchange with `dest`, earning budget.
    pub fn on_success(&mut self, dest: NodeId) {
        let t = self
            .tokens
            .entry(dest)
            .or_insert(self.initial_millitokens);
        *t = (*t + self.ratio_ppm / 1000).min(self.cap_millitokens);
    }

    /// Tries to spend one retry token for `dest`. `false` means the
    /// budget is dry and the retry must not happen.
    pub fn try_spend(&mut self, dest: NodeId) -> bool {
        let t = self
            .tokens
            .entry(dest)
            .or_insert(self.initial_millitokens);
        if *t >= 1000 {
            *t -= 1000;
            self.spent += 1;
            true
        } else {
            self.refused += 1;
            false
        }
    }
}

/// What the adversarial fabric did to one command in flight
/// ([`LossyFabric::deliver_cmd`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Dropped: plain loss, or a severed partition direction.
    Lost,
    /// Arrived exactly once, intact.
    Arrived,
    /// Arrived intact — `extra` additional duplicate copies arrive right
    /// behind it (the receiver's dedup window must absorb them).
    Duplicated {
        /// Number of duplicate copies beyond the first.
        extra: u8,
    },
    /// Arrived with bits flipped in flight; `mask_seed` deterministically
    /// selects which bits (see [`flexnet_dataplane::wire::open_frame`] —
    /// the receiver's checksum rejects the frame before parsing it).
    Corrupted {
        /// Seed for the bit-flip mask applied to the frame.
        mask_seed: u64,
    },
}

/// The seeded adversary riding on a [`LossyFabric`]: per-message
/// corruption, duplication, and bounded reordering.
///
/// Draws from its **own** RNG stream, independently seeded from the
/// fabric's loss stream — enabling the adversary must not perturb a
/// single loss draw, or every pinned seed in E12–E18 would change
/// meaning.
#[derive(Debug, Clone)]
pub struct Adversary {
    /// Probability a delivered command arrives with flipped bits.
    pub corrupt_prob: f64,
    /// Probability a delivered command is duplicated in flight.
    pub dup_prob: f64,
    /// Probability a message is held back and delivered out of order.
    pub reorder_prob: f64,
    /// Maximum messages a held-back message can be overtaken by.
    pub reorder_depth: usize,
    rng: StdRng,
    /// Commands corrupted in flight.
    pub corrupted: u64,
    /// Commands duplicated in flight.
    pub duplicated: u64,
    /// Messages delivered out of order.
    pub reordered: u64,
}

impl Adversary {
    /// An adversary with the given per-message probabilities, drawing
    /// from its own stream seeded by `seed`.
    pub fn new(
        corrupt_prob: f64,
        dup_prob: f64,
        reorder_prob: f64,
        reorder_depth: usize,
        seed: u64,
    ) -> Adversary {
        Adversary {
            corrupt_prob: corrupt_prob.clamp(0.0, 1.0),
            dup_prob: dup_prob.clamp(0.0, 1.0),
            reorder_prob: reorder_prob.clamp(0.0, 1.0),
            reorder_depth,
            rng: StdRng::seed_from_u64(mix(seed ^ 0xAD5E_7ACE_F1A8_0001)),
            corrupted: 0,
            duplicated: 0,
            reordered: 0,
        }
    }
}

/// A message channel that drops each message with probability
/// `drop_prob`, deterministically in its seed.
///
/// Beyond loss, the fabric can be made *adversarial*:
/// [`LossyFabric::enable_adversary`] arms seeded corruption,
/// duplication, and bounded reordering (drawn from a separate RNG stream
/// so the legacy loss stream is untouched), and
/// [`LossyFabric::block_up`]/[`LossyFabric::block_down`] sever one
/// *direction* of a node's control channel — the asymmetric-partition
/// model (A hears B while B never hears A) that symmetric link-state
/// flips cannot express. Partition checks draw no randomness.
#[derive(Debug, Clone)]
pub struct LossyFabric {
    drop_prob: f64,
    rng: StdRng,
    /// Messages that made it through.
    pub delivered: u64,
    /// Messages lost in flight.
    pub dropped: u64,
    /// Nodes whose *up* direction (device → controller: heartbeats,
    /// acks, responses) is severed.
    blocked_up: BTreeSet<NodeId>,
    /// Nodes whose *down* direction (controller → device: commands) is
    /// severed.
    blocked_down: BTreeSet<NodeId>,
    /// Messages swallowed by a severed partition direction.
    pub partition_drops: u64,
    /// The armed adversary, if any.
    adversary: Option<Adversary>,
}

impl LossyFabric {
    /// A fabric dropping each message with probability `drop_prob`.
    pub fn new(drop_prob: f64, seed: u64) -> LossyFabric {
        LossyFabric {
            drop_prob: drop_prob.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
            delivered: 0,
            dropped: 0,
            blocked_up: BTreeSet::new(),
            blocked_down: BTreeSet::new(),
            partition_drops: 0,
            adversary: None,
        }
    }

    /// A perfectly reliable fabric.
    pub fn reliable() -> LossyFabric {
        LossyFabric::new(0.0, 0)
    }

    /// The configured drop probability.
    pub fn drop_prob(&self) -> f64 {
        self.drop_prob
    }

    /// Changes the drop probability mid-run (the overload harness uses
    /// this for brownout windows: lossy while the fault holds, clean
    /// after it clears). The RNG stream is untouched, so runs stay
    /// deterministic per seed.
    pub fn set_drop_prob(&mut self, drop_prob: f64) {
        self.drop_prob = drop_prob.clamp(0.0, 1.0);
    }

    /// Sends one message; `true` when it arrives.
    pub fn deliver(&mut self) -> bool {
        if self.rng.gen_bool(self.drop_prob) {
            self.dropped += 1;
            false
        } else {
            self.delivered += 1;
            true
        }
    }

    // -- adversarial extensions (corruption, duplication, reordering,
    //    asymmetric partitions) ---------------------------------------------

    /// Arms the adversary: delivered messages may additionally be
    /// corrupted, duplicated, or reordered, with the given per-message
    /// probabilities, drawn from a **separate** RNG stream seeded by
    /// `seed`. The legacy loss stream ([`LossyFabric::deliver`]) is
    /// byte-identical whether or not an adversary is armed.
    pub fn enable_adversary(
        &mut self,
        corrupt_prob: f64,
        dup_prob: f64,
        reorder_prob: f64,
        reorder_depth: usize,
        seed: u64,
    ) {
        self.adversary = Some(Adversary::new(
            corrupt_prob,
            dup_prob,
            reorder_prob,
            reorder_depth,
            seed,
        ));
    }

    /// The armed adversary's counters, if any.
    pub fn adversary(&self) -> Option<&Adversary> {
        self.adversary.as_ref()
    }

    /// Severs `node`'s *up* direction: its heartbeats, acks, and
    /// responses stop arriving at the controller, while commands still
    /// reach it — the one-way partition where we cannot hear a device
    /// that hears us fine. Draws no randomness.
    pub fn block_up(&mut self, node: NodeId) {
        self.blocked_up.insert(node);
    }

    /// Severs `node`'s *down* direction: controller commands stop
    /// reaching it, while its own heartbeats still arrive.
    pub fn block_down(&mut self, node: NodeId) {
        self.blocked_down.insert(node);
    }

    /// Heals both directions of `node`'s partition.
    pub fn heal(&mut self, node: NodeId) {
        self.blocked_up.remove(&node);
        self.blocked_down.remove(&node);
    }

    /// Heals every partition.
    pub fn heal_all(&mut self) {
        self.blocked_up.clear();
        self.blocked_down.clear();
    }

    /// Whether `node`'s up (device → controller) direction is severed.
    pub fn is_blocked_up(&self, node: NodeId) -> bool {
        self.blocked_up.contains(&node)
    }

    /// Whether `node`'s down (controller → device) direction is severed.
    pub fn is_blocked_down(&self, node: NodeId) -> bool {
        self.blocked_down.contains(&node)
    }

    /// Sends one device → controller message (heartbeat, ack, response)
    /// from `node`; `true` when it arrives. A severed up direction
    /// swallows it *without* consuming a loss draw, so partition windows
    /// leave the seeded loss stream untouched.
    pub fn deliver_up(&mut self, node: NodeId) -> bool {
        if self.blocked_up.contains(&node) {
            self.partition_drops += 1;
            return false;
        }
        self.deliver()
    }

    /// Sends one controller → device message to `node`; `true` when it
    /// arrives. The down-direction twin of [`LossyFabric::deliver_up`].
    pub fn deliver_down(&mut self, node: NodeId) -> bool {
        if self.blocked_down.contains(&node) {
            self.partition_drops += 1;
            return false;
        }
        self.deliver()
    }

    /// Sends one command to `node` through the full adversary: partition
    /// check (no randomness), then the legacy loss draw, then — only for
    /// messages that survived both — the adversary's corruption and
    /// duplication draws from its own stream.
    pub fn deliver_cmd(&mut self, node: NodeId) -> Delivery {
        if self.blocked_down.contains(&node) {
            self.partition_drops += 1;
            return Delivery::Lost;
        }
        if !self.deliver() {
            return Delivery::Lost;
        }
        let Some(adv) = self.adversary.as_mut() else {
            return Delivery::Arrived;
        };
        if adv.corrupt_prob > 0.0 && adv.rng.gen_bool(adv.corrupt_prob) {
            adv.corrupted += 1;
            return Delivery::Corrupted {
                mask_seed: adv.rng.gen(),
            };
        }
        if adv.dup_prob > 0.0 && adv.rng.gen_bool(adv.dup_prob) {
            adv.duplicated += 1;
            // 1–3 duplicate copies, weighted toward one.
            let extra = 1 + (adv.rng.gen_range(0u8..4) / 3);
            return Delivery::Duplicated { extra };
        }
        Delivery::Arrived
    }

    /// Draws the adversary's reorder decision for one message: `0` means
    /// deliver in order; `k > 0` means hold it back until `k` later
    /// messages have overtaken it (bounded by the configured depth). The
    /// caller owns the holding buffer — heartbeat loops use this to
    /// replay stale beats after newer ones.
    pub fn reorder_delay(&mut self) -> usize {
        let Some(adv) = self.adversary.as_mut() else {
            return 0;
        };
        if adv.reorder_prob > 0.0 && adv.reorder_depth > 0 && adv.rng.gen_bool(adv.reorder_prob)
        {
            adv.reordered += 1;
            adv.rng.gen_range(1..=adv.reorder_depth)
        } else {
            0
        }
    }
}

/// The result of a retried operation.
#[derive(Debug)]
pub struct RetryOutcome<T> {
    /// The operation's result, or [`FlexError::Timeout`] when every
    /// attempt was lost before the deadline.
    pub result: Result<T>,
    /// Attempts made (at least 1).
    pub attempts: u32,
    /// Simulated time at which the exchange concluded (success, semantic
    /// failure, or giving up).
    pub finished_at: SimTime,
}

impl<T> RetryOutcome<T> {
    /// Whether the operation eventually succeeded.
    pub fn is_ok(&self) -> bool {
        self.result.is_ok()
    }
}

/// Runs `op` through `fabric` under `policy`, starting at `start`.
///
/// Each attempt costs `rtt` of simulated time. The request and the
/// response each independently cross the fabric: a lost request means the
/// operation never ran this attempt; a lost response means it ran but the
/// caller retries anyway — so `op` must be idempotent (every control
/// operation here is: prepares, aborts, table writes, dRPC utilities).
/// A semantic error from `op` is returned immediately — retrying cannot
/// fix a type error — while message loss and *retryable* errors
/// ([`FlexError::is_retryable`], e.g. [`FlexError::NoLeader`] during an
/// election) back off exponentially until the policy's deadline or
/// attempt budget runs out. When the budget dies on a retryable error,
/// that error (not a generic timeout) is returned, so callers keep the
/// leader hint.
pub fn with_retry<T>(
    policy: &RetryPolicy,
    fabric: &mut LossyFabric,
    start: SimTime,
    rtt: SimDuration,
    mut op: impl FnMut(SimTime) -> Result<T>,
) -> RetryOutcome<T> {
    let deadline = start + policy.deadline;
    let mut t = start;
    let mut last_retryable: Option<FlexError> = None;
    let give_up = |last: Option<FlexError>, fallback: FlexError| last.unwrap_or(fallback);
    // The jitter stream is seeded from the exchange's start instant:
    // the same call replays identically, different calls decorrelate.
    let mut jitter_rng = StdRng::seed_from_u64(mix(start.as_nanos() ^ 0x4A17_7E2D));
    let mut prev_backoff = policy.base_backoff;
    for attempt in 0..policy.max_attempts.max(1) {
        let request_arrived = fabric.deliver();
        t += rtt;
        if request_arrived {
            match op(t) {
                Ok(v) => {
                    if fabric.deliver() {
                        return RetryOutcome {
                            result: Ok(v),
                            attempts: attempt + 1,
                            finished_at: t,
                        };
                    }
                    // Response lost: the op took effect but we cannot know;
                    // fall through to retry (idempotence makes this safe).
                }
                Err(e) if e.is_retryable() => {
                    // Transient condition (e.g. an election in progress):
                    // back off like a lost message and try again.
                    last_retryable = Some(e);
                }
                Err(e) => {
                    return RetryOutcome {
                        result: Err(e),
                        attempts: attempt + 1,
                        finished_at: t,
                    }
                }
            }
        }
        prev_backoff = policy.next_backoff(attempt, prev_backoff, &mut jitter_rng);
        t += prev_backoff;
        if t > deadline {
            return RetryOutcome {
                result: Err(give_up(
                    last_retryable,
                    FlexError::Timeout(format!(
                        "deadline {} exceeded after {} attempts",
                        policy.deadline,
                        attempt + 1
                    )),
                )),
                attempts: attempt + 1,
                finished_at: t,
            };
        }
    }
    RetryOutcome {
        result: Err(give_up(
            last_retryable,
            FlexError::Timeout(format!(
                "gave up after {} attempts",
                policy.max_attempts.max(1)
            )),
        )),
        attempts: policy.max_attempts.max(1),
        finished_at: t,
    }
}

/// Runs `op` against `node` like [`with_retry`], but through the **full
/// adversarial fabric**: every attempt's command crosses
/// [`LossyFabric::deliver_cmd`] and every ack crosses
/// [`LossyFabric::deliver_up`].
///
/// - A *corrupted* command never reaches `op` — the receiver's frame
///   checksum rejects it and (fabric permitting) a typed
///   [`FlexError::ChecksumMismatch`] NACK comes back, which is retryable
///   and counts against the destination's breaker exactly like a
///   timeout. Corruption is therefore a transport event: no program, no
///   trap accounting, no quarantine pressure.
/// - A *duplicated* command invokes `op` once per copy. The extra
///   invocations model the fabric hammering the receiver; their
///   outcomes never reach the caller (their acks are redundant), so
///   exactly-once semantics rest entirely on the receiver's idempotency
///   — which is precisely what the E20 suite verifies.
/// - A severed down direction swallows commands silently (the caller
///   sees timeouts); a severed up direction swallows acks, turning every
///   exchange into a retry against an already-applied command — the
///   dedup window's reason to exist.
pub fn with_retry_adversarial<T>(
    policy: &RetryPolicy,
    fabric: &mut LossyFabric,
    node: NodeId,
    start: SimTime,
    rtt: SimDuration,
    mut op: impl FnMut(SimTime) -> Result<T>,
) -> RetryOutcome<T> {
    let deadline = start + policy.deadline;
    let mut t = start;
    let mut last_retryable: Option<FlexError> = None;
    let give_up = |last: Option<FlexError>, fallback: FlexError| last.unwrap_or(fallback);
    let mut jitter_rng = StdRng::seed_from_u64(mix(start.as_nanos() ^ 0x4A17_7E2D));
    let mut prev_backoff = policy.base_backoff;
    for attempt in 0..policy.max_attempts.max(1) {
        let delivery = fabric.deliver_cmd(node);
        t += rtt;
        match delivery {
            Delivery::Lost => {}
            Delivery::Corrupted { mask_seed } => {
                // The receiver's integrity check caught the mangled
                // frame before any payload logic ran. Its NACK carries
                // the checksums (synthesized here from the mask seed —
                // the simulation transports outcomes, not bytes).
                let want = mix(mask_seed);
                let nack = FlexError::ChecksumMismatch {
                    want,
                    got: want ^ (mask_seed | 1),
                };
                if fabric.deliver_up(node) {
                    last_retryable = Some(nack);
                }
            }
            Delivery::Arrived | Delivery::Duplicated { .. } => {
                let result = op(t);
                if let Delivery::Duplicated { extra } = delivery {
                    // Duplicate copies hammer the receiver; whatever they
                    // return is discarded (their acks are redundant).
                    for _ in 0..extra {
                        let _ = op(t);
                    }
                }
                match result {
                    Ok(v) => {
                        if fabric.deliver_up(node) {
                            return RetryOutcome {
                                result: Ok(v),
                                attempts: attempt + 1,
                                finished_at: t,
                            };
                        }
                        // Ack lost: the op took effect but we cannot
                        // know; retry — the receiver's dedup absorbs it.
                    }
                    Err(e) if e.is_retryable() => last_retryable = Some(e),
                    Err(e) => {
                        return RetryOutcome {
                            result: Err(e),
                            attempts: attempt + 1,
                            finished_at: t,
                        }
                    }
                }
            }
        }
        prev_backoff = policy.next_backoff(attempt, prev_backoff, &mut jitter_rng);
        t += prev_backoff;
        if t > deadline {
            return RetryOutcome {
                result: Err(give_up(
                    last_retryable,
                    FlexError::Timeout(format!(
                        "deadline {} exceeded after {} attempts",
                        policy.deadline,
                        attempt + 1
                    )),
                )),
                attempts: attempt + 1,
                finished_at: t,
            };
        }
    }
    RetryOutcome {
        result: Err(give_up(
            last_retryable,
            FlexError::Timeout(format!(
                "gave up after {} attempts",
                policy.max_attempts.max(1)
            )),
        )),
        attempts: policy.max_attempts.max(1),
        finished_at: t,
    }
}

/// Runs `op` like [`with_retry`], but *retries* (attempts after the
/// first) must be paid for from `budget`'s bucket for `dest`.
///
/// The first attempt is always made — a budget bounds *re*-tries, never
/// the work itself. When a retry would be needed and the bucket is dry,
/// the exchange ends with [`FlexError::RetryBudgetExhausted`] (carrying
/// the attempts made so far), which is deliberately *not* retryable: the
/// caller requeues at a higher level, where fresh successes replenish
/// the budget. A successful exchange earns budget back, so steady-state
/// traffic sustains the configured retry fraction and a storm against a
/// dead destination self-extinguishes after the bucket drains.
pub fn with_retry_budgeted<T>(
    policy: &RetryPolicy,
    budget: &mut RetryBudget,
    dest: NodeId,
    fabric: &mut LossyFabric,
    start: SimTime,
    rtt: SimDuration,
    mut op: impl FnMut(SimTime) -> Result<T>,
) -> RetryOutcome<T> {
    let deadline = start + policy.deadline;
    let mut t = start;
    let mut last_retryable: Option<FlexError> = None;
    let mut jitter_rng = StdRng::seed_from_u64(mix(start.as_nanos() ^ 0x4A17_7E2D));
    let mut prev_backoff = policy.base_backoff;
    let mut made = 0u32;
    for attempt in 0..policy.max_attempts.max(1) {
        made = attempt + 1;
        let request_arrived = fabric.deliver();
        t += rtt;
        if request_arrived {
            match op(t) {
                Ok(v) => {
                    if fabric.deliver() {
                        budget.on_success(dest);
                        return RetryOutcome {
                            result: Ok(v),
                            attempts: made,
                            finished_at: t,
                        };
                    }
                }
                Err(e) if e.is_retryable() => last_retryable = Some(e),
                Err(e) => {
                    return RetryOutcome {
                        result: Err(e),
                        attempts: made,
                        finished_at: t,
                    }
                }
            }
        }
        prev_backoff = policy.next_backoff(attempt, prev_backoff, &mut jitter_rng);
        t += prev_backoff;
        if t > deadline || made >= policy.max_attempts.max(1) {
            break;
        }
        // The next iteration is a retry: it must be paid for.
        if !budget.try_spend(dest) {
            return RetryOutcome {
                result: Err(FlexError::RetryBudgetExhausted {
                    dest: u64::from(dest.raw()),
                }),
                attempts: made,
                finished_at: t,
            };
        }
    }
    RetryOutcome {
        result: Err(last_retryable.unwrap_or_else(|| {
            FlexError::Timeout(format!("budgeted exchange with {dest} gave up"))
        })),
        attempts: made,
        finished_at: t,
    }
}

/// Invokes a dRPC service through a lossy fabric with retries.
///
/// The per-attempt cost is the dRPC round trip (`2 * hops` hops at
/// data-plane speed), so even several retries stay far below one
/// controller escalation ([`CONTROLLER_RTT`]).
#[allow(clippy::too_many_arguments)]
pub fn invoke_with_retry(
    registry: &mut ServiceRegistry,
    fabric: &mut LossyFabric,
    policy: &RetryPolicy,
    name: &str,
    caller: NodeId,
    args: &[u64],
    hops: u32,
    now: SimTime,
) -> RetryOutcome<SimDuration> {
    let rtt = DRPC_HOP_LATENCY.saturating_mul(2 * hops.max(1) as u64);
    with_retry(policy, fabric, now, rtt, |t| {
        registry.invoke(name, caller, args, hops, t)
    })
}

/// The per-attempt round trip of a controller→device command.
pub fn command_rtt() -> SimDuration {
    CONTROLLER_RTT
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drpc::ExecutionSite;

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), SimDuration::from_millis(1));
        assert_eq!(p.backoff(1), SimDuration::from_millis(2));
        assert_eq!(p.backoff(4), SimDuration::from_millis(16));
    }

    #[test]
    fn fabric_is_deterministic_and_roughly_calibrated() {
        let run = |seed| {
            let mut f = LossyFabric::new(0.3, seed);
            (0..1000).map(|_| f.deliver()).collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1), "same seed, same drops");
        let dropped = run(1).iter().filter(|d| !**d).count();
        assert!(
            (200..400).contains(&dropped),
            "~30% of 1000 dropped, got {dropped}"
        );
    }

    #[test]
    fn reliable_fabric_succeeds_first_try() {
        let mut f = LossyFabric::reliable();
        let out = with_retry(
            &RetryPolicy::default(),
            &mut f,
            SimTime::ZERO,
            SimDuration::from_micros(10),
            |_| Ok(42),
        );
        assert_eq!(out.result.unwrap(), 42);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.finished_at, SimTime::from_micros(10));
    }

    #[test]
    fn lossy_fabric_retries_until_success() {
        let mut f = LossyFabric::new(0.3, 7);
        let mut calls = 0u32;
        let out = with_retry(
            &RetryPolicy::default(),
            &mut f,
            SimTime::ZERO,
            SimDuration::from_micros(10),
            |_| {
                calls += 1;
                Ok(calls)
            },
        );
        assert!(out.is_ok());
        assert!(out.attempts >= 1);
        assert!(out.finished_at >= SimTime::from_micros(10));
    }

    #[test]
    fn semantic_errors_are_not_retried() {
        let mut f = LossyFabric::reliable();
        let mut calls = 0u32;
        let out = with_retry(
            &RetryPolicy::default(),
            &mut f,
            SimTime::ZERO,
            SimDuration::from_micros(10),
            |_| -> Result<()> {
                calls += 1;
                Err(FlexError::Type("bad arity".into()))
            },
        );
        assert!(matches!(out.result, Err(FlexError::Type(_))));
        assert_eq!(calls, 1, "no retry on semantic failure");
    }

    #[test]
    fn total_loss_times_out_with_deadline() {
        let mut f = LossyFabric::new(1.0, 3);
        let out = with_retry(
            &RetryPolicy::default(),
            &mut f,
            SimTime::ZERO,
            SimDuration::from_micros(10),
            |_| Ok(()),
        );
        assert!(matches!(out.result, Err(FlexError::Timeout(_))));
        assert!(
            out.finished_at.saturating_since(SimTime::ZERO) <= SimDuration::from_secs(2),
            "bounded by deadline + last backoff"
        );
    }

    #[test]
    fn attempt_landing_exactly_at_the_deadline_is_allowed() {
        // rtt + backoff(0) lands t exactly on the deadline: `t > deadline`
        // is false, so a second attempt must run — the deadline is
        // inclusive, not exclusive.
        let policy = RetryPolicy {
            max_attempts: 2,
            base_backoff: SimDuration::from_millis(9),
            multiplier: 2,
            deadline: SimDuration::from_millis(10),
            jitter: Jitter::None,
        };
        let mut f = LossyFabric::new(1.0, 1); // request never arrives...
        let mut calls = 0u32;
        let out = with_retry(
            &policy,
            &mut f,
            SimTime::ZERO,
            SimDuration::from_millis(1),
            |_| {
                calls += 1;
                Ok(())
            },
        );
        // First attempt: t = 1ms (rtt) + 9ms (backoff) = 10ms = deadline,
        // exactly — not past it, so attempt 2 runs before giving up.
        assert_eq!(out.attempts, 2, "the at-deadline attempt must run");
        assert_eq!(calls, 0, "total loss: op never executed");
        assert!(matches!(out.result, Err(FlexError::Timeout(_))));
        // One nanosecond less of budget and the second attempt is gone.
        let tighter = RetryPolicy {
            deadline: SimDuration::from_millis(10) - SimDuration::from_nanos(1),
            ..policy
        };
        let mut f = LossyFabric::new(1.0, 1);
        let out = with_retry(
            &tighter,
            &mut f,
            SimTime::ZERO,
            SimDuration::from_millis(1),
            |_| Ok(()),
        );
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn response_lost_after_successful_apply_retries_idempotently() {
        // Drop sequence under seed 5 engineered check: we assert the
        // *semantic* contract instead — when a response is lost after the
        // op applied, the op runs again on retry and the caller-side cache
        // pattern (as used by txn prepare/abort) keeps the effect
        // exactly-once.
        let mut applied = 0u32;
        let mut cached: Option<u64> = None;
        // Find a seed whose delivery pattern is: req ok, resp LOST, req ok,
        // resp ok — i.e. the op applies once, the ack is lost, and the
        // retry must re-report the cached effect.
        let seed = (0..1000)
            .find(|&s| {
                let mut f = LossyFabric::new(0.5, s);
                f.deliver() && !f.deliver() && f.deliver() && f.deliver()
            })
            .expect("some seed produces ok/LOST/ok/ok");
        let mut f = LossyFabric::new(0.5, seed);
        let out = with_retry(
            &RetryPolicy::default(),
            &mut f,
            SimTime::ZERO,
            SimDuration::from_micros(10),
            |_| {
                if let Some(v) = cached {
                    return Ok(v); // idempotent re-ack, no second apply
                }
                applied += 1;
                cached = Some(42);
                Ok(42)
            },
        );
        assert_eq!(out.result.unwrap(), 42);
        assert_eq!(out.attempts, 2, "one lost response, one retry");
        assert_eq!(applied, 1, "the effect happened exactly once");
    }

    #[test]
    fn zero_attempt_budget_still_makes_one_attempt() {
        // max_attempts = 0 is clamped to one attempt: a retry budget can
        // bound *re*-tries, but the first try is not optional.
        let policy = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        let mut f = LossyFabric::reliable();
        let mut calls = 0u32;
        let out = with_retry(
            &policy,
            &mut f,
            SimTime::ZERO,
            SimDuration::from_micros(10),
            |_| {
                calls += 1;
                Ok(calls)
            },
        );
        assert_eq!(out.result.unwrap(), 1);
        assert_eq!(out.attempts, 1);
        assert_eq!(calls, 1);
        // And with total loss, a zero budget reports exactly one attempt.
        let mut f = LossyFabric::new(1.0, 2);
        let out = with_retry(
            &policy,
            &mut f,
            SimTime::ZERO,
            SimDuration::from_micros(10),
            |_| Ok(()),
        );
        assert!(matches!(out.result, Err(FlexError::Timeout(_))));
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn no_leader_is_retried_and_surfaced_on_exhaustion() {
        // A NoLeader error behaves like message loss: backoff + retry. If
        // the leader shows up mid-retry, the call succeeds.
        let mut f = LossyFabric::reliable();
        let mut calls = 0u32;
        let out = with_retry(
            &RetryPolicy::default(),
            &mut f,
            SimTime::ZERO,
            SimDuration::from_micros(10),
            |_| {
                calls += 1;
                if calls < 3 {
                    Err(FlexError::NoLeader {
                        hint: Some(1),
                        retry_after: SimDuration::from_millis(300),
                    })
                } else {
                    Ok(calls)
                }
            },
        );
        assert_eq!(out.result.unwrap(), 3, "succeeded once a leader emerged");
        assert_eq!(out.attempts, 3);

        // If no leader ever emerges, the typed error (with its hint) is
        // what comes back — not a generic timeout.
        let mut f = LossyFabric::reliable();
        let out = with_retry(
            &RetryPolicy::default(),
            &mut f,
            SimTime::ZERO,
            SimDuration::from_micros(10),
            |_| -> Result<()> {
                Err(FlexError::NoLeader {
                    hint: Some(2),
                    retry_after: SimDuration::from_millis(300),
                })
            },
        );
        match out.result {
            Err(FlexError::NoLeader { hint: Some(2), .. }) => {}
            other => panic!("expected the hinted NoLeader back, got {other:?}"),
        }
    }

    #[test]
    fn decorrelated_jitter_spreads_backoffs_over_a_seeded_rng() {
        let policy = RetryPolicy::jittered();
        let cap = match policy.jitter {
            Jitter::Decorrelated { cap } => cap,
            Jitter::None => panic!("jittered() must enable jitter"),
        };
        // Draw a long backoff walk from a seeded stream and check the
        // spread: every draw within [base, cap], draws not all equal
        // (desynchronized), and the same seed replays identically.
        let walk = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut prev = policy.base_backoff;
            (0..200u32)
                .map(|a| {
                    prev = policy.next_backoff(a, prev, &mut rng);
                    prev
                })
                .collect::<Vec<_>>()
        };
        let a = walk(7);
        assert_eq!(a, walk(7), "same seed, same schedule");
        assert_ne!(a, walk(8), "different seeds decorrelate");
        let distinct: std::collections::BTreeSet<_> = a.iter().collect();
        assert!(distinct.len() > 50, "draws spread, got {}", distinct.len());
        for b in &a {
            assert!(*b >= policy.base_backoff, "never below base: {b}");
            assert!(*b <= cap, "never above cap: {b}");
        }
        // Two retriers failing at the same instant but with different
        // streams must NOT re-align. Draws clamped at the cap coincide by
        // design (that is the max-backoff steady state); below the cap,
        // coincidence over nanosecond granularity means re-alignment.
        let b = walk(8);
        let aligned = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| x == y && **x < cap)
            .count();
        assert!(aligned < 10, "thundering herd re-alignment: {aligned}/200");
        let below_cap = a.iter().filter(|x| **x < cap).count();
        assert!(below_cap > 10, "walk never explores below cap: {below_cap}");
        // Jitter::None keeps the exact deterministic schedule.
        let exact = RetryPolicy::default();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            exact.next_backoff(3, SimDuration::from_secs(9), &mut rng),
            exact.backoff(3)
        );
    }

    #[test]
    fn retry_budget_caps_retries_and_replenishes_on_success() {
        let mut budget = RetryBudget::new(100_000, 10, 2);
        let dest = NodeId(4);
        assert_eq!(budget.available(dest), 2, "initial credit");
        // Drain: only the initial credit's worth of retries are granted.
        assert!(budget.try_spend(dest));
        assert!(budget.try_spend(dest));
        assert!(!budget.try_spend(dest), "bucket dry, retry refused");
        assert_eq!(budget.spent, 2);
        assert_eq!(budget.refused, 1);
        // 10 successes at 10% earn exactly one more retry.
        for _ in 0..10 {
            budget.on_success(dest);
        }
        assert_eq!(budget.available(dest), 1);
        assert!(budget.try_spend(dest));
        assert!(!budget.try_spend(dest));
        // Destinations are independent buckets.
        assert!(budget.try_spend(NodeId(9)));
    }

    #[test]
    fn budgeted_retry_storm_self_extinguishes() {
        // A dead destination: every exchange fails. Without a budget,
        // 100 calls × 8 attempts = 800 messages; with a 10% budget and
        // 3 retries of initial credit, attempts must collapse to
        // first-attempts + initial credit.
        let mut budget = RetryBudget::new(100_000, 10, 3);
        let dest = NodeId(2);
        let policy = RetryPolicy {
            deadline: SimDuration::from_secs(3600),
            ..RetryPolicy::default()
        };
        let mut fabric = LossyFabric::new(1.0, 11); // total loss
        let mut total_attempts = 0u32;
        let mut budget_stops = 0u32;
        for i in 0..100u64 {
            let out = with_retry_budgeted(
                &policy,
                &mut budget,
                dest,
                &mut fabric,
                SimTime::from_millis(i),
                SimDuration::from_micros(10),
                |_| Ok(()),
            );
            total_attempts += out.attempts;
            if matches!(out.result, Err(FlexError::RetryBudgetExhausted { .. })) {
                budget_stops += 1;
            }
        }
        assert!(
            total_attempts <= 100 + 3 + 1,
            "storm did not self-extinguish: {total_attempts} attempts"
        );
        assert!(budget_stops >= 97, "budget refused the storm: {budget_stops}");
        // Once the destination heals, successes replenish the budget and
        // retries flow again at the configured fraction.
        let mut fabric = LossyFabric::reliable();
        for i in 0..50u64 {
            let out = with_retry_budgeted(
                &policy,
                &mut budget,
                dest,
                &mut fabric,
                SimTime::from_secs(1 + i),
                SimDuration::from_micros(10),
                |_| Ok(()),
            );
            assert!(out.is_ok());
        }
        assert!(budget.available(dest) >= 4, "healed successes re-earn budget");
    }

    #[test]
    fn budgeted_first_attempts_are_never_refused() {
        // Zero initial credit, zero earn: the budget can only ever say
        // "no retries" — but every first attempt still runs.
        let mut budget = RetryBudget::new(0, 10, 0);
        let mut fabric = LossyFabric::reliable();
        let mut calls = 0u32;
        let out = with_retry_budgeted(
            &RetryPolicy::default(),
            &mut budget,
            NodeId(1),
            &mut fabric,
            SimTime::ZERO,
            SimDuration::from_micros(10),
            |_| {
                calls += 1;
                Ok(calls)
            },
        );
        assert_eq!(out.result.unwrap(), 1);
        assert_eq!(out.attempts, 1);
    }

    #[test]
    fn drpc_retry_under_30_percent_loss_always_succeeds() {
        let mut reg = ServiceRegistry::new();
        reg.register("mig", NodeId(1), 1, ExecutionSite::DataPlane)
            .unwrap();
        let mut fabric = LossyFabric::new(0.3, 99);
        // Generous attempt/deadline budget: at 30% loss a single attempt
        // succeeds with p = 0.7² = 0.49, so 16 attempts push the per-call
        // failure odds below 1 in 10⁴.
        let policy = RetryPolicy {
            max_attempts: 16,
            deadline: SimDuration::from_secs(120),
            ..RetryPolicy::default()
        };
        let mut ok = 0;
        let mut attempts = 0;
        for i in 0..200u64 {
            let out = invoke_with_retry(
                &mut reg,
                &mut fabric,
                &policy,
                "mig",
                NodeId(2),
                &[i],
                3,
                SimTime::from_millis(i),
            );
            attempts += out.attempts;
            if out.is_ok() {
                ok += 1;
            }
        }
        assert_eq!(ok, 200, "every call eventually succeeds under 30% loss");
        assert!(attempts > 200, "some calls needed retries");
    }

    #[test]
    fn arming_the_adversary_leaves_the_legacy_stream_untouched() {
        // E12–E18 pin seeds against the exact deliver() sequence; the
        // adversary must draw only from its own rng. Each deliver_cmd
        // consumes exactly one legacy loss sample (the command still
        // crosses the lossy link) whether or not the adversary is armed,
        // so arming it must not shift the legacy stream at all.
        let run = |seed, arm: bool| {
            let mut f = LossyFabric::new(0.3, seed);
            if arm {
                f.enable_adversary(0.5, 0.5, 0.5, 8, seed);
            }
            (0..500)
                .map(|i| {
                    if i % 7 == 0 {
                        // interleave adversarial draws between legacy ones
                        let _ = f.deliver_cmd(NodeId(1));
                        let _ = f.reorder_delay();
                    }
                    f.deliver()
                })
                .collect::<Vec<_>>()
        };
        for seed in [1u64, 42, 0xDEAD] {
            assert_eq!(run(seed, false), run(seed, true), "seed {seed}");
        }
    }

    #[test]
    fn partition_blocks_consume_no_randomness() {
        let mut open = LossyFabric::new(0.3, 11);
        let mut cut = LossyFabric::new(0.3, 11);
        cut.block_down(NodeId(5));
        cut.block_up(NodeId(5));
        for _ in 0..100 {
            // Blocked sends return early; the loss rng never advances.
            assert_eq!(cut.deliver_cmd(NodeId(5)), Delivery::Lost);
            assert!(!cut.deliver_up(NodeId(5)));
        }
        assert_eq!(cut.partition_drops, 200);
        let a: Vec<bool> = (0..200).map(|_| open.deliver()).collect();
        let b: Vec<bool> = (0..200).map(|_| cut.deliver()).collect();
        assert_eq!(a, b, "blocked traffic drew no randomness");
        cut.heal(NodeId(5));
        assert!(!cut.is_blocked_up(NodeId(5)) && !cut.is_blocked_down(NodeId(5)));
    }

    #[test]
    fn adversary_draws_are_deterministic_and_counted() {
        let run = |seed| {
            let mut f = LossyFabric::reliable();
            f.enable_adversary(0.2, 0.2, 0.3, 6, seed);
            let events: Vec<Delivery> = (0..400).map(|_| f.deliver_cmd(NodeId(2))).collect();
            let delays: Vec<usize> = (0..200).map(|_| f.reorder_delay()).collect();
            let adv = f.adversary().unwrap();
            (events, delays, adv.corrupted, adv.duplicated, adv.reordered)
        };
        assert_eq!(run(9), run(9), "same seed, same adversarial schedule");
        let (events, delays, corrupted, duplicated, reordered) = run(9);
        assert!(corrupted > 0 && duplicated > 0 && reordered > 0);
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e, Delivery::Corrupted { .. }))
                .count() as u64,
            corrupted
        );
        assert!(delays.iter().all(|&d| d <= 6), "reorder depth bounded");
        assert!(delays.iter().any(|&d| d > 0));
    }

    #[test]
    fn adversarial_retry_reports_corruption_as_checksum_mismatch() {
        let mut f = LossyFabric::reliable();
        f.enable_adversary(1.0, 0.0, 0.0, 4, 3); // every command corrupted
        let out = with_retry_adversarial(
            &RetryPolicy::default(),
            &mut f,
            NodeId(4),
            SimTime::ZERO,
            SimDuration::from_millis(2),
            |_| Ok(()),
        );
        match out.result {
            Err(FlexError::ChecksumMismatch { want, got }) => {
                assert_ne!(want, got, "the mismatch must actually mismatch")
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn adversarial_retry_invokes_op_once_per_duplicate_copy() {
        let mut f = LossyFabric::reliable();
        f.enable_adversary(0.0, 1.0, 0.0, 4, 17); // every command duplicated
        let mut calls = 0u32;
        let out = with_retry_adversarial(
            &RetryPolicy::default(),
            &mut f,
            NodeId(4),
            SimTime::ZERO,
            SimDuration::from_millis(2),
            |_| {
                calls += 1;
                Ok(calls)
            },
        );
        assert_eq!(out.result.unwrap(), 1, "the first copy's result wins");
        assert_eq!(out.attempts, 1);
        assert!(calls >= 2, "duplicate copies hammered the receiver");
    }

    #[test]
    fn one_way_up_partition_forces_retries_into_the_receiver() {
        // Commands arrive; acks never come back. The caller retries until
        // the deadline, invoking op once per attempt — the receiver-side
        // dedup window is what makes this safe.
        let mut f = LossyFabric::reliable();
        f.block_up(NodeId(8));
        let policy = RetryPolicy {
            max_attempts: 5,
            ..RetryPolicy::default()
        };
        let mut calls = 0u32;
        let out = with_retry_adversarial(
            &policy,
            &mut f,
            NodeId(8),
            SimTime::ZERO,
            SimDuration::from_millis(2),
            |_| {
                calls += 1;
                Ok(())
            },
        );
        assert!(matches!(out.result, Err(FlexError::Timeout(_))));
        assert_eq!(calls, 5, "op ran every attempt; only the acks died");
    }
}
