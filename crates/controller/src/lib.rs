//! # flexnet-controller — real-time network control (paper §3.4)
//!
//! The control plane of the FlexNet reproduction:
//!
//! - [`core`] — the [`core::Controller`] facade: plans program bundles and
//!   placements, delegates effecting them to runtime reconfiguration.
//! - [`apps`] — URI-named app registry ("application-centric abstractions
//!   … as first-class primitives").
//! - [`tenant`] — tenant arrival/departure with VLAN allocation and
//!   composition-based access control.
//! - [`migrate`] — control-plane vs. in-data-plane state migration (the
//!   count-min-sketch argument of §3.4).
//! - [`scale`] — elastic scaling with hysteresis and cooldown.
//! - [`drpc`] — data-plane RPC registry, discovery, and latency model.
//! - [`retry`] — lossy control fabric, retry policies with exponential
//!   backoff and deadlines.
//! - [`txn`] — transactional network-wide reconfiguration (two-phase
//!   commit with rollback).
//! - [`replicate`] — replicated state groups with epoch-based failover.
//! - [`raft`] — simulated Raft for physically distributed controllers.
//! - [`wal`] — the replicated write-ahead intent log for crash-recovery.
//! - [`recovery`] — the recovery coordinator: log replay, epoch fencing,
//!   in-doubt transaction resolution, orphan-shadow sweep.
//! - [`chaos`] — deterministic coordinator-crash scenarios with global
//!   invariant checks (experiment E13).
//! - [`resync`] — device restart recovery: the replicated intended-state
//!   store, digest-based anti-entropy, and the rate-limited hitless
//!   reconciler (experiment E14).
//! - [`rollout`] — canary rollouts: wave-by-wave deployment with SLO
//!   guards, gray-failure detection, and automatic journaled rollback
//!   (experiment E15).
//! - [`overload`] — the overload-protection layer end to end: retry
//!   budgets + jitter + circuit breakers + priority load shedding +
//!   graceful degradation, exercised by the seeded metastability chaos
//!   harness (experiment E17).
//! - [`adversary`] — the adversarial fabric end to end: frame checksums,
//!   idempotency-token dedup, heartbeat monotonicity, and the
//!   `Unreachable`-vs-`Dead` split-brain guard under corruption,
//!   duplication, reordering, and one-way partitions (experiment E20).
//! - [`storage`] — crash-consistent durable control state: checksummed
//!   segmented WALs and snapshot generations over simulated disks, the
//!   recovery scrub (torn-tail truncation, mid-log-rot demotion), intent
//!   log compaction, and the storage-chaos harness (experiment E21).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adversary;
pub mod apps;
pub mod chaos;
pub mod core;
pub mod drpc;
pub mod migrate;
pub mod overload;
pub mod raft;
pub mod recovery;
pub mod replicate;
pub mod resync;
pub mod retry;
pub mod rollout;
pub mod sandbox;
pub mod scale;
pub mod storage;
pub mod tenant;
pub mod txn;
pub mod wal;

pub use adversary::{
    run_adversarial_seed, run_adversarial_seed_with, AdversaryProtections, AdversaryReport,
};
pub use crate::core::{
    AdmissionQueue, Controller, ControllerMode, FailureDetector, Health, HealthEvent,
    OverloadGovernor, QueueStats, TokenBucket, WorkClass, WorkItem,
};
pub use apps::{AppRecord, AppRegistry, AppStatus};
pub use drpc::{BreakerSet, BreakerState, CircuitBreaker, ExecutionSite, Invocation, ServiceRegistry};
pub use migrate::{Migration, MigrationReport, MigrationStrategy};
pub use overload::{run_overload_seed, OverloadReport, OverloadScenario, Protections};
pub use raft::{RaftCluster, Role};
pub use replicate::{FailoverReport, ReplicationGroup};
pub use retry::{
    invoke_with_retry, with_retry, with_retry_adversarial, with_retry_budgeted, Adversary,
    Delivery, Jitter, LossyFabric, RetryBudget, RetryOutcome, RetryPolicy,
};
pub use scale::{ElasticScaler, ScaleDecision, ScalingPolicy};
pub use chaos::{run_chaos_seed, ChaosReport};
pub use recovery::{recover, RecoveryReport, TxnResolution};
pub use sandbox::{run_sandbox_seed, SandboxReport};
pub use rollout::{
    resume_rollouts, run_canary_seed, run_rollout, run_rollout_governed, CanaryReport,
    RolloutCrash, RolloutDirectory, RolloutOutcome, RolloutPlan, RolloutReport, RolloutResume,
    SloBreach, SloGuards,
};
pub use resync::{
    run_resync_seed, IntendedDevice, IntendedStore, ProgramClass, ResyncChaosReport,
    ResyncOutcome, ResyncReport, Resyncer,
};
pub use tenant::TenantManager;
pub use txn::{
    logged_transactional_reconfig, transactional_reconfig, transactional_reconfig_over,
    LoggedTxnReport, TxnOutcome, TxnReport,
};
pub use storage::{
    compact_records, replay_digest, run_storage_seed, run_storage_seed_with, state_digest,
    NodeStorage, ScrubOutcome, SegmentedWal, SnapshotStore, StorageCounters, StorageProtections,
    StorageReport,
};
pub use wal::{CompactionReport, IntentRecord, ReplicatedIntentLog};
