//! The deterministic chaos harness: one seed → one complete
//! coordinator-crash scenario with global invariant checks (experiment
//! E13).
//!
//! [`run_chaos_seed`] expands the seed into a [`ChaosSchedule`]
//! (crash phase, optional victim device, fabric loss), runs a journaled
//! transaction to the chosen crash point on the line topology, kills the
//! Raft leader (and the victim device, which loses its volatile shadow),
//! fails over, recovers, lets the deposed coordinator replay its stale
//! commands, and finally pushes live traffic through the network. Every
//! global invariant the recovery protocol promises is checked; the
//! returned [`ChaosReport`] lists each violation as a human-readable
//! string, so `report.violations.is_empty()` is the pass criterion for
//! benches, CI smoke tests, and property tests alike.
//!
//! Invariants checked:
//! - **Resolution** — after recovery, every transaction in the log is
//!   terminal and resolved the right way for its crash phase (flip
//!   scheduled → forward, otherwise → back).
//! - **Zero orphans** — no device holds an in-doubt shadow once recovery
//!   returns.
//! - **Exactly-once** — a second recovery pass is a strict no-op.
//! - **Monotone epochs** — the successor's epoch exceeds the victim's and
//!   every reachable device is fenced at it.
//! - **Zombie rejection** — every command the deposed coordinator retries
//!   with its stale epoch fails with [`FlexError::Fenced`].
//! - **Old-XOR-new** — post-recovery traffic sees exactly one program
//!   version per device and one program across the network.

use crate::recovery::{recover, RecoveryReport, TargetDirectory};
use crate::retry::{LossyFabric, RetryPolicy};
use crate::txn::{logged_transactional_reconfig, LoggedTxnOutcome, LoggedTxnReport};
use crate::wal::{IntentRecord, ReplicatedIntentLog};
use flexnet_dataplane::TxnTag;
use flexnet_lang::diff::ProgramBundle;
use flexnet_lang::parser::parse_source;
use flexnet_sim::{generate, ChaosSchedule, FlowSpec, Simulation, Topology};
use flexnet_types::{FlexError, NodeId, Result, SimDuration, SimTime};

/// Controller nodes in the chaos scenario's Raft cluster.
const CONTROLLERS: usize = 3;

/// Everything one chaos run observed.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The schedule the seed expanded to.
    pub schedule: ChaosSchedule,
    /// The journaled transaction's account (up to the crash).
    pub txn: LoggedTxnReport,
    /// The recovery pass's account.
    pub recovery: RecoveryReport,
    /// Epoch the transaction ran under (before the crash).
    pub old_epoch: u64,
    /// Epoch after failover.
    pub new_epoch: u64,
    /// Stale-epoch commands the zombie coordinator attempted.
    pub zombie_attempts: u32,
    /// How many of them the data plane rejected with `Fenced`.
    pub zombie_rejected: u32,
    /// Packets delivered by the post-recovery traffic check.
    pub delivered: u64,
    /// Simulated time from the coordinator crash to the end of recovery.
    pub resolve_latency: SimDuration,
    /// Every invariant violation observed (empty = the run passed).
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Whether the run upheld every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn bundle(src: &str) -> ProgramBundle {
    let file = parse_source(src).expect("chaos program parses");
    ProgramBundle {
        headers: file.headers,
        program: file.programs.into_iter().next().expect("one program"),
    }
}

/// The pre-transaction program: plain forwarding along the line.
fn v1() -> ProgramBundle {
    bundle("program app kind any { handler ingress(pkt) { forward(1); } }")
}

/// The target program: same forwarding plus a counter, so the diff is
/// non-trivial but traffic still flows whichever version survives.
fn v2() -> ProgramBundle {
    bundle(
        "program app kind any {
           counter c;
           handler ingress(pkt) { count(c); forward(1); }
         }",
    )
}

/// Runs the full crash/failover/recovery scenario for one seed.
///
/// Errors only on harness plumbing failures (a Raft cluster that cannot
/// elect at all); protocol misbehaviour is reported as violations, not
/// errors, so sweeps keep going and count.
pub fn run_chaos_seed(seed: u64) -> Result<ChaosReport> {
    // -- setup: line topology, v1 everywhere, a replicated intent log ----
    let (topo, nodes) = Topology::host_nic_switch_line();
    let devices = [nodes[1], nodes[2], nodes[3]];
    let (src_host, dst_host) = (nodes[0], nodes[4]);
    let mut sim = Simulation::new(topo);
    for d in devices {
        sim.topo
            .node_mut(d)
            .expect("line node exists")
            .device
            .install(v1())
            .map_err(|e| FlexError::Sim(format!("seed {seed}: install v1 on {d}: {e}")))?;
    }
    let schedule = ChaosSchedule::from_seed(seed, devices.len());
    let mut log = ReplicatedIntentLog::new(CONTROLLERS, schedule.raft_seed)?;
    let old_epoch = log.epoch()?;
    let mut fabric = LossyFabric::new(schedule.fabric_loss, seed);
    let policy = RetryPolicy {
        max_attempts: 16,
        deadline: SimDuration::from_secs(60),
        ..RetryPolicy::default()
    };
    let mut violations: Vec<String> = Vec::new();

    // -- act 1: the transaction runs until the coordinator dies ----------
    let targets: Vec<(NodeId, ProgramBundle)> = devices.iter().map(|d| (*d, v2())).collect();
    let txn_report = logged_transactional_reconfig(
        &mut sim,
        &targets,
        SimTime::from_secs(1),
        &mut fabric,
        &policy,
        &mut log,
        Some(schedule.crash_phase),
        None,
        None,
    )?;
    let crash_at = txn_report.finished_at;
    let old_tag = TxnTag {
        txn_id: txn_report.txn,
        epoch: old_epoch,
    };

    // The victim device dies with the coordinator (losing its volatile
    // shadow) and reboots shortly after, before recovery reaches it.
    if let Some(v) = schedule.victim {
        let dev = &mut sim.topo.node_mut(devices[v]).expect("victim exists").device;
        dev.crash(crash_at);
        dev.restart(crash_at + flexnet_sim::faults::VICTIM_RESTART_DELAY)
            .map_err(|e| FlexError::Sim(format!("seed {seed}: victim restart: {e}")))?;
    }

    // -- act 2: failover — kill the leader, elect a successor ------------
    log.kill_leader()?;
    log.elect()?;
    let new_epoch = log.epoch()?;
    if new_epoch <= old_epoch {
        violations.push(format!(
            "epoch did not rise across failover: {old_epoch} -> {new_epoch}"
        ));
    }

    // -- act 3: recovery --------------------------------------------------
    let mut directory = TargetDirectory::new();
    directory.insert(txn_report.txn, targets.clone());
    let recover_from = crash_at + SimDuration::from_secs(1);
    let recovery = recover(
        &mut sim,
        &mut log,
        &directory,
        &devices,
        recover_from,
        &mut fabric,
        &policy,
    )?;
    let resolve_latency = recovery.finished_at.saturating_since(crash_at);

    // Invariant: every transaction in the log is terminal, and the one we
    // crashed resolved the way its phase demands.
    let records = log.records()?;
    let mut last_per_txn: std::collections::BTreeMap<u64, &IntentRecord> =
        std::collections::BTreeMap::new();
    for rec in &records {
        // Intended-state records are reconciliation targets, not phases.
        if matches!(rec, IntentRecord::IntendedState { .. }) {
            continue;
        }
        last_per_txn.insert(rec.txn(), rec);
    }
    for (txn, rec) in &last_per_txn {
        if !matches!(
            rec,
            IntentRecord::Committed { .. } | IntentRecord::Aborted { .. }
        ) {
            violations.push(format!("txn {txn} left unresolved: {rec:?}"));
        }
    }
    let expect_committed = match txn_report.outcome {
        // The flip decision was durable: recovery must roll forward.
        LoggedTxnOutcome::Crashed(flexnet_sim::CrashPhase::AfterFlipScheduled) => true,
        LoggedTxnOutcome::Committed => true,
        // Prepared-or-earlier (or a live abort): roll back.
        _ => false,
    };
    let committed = matches!(
        last_per_txn.get(&txn_report.txn),
        Some(IntentRecord::Committed { .. })
    );
    if committed != expect_committed {
        violations.push(format!(
            "txn {} resolved {} but phase {:?} demands {}",
            txn_report.txn,
            if committed { "forward" } else { "back" },
            txn_report.outcome,
            if expect_committed { "forward" } else { "back" },
        ));
    }

    // Invariant: zero orphan shadows once recovery returns.
    for d in devices {
        if let Some(tag) = sim.topo.node(d).expect("device exists").device.txn_in_doubt() {
            violations.push(format!("orphan in-doubt shadow on {d}: {tag:?}"));
        }
    }

    // Invariant: exactly-once — a second recovery pass is a strict no-op.
    let second = recover(
        &mut sim,
        &mut log,
        &directory,
        &devices,
        recovery.finished_at,
        &mut fabric,
        &policy,
    )?;
    if !second.is_noop() {
        violations.push(format!(
            "recovery is not idempotent: second pass resolved {:?}, swept {}, re-prepared {}",
            second.resolutions, second.orphans_swept, second.reprepared
        ));
    }

    // Invariant: fences are at the new epoch on every device.
    for d in devices {
        let fence = sim.topo.node(d).expect("device exists").device.fence();
        if fence != new_epoch {
            violations.push(format!("{d} fenced at {fence}, expected epoch {new_epoch}"));
        }
    }

    // -- act 4: the zombie returns ---------------------------------------
    // The deposed coordinator never learned it was deposed: it retries its
    // prepare, commit, and abort with the stale epoch. Every single
    // command must bounce off the fence.
    let mut zombie_attempts = 0u32;
    let mut zombie_rejected = 0u32;
    let zombie_at = recovery.finished_at + SimDuration::from_millis(1);
    for d in devices {
        let dev = &mut sim.topo.node_mut(d).expect("device exists").device;
        let outcomes: [Result<()>; 3] = [
            dev.prepare_txn_reconfig(v2(), zombie_at, old_tag).map(|_| ()),
            dev.commit_txn(old_tag, zombie_at).map(|_| ()),
            dev.abort_txn(old_tag, zombie_at).map(|_| ()),
        ];
        for out in outcomes {
            zombie_attempts += 1;
            match out {
                Err(FlexError::Fenced { .. }) => zombie_rejected += 1,
                other => violations.push(format!(
                    "zombie command on {d} not fenced: {other:?}"
                )),
            }
        }
    }

    // -- act 5: live traffic sees one coherent network --------------------
    // Flips materialize as packets tick the devices; the flow starts well
    // after every scheduled flip instant.
    let settle = recovery.finished_at + SimDuration::from_secs(2);
    for d in devices {
        sim.topo.node_mut(d).expect("device exists").device.tick(settle);
    }
    let want = if expect_committed { v2() } else { v1() };
    for d in devices {
        let dev = &sim.topo.node(d).expect("device exists").device;
        if dev.reconfig_in_progress() {
            violations.push(format!("{d} still mid-reconfiguration after settling"));
        }
        match dev.program() {
            Some(p) if p.bundle == want => {}
            Some(_) => violations.push(format!(
                "{d} runs the wrong program (mixed network: expected {})",
                if expect_committed { "v2" } else { "v1" },
            )),
            None => violations.push(format!("{d} lost its program entirely")),
        }
    }
    sim.load(generate(
        &[FlowSpec::udp_cbr(
            src_host,
            dst_host,
            1000,
            settle + SimDuration::from_millis(1),
            SimDuration::from_millis(200),
        )],
        seed,
    ));
    sim.run_to_completion();
    let delivered = sim.metrics.delivered;
    if delivered == 0 {
        violations.push("no post-recovery traffic delivered".into());
    }
    for d in devices {
        let versions = sim.metrics.versions_seen(d);
        if versions.len() > 1 {
            violations.push(format!(
                "{d} processed packets under {} different versions: old-XOR-new violated",
                versions.len()
            ));
        }
    }

    Ok(ChaosReport {
        schedule,
        txn: txn_report,
        recovery,
        old_epoch,
        new_epoch,
        zombie_attempts,
        zombie_rejected,
        delivered,
        resolve_latency,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recovery::TxnResolution;
    use flexnet_sim::CrashPhase;

    #[test]
    fn a_known_seed_passes_every_invariant() {
        let report = run_chaos_seed(3).unwrap();
        assert!(
            report.passed(),
            "seed 3 violations: {:?}",
            report.violations
        );
        assert_eq!(report.schedule.crash_phase, CrashPhase::AfterFlipScheduled);
        assert_eq!(report.zombie_attempts, 9);
        assert_eq!(report.zombie_rejected, 9);
        assert!(report.delivered > 0);
    }

    #[test]
    fn every_crash_phase_resolves_correctly() {
        // Seeds 0..4 cycle the four phases.
        for seed in 0..4u64 {
            let report = run_chaos_seed(seed).unwrap();
            assert!(
                report.passed(),
                "seed {seed} ({}) violations: {:?}",
                report.schedule.crash_phase.label(),
                report.violations
            );
            match report.schedule.crash_phase {
                CrashPhase::AfterFlipScheduled => {
                    assert!(
                        report
                            .recovery
                            .resolutions
                            .iter()
                            .any(|(_, r)| *r == TxnResolution::RolledForward),
                        "flip-scheduled must roll forward"
                    );
                }
                _ => {
                    if matches!(report.txn.outcome, LoggedTxnOutcome::Crashed(_)) {
                        assert!(
                            report
                                .recovery
                                .resolutions
                                .iter()
                                .any(|(_, r)| *r == TxnResolution::RolledBack),
                            "pre-decision crashes must roll back"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let a = run_chaos_seed(11).unwrap();
        let b = run_chaos_seed(11).unwrap();
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.new_epoch, b.new_epoch);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.resolve_latency, b.resolve_latency);
    }
}
