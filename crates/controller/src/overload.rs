//! The overload-protection layer, end to end: the seeded metastability
//! chaos harness (experiment E17, `DESIGN.md` §12).
//!
//! PRs 1–5 taught every subsystem to *retry harder* when something
//! fails. That is the recipe for **metastable failure**: a transient
//! fault (mass restart, fabric brownout, telemetry burst, slow
//! controller) pushes offered control-plane load over service capacity;
//! queueing delay crosses the clients' timeout; from then on every
//! request the controller serves is one its requester has already given
//! up on — *pure waste* — while the requesters' retries multiply
//! arrivals. The overload sustains itself after the original fault
//! clears. This module reproduces that trap deterministically and shows
//! the protection layer breaking it:
//!
//! - **retry budgets** ([`crate::retry::RetryBudget`]) cap retries at a
//!   fraction of successes, so a storm self-extinguishes instead of
//!   multiplying arrivals;
//! - **decorrelated jitter** ([`crate::retry::Jitter`]) desynchronizes
//!   the retries that do run;
//! - **circuit breakers** ([`crate::drpc::BreakerSet`]) stop burning
//!   service capacity on destinations that are down;
//! - **priority admission + deadline shedding**
//!   ([`crate::core::AdmissionQueue`]) keep remedial/resync work ahead
//!   of telemetry floods and discard expired work *unserved* — shedding
//!   a stale item costs a counter bump, serving it costs capacity;
//! - **the global resync token bucket** ([`crate::core::TokenBucket`])
//!   paces a mass-restart stampede into an orderly queue;
//! - **graceful degradation** ([`crate::core::OverloadGovernor`]) pauses
//!   new rollouts and widens heartbeat cadence + detector thresholds
//!   under sustained shed, instead of dropping failure detection.
//!
//! [`run_overload_seed`] executes one seeded scenario with a
//! [`Protections`] toggle set; the E17 acceptance criterion is that the
//! protected controller recovers within a bounded window after the
//! fault clears in *every* seed, while the unprotected one demonstrably
//! stays collapsed on pinned seeds.
//!
//! ## The model
//!
//! Sixteen devices submit telemetry reports to one controller on a
//! fixed cadence. Each report is a *request* with a client timeout: an
//! unacknowledged report is retransmitted every timeout (a new *copy*
//! in the controller's queue), and a response to a copy older than the
//! timeout is discarded by the requester — serving it achieves nothing.
//! The controller serves work from its admission queue at a fixed
//! capacity (work units per tick); resyncs cost more than telemetry.
//! Divergence (wiped state after a restart) is tracked as a digest
//! mismatch the [`FailureDetector`] observes on heartbeats; a served
//! resync converges the device. All randomness (fabric loss, jitter)
//! derives from the seed; two runs of one seed are identical.

use crate::core::{
    AdmissionQueue, ControllerMode, FailureDetector, HealthEvent, OverloadGovernor, TokenBucket,
    WorkClass,
};
use crate::drpc::BreakerSet;
use crate::retry::RetryBudget;
use flexnet_sim::OverloadSchedule;
pub use flexnet_sim::OverloadScenario;
use flexnet_types::{FlexError, NodeId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Simulation tick.
const TICK: SimDuration = SimDuration::from_millis(5);
/// Nominal telemetry/heartbeat cadence per device.
const CADENCE: SimDuration = SimDuration::from_millis(50);
/// Client-side timeout: an unacked report is retransmitted this often,
/// and a response to a copy older than this is discarded.
const CLIENT_TIMEOUT: SimDuration = SimDuration::from_millis(100);
/// Devices in the fleet.
const FLEET: usize = 16;
/// Per-device unacked-report buffer (real senders bound their memory).
const PENDING_CAP: usize = 8;
/// Controller service capacity, milli-units per tick: 0.5 units/ms.
/// Nominal offered load (16 devices / 50 ms, 1 unit each) is 0.32
/// units/ms — 64% utilization, healthy headroom. The worst-case retry
/// flood (16 devices × 8 buffered reports / 100 ms) is 1.28 units/ms —
/// 2.5× capacity, which is what makes unprotected collapse
/// self-sustaining *after* a fault clears.
const CAPACITY_MU: u64 = 2500;
/// Service costs, milli-units.
const COST_TELEMETRY: u64 = 1000;
const COST_ROLLOUT: u64 = 2000;
const COST_RESYNC: u64 = 4000;
/// Bounded admission-queue capacity (protected runs).
const QUEUE_CAP: usize = 64;
/// Mass-restart downtime before victims come back (state wiped).
const RESTART_DOWNTIME: SimDuration = SimDuration::from_millis(250);
/// Rollout attempts arrive this often.
const ROLLOUT_PERIOD: SimDuration = SimDuration::from_millis(500);
/// The fault is injected at this instant.
const FAULT_AT: SimTime = SimTime::from_millis(1_000);
/// Bounded recovery window after the fault clears (the acceptance
/// criterion for protected runs).
const RECOVERY_WINDOW: SimDuration = SimDuration::from_millis(2_000);
/// Extended observation window for unprotected runs — collapse must be
/// *sustained*, not just slow.
const COLLAPSE_WINDOW: SimDuration = SimDuration::from_millis(4_000);
/// Trailing window for the goodput criterion.
const GOODPUT_WINDOW: SimDuration = SimDuration::from_millis(500);

/// splitmix64 (the sweep-wide convention for expanding seeds).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Which protection mechanisms are active. The E17 sweep runs each seed
/// once with everything on and once with everything off; the individual
/// flags exist so tests can attribute behaviour to one mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Protections {
    /// Per-destination retry budget on report retransmissions.
    pub retry_budget: bool,
    /// Decorrelated jitter on retransmission spacing.
    pub jitter: bool,
    /// Per-device circuit breakers on the controller→device resync path.
    pub breakers: bool,
    /// Bounded priority admission queue with deadline-expiry shedding.
    pub priority_queue: bool,
    /// The shared global resync admission token bucket.
    pub resync_bucket: bool,
    /// The overload governor: Degraded mode pauses rollouts and widens
    /// heartbeat cadence + detector thresholds.
    pub degraded_mode: bool,
}

impl Protections {
    /// Every mechanism enabled — the protected controller.
    pub fn on() -> Protections {
        Protections {
            retry_budget: true,
            jitter: true,
            breakers: true,
            priority_queue: true,
            resync_bucket: true,
            degraded_mode: true,
        }
    }

    /// Every mechanism disabled — the PR-1–5 controller: unbounded FIFO
    /// queue, naive periodic retransmission, no pacing, no degradation.
    pub fn off() -> Protections {
        Protections {
            retry_budget: false,
            jitter: false,
            breakers: false,
            priority_queue: false,
            resync_bucket: false,
            degraded_mode: false,
        }
    }
}

/// Everything one overload chaos run observed.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// The schedule the seed expanded to.
    pub schedule: OverloadSchedule,
    /// The protection toggle the run executed under.
    pub protections: Protections,
    /// Whether the controller reached steady state (queue drained, all
    /// devices digest-converged, goodput restored, mode Normal) within
    /// [`RECOVERY_WINDOW`] of the fault clearing.
    pub recovered: bool,
    /// Milliseconds from fault-clear to steady state, when recovered.
    pub recovery_ms: Option<u64>,
    /// Whether the run was still failing the steady-state check at the
    /// end of the *extended* observation window with trailing goodput
    /// near zero — sustained collapse, the metastable signature.
    pub collapsed: bool,
    /// High-water mark of the admission queue.
    pub peak_queue: usize,
    /// Items shed for capacity (evicted or refused at the door).
    pub shed_capacity: u64,
    /// Items shed expired at pop time (timeout-amplification avoided).
    pub shed_expired: u64,
    /// Expired items *served* (unprotected runs; capacity burned for
    /// responses nobody is waiting for).
    pub stale_served: u64,
    /// Reports acknowledged fresh (the run's goodput).
    pub goodput: u64,
    /// Retransmissions refused by the retry budget.
    pub budget_refused: u64,
    /// Circuit-breaker opens on the resync path.
    pub breaker_opens: u64,
    /// Resync admissions denied (and requeued) by the global bucket.
    pub bucket_denied: u64,
    /// Times the governor entered Degraded.
    pub degraded_entered: u64,
    /// Rollout attempts refused while Degraded.
    pub rollouts_paused: u64,
    /// Devices still digest-diverged at the end of the run.
    pub diverged_at_end: usize,
    /// Invariant violations (protected runs must have none).
    pub violations: Vec<String>,
}

impl OverloadReport {
    /// Whether the run upheld every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// One unacknowledged telemetry report on a device.
#[derive(Debug, Clone)]
struct Report {
    id: u64,
    /// Next retransmission instant.
    next_retry: SimTime,
    /// Previous retransmission gap (decorrelated jitter state).
    prev_gap: SimDuration,
}

/// One device in the harness.
#[derive(Debug)]
struct DeviceState {
    up: bool,
    boot_id: u64,
    /// Live configuration digest; `intended` after a resync.
    digest: u64,
    intended: u64,
    restart_at: Option<SimTime>,
    /// Unacked reports, oldest first, capped at [`PENDING_CAP`].
    pending: VecDeque<Report>,
    next_report: SimTime,
    next_report_id: u64,
}

/// What a queued work item actually is (the queue itself only knows
/// class and deadline; the harness keeps the payload).
#[derive(Debug, Clone, Copy)]
enum Work {
    /// One copy of a device's report. Fresh (younger than the client
    /// timeout) completes the request; stale is waste.
    Telemetry {
        device: usize,
        report_id: u64,
        submitted: SimTime,
    },
    /// Reconcile one diverged device (costs [`COST_RESYNC`]).
    Resync { device: usize },
    /// A planned-change attempt (pure optional load).
    Rollout,
}

impl Work {
    fn cost(&self) -> u64 {
        match self {
            Work::Telemetry { .. } => COST_TELEMETRY,
            Work::Resync { .. } => COST_RESYNC,
            Work::Rollout => COST_ROLLOUT,
        }
    }
}

fn node_of(device: usize) -> NodeId {
    NodeId(device as u32 + 1)
}

/// Runs the full overload scenario for one seed under `protections`.
///
/// Deterministic: the same `(seed, protections)` pair always produces
/// the identical report. Protected-run invariant violations come back
/// as strings (`report.passed()`); an unprotected run records collapse
/// in [`OverloadReport::collapsed`] without calling it a violation —
/// collapse is that cohort's *expected* behaviour.
#[allow(clippy::too_many_lines)]
pub fn run_overload_seed(seed: u64, protections: Protections) -> OverloadReport {
    let schedule = OverloadSchedule::from_seed(seed, FLEET);
    let p = protections;
    let mut rng = StdRng::seed_from_u64(mix(seed ^ 0x0E17_0E17));

    // -- actors ----------------------------------------------------------
    let mut devices: Vec<DeviceState> = (0..FLEET)
        .map(|d| DeviceState {
            up: true,
            boot_id: 1,
            digest: mix(seed ^ d as u64),
            intended: mix(seed ^ d as u64),
            restart_at: None,
            pending: VecDeque::new(),
            next_report: SimTime::ZERO + CADENCE,
            next_report_id: 1,
        })
        .collect();
    let mut queue = if p.priority_queue {
        AdmissionQueue::bounded(QUEUE_CAP)
    } else {
        AdmissionQueue::unbounded()
    };
    let mut ledger: BTreeMap<u64, Work> = BTreeMap::new();
    let mut detector = FailureDetector::default();
    let mut governor = OverloadGovernor::default();
    let mut budget = RetryBudget::default();
    let mut breakers = BreakerSet::default();
    let mut bucket = TokenBucket::new(SimDuration::from_millis(25), 8);
    // Resyncs waiting on the bucket (or a retry after a failed attempt):
    // (not-before instant, device index).
    let mut resync_waiting: Vec<(SimTime, usize)> = Vec::new();
    let mut resync_pending: BTreeSet<usize> = BTreeSet::new();
    // Head-of-line item popped but not yet affordable this tick.
    let mut carry: Option<(SimTime, Work)> = None;

    // -- counters --------------------------------------------------------
    let mut stale_served = 0u64;
    let mut goodput = 0u64;
    let mut rollouts_paused = 0u64;
    let mut degraded_entered = 0u64;
    let mut goodput_ring: VecDeque<(SimTime, u64)> = VecDeque::new();
    let mut recovered_at: Option<SimTime> = None;
    let mut violations: Vec<String> = Vec::new();

    let fault_clear = FAULT_AT + SimDuration::from_millis(schedule.fault_ms);
    let observe_window = if p == Protections::off() {
        COLLAPSE_WINDOW
    } else {
        RECOVERY_WINDOW
    };
    let t_end = fault_clear + observe_window;
    let mass_restart = schedule.scenario == OverloadScenario::MassRestart;

    let mut budget_mu = 0u64;
    let mut next_rollout = SimTime::ZERO + ROLLOUT_PERIOD;
    let mut t = SimTime::ZERO;
    while t < t_end {
        t += TICK;
        let in_fault = t >= FAULT_AT && t < fault_clear;

        // -- scenario fault effects ------------------------------------
        if mass_restart && t >= FAULT_AT && t.saturating_since(FAULT_AT) < TICK {
            for &v in &schedule.victims {
                devices[v].up = false;
                devices[v].restart_at = Some(FAULT_AT + RESTART_DOWNTIME);
                devices[v].pending.clear();
            }
        }
        for (d, dev) in devices.iter_mut().enumerate() {
            if let Some(at) = dev.restart_at {
                if t >= at {
                    dev.up = true;
                    dev.boot_id += 1;
                    // The restart wiped runtime state: diverged until a
                    // resync converges it.
                    dev.digest = mix(seed ^ 0xBAD0 ^ (d as u64) ^ dev.boot_id);
                    dev.restart_at = None;
                    dev.next_report = t;
                }
            }
        }
        let fabric_loss = if in_fault && schedule.scenario == OverloadScenario::Brownout {
            schedule.brownout_loss
        } else {
            schedule.fabric_loss
        };
        let capacity_mu = if in_fault && schedule.scenario == OverloadScenario::SlowController {
            CAPACITY_MU / u64::from(schedule.slow_factor)
        } else {
            CAPACITY_MU
        };
        let base_cadence = if in_fault && schedule.scenario == OverloadScenario::HeartbeatBurst {
            SimDuration::from_nanos(CADENCE.as_nanos() / u64::from(schedule.burst_factor))
        } else {
            CADENCE
        };
        // Graceful degradation widens the cadence devices are told to
        // use — fewer beats to serve while the backlog drains.
        let cadence = if p.degraded_mode {
            governor.heartbeat_period(base_cadence)
        } else {
            base_cadence
        };

        // -- devices: fresh reports + retransmissions ------------------
        for d in 0..FLEET {
            if !devices[d].up {
                continue;
            }
            // Fresh report on cadence (also the device's heartbeat).
            if t >= devices[d].next_report {
                devices[d].next_report = t + cadence;
                let id = devices[d].next_report_id;
                devices[d].next_report_id += 1;
                devices[d].pending.push_back(Report {
                    id,
                    next_retry: t + CLIENT_TIMEOUT,
                    prev_gap: CLIENT_TIMEOUT,
                });
                if devices[d].pending.len() > PENDING_CAP {
                    devices[d].pending.pop_front();
                }
                submit_copy(
                    &mut queue, &mut ledger, &mut detector, &mut rng, &devices, d, id, t,
                    fabric_loss,
                );
            }
            // Retransmit unacked reports whose per-copy timeout lapsed.
            let due: Vec<u64> = devices[d]
                .pending
                .iter()
                .filter(|r| t >= r.next_retry)
                .map(|r| r.id)
                .collect();
            for id in due {
                let granted = if p.retry_budget {
                    // One shared budget keyed by the controller: total
                    // retransmissions stay a fraction of total successes.
                    budget.try_spend(NodeId(0))
                } else {
                    true
                };
                let gap = if p.jitter {
                    let prev = devices[d]
                        .pending
                        .iter()
                        .find(|r| r.id == id)
                        .map(|r| r.prev_gap)
                        .unwrap_or(CLIENT_TIMEOUT);
                    let base = CLIENT_TIMEOUT.as_nanos();
                    let hi = prev.as_nanos().saturating_mul(3).max(base + 1);
                    SimDuration::from_nanos(
                        rng.gen_range(base..hi).min(SimDuration::from_millis(400).as_nanos()),
                    )
                } else {
                    CLIENT_TIMEOUT
                };
                if let Some(r) = devices[d].pending.iter_mut().find(|r| r.id == id) {
                    r.next_retry = t + gap;
                    r.prev_gap = gap;
                }
                if granted {
                    submit_copy(
                        &mut queue, &mut ledger, &mut detector, &mut rng, &devices, d, id, t,
                        fabric_loss,
                    );
                }
            }
        }

        // -- rollout attempts (pure optional load) ---------------------
        if t >= next_rollout {
            next_rollout = t + ROLLOUT_PERIOD;
            if p.degraded_mode && governor.admit_rollout().is_err() {
                rollouts_paused += 1;
            } else if let Ok(id) =
                queue.push(WorkClass::Rollout, None, t, t + ROLLOUT_PERIOD)
            {
                ledger.insert(id, Work::Rollout);
            }
        }

        // -- failure detection + divergence-triggered resync demand ----
        for (node, event) in detector.poll(t) {
            if let HealthEvent::Flapped { .. } = event {
                let d = (node.0 - 1) as usize;
                demand_resync(
                    &mut resync_waiting,
                    &mut resync_pending,
                    &mut bucket,
                    p,
                    d,
                    t,
                );
            }
        }
        for (d, dev) in devices.iter().enumerate() {
            if dev.up
                && dev.digest != dev.intended
                && detector.digest(node_of(d)) == Some(dev.digest)
            {
                demand_resync(
                    &mut resync_waiting,
                    &mut resync_pending,
                    &mut bucket,
                    p,
                    d,
                    t,
                );
            }
        }
        // Move bucket-granted resyncs whose start time arrived into the
        // queue (denied ones sit here too, with their retry_after).
        let due: Vec<usize> = resync_waiting
            .iter()
            .filter(|(at, _)| t >= *at)
            .map(|(_, d)| *d)
            .collect();
        resync_waiting.retain(|(at, _)| t < *at);
        for d in due {
            match queue.push(WorkClass::Resync, Some(node_of(d)), t, SimTime::MAX) {
                Ok(id) => {
                    ledger.insert(id, Work::Resync { device: d });
                }
                Err(_) => resync_waiting.push((t + SimDuration::from_millis(10), d)),
            }
        }

        // -- the controller serves --------------------------------------
        budget_mu = (budget_mu + capacity_mu).min(2 * CAPACITY_MU);
        loop {
            let (popped_at, work) = match carry.take() {
                Some(c) => c,
                None => match queue.pop(t) {
                    Some(item) => match ledger.remove(&item.id) {
                        Some(w) => (item.enqueued_at, w),
                        None => continue,
                    },
                    None => break,
                },
            };
            if budget_mu < work.cost() {
                carry = Some((popped_at, work));
                break;
            }
            match work {
                Work::Telemetry {
                    device,
                    report_id,
                    submitted,
                } => {
                    // A carried-over copy can go stale while waiting for
                    // capacity: the protected controller sheds it here
                    // at zero cost, exactly as the queue would have.
                    let fresh = t.saturating_since(submitted) <= CLIENT_TIMEOUT;
                    if !fresh && p.priority_queue {
                        queue.stats.shed_expired += 1;
                        continue;
                    }
                    budget_mu -= work.cost();
                    if fresh {
                        if let Some(pos) = devices[device]
                            .pending
                            .iter()
                            .position(|r| r.id == report_id)
                        {
                            devices[device].pending.remove(pos);
                            goodput += 1;
                            goodput_ring.push_back((t, 1));
                            budget.on_success(NodeId(0));
                        }
                        // A duplicate fresh copy of an already-acked
                        // report: served, but nothing to complete.
                    } else {
                        // The requester timed this copy out long ago:
                        // capacity burned for a discarded response.
                        stale_served += 1;
                    }
                }
                Work::Resync { device } => {
                    let node = node_of(device);
                    if p.breakers {
                        if let Err(FlexError::CircuitOpen { retry_after, .. }) =
                            breakers.breaker(node).admit(node, t)
                        {
                            // Refused at zero capacity cost: requeue for
                            // after the cooldown.
                            resync_waiting.push((t + retry_after, device));
                            continue;
                        }
                    }
                    budget_mu -= work.cost();
                    let lost = rng.gen_bool(fabric_loss);
                    if devices[device].up && !lost {
                        devices[device].digest = devices[device].intended;
                        resync_pending.remove(&device);
                        if p.breakers {
                            breakers.breaker(node).on_success();
                        }
                    } else {
                        if p.breakers {
                            breakers.breaker(node).on_failure(t);
                        }
                        resync_waiting.push((t + SimDuration::from_millis(50), device));
                    }
                }
                Work::Rollout => {
                    budget_mu -= work.cost();
                }
            }
        }

        // -- governor + detector widening ------------------------------
        if p.degraded_mode {
            let was = governor.mode();
            let now_mode = governor.observe_sheds(t, queue.stats.shed_total());
            if was == ControllerMode::Normal && now_mode == ControllerMode::Degraded {
                degraded_entered += 1;
            }
            detector.widen(governor.detector_scale());
        }

        // -- steady-state check after the fault clears -----------------
        while goodput_ring
            .front()
            .map(|(at, _)| t.saturating_since(*at) > GOODPUT_WINDOW)
            .unwrap_or(false)
        {
            goodput_ring.pop_front();
        }
        if t >= fault_clear && recovered_at.is_none() {
            let trailing: u64 = goodput_ring.iter().map(|(_, n)| n).sum();
            let converged = devices.iter().all(|d| d.up && d.digest == d.intended);
            let drained = queue.len() + usize::from(carry.is_some()) <= FLEET;
            let mode_ok = !p.degraded_mode || governor.mode() == ControllerMode::Normal;
            // ≥ 10% of nominal goodput (160 fresh acks / 500 ms) cleanly
            // separates a draining controller from a collapsed one.
            if converged && drained && mode_ok && trailing >= 16 {
                recovered_at = Some(t);
            }
        }
    }

    // -- verdicts --------------------------------------------------------
    let recovered = recovered_at
        .map(|at| at.saturating_since(fault_clear) <= RECOVERY_WINDOW)
        .unwrap_or(false);
    let trailing: u64 = goodput_ring.iter().map(|(_, n)| n).sum();
    let collapsed = recovered_at.is_none() && trailing < 16;
    let diverged_at_end = devices.iter().filter(|d| d.digest != d.intended).count();

    if p == Protections::on() {
        if !recovered {
            violations.push(format!(
                "protected controller did not recover within {} of fault-clear \
                 (queue {}, diverged {}, trailing goodput {})",
                RECOVERY_WINDOW,
                queue.len(),
                diverged_at_end,
                trailing,
            ));
        }
        if stale_served > 0 {
            violations.push(format!(
                "protected controller served {stale_served} expired items"
            ));
        }
        if diverged_at_end > 0 {
            violations.push(format!(
                "{diverged_at_end} devices still diverged at end of run"
            ));
        }
    }

    OverloadReport {
        schedule,
        protections: p,
        recovered,
        recovery_ms: recovered_at
            .map(|at| at.saturating_since(fault_clear).as_nanos() / 1_000_000),
        collapsed,
        peak_queue: queue.stats.peak_len,
        shed_capacity: queue.stats.shed_capacity,
        shed_expired: queue.stats.shed_expired,
        stale_served,
        goodput,
        budget_refused: budget.refused,
        breaker_opens: breakers.total_opens(),
        bucket_denied: bucket.denied,
        degraded_entered,
        rollouts_paused,
        diverged_at_end,
        violations,
    }
}

/// Submits one copy of report `id` from device `d` toward the
/// controller: the fabric may lose it; a delivered copy bumps the
/// failure detector (liveness is observed at arrival — cheap) and
/// enters the admission queue as telemetry work (processing is what
/// queues). Protected queues may refuse at the door (counted shed); the
/// requester finds out by timeout either way.
#[allow(clippy::too_many_arguments)]
fn submit_copy(
    queue: &mut AdmissionQueue,
    ledger: &mut BTreeMap<u64, Work>,
    detector: &mut FailureDetector,
    rng: &mut StdRng,
    devices: &[DeviceState],
    d: usize,
    report_id: u64,
    t: SimTime,
    fabric_loss: f64,
) {
    if rng.gen_bool(fabric_loss) {
        return;
    }
    detector.observe_heartbeat(node_of(d), t, devices[d].boot_id, devices[d].digest);
    if let Ok(id) = queue.push(
        WorkClass::Telemetry,
        Some(node_of(d)),
        t,
        t + CLIENT_TIMEOUT,
    ) {
        ledger.insert(
            id,
            Work::Telemetry {
                device: d,
                report_id,
                submitted: t,
            },
        );
    }
}

/// Registers demand to resync device `d`. With the global bucket on,
/// admission is paced: a granted reservation queues at its start time,
/// a denial parks the device until `retry_after` — requeued, never
/// dropped. Duplicate demand for a device already pending is absorbed.
fn demand_resync(
    waiting: &mut Vec<(SimTime, usize)>,
    pending: &mut BTreeSet<usize>,
    bucket: &mut TokenBucket,
    p: Protections,
    d: usize,
    t: SimTime,
) {
    if !pending.insert(d) {
        return;
    }
    if p.resync_bucket {
        match bucket.reserve(t, "resync admission") {
            Ok(start) => waiting.push((start, d)),
            Err(FlexError::Backpressure { retry_after, .. }) => {
                waiting.push((t + retry_after, d));
            }
            Err(_) => waiting.push((t + SimDuration::from_millis(25), d)),
        }
    } else {
        waiting.push((t, d));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protections_on_recovers_every_scenario() {
        // Seeds 0..4 cycle through all four scenarios.
        for seed in 0..4u64 {
            let r = run_overload_seed(seed, Protections::on());
            assert!(
                r.passed(),
                "seed {seed} ({}): {:?}",
                r.schedule.scenario.label(),
                r.violations
            );
            assert!(r.recovered, "seed {seed} did not recover");
            assert_eq!(r.stale_served, 0, "protected never serves stale work");
            assert_eq!(r.diverged_at_end, 0);
        }
    }

    #[test]
    fn protections_off_collapses_on_pinned_seeds() {
        // One pinned seed per collapse-prone mechanism; these are the
        // regression oracles — if a "protection-free" controller stops
        // collapsing, the harness has lost its teeth.
        let mut collapsed_seeds = Vec::new();
        for seed in 0..8u64 {
            let r = run_overload_seed(seed, Protections::off());
            if r.collapsed {
                collapsed_seeds.push(seed);
            }
        }
        assert!(
            !collapsed_seeds.is_empty(),
            "no unprotected seed in 0..8 stays collapsed — the trap is gone"
        );
    }

    #[test]
    fn overload_runs_are_deterministic() {
        for (seed, p) in [(3u64, Protections::on()), (3u64, Protections::off())] {
            let a = run_overload_seed(seed, p);
            let b = run_overload_seed(seed, p);
            assert_eq!(a.goodput, b.goodput);
            assert_eq!(a.recovery_ms, b.recovery_ms);
            assert_eq!(a.shed_expired, b.shed_expired);
            assert_eq!(a.stale_served, b.stale_served);
            assert_eq!(a.violations, b.violations);
        }
    }

    #[test]
    fn protection_mechanisms_leave_fingerprints() {
        // Across the first 8 seeds the protected cohort must actually
        // *use* each mechanism — otherwise the sweep proves nothing.
        let reports: Vec<OverloadReport> = (0..8u64)
            .map(|s| run_overload_seed(s, Protections::on()))
            .collect();
        assert!(
            reports.iter().any(|r| r.shed_expired > 0),
            "deadline shedding never fired"
        );
        assert!(
            reports.iter().any(|r| r.budget_refused > 0),
            "the retry budget never refused a retransmission"
        );
        assert!(
            reports.iter().any(|r| r.degraded_entered > 0),
            "the governor never entered Degraded"
        );
        assert!(
            reports.iter().any(|r| r.bucket_denied > 0 || r.rollouts_paused > 0),
            "neither the resync bucket nor the rollout pause engaged"
        );
        // The unprotected cohort burns capacity on stale serves.
        let off: Vec<OverloadReport> = (0..8u64)
            .map(|s| run_overload_seed(s, Protections::off()))
            .collect();
        assert!(
            off.iter().any(|r| r.stale_served > 0),
            "unprotected runs never served stale work"
        );
    }
}
