//! Data-plane RPC (dRPC) services: registry, discovery, and invocation
//! timing.
//!
//! Paper §3.4: "we envision that the infrastructure program will provide a
//! set of data plane RPC services for common utilities (e.g., app migration
//! or state replication). Tenant datapaths need not reinvent the wheel but
//! rather invoke these remote services via data plane RPC calls (dRPCs).
//! … Service discovery occurs either at control plane or via an in-network
//! RPC registry and discovery protocol in real time."
//!
//! The registry resolves service names to providers and models the latency
//! gap the paper motivates: a dRPC executes at data-plane speeds (per-hop
//! microseconds), while escalating the same operation through the
//! controller costs milliseconds.

use flexnet_types::{FlexError, NodeId, Result, SimDuration, SimTime};
use std::collections::BTreeMap;

/// State of a per-device circuit breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow normally; consecutive failures are counted.
    Closed,
    /// Calls are refused without touching the fabric until the cooldown
    /// elapses.
    Open,
    /// The cooldown elapsed: exactly one probe call is admitted. Success
    /// closes the breaker; failure re-opens it (cooldown restarts).
    HalfOpen,
}

impl BreakerState {
    /// A short stable label for logs and test output.
    pub fn label(&self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// A per-device circuit breaker for the controller→device RPC path.
///
/// The retry layer protects a *single exchange*; the breaker protects the
/// *destination*: once `threshold` consecutive exchanges against a device
/// have failed, further calls are refused locally with the retryable
/// [`FlexError::CircuitOpen`] — no fabric messages, no retry-policy
/// deadline burned — until `cooldown` elapses. Then exactly one probe is
/// admitted ([`BreakerState::HalfOpen`]); its success closes the breaker,
/// its failure re-opens it for another cooldown. During a brownout this
/// converts O(attempts × callers) wasted work per dead device into O(1)
/// probe per cooldown.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    threshold: u32,
    cooldown: SimDuration,
    consecutive_failures: u32,
    opened_at: SimTime,
    probe_in_flight: bool,
    /// Times this breaker transitioned Closed/HalfOpen → Open.
    pub opens: u64,
}

impl CircuitBreaker {
    /// A breaker opening after `threshold` consecutive failures, probing
    /// again after `cooldown`.
    pub fn new(threshold: u32, cooldown: SimDuration) -> CircuitBreaker {
        CircuitBreaker {
            state: BreakerState::Closed,
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            opened_at: SimTime::ZERO,
            probe_in_flight: false,
            opens: 0,
        }
    }

    /// The breaker's current state as of `now` (Open lapses to HalfOpen
    /// once the cooldown has elapsed).
    pub fn state(&self, now: SimTime) -> BreakerState {
        match self.state {
            BreakerState::Open if now.saturating_since(self.opened_at) >= self.cooldown => {
                BreakerState::HalfOpen
            }
            s => s,
        }
    }

    /// Asks to place a call to the guarded device at `now`.
    ///
    /// `Ok(())` admits the call — the caller *must* then report the
    /// outcome via [`CircuitBreaker::on_success`] /
    /// [`CircuitBreaker::on_failure`]. `Err(CircuitOpen)` refuses it with
    /// the time until the next probe window.
    pub fn admit(&mut self, node: NodeId, now: SimTime) -> Result<()> {
        match self.state(now) {
            BreakerState::Closed => Ok(()),
            BreakerState::HalfOpen if !self.probe_in_flight => {
                self.state = BreakerState::HalfOpen;
                self.probe_in_flight = true;
                Ok(())
            }
            BreakerState::HalfOpen => Err(FlexError::CircuitOpen {
                node: u64::from(node.raw()),
                retry_after: self.cooldown,
            }),
            BreakerState::Open => Err(FlexError::CircuitOpen {
                node: u64::from(node.raw()),
                retry_after: (self.opened_at + self.cooldown).saturating_since(now),
            }),
        }
    }

    /// Reports a successful exchange: closes the breaker and resets the
    /// failure streak.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.probe_in_flight = false;
    }

    /// Reports a failed exchange at `now`: a closed breaker trips after
    /// `threshold` consecutive failures; a half-open probe failure
    /// re-opens immediately (the cooldown restarts).
    pub fn on_failure(&mut self, now: SimTime) {
        match self.state {
            BreakerState::HalfOpen => {
                self.trip(now);
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.trip(now);
                }
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self, now: SimTime) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.probe_in_flight = false;
        self.consecutive_failures = 0;
        self.opens += 1;
    }
}

/// The controller's per-device breaker panel.
///
/// One [`CircuitBreaker`] per destination, created lazily from a shared
/// configuration. Exchange outcomes are classified: *transport-shaped*
/// failures (timeout, unavailable, no-leader) count against the breaker,
/// while semantic errors (type errors, not-found, conflicts) count as
/// contact — the device answered; the request was wrong.
#[derive(Debug)]
pub struct BreakerSet {
    threshold: u32,
    cooldown: SimDuration,
    breakers: BTreeMap<NodeId, CircuitBreaker>,
}

impl Default for BreakerSet {
    /// Trip after 3 consecutive transport failures; probe every 200 ms.
    fn default() -> BreakerSet {
        BreakerSet::new(3, SimDuration::from_millis(200))
    }
}

impl BreakerSet {
    /// A panel of breakers with shared `threshold` and `cooldown`.
    pub fn new(threshold: u32, cooldown: SimDuration) -> BreakerSet {
        BreakerSet {
            threshold,
            cooldown,
            breakers: BTreeMap::new(),
        }
    }

    /// The breaker guarding `node` (created closed on first use).
    pub fn breaker(&mut self, node: NodeId) -> &mut CircuitBreaker {
        self.breakers
            .entry(node)
            .or_insert_with(|| CircuitBreaker::new(self.threshold, self.cooldown))
    }

    /// The state of `node`'s breaker at `now` (Closed if never used).
    pub fn state(&self, node: NodeId, now: SimTime) -> BreakerState {
        self.breakers
            .get(&node)
            .map(|b| b.state(now))
            .unwrap_or(BreakerState::Closed)
    }

    /// Total Closed/HalfOpen → Open transitions across the panel.
    pub fn total_opens(&self) -> u64 {
        self.breakers.values().map(|b| b.opens).sum()
    }

    /// Whether `e` counts against the breaker (the device could not be
    /// reached or did not answer in time) rather than as contact.
    ///
    /// The adversarial-fabric errors classify with the transport family:
    /// a [`FlexError::ChecksumMismatch`] means the fabric mangled the
    /// exchange (the payload never validly arrived), and
    /// [`FlexError::Unreachable`] means replies cannot cross a one-way
    /// partition — both are fabric faults, not device answers. A
    /// [`FlexError::StaleDuplicate`] is the opposite: the device not
    /// only answered, it had *already done the work* — unambiguous
    /// contact.
    /// Storage errors classify the same way: a failed record checksum
    /// ([`flexnet_types::StorageError::ChecksumFailed`]) means the medium
    /// mangled the exchange with the platter — the storage-shaped twin
    /// of a fabric `ChecksumMismatch` — while a typed `NoSpace` refusal
    /// is a well-formed answer (contact).
    pub fn counts_as_failure(e: &FlexError) -> bool {
        matches!(
            e,
            FlexError::Timeout(_)
                | FlexError::Unavailable(_)
                | FlexError::NoLeader { .. }
                | FlexError::ChecksumMismatch { .. }
                | FlexError::Unreachable { .. }
                | FlexError::Storage(flexnet_types::StorageError::ChecksumFailed { .. })
        )
    }

    /// Runs `call` against `node` under its breaker: admission check
    /// first (refused calls cost nothing and return `CircuitOpen`), then
    /// the outcome is classified and recorded.
    pub fn guarded<T>(
        &mut self,
        node: NodeId,
        now: SimTime,
        call: impl FnOnce() -> Result<T>,
    ) -> Result<T> {
        self.breaker(node).admit(node, now)?;
        let result = call();
        match &result {
            Ok(_) => self.breaker(node).on_success(),
            Err(e) if Self::counts_as_failure(e) => self.breaker(node).on_failure(now),
            Err(_) => self.breaker(node).on_success(),
        }
        result
    }
}

/// Round-trip through control-plane software (the escalation path).
pub const CONTROLLER_RTT: SimDuration = SimDuration::from_millis(2);
/// Per-hop latency of an in-network dRPC message.
pub const DRPC_HOP_LATENCY: SimDuration = SimDuration::from_micros(5);

/// Where a service executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionSite {
    /// Entirely in the data plane of the provider device.
    DataPlane,
    /// In controller software (fallback for devices that can't host it).
    ControlPlane,
}

/// A registered service.
#[derive(Debug, Clone)]
pub struct ServiceRecord {
    /// Service name.
    pub name: String,
    /// Providing device.
    pub provider: NodeId,
    /// Declared parameter count (arity-checked on invoke).
    pub arity: usize,
    /// Where it executes.
    pub site: ExecutionSite,
}

/// One completed invocation (for stats and tests).
#[derive(Debug, Clone)]
pub struct Invocation {
    /// Service name.
    pub service: String,
    /// Calling device.
    pub caller: NodeId,
    /// Arguments.
    pub args: Vec<u64>,
    /// When the call was issued.
    pub at: SimTime,
    /// Modeled completion latency.
    pub latency: SimDuration,
}

/// The in-network service registry.
#[derive(Debug, Default)]
pub struct ServiceRegistry {
    services: BTreeMap<String, ServiceRecord>,
    /// Completed invocations.
    pub log: Vec<Invocation>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    /// Registers a provider. Re-registering an existing name is a conflict
    /// (the composition layer already namespaces tenant services).
    pub fn register(
        &mut self,
        name: &str,
        provider: NodeId,
        arity: usize,
        site: ExecutionSite,
    ) -> Result<()> {
        if self.services.contains_key(name) {
            return Err(FlexError::Conflict(format!(
                "service `{name}` already registered"
            )));
        }
        self.services.insert(
            name.to_string(),
            ServiceRecord {
                name: name.to_string(),
                provider,
                arity,
                site,
            },
        );
        Ok(())
    }

    /// Removes a service (provider program removed).
    pub fn unregister(&mut self, name: &str) -> Result<ServiceRecord> {
        self.services
            .remove(name)
            .ok_or_else(|| FlexError::NotFound(format!("service `{name}`")))
    }

    /// Discovery: resolves a service name.
    pub fn discover(&self, name: &str) -> Option<&ServiceRecord> {
        self.services.get(name)
    }

    /// All registered services.
    pub fn services(&self) -> impl Iterator<Item = &ServiceRecord> {
        self.services.values()
    }

    /// Invokes `name` from `caller`, `hops` network hops from the provider.
    /// Returns the modeled completion latency.
    pub fn invoke(
        &mut self,
        name: &str,
        caller: NodeId,
        args: &[u64],
        hops: u32,
        now: SimTime,
    ) -> Result<SimDuration> {
        let rec = self
            .services
            .get(name)
            .ok_or_else(|| FlexError::NotFound(format!("service `{name}`")))?;
        if rec.arity != args.len() {
            return Err(FlexError::Type(format!(
                "service `{name}` takes {} args, {} given",
                rec.arity,
                args.len()
            )));
        }
        let latency = match rec.site {
            // Request + response across the fabric at data-plane speeds.
            ExecutionSite::DataPlane => DRPC_HOP_LATENCY.saturating_mul(2 * hops.max(1) as u64),
            ExecutionSite::ControlPlane => CONTROLLER_RTT,
        };
        self.log.push(Invocation {
            service: name.to_string(),
            caller,
            args: args.to_vec(),
            at: now,
            latency,
        });
        Ok(latency)
    }

    /// Dispatches a batch of raw device invocations (as drained from the
    /// simulator's invocation log), returning per-call results.
    pub fn dispatch(
        &mut self,
        raw: &[(SimTime, NodeId, String, Vec<u64>)],
        hops: u32,
    ) -> Vec<Result<SimDuration>> {
        raw.iter()
            .map(|(at, caller, name, args)| self.invoke(name, *caller, args, hops, *at))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_discover_invoke() {
        let mut reg = ServiceRegistry::new();
        reg.register("migrate_state", NodeId(2), 1, ExecutionSite::DataPlane)
            .unwrap();
        assert!(reg.discover("migrate_state").is_some());
        assert!(reg.discover("nope").is_none());
        let lat = reg
            .invoke("migrate_state", NodeId(5), &[7], 3, SimTime::ZERO)
            .unwrap();
        assert_eq!(lat, DRPC_HOP_LATENCY.saturating_mul(6));
        assert_eq!(reg.log.len(), 1);
        assert_eq!(reg.log[0].args, vec![7]);
    }

    #[test]
    fn drpc_beats_controller_escalation() {
        let mut reg = ServiceRegistry::new();
        reg.register("fast", NodeId(1), 0, ExecutionSite::DataPlane)
            .unwrap();
        reg.register("slow", NodeId(1), 0, ExecutionSite::ControlPlane)
            .unwrap();
        let fast = reg.invoke("fast", NodeId(2), &[], 4, SimTime::ZERO).unwrap();
        let slow = reg.invoke("slow", NodeId(2), &[], 4, SimTime::ZERO).unwrap();
        assert!(
            slow.as_nanos() > fast.as_nanos() * 10,
            "control-plane {slow} must dwarf dRPC {fast}"
        );
    }

    #[test]
    fn arity_and_duplicates_checked() {
        let mut reg = ServiceRegistry::new();
        reg.register("s", NodeId(1), 2, ExecutionSite::DataPlane)
            .unwrap();
        assert!(reg.register("s", NodeId(2), 2, ExecutionSite::DataPlane).is_err());
        assert!(reg.invoke("s", NodeId(1), &[1], 1, SimTime::ZERO).is_err());
        assert!(reg.invoke("missing", NodeId(1), &[], 1, SimTime::ZERO).is_err());
    }

    #[test]
    fn unregister_roundtrip() {
        let mut reg = ServiceRegistry::new();
        reg.register("s", NodeId(1), 0, ExecutionSite::DataPlane)
            .unwrap();
        let rec = reg.unregister("s").unwrap();
        assert_eq!(rec.provider, NodeId(1));
        assert!(reg.unregister("s").is_err());
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let mut b = CircuitBreaker::new(3, SimDuration::from_millis(200));
        let n = NodeId(5);
        let t0 = SimTime::from_secs(1);
        assert_eq!(b.state(t0), BreakerState::Closed);
        // Two failures: still closed (threshold is 3).
        b.admit(n, t0).unwrap();
        b.on_failure(t0);
        b.admit(n, t0).unwrap();
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Closed);
        // Third consecutive failure trips it.
        b.admit(n, t0).unwrap();
        b.on_failure(t0);
        assert_eq!(b.state(t0), BreakerState::Open);
        assert_eq!(b.opens, 1);
        // Refused during cooldown, with the remaining wait.
        let err = b.admit(n, t0 + SimDuration::from_millis(50)).unwrap_err();
        match err {
            FlexError::CircuitOpen { node, retry_after } => {
                assert_eq!(node, 5);
                assert_eq!(retry_after, SimDuration::from_millis(150));
            }
            other => panic!("expected CircuitOpen, got {other:?}"),
        }
        assert!(err.is_retryable());
        // Cooldown elapsed: exactly one probe is admitted.
        let t1 = t0 + SimDuration::from_millis(200);
        assert_eq!(b.state(t1), BreakerState::HalfOpen);
        b.admit(n, t1).unwrap();
        assert!(
            matches!(b.admit(n, t1), Err(FlexError::CircuitOpen { .. })),
            "second concurrent probe refused"
        );
        // Probe success closes the breaker and resets the streak.
        b.on_success();
        assert_eq!(b.state(t1), BreakerState::Closed);
        b.admit(n, t1).unwrap();
        b.on_failure(t1);
        assert_eq!(b.state(t1), BreakerState::Closed, "streak was reset");
    }

    #[test]
    fn failed_probe_reopens_for_a_fresh_cooldown() {
        let mut b = CircuitBreaker::new(1, SimDuration::from_millis(100));
        let n = NodeId(2);
        b.admit(n, SimTime::ZERO).unwrap();
        b.on_failure(SimTime::ZERO); // threshold 1: open immediately
        let t1 = SimTime::from_millis(100);
        b.admit(n, t1).unwrap(); // half-open probe
        b.on_failure(t1); // probe failed
        assert_eq!(b.opens, 2);
        assert_eq!(b.state(t1 + SimDuration::from_millis(99)), BreakerState::Open);
        assert_eq!(
            b.state(t1 + SimDuration::from_millis(100)),
            BreakerState::HalfOpen,
            "cooldown restarted from the failed probe"
        );
    }

    #[test]
    fn breaker_set_guards_calls_and_classifies_outcomes() {
        let mut set = BreakerSet::new(2, SimDuration::from_millis(100));
        let n = NodeId(7);
        let t = SimTime::from_secs(1);
        // Semantic errors are contact, not failure: never trips.
        for _ in 0..5 {
            let r: Result<()> = set.guarded(n, t, || Err(FlexError::Type("bad".into())));
            assert!(matches!(r, Err(FlexError::Type(_))));
        }
        assert_eq!(set.state(n, t), BreakerState::Closed);
        // Transport failures trip after the threshold.
        for _ in 0..2 {
            let r: Result<()> = set.guarded(n, t, || Err(FlexError::Timeout("lost".into())));
            assert!(r.is_err());
        }
        assert_eq!(set.state(n, t), BreakerState::Open);
        assert_eq!(set.total_opens(), 1);
        // While open, the call closure is never invoked.
        let mut invoked = false;
        let r: Result<()> = set.guarded(n, t + SimDuration::from_millis(10), || {
            invoked = true;
            Ok(())
        });
        assert!(matches!(r, Err(FlexError::CircuitOpen { .. })));
        assert!(!invoked, "open breaker must not touch the fabric");
        // Other devices are unaffected.
        assert!(set.guarded(NodeId(8), t, || Ok(42)).is_ok());
        // After the cooldown, the probe runs and closes the breaker.
        let t2 = t + SimDuration::from_millis(120);
        assert_eq!(set.guarded(n, t2, || Ok(1)).unwrap(), 1);
        assert_eq!(set.state(n, t2), BreakerState::Closed);
    }

    #[test]
    fn storage_errors_classify_like_their_transport_twins() {
        use flexnet_types::StorageError;
        // A failed record checksum is the storage twin of a fabric
        // ChecksumMismatch: medium fault, counts against the breaker.
        assert!(BreakerSet::counts_as_failure(&FlexError::Storage(
            StorageError::ChecksumFailed {
                segment: 1,
                want: 2,
                got: 3
            }
        )));
        // Typed refusals and recovery outcomes are well-formed answers.
        assert!(!BreakerSet::counts_as_failure(&FlexError::Storage(
            StorageError::NoSpace {
                needed: 64,
                capacity: 32
            }
        )));
        assert!(!BreakerSet::counts_as_failure(&FlexError::Storage(
            StorageError::TornRecord {
                segment: 0,
                offset: 12
            }
        )));
        assert!(!BreakerSet::counts_as_failure(&FlexError::Storage(
            StorageError::StaleSnapshot { generation: 2 }
        )));
    }

    #[test]
    fn adversarial_errors_classify_like_transport() {
        // Fabric faults count against the breaker…
        assert!(BreakerSet::counts_as_failure(&FlexError::ChecksumMismatch {
            want: 1,
            got: 2
        }));
        assert!(BreakerSet::counts_as_failure(&FlexError::Unreachable { node: 3 }));
        // …but an absorbed duplicate is unambiguous contact.
        assert!(!BreakerSet::counts_as_failure(&FlexError::StaleDuplicate {
            token: 7
        }));

        // Three consecutive corrupted exchanges trip the breaker exactly
        // like three timeouts would.
        let mut set = BreakerSet::default();
        let n = NodeId(4);
        let t = SimTime::from_secs(1);
        for _ in 0..3 {
            let r: Result<()> = set.guarded(n, t, || {
                Err(FlexError::ChecksumMismatch { want: 1, got: 2 })
            });
            assert!(r.is_err());
        }
        assert_eq!(set.state(n, t), BreakerState::Open);
        // A stream of stale duplicates never trips anything.
        let mut set2 = BreakerSet::default();
        for _ in 0..10 {
            let r: Result<()> =
                set2.guarded(n, t, || Err(FlexError::StaleDuplicate { token: 9 }));
            assert!(r.is_err());
        }
        assert_eq!(set2.state(n, t), BreakerState::Closed);
    }

    #[test]
    fn dispatch_batches_device_logs() {
        let mut reg = ServiceRegistry::new();
        reg.register("mig", NodeId(1), 1, ExecutionSite::DataPlane)
            .unwrap();
        let raw = vec![
            (SimTime::ZERO, NodeId(3), "mig".to_string(), vec![9]),
            (SimTime::ZERO, NodeId(3), "unknown".to_string(), vec![]),
        ];
        let results = reg.dispatch(&raw, 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert_eq!(reg.log.len(), 1);
    }
}
