//! Data-plane RPC (dRPC) services: registry, discovery, and invocation
//! timing.
//!
//! Paper §3.4: "we envision that the infrastructure program will provide a
//! set of data plane RPC services for common utilities (e.g., app migration
//! or state replication). Tenant datapaths need not reinvent the wheel but
//! rather invoke these remote services via data plane RPC calls (dRPCs).
//! … Service discovery occurs either at control plane or via an in-network
//! RPC registry and discovery protocol in real time."
//!
//! The registry resolves service names to providers and models the latency
//! gap the paper motivates: a dRPC executes at data-plane speeds (per-hop
//! microseconds), while escalating the same operation through the
//! controller costs milliseconds.

use flexnet_types::{FlexError, NodeId, Result, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Round-trip through control-plane software (the escalation path).
pub const CONTROLLER_RTT: SimDuration = SimDuration::from_millis(2);
/// Per-hop latency of an in-network dRPC message.
pub const DRPC_HOP_LATENCY: SimDuration = SimDuration::from_micros(5);

/// Where a service executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionSite {
    /// Entirely in the data plane of the provider device.
    DataPlane,
    /// In controller software (fallback for devices that can't host it).
    ControlPlane,
}

/// A registered service.
#[derive(Debug, Clone)]
pub struct ServiceRecord {
    /// Service name.
    pub name: String,
    /// Providing device.
    pub provider: NodeId,
    /// Declared parameter count (arity-checked on invoke).
    pub arity: usize,
    /// Where it executes.
    pub site: ExecutionSite,
}

/// One completed invocation (for stats and tests).
#[derive(Debug, Clone)]
pub struct Invocation {
    /// Service name.
    pub service: String,
    /// Calling device.
    pub caller: NodeId,
    /// Arguments.
    pub args: Vec<u64>,
    /// When the call was issued.
    pub at: SimTime,
    /// Modeled completion latency.
    pub latency: SimDuration,
}

/// The in-network service registry.
#[derive(Debug, Default)]
pub struct ServiceRegistry {
    services: BTreeMap<String, ServiceRecord>,
    /// Completed invocations.
    pub log: Vec<Invocation>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> ServiceRegistry {
        ServiceRegistry::default()
    }

    /// Registers a provider. Re-registering an existing name is a conflict
    /// (the composition layer already namespaces tenant services).
    pub fn register(
        &mut self,
        name: &str,
        provider: NodeId,
        arity: usize,
        site: ExecutionSite,
    ) -> Result<()> {
        if self.services.contains_key(name) {
            return Err(FlexError::Conflict(format!(
                "service `{name}` already registered"
            )));
        }
        self.services.insert(
            name.to_string(),
            ServiceRecord {
                name: name.to_string(),
                provider,
                arity,
                site,
            },
        );
        Ok(())
    }

    /// Removes a service (provider program removed).
    pub fn unregister(&mut self, name: &str) -> Result<ServiceRecord> {
        self.services
            .remove(name)
            .ok_or_else(|| FlexError::NotFound(format!("service `{name}`")))
    }

    /// Discovery: resolves a service name.
    pub fn discover(&self, name: &str) -> Option<&ServiceRecord> {
        self.services.get(name)
    }

    /// All registered services.
    pub fn services(&self) -> impl Iterator<Item = &ServiceRecord> {
        self.services.values()
    }

    /// Invokes `name` from `caller`, `hops` network hops from the provider.
    /// Returns the modeled completion latency.
    pub fn invoke(
        &mut self,
        name: &str,
        caller: NodeId,
        args: &[u64],
        hops: u32,
        now: SimTime,
    ) -> Result<SimDuration> {
        let rec = self
            .services
            .get(name)
            .ok_or_else(|| FlexError::NotFound(format!("service `{name}`")))?;
        if rec.arity != args.len() {
            return Err(FlexError::Type(format!(
                "service `{name}` takes {} args, {} given",
                rec.arity,
                args.len()
            )));
        }
        let latency = match rec.site {
            // Request + response across the fabric at data-plane speeds.
            ExecutionSite::DataPlane => DRPC_HOP_LATENCY.saturating_mul(2 * hops.max(1) as u64),
            ExecutionSite::ControlPlane => CONTROLLER_RTT,
        };
        self.log.push(Invocation {
            service: name.to_string(),
            caller,
            args: args.to_vec(),
            at: now,
            latency,
        });
        Ok(latency)
    }

    /// Dispatches a batch of raw device invocations (as drained from the
    /// simulator's invocation log), returning per-call results.
    pub fn dispatch(
        &mut self,
        raw: &[(SimTime, NodeId, String, Vec<u64>)],
        hops: u32,
    ) -> Vec<Result<SimDuration>> {
        raw.iter()
            .map(|(at, caller, name, args)| self.invoke(name, *caller, args, hops, *at))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_discover_invoke() {
        let mut reg = ServiceRegistry::new();
        reg.register("migrate_state", NodeId(2), 1, ExecutionSite::DataPlane)
            .unwrap();
        assert!(reg.discover("migrate_state").is_some());
        assert!(reg.discover("nope").is_none());
        let lat = reg
            .invoke("migrate_state", NodeId(5), &[7], 3, SimTime::ZERO)
            .unwrap();
        assert_eq!(lat, DRPC_HOP_LATENCY.saturating_mul(6));
        assert_eq!(reg.log.len(), 1);
        assert_eq!(reg.log[0].args, vec![7]);
    }

    #[test]
    fn drpc_beats_controller_escalation() {
        let mut reg = ServiceRegistry::new();
        reg.register("fast", NodeId(1), 0, ExecutionSite::DataPlane)
            .unwrap();
        reg.register("slow", NodeId(1), 0, ExecutionSite::ControlPlane)
            .unwrap();
        let fast = reg.invoke("fast", NodeId(2), &[], 4, SimTime::ZERO).unwrap();
        let slow = reg.invoke("slow", NodeId(2), &[], 4, SimTime::ZERO).unwrap();
        assert!(
            slow.as_nanos() > fast.as_nanos() * 10,
            "control-plane {slow} must dwarf dRPC {fast}"
        );
    }

    #[test]
    fn arity_and_duplicates_checked() {
        let mut reg = ServiceRegistry::new();
        reg.register("s", NodeId(1), 2, ExecutionSite::DataPlane)
            .unwrap();
        assert!(reg.register("s", NodeId(2), 2, ExecutionSite::DataPlane).is_err());
        assert!(reg.invoke("s", NodeId(1), &[1], 1, SimTime::ZERO).is_err());
        assert!(reg.invoke("missing", NodeId(1), &[], 1, SimTime::ZERO).is_err());
    }

    #[test]
    fn unregister_roundtrip() {
        let mut reg = ServiceRegistry::new();
        reg.register("s", NodeId(1), 0, ExecutionSite::DataPlane)
            .unwrap();
        let rec = reg.unregister("s").unwrap();
        assert_eq!(rec.provider, NodeId(1));
        assert!(reg.unregister("s").is_err());
    }

    #[test]
    fn dispatch_batches_device_logs() {
        let mut reg = ServiceRegistry::new();
        reg.register("mig", NodeId(1), 1, ExecutionSite::DataPlane)
            .unwrap();
        let raw = vec![
            (SimTime::ZERO, NodeId(3), "mig".to_string(), vec![9]),
            (SimTime::ZERO, NodeId(3), "unknown".to_string(), vec![]),
        ];
        let results = reg.dispatch(&raw, 2);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert_eq!(reg.log.len(), 1);
    }
}
