//! Tenant lifecycle management.
//!
//! Paper §3 (scenario): "individual tenants dynamically arrive and depart
//! … Tenants provide 'extension' programs that are dynamically injected
//! into and removed from the network. … the extensions are admitted by the
//! network owner after access control validation. Extension programs are
//! isolated … via, e.g., VLAN-based isolation mechanisms. Tenant arrivals
//! trigger the generation of new VLAN configurations from the control
//! plane, as well as infrastructure program changes to accommodate the new
//! extensions. Departures achieve opposite effects."

use flexnet_lang::compose::{compose, CompositionReport, TenantExtension};
use flexnet_lang::diff::ProgramBundle;
use flexnet_types::{FlexError, Result, TenantId, VlanId};
use std::collections::BTreeMap;

/// Manages tenant extensions and VLAN assignments over one infrastructure
/// program.
#[derive(Debug)]
pub struct TenantManager {
    infra: ProgramBundle,
    extensions: BTreeMap<TenantId, TenantExtension>,
    next_vlan: u16,
    free_vlans: Vec<VlanId>,
}

impl TenantManager {
    /// A manager over `infra`.
    pub fn new(infra: ProgramBundle) -> TenantManager {
        TenantManager {
            infra,
            extensions: BTreeMap::new(),
            next_vlan: VlanId::MIN.0 + 99, // leave low VLANs to the operator
            free_vlans: Vec::new(),
        }
    }

    /// The infrastructure bundle.
    pub fn infra(&self) -> &ProgramBundle {
        &self.infra
    }

    /// Replaces the infrastructure program (an operator-initiated update);
    /// callers then [`TenantManager::composed`] and push the result.
    pub fn update_infra(&mut self, infra: ProgramBundle) {
        self.infra = infra;
    }

    /// Active tenants.
    pub fn tenants(&self) -> Vec<TenantId> {
        self.extensions.keys().copied().collect()
    }

    /// The VLAN assigned to `tenant`.
    pub fn vlan_of(&self, tenant: TenantId) -> Option<VlanId> {
        self.extensions.get(&tenant).map(|e| e.vlan)
    }

    fn allocate_vlan(&mut self) -> Result<VlanId> {
        if let Some(v) = self.free_vlans.pop() {
            return Ok(v);
        }
        let v = VlanId(self.next_vlan);
        if !v.is_valid() {
            return Err(FlexError::Compile("VLAN space exhausted".into()));
        }
        self.next_vlan += 1;
        Ok(v)
    }

    /// Admits a tenant extension: allocates a VLAN and validates the
    /// extension by test-composing it with the current set (access control
    /// happens inside composition). Returns the assigned VLAN.
    pub fn arrive(&mut self, tenant: TenantId, bundle: ProgramBundle) -> Result<VlanId> {
        if self.extensions.contains_key(&tenant) {
            return Err(FlexError::Conflict(format!(
                "{tenant} already has an extension installed"
            )));
        }
        let vlan = self.allocate_vlan()?;
        let ext = TenantExtension {
            tenant,
            vlan,
            bundle,
        };
        // Validate by composing with the would-be extension set.
        let mut all: Vec<TenantExtension> = self.extensions.values().cloned().collect();
        all.push(ext.clone());
        compose(&self.infra, &all).inspect_err(|_| {
            // Roll the VLAN back on rejection.
            self.free_vlans.push(vlan);
        })?;
        self.extensions.insert(tenant, ext);
        Ok(vlan)
    }

    /// Removes a tenant's extension, releasing its VLAN.
    pub fn depart(&mut self, tenant: TenantId) -> Result<()> {
        let ext = self
            .extensions
            .remove(&tenant)
            .ok_or_else(|| FlexError::NotFound(format!("{tenant}")))?;
        self.free_vlans.push(ext.vlan);
        Ok(())
    }

    /// The current composed program (infra + all admitted extensions) —
    /// what the data plane should be running.
    pub fn composed(&self) -> Result<(ProgramBundle, CompositionReport)> {
        let all: Vec<TenantExtension> = self.extensions.values().cloned().collect();
        let c = compose(&self.infra, &all)?;
        Ok((c.bundle, c.report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexnet_lang::parser::parse_source;

    fn bundle(src: &str) -> ProgramBundle {
        let file = parse_source(src).unwrap();
        ProgramBundle {
            headers: file.headers,
            program: file.programs.into_iter().next().unwrap(),
        }
    }

    fn infra() -> ProgramBundle {
        bundle(
            "program infra kind switch {
               counter total;
               handler ingress(pkt) { count(total); forward(0); }
             }",
        )
    }

    fn ext(name: &str) -> ProgramBundle {
        bundle(&format!(
            "program {name} kind any {{
               counter hits;
               handler ingress(pkt) {{ count(hits); }}
             }}"
        ))
    }

    #[test]
    fn arrive_assigns_distinct_vlans() {
        let mut tm = TenantManager::new(infra());
        let v1 = tm.arrive(TenantId(1), ext("a")).unwrap();
        let v2 = tm.arrive(TenantId(2), ext("b")).unwrap();
        assert_ne!(v1, v2);
        assert!(v1.is_valid() && v2.is_valid());
        assert_eq!(tm.tenants().len(), 2);
        assert_eq!(tm.vlan_of(TenantId(1)), Some(v1));
    }

    #[test]
    fn composed_grows_and_shrinks_with_churn() {
        let mut tm = TenantManager::new(infra());
        let (base, _) = tm.composed().unwrap();
        let base_states = base.program.states.len();

        tm.arrive(TenantId(1), ext("a")).unwrap();
        tm.arrive(TenantId(2), ext("b")).unwrap();
        let (grown, report) = tm.composed().unwrap();
        assert_eq!(report.tenants, 2);
        assert_eq!(grown.program.states.len(), base_states + 2);

        tm.depart(TenantId(1)).unwrap();
        let (shrunk, _) = tm.composed().unwrap();
        assert_eq!(shrunk.program.states.len(), base_states + 1);
        assert!(shrunk.program.state("t2_hits").is_some());
        assert!(shrunk.program.state("t1_hits").is_none());
    }

    #[test]
    fn duplicate_arrival_rejected() {
        let mut tm = TenantManager::new(infra());
        tm.arrive(TenantId(1), ext("a")).unwrap();
        assert!(tm.arrive(TenantId(1), ext("b")).is_err());
    }

    #[test]
    fn depart_unknown_rejected_and_vlan_reused() {
        let mut tm = TenantManager::new(infra());
        assert!(tm.depart(TenantId(9)).is_err());
        let v1 = tm.arrive(TenantId(1), ext("a")).unwrap();
        tm.depart(TenantId(1)).unwrap();
        let v2 = tm.arrive(TenantId(2), ext("b")).unwrap();
        assert_eq!(v1, v2, "released VLAN is recycled");
    }

    #[test]
    fn malicious_extension_rejected_and_vlan_released() {
        let mut tm = TenantManager::new(infra());
        // References infra state `total` -> denied by composition.
        let evil = bundle("program evil { handler ingress(pkt) { count(total); } }");
        let before = tm.tenants().len();
        assert!(tm.arrive(TenantId(3), evil).is_err());
        assert_eq!(tm.tenants().len(), before);
        // The VLAN that was tentatively allocated is reused next.
        let v = tm.arrive(TenantId(4), ext("ok")).unwrap();
        assert_eq!(v, VlanId(100));
    }

    #[test]
    fn composed_still_verifies_under_churn() {
        let mut tm = TenantManager::new(infra());
        for t in 1..=5u32 {
            tm.arrive(TenantId(t), ext(&format!("x{t}"))).unwrap();
        }
        tm.depart(TenantId(3)).unwrap();
        let (bundle, _) = tm.composed().unwrap();
        let reg =
            flexnet_lang::headers::HeaderRegistry::with_user_headers(&bundle.headers).unwrap();
        flexnet_lang::typecheck::check_program(&bundle.program, &reg).unwrap();
        flexnet_lang::verifier::verify_program(&bundle.program, &reg).unwrap();
    }
}
