//! Elastic scaling of in-network apps.
//!
//! Paper §1.1 (real-time security): defenses are "elastic, capable of
//! scaling, replicating, and migrating to other locations based on changing
//! attack strengths and patterns"; §3.4 lists "elastic app scaling" among
//! the controller's duties.
//!
//! [`ElasticScaler`] turns load observations into replica-count decisions
//! with hysteresis (distinct scale-out and scale-in thresholds) and a
//! cooldown, so bursty attack traffic doesn't thrash the data plane with
//! reconfigurations.

use flexnet_types::{SimDuration, SimTime};

/// Scaling policy for one app.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPolicy {
    /// Packets/second one replica handles comfortably.
    pub per_replica_pps: u64,
    /// Scale out when offered load exceeds this fraction of capacity.
    pub out_threshold: f64,
    /// Scale in when offered load falls below this fraction of capacity.
    pub in_threshold: f64,
    /// Minimum replica count (0 = app may be fully retired when idle).
    pub min_replicas: usize,
    /// Maximum replica count.
    pub max_replicas: usize,
    /// Minimum time between scaling actions.
    pub cooldown: SimDuration,
}

impl Default for ScalingPolicy {
    fn default() -> Self {
        ScalingPolicy {
            per_replica_pps: 1_000_000,
            out_threshold: 0.8,
            in_threshold: 0.3,
            min_replicas: 1,
            max_replicas: 8,
            cooldown: SimDuration::from_millis(500),
        }
    }
}

/// A scaling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// No change.
    Hold,
    /// Add this many replicas.
    Out(usize),
    /// Remove this many replicas.
    In(usize),
}

/// Tracks load and emits scaling decisions for one app.
#[derive(Debug)]
pub struct ElasticScaler {
    policy: ScalingPolicy,
    replicas: usize,
    last_action: SimTime,
    acted_once: bool,
}

impl ElasticScaler {
    /// A scaler starting at `initial_replicas`.
    pub fn new(policy: ScalingPolicy, initial_replicas: usize) -> ElasticScaler {
        ElasticScaler {
            policy,
            replicas: initial_replicas.clamp(policy.min_replicas, policy.max_replicas.max(1)),
            last_action: SimTime::ZERO,
            acted_once: false,
        }
    }

    /// Current replica count.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The replica count that would comfortably serve `offered_pps`.
    fn desired(&self, offered_pps: u64) -> usize {
        let per = self.policy.per_replica_pps.max(1) as f64;
        let needed = (offered_pps as f64 / (per * self.policy.out_threshold)).ceil() as usize;
        needed.clamp(self.policy.min_replicas, self.policy.max_replicas)
    }

    /// Observes the offered load and decides. The decision is applied to
    /// the internal replica count when it is not `Hold`.
    pub fn observe(&mut self, offered_pps: u64, now: SimTime) -> ScaleDecision {
        if self.acted_once
            && now.saturating_since(self.last_action) < self.policy.cooldown
        {
            return ScaleDecision::Hold;
        }
        let capacity = self.replicas as u64 * self.policy.per_replica_pps;
        let util = if offered_pps == 0 {
            0.0
        } else if capacity == 0 {
            f64::INFINITY
        } else {
            offered_pps as f64 / capacity as f64
        };
        if util > self.policy.out_threshold && self.replicas < self.policy.max_replicas {
            let target = self.desired(offered_pps).max(self.replicas + 1);
            let add = target - self.replicas;
            self.replicas = target;
            self.last_action = now;
            self.acted_once = true;
            return ScaleDecision::Out(add);
        }
        if util < self.policy.in_threshold && self.replicas > self.policy.min_replicas {
            let target = self.desired(offered_pps).min(self.replicas.saturating_sub(1));
            let target = target.max(self.policy.min_replicas);
            let remove = self.replicas - target;
            if remove > 0 {
                self.replicas = target;
                self.last_action = now;
                self.acted_once = true;
                return ScaleDecision::In(remove);
            }
        }
        ScaleDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ScalingPolicy {
        ScalingPolicy {
            per_replica_pps: 1000,
            out_threshold: 0.8,
            in_threshold: 0.3,
            min_replicas: 1,
            max_replicas: 4,
            cooldown: SimDuration::from_millis(100),
        }
    }

    #[test]
    fn scales_out_under_attack_ramp() {
        let mut s = ElasticScaler::new(policy(), 1);
        // 3500 pps needs ceil(3500/800) = 5 -> clamped to 4.
        let d = s.observe(3500, SimTime::from_millis(0));
        assert_eq!(d, ScaleDecision::Out(3));
        assert_eq!(s.replicas(), 4);
    }

    #[test]
    fn scales_in_when_attack_subsides() {
        let mut s = ElasticScaler::new(policy(), 4);
        // 100 pps over 4000 capacity = 2.5% -> scale in.
        let d = s.observe(100, SimTime::from_secs(1));
        assert!(matches!(d, ScaleDecision::In(_)));
        assert!(s.replicas() < 4);
    }

    #[test]
    fn hysteresis_holds_in_the_middle_band() {
        let mut s = ElasticScaler::new(policy(), 2);
        // 1000 pps over 2000 capacity = 50%: between 30% and 80%.
        assert_eq!(s.observe(1000, SimTime::from_secs(1)), ScaleDecision::Hold);
        assert_eq!(s.replicas(), 2);
    }

    #[test]
    fn cooldown_suppresses_thrash() {
        let mut s = ElasticScaler::new(policy(), 1);
        assert!(matches!(s.observe(5000, SimTime::from_millis(10)), ScaleDecision::Out(_)));
        // Immediately after, load drops — but cooldown holds.
        assert_eq!(s.observe(10, SimTime::from_millis(20)), ScaleDecision::Hold);
        // After cooldown, scale-in proceeds.
        assert!(matches!(
            s.observe(10, SimTime::from_millis(200)),
            ScaleDecision::In(_)
        ));
    }

    #[test]
    fn respects_min_and_max() {
        let mut s = ElasticScaler::new(policy(), 4);
        assert_eq!(s.observe(1_000_000, SimTime::from_secs(1)), ScaleDecision::Hold);
        assert_eq!(s.replicas(), 4, "already at max");
        let mut s = ElasticScaler::new(policy(), 1);
        assert_eq!(s.observe(0, SimTime::from_secs(1)), ScaleDecision::Hold);
        assert_eq!(s.replicas(), 1, "already at min");
    }

    #[test]
    fn min_zero_allows_full_retirement() {
        let mut p = policy();
        p.min_replicas = 0;
        let mut s = ElasticScaler::new(p, 1);
        assert_eq!(s.observe(0, SimTime::from_secs(1)), ScaleDecision::In(1));
        assert_eq!(s.replicas(), 0, "defense retired when attack gone");
        // Attack returns: scale out from zero.
        assert!(matches!(
            s.observe(5000, SimTime::from_secs(2)),
            ScaleDecision::Out(_)
        ));
    }
}
