//! The recovery coordinator: after a controller failover (or restart),
//! replay the replicated intent log and put every transaction — and every
//! device — back into a consistent state.
//!
//! Recovery runs in three passes:
//!
//! 1. **Fence** — every reachable device observes the new controller
//!    epoch ([`flexnet_dataplane::Device::observe_epoch`]). From this
//!    point the deposed coordinator's prepare/commit/abort commands are
//!    rejected with [`FlexError::Fenced`], so recovery cannot race a
//!    zombie.
//! 2. **Resolve** — for each transaction whose last durable record is not
//!    terminal, apply the in-doubt resolution rule (`DESIGN.md` §8):
//!    `Intent` or `Prepared` → roll **back** (presumed abort: no flip was
//!    ever scheduled, so aborting is always safe); `FlipScheduled` → roll
//!    **forward** (a participant may already have flipped, so only commit
//!    preserves the all-or-nothing guarantee). Devices whose shadow died
//!    with a crash are re-prepared from the caller's target directory.
//!    Each resolution is journaled (`Aborted`/`Committed`) before its
//!    commands are sent, keeping the write-ahead rule.
//! 3. **Sweep** — any remaining tagged shadow is an orphan (its
//!    transaction already terminal, its decision command lost): committed
//!    transactions release it, everything else discards it.
//!
//! The whole procedure is idempotent: a second run finds every
//! transaction terminal and no orphans, and changes nothing.

use crate::retry::{command_rtt, with_retry, LossyFabric, RetryPolicy};
use crate::wal::{IntentRecord, ReplicatedIntentLog};
use flexnet_dataplane::TxnTag;
use flexnet_lang::diff::ProgramBundle;
use flexnet_sim::Simulation;
use flexnet_types::{FlexError, NodeId, Result, SimTime};
use std::collections::BTreeMap;

/// How one in-doubt transaction was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnResolution {
    /// The flip was already scheduled: every participant was committed.
    RolledForward,
    /// No flip was scheduled: every participant was rolled back.
    RolledBack,
}

/// The recovery coordinator's account of one recovery pass.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The new controller epoch recovery fenced the data plane with.
    pub epoch: u64,
    /// Devices that accepted the fence.
    pub fenced: usize,
    /// Devices that could not be reached (down throughout recovery).
    pub unreachable: Vec<NodeId>,
    /// Per-transaction resolutions, in txn-id order (in-doubt ones only).
    pub resolutions: Vec<(u64, TxnResolution)>,
    /// Devices whose lost shadow was re-prepared during roll-forward.
    pub reprepared: usize,
    /// Shadows the log said existed but that were gone on-device — the
    /// participant restarted (state wiped) or never received its prepare.
    /// These are tolerated, not errors: rollback becomes a no-op and
    /// roll-forward re-prepares from the target directory.
    pub wiped_shadows: usize,
    /// Orphaned shadows discarded (or released) by the final sweep.
    pub orphans_swept: usize,
    /// Control messages sent (attempts, including lost ones).
    pub messages: u32,
    /// When recovery finished.
    pub finished_at: SimTime,
}

impl RecoveryReport {
    /// Whether this pass found nothing to do (the idempotency signature).
    pub fn is_noop(&self) -> bool {
        self.resolutions.is_empty()
            && self.orphans_swept == 0
            && self.reprepared == 0
            && self.wiped_shadows == 0
    }
}

/// The per-transaction target programs, for re-preparing devices whose
/// shadow died with a crash: `txn id → [(device, bundle)]`. Coordinators
/// persist this next to the log (here: the chaos harness keeps it).
pub type TargetDirectory = BTreeMap<u64, Vec<(NodeId, ProgramBundle)>>;

/// Replays the intent log and resolves every in-doubt transaction.
///
/// `devices` names every data-plane participant to fence and sweep;
/// `targets` supplies the per-transaction programs for roll-forward
/// re-preparation. The log must have a leader (run
/// [`ReplicatedIntentLog::elect`] after a coordinator crash first).
#[allow(clippy::too_many_arguments)]
pub fn recover(
    sim: &mut Simulation,
    log: &mut ReplicatedIntentLog,
    targets: &TargetDirectory,
    devices: &[NodeId],
    now: SimTime,
    fabric: &mut LossyFabric,
    policy: &RetryPolicy,
) -> Result<RecoveryReport> {
    let epoch = log.epoch()?;
    let mut t = now;
    let mut messages = 0u32;
    let mut unreachable: Vec<NodeId> = Vec::new();

    // Pass 1: fence. After this, the old coordinator's epoch is dead on
    // every reachable device.
    let mut fenced = 0usize;
    for node in devices {
        let mut acked = false;
        let out = with_retry(policy, fabric, t, command_rtt(), |_| {
            if acked {
                return Ok(());
            }
            let dev = &mut sim
                .topo
                .node_mut(*node)
                .ok_or_else(|| FlexError::Sim(format!("fence: unknown node {node}")))?
                .device;
            dev.observe_epoch(epoch)?;
            acked = true;
            Ok(())
        });
        messages += out.attempts;
        t = out.finished_at;
        match out.result {
            Ok(()) => fenced += 1,
            Err(_) => unreachable.push(*node),
        }
    }

    // Replay: the last record per transaction decides its fate; the last
    // device list per transaction names its participants.
    let records = log.records()?;
    let mut last: BTreeMap<u64, IntentRecord> = BTreeMap::new();
    let mut participants: BTreeMap<u64, Vec<NodeId>> = BTreeMap::new();
    for rec in &records {
        match rec {
            IntentRecord::Intent { txn, devices } | IntentRecord::Prepared { txn, devices } => {
                participants.insert(*txn, devices.iter().map(|d| NodeId(*d as u32)).collect());
            }
            // Intended-state records track reconciliation targets, not 2PC
            // phases: they must never shadow a transaction's last phase
            // record (a trailing `IntendedState` would otherwise make a
            // committed transaction look unresolved).
            IntentRecord::IntendedState { .. } => continue,
            // Rollout records narrate the wave orchestration above the
            // per-wave transactions; each wave's own 2PC records already
            // carry everything this pass needs. Resolving rollout-level
            // obligations (finishing an owed rollback) is the rollout
            // module's resume path, not 2PC recovery.
            IntentRecord::RolloutStarted { .. }
            | IntentRecord::WaveCommitted { .. }
            | IntentRecord::RolloutAborted { .. }
            | IntentRecord::RolloutCompleted { .. }
            | IntentRecord::RolledBack { .. } => continue,
            // Compaction markers carry the id high-water mark for the
            // allocator; they are not a transaction's phase record.
            IntentRecord::Compacted { .. } => continue,
            _ => {}
        }
        last.insert(rec.txn(), rec.clone());
    }

    // Pass 2: resolve every non-terminal transaction, in id order.
    let mut resolutions: Vec<(u64, TxnResolution)> = Vec::new();
    let mut reprepared = 0usize;
    let mut wiped_shadows = 0usize;
    for (&txn, rec) in &last {
        let tag = TxnTag { txn_id: txn, epoch };
        let nodes = participants.get(&txn).cloned().unwrap_or_default();
        match rec {
            // Rollout records never enter `last` (skipped in pass 1).
            IntentRecord::Committed { .. }
            | IntentRecord::Aborted { .. }
            | IntentRecord::IntendedState { .. }
            | IntentRecord::RolloutStarted { .. }
            | IntentRecord::WaveCommitted { .. }
            | IntentRecord::RolloutAborted { .. }
            | IntentRecord::RolloutCompleted { .. }
            | IntentRecord::RolledBack { .. }
            | IntentRecord::Compacted { .. } => {}
            IntentRecord::Intent { .. } | IntentRecord::Prepared { .. } => {
                // No flip was ever scheduled: no participant can have
                // flipped, so rolling back restores the old program
                // everywhere. Journal the decision first.
                log.append(&IntentRecord::Aborted { txn })?;
                for node in &nodes {
                    let (m, at, wiped) = abort_on(sim, *node, tag, t, fabric, policy);
                    messages += m;
                    t = at;
                    wiped_shadows += usize::from(wiped);
                }
                resolutions.push((txn, TxnResolution::RolledBack));
            }
            IntentRecord::FlipScheduled { commit_at, .. } => {
                // The decision to commit was durable: some participant may
                // already hold a released shadow, so only roll-forward
                // keeps the network single-program. Journal first.
                log.append(&IntentRecord::Committed { txn })?;
                let flip_at = if *commit_at > t { *commit_at } else { t };
                for node in &nodes {
                    let target = targets
                        .get(&txn)
                        .and_then(|ts| ts.iter().find(|(n, _)| n == node))
                        .map(|(_, b)| b);
                    let (m, at, re) =
                        commit_on(sim, *node, tag, flip_at, target, t, fabric, policy);
                    messages += m;
                    t = at;
                    reprepared += usize::from(re);
                    // A roll-forward that had to re-prepare found the
                    // prepared shadow gone — wiped by a restart.
                    wiped_shadows += usize::from(re);
                }
                resolutions.push((txn, TxnResolution::RolledForward));
            }
        }
    }

    // Pass 3: sweep orphans — shadows still *awaiting a decision* whose
    // transaction the log already closed (their decision command was lost
    // in flight). Shadows released in pass 2 merely await their flip
    // instant and are not orphans.
    let mut orphans_swept = 0usize;
    for node in devices {
        let pending = sim
            .topo
            .node(*node)
            .and_then(|n| n.device.txn_in_doubt());
        let Some(orphan) = pending else { continue };
        let tag = TxnTag {
            txn_id: orphan.txn_id,
            epoch,
        };
        match last.get(&orphan.txn_id) {
            Some(IntentRecord::Committed { .. }) => {
                let (m, at, _) = commit_on(sim, *node, tag, t, None, t, fabric, policy);
                messages += m;
                t = at;
            }
            // Aborted, never-logged, or (unreachably) still open: discard.
            _ => {
                let (m, at, _) = abort_on(sim, *node, tag, t, fabric, policy);
                messages += m;
                t = at;
            }
        }
        orphans_swept += 1;
    }

    Ok(RecoveryReport {
        epoch,
        fenced,
        unreachable,
        resolutions,
        reprepared,
        wiped_shadows,
        orphans_swept,
        messages,
        finished_at: t,
    })
}

/// Sends one idempotent abort; returns (messages, finished_at, wiped?).
/// `wiped` is true when the delivered abort found nothing pending: the
/// shadow the log promised was gone on-device (restart-wiped, or the
/// prepare itself never arrived). Pre-PR-3 this path silently assumed
/// the shadow still existed; now it is tolerated and reported.
fn abort_on(
    sim: &mut Simulation,
    node: NodeId,
    tag: TxnTag,
    t: SimTime,
    fabric: &mut LossyFabric,
    policy: &RetryPolicy,
) -> (u32, SimTime, bool) {
    let mut done = false;
    let mut wiped = false;
    let out = with_retry(policy, fabric, t, command_rtt(), |at| {
        if done {
            return Ok(());
        }
        let dev = &mut sim
            .topo
            .node_mut(node)
            .ok_or_else(|| FlexError::Sim(format!("abort: unknown node {node}")))?
            .device;
        match dev.abort_txn(tag, at) {
            Ok(rep) => {
                match rep {
                    Some(rep) => sim.reconfig_reports.push((at, node, rep)),
                    None => wiped = true,
                }
                done = true;
                Ok(())
            }
            // A shadow owned by someone else is not ours to discard.
            Err(FlexError::Conflict(_)) => {
                done = true;
                Ok(())
            }
            Err(e) => Err(e),
        }
    });
    if let Err(e) = out.result {
        sim.errors
            .push((out.finished_at, format!("recovery abort on {node}: {e}")));
    }
    (out.attempts, out.finished_at, wiped)
}

/// Sends one idempotent commit, re-preparing a crash-lost shadow from
/// `target` when the device's active program does not already match.
/// Returns (messages, finished_at, re-prepared?).
#[allow(clippy::too_many_arguments)]
fn commit_on(
    sim: &mut Simulation,
    node: NodeId,
    tag: TxnTag,
    flip_at: SimTime,
    target: Option<&ProgramBundle>,
    t: SimTime,
    fabric: &mut LossyFabric,
    policy: &RetryPolicy,
) -> (u32, SimTime, bool) {
    let mut released: Option<bool> = None;
    let out = with_retry(policy, fabric, t, command_rtt(), |_| {
        if let Some(r) = released {
            return Ok(r);
        }
        let dev = &mut sim
            .topo
            .node_mut(node)
            .ok_or_else(|| FlexError::Sim(format!("commit: unknown node {node}")))?
            .device;
        let r = dev.commit_txn(tag, flip_at)?;
        released = Some(r);
        Ok(r)
    });
    let mut messages = out.attempts;
    let mut t = out.finished_at;
    let mut reprepared = false;
    match out.result {
        Ok(true) => {}
        Ok(false) => {
            // Nothing pending: the device either flipped already (its
            // image matches the target) or lost the shadow in a crash —
            // then the commit decision obliges us to re-prepare it.
            let needs = match (sim.topo.node(node).map(|n| &n.device), target) {
                (Some(dev), Some(want)) if dev.program().map(|p| &p.bundle != want).unwrap_or(true) => {
                    Some(want)
                }
                _ => None,
            };
            if let Some(want) = needs {
                let want = want.clone();
                let mut done = false;
                let out = with_retry(policy, fabric, t, command_rtt(), |at| {
                    if done {
                        return Ok(());
                    }
                    let dev = &mut sim
                        .topo
                        .node_mut(node)
                        .ok_or_else(|| FlexError::Sim(format!("re-prepare: unknown node {node}")))?
                        .device;
                    let rep = dev.prepare_txn_reconfig(want.clone(), at, tag)?;
                    dev.commit_txn(tag, rep.ready_at)?;
                    done = true;
                    Ok(())
                });
                messages += out.attempts;
                t = out.finished_at;
                match out.result {
                    Ok(()) => reprepared = true,
                    Err(e) => sim
                        .errors
                        .push((t, format!("recovery re-prepare on {node}: {e}"))),
                }
            }
        }
        Err(e) => {
            sim.errors
                .push((t, format!("recovery commit on {node}: {e}")));
        }
    }
    (messages, t, reprepared)
}
