//! App state migration: control-plane copy vs. in-data-plane migration.
//!
//! Paper §3.4: "Consider migrating a stateful network app (e.g., one that
//! maintains a count-min sketch). As the sketch state is updated for each
//! packet, copying state via control plane software is impossible. Recent
//! work has developed tools to perform state migration entirely in data
//! plane \[Swing State, SIGCOMM SPIN'20\]."
//!
//! The two strategies differ in *when* the state is captured:
//!
//! - [`MigrationStrategy::ControlPlane`] snapshots at `begin`; the copy then
//!   crawls through the controller at software speeds, and every update the
//!   source applies during that window is absent from the destination — the
//!   measured `lost_updates` of experiment E8.
//! - [`MigrationStrategy::DataPlane`] streams at data-plane speeds and
//!   captures atomically at commit, so the destination sees every update.

use flexnet_dataplane::{Device, LogicalState};
use flexnet_types::{FlexError, Result, SimDuration, SimTime};

/// Per-item cost of a control-plane (software API) state read.
pub const CONTROL_PLANE_PER_ITEM: SimDuration = SimDuration::from_micros(50);
/// Base round-trip of a control-plane transfer.
pub const CONTROL_PLANE_RTT: SimDuration = SimDuration::from_millis(2);

/// How state is moved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationStrategy {
    /// Software copy through the controller.
    ControlPlane,
    /// In-data-plane migration (Swing-State-style).
    DataPlane,
}

/// A migration in progress.
#[derive(Debug)]
pub struct Migration {
    strategy: MigrationStrategy,
    started: SimTime,
    completes: SimTime,
    /// Control-plane: the (stale-by-completion) snapshot taken at begin.
    begin_snapshot: Option<LogicalState>,
}

/// The outcome of a completed migration.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Strategy used.
    pub strategy: MigrationStrategy,
    /// When it started.
    pub started: SimTime,
    /// When the destination became authoritative.
    pub completed: SimTime,
    /// State items transferred.
    pub items: u64,
    /// The window during which source updates were not captured
    /// (zero for data-plane migration).
    pub blackout: SimDuration,
}

impl Migration {
    /// Begins migrating `src`'s program state.
    pub fn begin(src: &Device, strategy: MigrationStrategy, now: SimTime) -> Result<Migration> {
        let snapshot = src
            .snapshot_state()
            .ok_or_else(|| FlexError::NotFound("no program installed on source".into()))?;
        let items = snapshot.item_count();
        let (completes, begin_snapshot) = match strategy {
            MigrationStrategy::ControlPlane => (
                now + CONTROL_PLANE_RTT + CONTROL_PLANE_PER_ITEM.saturating_mul(items.max(1)),
                Some(snapshot),
            ),
            MigrationStrategy::DataPlane => (
                now + src
                    .cost_model()
                    .migrate_per_item
                    .saturating_mul(items.max(1)),
                None,
            ),
        };
        Ok(Migration {
            strategy,
            started: now,
            completes,
            begin_snapshot,
        })
    }

    /// When the migration completes.
    pub fn completes_at(&self) -> SimTime {
        self.completes
    }

    /// Finishes the migration, installing state into `dst`.
    ///
    /// For control-plane migration the snapshot captured at `begin` is
    /// restored (updates since then are lost); for data-plane migration the
    /// source is captured atomically now.
    pub fn finish(self, src: &Device, dst: &mut Device, now: SimTime) -> Result<MigrationReport> {
        if now < self.completes {
            return Err(FlexError::Reconfig(format!(
                "migration completes at {}, now is {}",
                self.completes, now
            )));
        }
        let (snapshot, blackout) = match self.strategy {
            MigrationStrategy::ControlPlane => (
                self.begin_snapshot
                    .ok_or_else(|| FlexError::Reconfig("begin snapshot missing".into()))?,
                self.completes.saturating_since(self.started),
            ),
            MigrationStrategy::DataPlane => (
                src.snapshot_state()
                    .ok_or_else(|| FlexError::NotFound("source program vanished".into()))?,
                SimDuration::ZERO,
            ),
        };
        let items = snapshot.item_count();
        dst.restore_state(&snapshot)?;
        Ok(MigrationReport {
            strategy: self.strategy,
            started: self.started,
            completed: now,
            items,
            blackout,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexnet_dataplane::{Architecture, StateEncoding};
    use flexnet_lang::diff::ProgramBundle;
    use flexnet_lang::parser::parse_source;
    use flexnet_types::NodeId;

    fn bundle() -> ProgramBundle {
        let file = parse_source(
            "program sketch kind any {
               map counts : map<u64, u64>[1024];
               handler ingress(pkt) {
                 map_put(counts, hash(ipv4.src), map_get(counts, hash(ipv4.src)) + 1);
                 forward(0);
               }
             }",
        )
        .unwrap();
        ProgramBundle {
            headers: file.headers,
            program: file.programs.into_iter().next().unwrap(),
        }
    }

    fn dev(id: u32) -> Device {
        let mut d = Device::new(
            NodeId(id),
            Architecture::drmt_default(),
            StateEncoding::StatefulTable,
        );
        d.install(bundle()).unwrap();
        d
    }

    #[test]
    fn data_plane_migration_is_fast_and_lossless() {
        let mut src = dev(1);
        let mut dst = dev(2);
        for k in 0..100u64 {
            src.program_mut().unwrap().state.map_put("counts", k, k).unwrap();
        }
        let t0 = SimTime::from_secs(1);
        let m = Migration::begin(&src, MigrationStrategy::DataPlane, t0).unwrap();
        // Data-plane migration of 100 items completes in ~10us.
        assert!(m.completes_at().saturating_since(t0) < SimDuration::from_millis(1));

        // An update lands while the transfer is in flight…
        src.program_mut().unwrap().state.map_put("counts", 999, 42).unwrap();

        let done = m.completes_at();
        let report = m.finish(&src, &mut dst, done).unwrap();
        assert_eq!(report.blackout, SimDuration::ZERO);
        // …and it is present at the destination.
        assert_eq!(
            dst.program_mut().unwrap().state.map_get("counts", 999),
            Some(42)
        );
    }

    #[test]
    fn control_plane_migration_loses_in_flight_updates() {
        let mut src = dev(1);
        let mut dst = dev(2);
        for k in 0..100u64 {
            src.program_mut().unwrap().state.map_put("counts", k, k).unwrap();
        }
        let t0 = SimTime::from_secs(1);
        let m = Migration::begin(&src, MigrationStrategy::ControlPlane, t0).unwrap();
        assert!(
            m.completes_at().saturating_since(t0) >= SimDuration::from_millis(2),
            "software copy is slow"
        );

        // Updates during the copy window…
        src.program_mut().unwrap().state.map_put("counts", 999, 42).unwrap();
        src.program_mut().unwrap().state.map_put("counts", 0, 7777).unwrap();

        let done = m.completes_at();
        let report = m.finish(&src, &mut dst, done).unwrap();
        assert!(report.blackout > SimDuration::ZERO);
        // …are lost at the destination.
        assert_eq!(dst.program_mut().unwrap().state.map_get("counts", 999), None);
        assert_eq!(
            dst.program_mut().unwrap().state.map_get("counts", 0),
            Some(0),
            "stale value from the begin snapshot"
        );
    }

    #[test]
    fn finish_before_completion_rejected() {
        let src = dev(1);
        let mut dst = dev(2);
        let t0 = SimTime::from_secs(1);
        let m = Migration::begin(&src, MigrationStrategy::ControlPlane, t0).unwrap();
        assert!(m.finish(&src, &mut dst, t0).is_err());
    }

    #[test]
    fn begin_requires_program() {
        let empty = Device::new(
            NodeId(9),
            Architecture::drmt_default(),
            StateEncoding::StatefulTable,
        );
        assert!(Migration::begin(&empty, MigrationStrategy::DataPlane, SimTime::ZERO).is_err());
    }

    #[test]
    fn duration_scales_with_items() {
        let mut src = dev(1);
        let m_small =
            Migration::begin(&src, MigrationStrategy::ControlPlane, SimTime::ZERO).unwrap();
        for k in 0..1000u64 {
            src.program_mut().unwrap().state.map_put("counts", k, 1).unwrap();
        }
        let m_big =
            Migration::begin(&src, MigrationStrategy::ControlPlane, SimTime::ZERO).unwrap();
        assert!(m_big.completes_at() > m_small.completes_at());
    }
}
