//! State replication and failover.
//!
//! Paper §3.4: "To detect and tolerate device failures, the FlexNet
//! controller replicates important network state in a logical datapath
//! across multiple physical devices. State consistency is ensured via state
//! replication and update protocols."
//!
//! A [`ReplicationGroup`] tracks a primary, its replicas, and which
//! *epoch* of the primary's logical state each replica has applied.
//! Failover promotes the replica with the freshest epoch, and reports how
//! many epochs of updates were lost (zero when synchronization kept up).

use crate::raft::RaftCluster;
use flexnet_types::{FlexError, NodeId, Result, SimTime};
use std::collections::BTreeMap;

/// A replicated-state group for one app.
#[derive(Debug, Clone)]
pub struct ReplicationGroup {
    /// Current primary device.
    pub primary: NodeId,
    /// Replica devices.
    pub replicas: Vec<NodeId>,
    /// Epoch counter: bumped on every primary-side snapshot cut.
    epoch: u64,
    /// Replica → last applied epoch.
    applied: BTreeMap<NodeId, u64>,
    /// Last synchronization instant.
    pub last_sync: SimTime,
}

/// The outcome of a failover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverReport {
    /// The failed node.
    pub failed: NodeId,
    /// The promoted replica.
    pub promoted: NodeId,
    /// Epochs of updates lost (primary epoch − promoted replica's epoch).
    pub lost_epochs: u64,
}

impl ReplicationGroup {
    /// A group with the given primary and replicas.
    pub fn new(primary: NodeId, replicas: Vec<NodeId>) -> ReplicationGroup {
        let applied = replicas.iter().map(|r| (*r, 0)).collect();
        ReplicationGroup {
            primary,
            replicas,
            epoch: 0,
            applied,
            last_sync: SimTime::ZERO,
        }
    }

    /// The current primary epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cuts a new snapshot epoch at the primary (callers then copy the
    /// snapshot to replicas and record each application).
    pub fn cut_epoch(&mut self, now: SimTime) -> u64 {
        self.epoch += 1;
        self.last_sync = now;
        self.epoch
    }

    /// Records that `replica` applied snapshot `epoch`.
    pub fn record_applied(&mut self, replica: NodeId, epoch: u64) -> Result<()> {
        if !self.replicas.contains(&replica) {
            return Err(FlexError::NotFound(format!(
                "{replica} is not a replica of this group"
            )));
        }
        let e = self.applied.entry(replica).or_insert(0);
        *e = (*e).max(epoch);
        Ok(())
    }

    /// Staleness of `replica` in epochs.
    pub fn staleness(&self, replica: NodeId) -> Option<u64> {
        self.applied.get(&replica).map(|e| self.epoch - e)
    }

    /// Handles the failure of a node. If the primary failed, the freshest
    /// replica is promoted; if a replica failed, it is removed.
    pub fn fail_node(&mut self, failed: NodeId) -> Result<Option<FailoverReport>> {
        if failed == self.primary {
            let promoted = self
                .replicas
                .iter()
                .max_by_key(|r| self.applied.get(r).copied().unwrap_or(0))
                .copied()
                .ok_or_else(|| {
                    FlexError::Consensus("primary failed with no replicas".into())
                })?;
            let promoted_epoch = self.applied.get(&promoted).copied().unwrap_or(0);
            let lost = self.epoch - promoted_epoch;
            self.replicas.retain(|r| *r != promoted);
            self.applied.remove(&promoted);
            let report = FailoverReport {
                failed,
                promoted,
                lost_epochs: lost,
            };
            self.primary = promoted;
            self.epoch = promoted_epoch;
            Ok(Some(report))
        } else if self.replicas.contains(&failed) {
            self.replicas.retain(|r| *r != failed);
            self.applied.remove(&failed);
            Ok(None)
        } else {
            Err(FlexError::NotFound(format!("{failed} is not in the group")))
        }
    }

    /// Promotes a specific replica to primary, demoting the current
    /// primary to a replica (caught up at the new lineage's epoch: it has
    /// every snapshot the promoted node does).
    ///
    /// Unlike [`ReplicationGroup::fail_node`] — which picks the freshest
    /// replica — the choice here is the caller's, so an external election
    /// (e.g. Raft) can dictate the primary. Epochs cut by the demoted
    /// primary past the promoted node's last applied snapshot are lost,
    /// exactly as in a failover.
    pub fn promote(&mut self, node: NodeId) -> Result<FailoverReport> {
        if node == self.primary {
            return Err(FlexError::Conflict(format!("{node} is already primary")));
        }
        if !self.replicas.contains(&node) {
            return Err(FlexError::NotFound(format!(
                "{node} is not a replica of this group"
            )));
        }
        let promoted_epoch = self.applied.get(&node).copied().unwrap_or(0);
        let report = FailoverReport {
            failed: self.primary,
            promoted: node,
            lost_epochs: self.epoch - promoted_epoch,
        };
        self.replicas.retain(|r| *r != node);
        self.applied.remove(&node);
        self.replicas.push(report.failed);
        self.applied.insert(report.failed, promoted_epoch);
        self.primary = node;
        self.epoch = promoted_epoch;
        Ok(report)
    }

    /// Aligns the group's primary with a [`RaftCluster`]'s leader, so
    /// consensus and state replication agree on who pilots the network.
    ///
    /// `node_of[i]` is the topology node hosting Raft node `i`. Returns
    /// `Ok(None)` when nothing changed (no leader yet, or the leader
    /// already is the primary). When leadership moved, the leader's node
    /// is promoted; a deposed primary whose Raft node is dead is removed
    /// from the group entirely ([`ReplicationGroup::fail_node`]), while a
    /// merely-deposed (alive) one stays on as a replica.
    pub fn align_with_raft(
        &mut self,
        cluster: &RaftCluster,
        node_of: &[NodeId],
    ) -> Result<Option<FailoverReport>> {
        let Some(leader) = cluster.leader() else {
            return Ok(None);
        };
        let leader_node = *node_of.get(leader).ok_or_else(|| {
            FlexError::NotFound(format!("raft node {leader} has no topology mapping"))
        })?;
        if leader_node == self.primary {
            return Ok(None);
        }
        let primary_raft = node_of.iter().position(|n| *n == self.primary);
        let primary_alive = primary_raft.map(|i| cluster.is_alive(i)).unwrap_or(false);
        let report = self.promote(leader_node)?;
        if !primary_alive {
            // The deposed primary's controller is dead: drop it from the
            // group instead of keeping a corpse as a replica.
            self.fail_node(report.failed)?;
        }
        Ok(Some(report))
    }

    /// Adds a fresh replica (it starts at epoch 0 until synced).
    pub fn add_replica(&mut self, node: NodeId) -> Result<()> {
        if node == self.primary || self.replicas.contains(&node) {
            return Err(FlexError::Conflict(format!("{node} already in the group")));
        }
        self.replicas.push(node);
        self.applied.insert(node, 0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_and_staleness() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![NodeId(2), NodeId(3)]);
        let e1 = g.cut_epoch(SimTime::from_secs(1));
        g.record_applied(NodeId(2), e1).unwrap();
        assert_eq!(g.staleness(NodeId(2)), Some(0));
        assert_eq!(g.staleness(NodeId(3)), Some(1));
        assert_eq!(g.staleness(NodeId(9)), None);
    }

    #[test]
    fn failover_promotes_freshest_replica() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![NodeId(2), NodeId(3)]);
        let e1 = g.cut_epoch(SimTime::from_secs(1));
        g.record_applied(NodeId(2), e1).unwrap();
        let e2 = g.cut_epoch(SimTime::from_secs(2));
        g.record_applied(NodeId(3), e2).unwrap();
        // Node 3 has epoch 2, node 2 only epoch 1.
        let report = g.fail_node(NodeId(1)).unwrap().unwrap();
        assert_eq!(report.promoted, NodeId(3));
        assert_eq!(report.lost_epochs, 0);
        assert_eq!(g.primary, NodeId(3));
        assert_eq!(g.replicas, vec![NodeId(2)]);
    }

    #[test]
    fn failover_reports_lost_epochs_when_stale() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![NodeId(2)]);
        g.cut_epoch(SimTime::from_secs(1));
        g.cut_epoch(SimTime::from_secs(2));
        g.cut_epoch(SimTime::from_secs(3)); // replica never applied any
        let report = g.fail_node(NodeId(1)).unwrap().unwrap();
        assert_eq!(report.lost_epochs, 3);
    }

    #[test]
    fn replica_failure_is_silent() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![NodeId(2), NodeId(3)]);
        assert_eq!(g.fail_node(NodeId(2)).unwrap(), None);
        assert_eq!(g.replicas, vec![NodeId(3)]);
        assert!(g.fail_node(NodeId(9)).is_err());
    }

    #[test]
    fn primary_failure_without_replicas_is_fatal() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![]);
        assert!(g.fail_node(NodeId(1)).is_err());
    }

    #[test]
    fn add_replica_and_duplicates() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![NodeId(2)]);
        g.add_replica(NodeId(3)).unwrap();
        assert!(g.add_replica(NodeId(3)).is_err());
        assert!(g.add_replica(NodeId(1)).is_err());
        assert_eq!(g.staleness(NodeId(3)), Some(0));
        g.cut_epoch(SimTime::from_secs(1));
        assert_eq!(g.staleness(NodeId(3)), Some(1));
    }

    #[test]
    fn record_applied_unknown_replica_rejected() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![NodeId(2)]);
        assert!(g.record_applied(NodeId(9), 1).is_err());
    }

    #[test]
    fn promote_is_caller_chosen_and_demotes_cleanly() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![NodeId(2), NodeId(3)]);
        let e1 = g.cut_epoch(SimTime::from_secs(1));
        g.record_applied(NodeId(2), e1).unwrap();
        // Promote the *stale* replica 3 (epoch 0), not the freshest.
        let report = g.promote(NodeId(3)).unwrap();
        assert_eq!(report.promoted, NodeId(3));
        assert_eq!(report.failed, NodeId(1));
        assert_eq!(report.lost_epochs, 1);
        assert_eq!(g.primary, NodeId(3));
        assert!(g.replicas.contains(&NodeId(1)), "old primary demoted, kept");
        // The demoted primary is current in the new lineage — no underflow
        // when computing staleness against the reset epoch.
        assert_eq!(g.staleness(NodeId(1)), Some(0));
        assert!(g.promote(NodeId(3)).is_err(), "already primary");
        assert!(g.promote(NodeId(9)).is_err(), "not in group");
    }

    #[test]
    fn raft_leader_change_drives_group_failover() {
        use flexnet_types::SimDuration;
        // Controller raft nodes 0..3 live on topology nodes 10..13.
        let node_of = [NodeId(10), NodeId(11), NodeId(12)];
        let mut cluster = RaftCluster::new(3, 42);
        let leader = cluster
            .run_until_leader(SimDuration::from_secs(5))
            .expect("a leader");
        let mut g = ReplicationGroup::new(
            node_of[leader],
            node_of
                .iter()
                .filter(|n| **n != node_of[leader])
                .copied()
                .collect(),
        );
        g.cut_epoch(SimTime::from_secs(1));
        for r in g.replicas.clone() {
            g.record_applied(r, 1).unwrap();
        }
        // In agreement: aligning is a no-op.
        assert_eq!(g.align_with_raft(&cluster, &node_of).unwrap(), None);

        // Kill the leader; once a successor wins, the group must follow —
        // and since the deposed primary's raft node is dead, it is dropped
        // from the group rather than demoted.
        cluster.kill(leader).unwrap();
        cluster
            .run_until_leader(SimDuration::from_secs(5))
            .expect("re-election");
        let new_leader = cluster.leader().unwrap();
        let report = g
            .align_with_raft(&cluster, &node_of)
            .unwrap()
            .expect("leadership moved");
        assert_eq!(report.promoted, node_of[new_leader]);
        assert_eq!(g.primary, node_of[new_leader], "group follows raft");
        assert!(
            !g.replicas.contains(&node_of[leader]),
            "dead primary removed"
        );
        assert_eq!(report.lost_epochs, 0, "replicas were caught up");
        // Aligning again changes nothing.
        assert_eq!(g.align_with_raft(&cluster, &node_of).unwrap(), None);
    }

    #[test]
    fn deposed_but_alive_primary_stays_as_replica() {
        use flexnet_types::SimDuration;
        let node_of = [NodeId(10), NodeId(11), NodeId(12), NodeId(13), NodeId(14)];
        let mut cluster = RaftCluster::new(5, 7);
        let l1 = cluster
            .run_until_leader(SimDuration::from_secs(5))
            .expect("a leader");
        let mut g = ReplicationGroup::new(
            node_of[l1],
            node_of
                .iter()
                .filter(|n| **n != node_of[l1])
                .copied()
                .collect(),
        );
        // Depose l1 but bring it back before aligning: it lost leadership,
        // not its life.
        cluster.kill(l1).unwrap();
        cluster
            .run_until_leader(SimDuration::from_secs(5))
            .expect("re-election");
        cluster.revive(l1).unwrap();
        cluster.run_for(SimDuration::from_secs(1), SimDuration::from_millis(10));
        let new_leader = cluster.leader().unwrap();
        assert_ne!(l1, new_leader);
        let report = g
            .align_with_raft(&cluster, &node_of)
            .unwrap()
            .expect("leadership moved");
        assert_eq!(g.primary, node_of[new_leader]);
        assert_eq!(report.failed, node_of[l1]);
        assert!(
            g.replicas.contains(&node_of[l1]),
            "alive deposed primary serves on as a replica"
        );
    }
}
