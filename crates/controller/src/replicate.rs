//! State replication and failover.
//!
//! Paper §3.4: "To detect and tolerate device failures, the FlexNet
//! controller replicates important network state in a logical datapath
//! across multiple physical devices. State consistency is ensured via state
//! replication and update protocols."
//!
//! A [`ReplicationGroup`] tracks a primary, its replicas, and which
//! *epoch* of the primary's logical state each replica has applied.
//! Failover promotes the replica with the freshest epoch, and reports how
//! many epochs of updates were lost (zero when synchronization kept up).

use flexnet_types::{FlexError, NodeId, Result, SimTime};
use std::collections::BTreeMap;

/// A replicated-state group for one app.
#[derive(Debug, Clone)]
pub struct ReplicationGroup {
    /// Current primary device.
    pub primary: NodeId,
    /// Replica devices.
    pub replicas: Vec<NodeId>,
    /// Epoch counter: bumped on every primary-side snapshot cut.
    epoch: u64,
    /// Replica → last applied epoch.
    applied: BTreeMap<NodeId, u64>,
    /// Last synchronization instant.
    pub last_sync: SimTime,
}

/// The outcome of a failover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverReport {
    /// The failed node.
    pub failed: NodeId,
    /// The promoted replica.
    pub promoted: NodeId,
    /// Epochs of updates lost (primary epoch − promoted replica's epoch).
    pub lost_epochs: u64,
}

impl ReplicationGroup {
    /// A group with the given primary and replicas.
    pub fn new(primary: NodeId, replicas: Vec<NodeId>) -> ReplicationGroup {
        let applied = replicas.iter().map(|r| (*r, 0)).collect();
        ReplicationGroup {
            primary,
            replicas,
            epoch: 0,
            applied,
            last_sync: SimTime::ZERO,
        }
    }

    /// The current primary epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Cuts a new snapshot epoch at the primary (callers then copy the
    /// snapshot to replicas and record each application).
    pub fn cut_epoch(&mut self, now: SimTime) -> u64 {
        self.epoch += 1;
        self.last_sync = now;
        self.epoch
    }

    /// Records that `replica` applied snapshot `epoch`.
    pub fn record_applied(&mut self, replica: NodeId, epoch: u64) -> Result<()> {
        if !self.replicas.contains(&replica) {
            return Err(FlexError::NotFound(format!(
                "{replica} is not a replica of this group"
            )));
        }
        let e = self.applied.entry(replica).or_insert(0);
        *e = (*e).max(epoch);
        Ok(())
    }

    /// Staleness of `replica` in epochs.
    pub fn staleness(&self, replica: NodeId) -> Option<u64> {
        self.applied.get(&replica).map(|e| self.epoch - e)
    }

    /// Handles the failure of a node. If the primary failed, the freshest
    /// replica is promoted; if a replica failed, it is removed.
    pub fn fail_node(&mut self, failed: NodeId) -> Result<Option<FailoverReport>> {
        if failed == self.primary {
            let promoted = self
                .replicas
                .iter()
                .max_by_key(|r| self.applied.get(r).copied().unwrap_or(0))
                .copied()
                .ok_or_else(|| {
                    FlexError::Consensus("primary failed with no replicas".into())
                })?;
            let promoted_epoch = self.applied.get(&promoted).copied().unwrap_or(0);
            let lost = self.epoch - promoted_epoch;
            self.replicas.retain(|r| *r != promoted);
            self.applied.remove(&promoted);
            let report = FailoverReport {
                failed,
                promoted,
                lost_epochs: lost,
            };
            self.primary = promoted;
            self.epoch = promoted_epoch;
            Ok(Some(report))
        } else if self.replicas.contains(&failed) {
            self.replicas.retain(|r| *r != failed);
            self.applied.remove(&failed);
            Ok(None)
        } else {
            Err(FlexError::NotFound(format!("{failed} is not in the group")))
        }
    }

    /// Adds a fresh replica (it starts at epoch 0 until synced).
    pub fn add_replica(&mut self, node: NodeId) -> Result<()> {
        if node == self.primary || self.replicas.contains(&node) {
            return Err(FlexError::Conflict(format!("{node} already in the group")));
        }
        self.replicas.push(node);
        self.applied.insert(node, 0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_and_staleness() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![NodeId(2), NodeId(3)]);
        let e1 = g.cut_epoch(SimTime::from_secs(1));
        g.record_applied(NodeId(2), e1).unwrap();
        assert_eq!(g.staleness(NodeId(2)), Some(0));
        assert_eq!(g.staleness(NodeId(3)), Some(1));
        assert_eq!(g.staleness(NodeId(9)), None);
    }

    #[test]
    fn failover_promotes_freshest_replica() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![NodeId(2), NodeId(3)]);
        let e1 = g.cut_epoch(SimTime::from_secs(1));
        g.record_applied(NodeId(2), e1).unwrap();
        let e2 = g.cut_epoch(SimTime::from_secs(2));
        g.record_applied(NodeId(3), e2).unwrap();
        // Node 3 has epoch 2, node 2 only epoch 1.
        let report = g.fail_node(NodeId(1)).unwrap().unwrap();
        assert_eq!(report.promoted, NodeId(3));
        assert_eq!(report.lost_epochs, 0);
        assert_eq!(g.primary, NodeId(3));
        assert_eq!(g.replicas, vec![NodeId(2)]);
    }

    #[test]
    fn failover_reports_lost_epochs_when_stale() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![NodeId(2)]);
        g.cut_epoch(SimTime::from_secs(1));
        g.cut_epoch(SimTime::from_secs(2));
        g.cut_epoch(SimTime::from_secs(3)); // replica never applied any
        let report = g.fail_node(NodeId(1)).unwrap().unwrap();
        assert_eq!(report.lost_epochs, 3);
    }

    #[test]
    fn replica_failure_is_silent() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![NodeId(2), NodeId(3)]);
        assert_eq!(g.fail_node(NodeId(2)).unwrap(), None);
        assert_eq!(g.replicas, vec![NodeId(3)]);
        assert!(g.fail_node(NodeId(9)).is_err());
    }

    #[test]
    fn primary_failure_without_replicas_is_fatal() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![]);
        assert!(g.fail_node(NodeId(1)).is_err());
    }

    #[test]
    fn add_replica_and_duplicates() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![NodeId(2)]);
        g.add_replica(NodeId(3)).unwrap();
        assert!(g.add_replica(NodeId(3)).is_err());
        assert!(g.add_replica(NodeId(1)).is_err());
        assert_eq!(g.staleness(NodeId(3)), Some(0));
        g.cut_epoch(SimTime::from_secs(1));
        assert_eq!(g.staleness(NodeId(3)), Some(1));
    }

    #[test]
    fn record_applied_unknown_replica_rejected() {
        let mut g = ReplicationGroup::new(NodeId(1), vec![NodeId(2)]);
        assert!(g.record_applied(NodeId(9), 1).is_err());
    }
}
