//! Rogue-program chaos: the seeded E18 harness proving the data-plane
//! sandbox contains hostile tenants.
//!
//! The paper's runtime-programmable network invites third-party programs
//! into the packet path — which only works if a hostile (or merely
//! buggy) program cannot take the device down with it. The sandbox's
//! layers, each attacked by one [`RogueScenario`]:
//!
//! - **gas metering** — every packet carries an instruction budget;
//!   a runaway loop exhausts it and traps instead of wedging the pipe;
//! - **typed traps** — malformed headers, out-of-bounds state slots,
//!   division by zero all surface as [`Trap`] values in the verdict,
//!   never as panics;
//! - **quarantine** — a program whose in-window trap rate crosses
//!   threshold is atomically swapped for the last-known-good image (or
//!   the transparent-forward default), and the sticky flag rides
//!   heartbeats into the [`FailureDetector`], admission, and the canary
//!   rollout's most-specific guard;
//! - **parse-trap separation** — poison *bytes* indict the packet, not
//!   the program: a malformed flood must never quarantine an innocent
//!   image.
//!
//! [`run_sandbox_seed`] expands one seed into a [`RogueSchedule`] and
//! plays it against the 8-lane topology with live traffic, returning
//! every invariant violation as a string. The fleet-level claim under
//! test: **quarantine fires before neighbor tenants see SLO impact** —
//! the victim's trap storm is contained inside its trap window, other
//! lanes lose nothing, and the fleet stays inside the canary loss
//! budget throughout.

use std::collections::BTreeMap;

use crate::core::{DataPathHealth, FailureDetector, HealthEvent};
use crate::retry::{LossyFabric, RetryPolicy};
use crate::rollout::{run_rollout, RolloutOutcome, RolloutPlan, RolloutReport, SloGuards};
use crate::wal::ReplicatedIntentLog;
use flexnet_dataplane::SandboxConfig;
use flexnet_lang::ast::{StateDecl, StateKind};
use flexnet_lang::diff::{ProgramBundle, ReconfigOp};
use flexnet_lang::parser::parse_source;
use flexnet_sim::{generate, FlowSpec, RogueScenario, RogueSchedule, Simulation, Topology};
use flexnet_types::{FlexError, NodeId, Result, SimDuration, SimTime};

/// Lanes (and therefore switches) in the sandbox fleet.
const LANES: usize = 8;

/// Packets per second per lane.
const LANE_PPS: u64 = 500;

/// Replicated-log cluster size (matches the canary harness).
const CONTROLLERS: usize = 3;

/// Fleet loss budget (ppm) the scenario must stay inside end to end —
/// the same 2% the canary loss-delta guard enforces: a quarantine that
/// only fires after the fleet SLO is gone fired too late.
const FLEET_LOSS_BUDGET_PPM: u64 = 20_000;

/// Everything one rogue-program chaos run observed.
#[derive(Debug, Clone)]
pub struct SandboxReport {
    /// The schedule the seed expanded to.
    pub schedule: RogueSchedule,
    /// When the *device* quarantined its program (sandbox-side), if ever.
    pub quarantined_at: Option<SimTime>,
    /// When the *controller* first saw the quarantine (a
    /// [`HealthEvent::Quarantined`] from the detector), if ever.
    pub observed_at: Option<SimTime>,
    /// Program traps the victim device counted.
    pub victim_traps: u64,
    /// Parse (poison-byte) traps the victim device counted.
    pub victim_parse_traps: u64,
    /// The rollout's account, for [`RogueScenario::TrapStormRollout`].
    pub rollout: Option<RolloutReport>,
    /// Packets delivered over the whole scenario.
    pub delivered: u64,
    /// Packets lost over the whole scenario.
    pub lost: u64,
    /// Every invariant violation observed (empty = the run passed).
    pub violations: Vec<String>,
}

impl SandboxReport {
    /// Whether the run upheld every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn bundle(src: &str) -> ProgramBundle {
    let file = parse_source(src).expect("sandbox program parses");
    ProgramBundle {
        headers: file.headers,
        program: file.programs.into_iter().next().expect("one program"),
    }
}

/// The well-behaved baseline: plain forwarding down the lane.
fn lane_base() -> ProgramBundle {
    bundle("program lane kind any { handler ingress(pkt) { forward(1); } }")
}

/// A runaway loop: verifier-bounded, but far over any reasonable
/// per-packet gas budget — the meter must trap it on every packet.
fn rogue_burn() -> ProgramBundle {
    bundle(
        "program burn kind any {
           register spin : u64[1];
           handler ingress(pkt) {
             repeat (64) {
               repeat (8) { reg_write(spin, 0, reg_read(spin, 0) + 1); }
             }
             forward(1);
           }
         }",
    )
}

/// The state-bomb victim: indexes cell 6 of an 8-cell register. Correct
/// as installed; a runtime `ModifyState` shrink turns every access into
/// a typed out-of-bounds trap.
fn rogue_bomb() -> ProgramBundle {
    bundle(
        "program bomb kind any {
           register slots : u64[8];
           handler ingress(pkt) {
             reg_write(slots, 6, reg_read(slots, 6) + 1);
             forward(1);
           }
         }",
    )
}

/// The trap-storm rollout candidate: divides by a map value that is
/// zero on every production packet — typed div-by-zero on every packet
/// it sees.
fn rogue_divzero() -> ProgramBundle {
    bundle(
        "program storm kind any {
           map peers : map<u32, u32>[64];
           handler ingress(pkt) {
             let x = 1000 / map_get(peers, ipv4.src);
             forward(1);
           }
         }",
    )
}

/// One heartbeat sweep: every up device reports its counters (and its
/// quarantine flag) through the lossy fabric; returns the detector's
/// typed transitions.
fn sweep_health(
    detector: &mut FailureDetector,
    sim: &Simulation,
    fabric: &mut LossyFabric,
    now: SimTime,
) -> Vec<(NodeId, HealthEvent)> {
    for node in sim.topo.nodes() {
        if node.device.is_up() && fabric.deliver() {
            let stats = node.device.stats();
            detector.observe_heartbeat_health(
                node.id,
                now,
                node.device.boot_id(),
                node.device.config_digest(),
                DataPathHealth {
                    processed: stats.processed,
                    dropped: stats.dropped,
                    traps: stats.traps,
                    quarantined: node.device.quarantined(),
                },
            );
        }
    }
    detector.poll(now)
}

/// A deterministic truncated-frame generator: every frame is shorter
/// than the 14-byte Ethernet minimum, so every one must parse-trap.
fn poison_frame(stream: &mut u64, buf: &mut Vec<u8>) {
    // splitmix64 step, kept local so the harness owns its stream.
    let mut z = stream.wrapping_add(0x9e37_79b9_7f4a_7c15);
    *stream = z;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    buf.clear();
    let len = (z % 14) as usize;
    for i in 0..len {
        buf.push((z >> (8 * (i % 8))) as u8);
    }
}

/// Runs the full rogue-program scenario for one seed.
///
/// Errors only on harness plumbing failures; sandbox misbehaviour is
/// reported as violations, so sweeps keep going and count.
pub fn run_sandbox_seed(seed: u64) -> Result<SandboxReport> {
    // -- setup: 8 parallel lanes, the baseline program everywhere -------
    let (topo, switches, lanes) = Topology::parallel_lanes(LANES);
    let mut sim = Simulation::new(topo);
    for &d in &switches {
        sim.topo
            .node_mut(d)
            .expect("lane switch exists")
            .device
            .install(lane_base())
            .map_err(|e| FlexError::Sim(format!("seed {seed}: install base on {d}: {e}")))?;
    }
    let schedule = RogueSchedule::from_seed(seed, switches.len());
    let mut fabric = LossyFabric::new(schedule.fabric_loss, seed);
    let mut detector = FailureDetector::default();
    let mut violations: Vec<String> = Vec::new();

    // Live traffic over the whole scenario: one CBR flow per lane.
    let flow_start = SimTime::from_millis(500);
    let flow_end = SimTime::from_secs(8);
    let flows: Vec<FlowSpec> = lanes
        .iter()
        .map(|&(src, dst)| {
            FlowSpec::udp_cbr(
                src,
                dst,
                LANE_PPS,
                flow_start,
                flow_end.saturating_since(flow_start),
            )
        })
        .collect();
    sim.load(generate(&flows, seed));
    sim.run(SimTime::from_secs(1));

    if schedule.scenario == RogueScenario::TrapStormRollout {
        return run_rollout_storm(
            seed, schedule, sim, switches, &mut fabric, &mut detector, violations, flow_end,
        );
    }

    // -- arm the device-scoped attack -----------------------------------
    let victim = switches[schedule.victim];
    let base_digest = sim
        .topo
        .node(victim)
        .expect("victim")
        .device
        .config_digest();
    {
        let dev = &mut sim.topo.node_mut(victim).expect("victim").device;
        match schedule.scenario {
            RogueScenario::RunawayLoop => {
                dev.set_sandbox(SandboxConfig {
                    gas_limit: schedule.gas_limit,
                    ..SandboxConfig::default()
                });
                dev.install(rogue_burn())
                    .map_err(|e| FlexError::Sim(format!("seed {seed}: install burn: {e}")))?;
            }
            RogueScenario::StateBomb => {
                dev.install(rogue_bomb())
                    .map_err(|e| FlexError::Sim(format!("seed {seed}: install bomb: {e}")))?;
            }
            RogueScenario::MalformedFlood => {} // no rogue program at all
            RogueScenario::TrapStormRollout => unreachable!("dispatched above"),
        }
    }
    let armed_digest = sim
        .topo
        .node(victim)
        .expect("victim")
        .device
        .config_digest();

    // -- drive: 50 ms slices, heartbeats each slice ----------------------
    let trigger_at = SimTime::from_secs(2);
    let mut triggered = false;
    let mut quarantined_at: Option<SimTime> = None;
    let mut observed_at: Option<SimTime> = None;
    let mut t = SimTime::from_secs(1);
    while t <= flow_end {
        sim.run(t);
        if !triggered && t >= trigger_at {
            triggered = true;
            let dev = &mut sim.topo.node_mut(victim).expect("victim").device;
            match schedule.scenario {
                RogueScenario::StateBomb => {
                    // The runtime shrink that arms the bomb: cells 4..8
                    // vanish under the running program.
                    let shrink = ReconfigOp::ModifyState(StateDecl {
                        name: "slots".into(),
                        kind: StateKind::Register { width: 64 },
                        size: schedule.shrink_to,
                    });
                    if let Some(p) = dev.program_mut() {
                        p.apply_op(&shrink).map_err(|e| {
                            FlexError::Sim(format!("seed {seed}: shrink register: {e}"))
                        })?;
                    }
                }
                RogueScenario::MalformedFlood => {
                    let mut stream = seed ^ 0xF100_D000;
                    let mut frame = Vec::new();
                    for i in 0..schedule.flood_packets {
                        poison_frame(&mut stream, &mut frame);
                        let r = dev
                            .process_bytes(&frame, u64::from(i) | (1 << 60), t)
                            .map_err(|e| {
                                FlexError::Sim(format!("seed {seed}: poison frame {i}: {e}"))
                            })?;
                        if r.trap.is_none() {
                            violations
                                .push(format!("poison frame {i} did not trap ({frame:02x?})"));
                        }
                    }
                }
                _ => {}
            }
        }
        if quarantined_at.is_none()
            && sim.topo.node(victim).expect("victim").device.quarantined()
        {
            quarantined_at = Some(t);
        }
        for (node, event) in sweep_health(&mut detector, &sim, &mut fabric, t) {
            if node == victim && matches!(event, HealthEvent::Quarantined { .. }) {
                observed_at.get_or_insert(t);
            }
        }
        t += SimDuration::from_millis(50);
    }
    sim.run_to_completion();
    // Settle the grading: a lossy fabric can eat the last few heartbeats
    // and leave a silence grade (Suspect) that has nothing to do with the
    // sandbox. The admission checks below judge the *data path*, so give
    // the detector a few reliably-delivered beats first — a quarantine
    // still reports through them and still refuses admission.
    let mut settle = LossyFabric::reliable();
    for k in 1..=3u64 {
        sweep_health(
            &mut detector,
            &sim,
            &mut settle,
            flow_end + SimDuration::from_millis(50 * k),
        );
    }

    // -- invariants ------------------------------------------------------
    let stats = sim.topo.node(victim).expect("victim").device.stats();
    let end_digest = sim
        .topo
        .node(victim)
        .expect("victim")
        .device
        .config_digest();
    let end_quarantined = sim.topo.node(victim).expect("victim").device.quarantined();
    let trap_window = sim
        .topo
        .node(victim)
        .expect("victim")
        .device
        .sandbox()
        .trap_window;

    match schedule.scenario {
        RogueScenario::RunawayLoop | RogueScenario::StateBomb => {
            let want_label = match schedule.scenario {
                RogueScenario::RunawayLoop => "gas-exhausted",
                _ => "state-oob",
            };
            if !end_quarantined || stats.quarantines != 1 {
                violations.push(format!(
                    "{}: program not quarantined exactly once (flag {end_quarantined}, count {})",
                    schedule.scenario.label(),
                    stats.quarantines
                ));
            }
            if quarantined_at.is_none() {
                violations.push("quarantine never observed device-side".into());
            }
            if end_digest != base_digest {
                violations.push(format!(
                    "fallback digest {end_digest:#x} is not the stashed baseline {base_digest:#x}"
                ));
            }
            if armed_digest == base_digest {
                violations.push("rogue install did not change the config digest".into());
            }
            let got_label = sim
                .topo
                .node(victim)
                .expect("victim")
                .device
                .last_trap()
                .map(|tr| tr.label());
            if got_label != Some(want_label) {
                violations.push(format!(
                    "last trap {got_label:?}, designed to storm with {want_label}"
                ));
            }
            // Containment: the storm dies inside (at most) two trap
            // windows — the partially-clean window it lands in plus one
            // all-trapping window.
            if stats.dropped > 2 * trap_window {
                violations.push(format!(
                    "victim dropped {} packets; quarantine must fire within {} (2 windows)",
                    stats.dropped,
                    2 * trap_window
                ));
            }
            if stats.traps == 0 || stats.traps != stats.dropped {
                violations.push(format!(
                    "victim counted {} traps but {} drops: every loss must be a typed trap",
                    stats.traps, stats.dropped
                ));
            }
            if stats.parse_traps != 0 {
                violations.push(format!(
                    "{} parse traps counted with no poison bytes in play",
                    stats.parse_traps
                ));
            }
            // The control plane saw it, and admission refuses the victim.
            if observed_at.is_none() {
                violations.push("controller never observed a Quarantined event".into());
            }
            if !detector.quarantine_reported(victim) {
                violations.push("latest heartbeat does not report the quarantine".into());
            }
            if detector.admit(victim).is_ok() {
                violations.push("admission accepted a quarantined device".into());
            }
            // Recovery: once on the fallback, the lane forwards cleanly.
            if let Some(at) = quarantined_at {
                let post = sim
                    .metrics
                    .window_stats(at + SimDuration::from_millis(200), flow_end);
                if post.attempts() == 0 {
                    violations.push("no post-quarantine traffic observed".into());
                } else if post.lost > 0 {
                    violations.push(format!(
                        "post-quarantine window still losing: {}/{} packets",
                        post.lost,
                        post.attempts()
                    ));
                }
            }
        }
        RogueScenario::MalformedFlood => {
            if stats.parse_traps != u64::from(schedule.flood_packets) {
                violations.push(format!(
                    "{} parse traps for a {}-frame flood",
                    stats.parse_traps, schedule.flood_packets
                ));
            }
            if stats.traps != 0 {
                violations.push(format!(
                    "{} program traps charged to an innocent program",
                    stats.traps
                ));
            }
            if end_quarantined || stats.quarantines != 0 {
                violations.push("poison bytes quarantined the program they never ran".into());
            }
            if end_digest != base_digest {
                violations.push("flood changed the victim's config digest".into());
            }
            if detector.quarantine_reported(victim) {
                violations.push("heartbeats report a quarantine that never happened".into());
            }
            if detector.admit(victim).is_err() {
                violations.push("victim still refused admission after the flood passed".into());
            }
            if sim.metrics.total_lost() != 0 {
                violations.push(format!(
                    "lane traffic lost {} packets to a flood of unparseable bytes",
                    sim.metrics.total_lost()
                ));
            }
        }
        _ => unreachable!(),
    }

    // Blast radius: no other lane pays anything, and the fleet stays
    // inside the canary loss budget end to end.
    for &d in &switches {
        if d == victim {
            continue;
        }
        let dropped = sim.topo.node(d).expect("switch").device.stats().dropped;
        if dropped > 0 {
            violations.push(format!(
                "neighbor {d} dropped {dropped} packets: blast radius leaked"
            ));
        }
    }
    let attempts = sim.metrics.delivered + sim.metrics.total_lost();
    if attempts > 0 && sim.metrics.total_lost() * 1_000_000 / attempts > FLEET_LOSS_BUDGET_PPM {
        violations.push(format!(
            "fleet lost {}/{attempts} packets: quarantine fired after the SLO was gone",
            sim.metrics.total_lost()
        ));
    }

    Ok(SandboxReport {
        schedule,
        quarantined_at,
        observed_at,
        victim_traps: stats.traps,
        victim_parse_traps: stats.parse_traps,
        rollout: None,
        delivered: sim.metrics.delivered,
        lost: sim.metrics.total_lost(),
        violations,
    })
}

/// The trap-storm-during-rollout scenario: a canary rollout ships the
/// div-by-zero candidate; the device-side quarantine must fire during
/// wave 1's soak and the rollout's quarantine guard must abort and roll
/// back before any later wave widens exposure.
#[allow(clippy::too_many_arguments)]
fn run_rollout_storm(
    seed: u64,
    schedule: RogueSchedule,
    mut sim: Simulation,
    switches: Vec<NodeId>,
    fabric: &mut LossyFabric,
    detector: &mut FailureDetector,
    mut violations: Vec<String>,
    flow_end: SimTime,
) -> Result<SandboxReport> {
    let mut log = ReplicatedIntentLog::new(CONTROLLERS, schedule.raft_seed)?;
    let policy = RetryPolicy {
        max_attempts: 16,
        deadline: SimDuration::from_secs(60),
        ..RetryPolicy::default()
    };
    let plan = RolloutPlan::canonical(&switches, SimDuration::from_secs(1), SloGuards::default());
    let baseline: Vec<(NodeId, ProgramBundle)> =
        switches.iter().map(|&d| (d, lane_base())).collect();
    let candidate: Vec<(NodeId, ProgramBundle)> =
        switches.iter().map(|&d| (d, rogue_divzero())).collect();
    let old_digests: BTreeMap<NodeId, u64> = switches
        .iter()
        .map(|&d| (d, sim.topo.node(d).expect("switch").device.config_digest()))
        .collect();

    let report = run_rollout(
        &mut sim,
        &plan,
        &baseline,
        &candidate,
        SimTime::from_secs(1),
        fabric,
        &policy,
        &mut log,
        detector,
        None,
    )?;
    sim.run_to_completion();

    // -- invariants ------------------------------------------------------
    match (&report.outcome, &report.breach) {
        (RolloutOutcome::RolledBack { .. }, Some(b)) => {
            if b.guard != "quarantine" || b.wave != 1 {
                violations.push(format!(
                    "storm tripped {} in wave {}, designed for quarantine in wave 1",
                    b.guard, b.wave
                ));
            }
        }
        other => {
            violations.push(format!("trap-storm candidate was not rolled back: {other:?}"));
        }
    }
    // The wave's flip journals before its soak judges it, so a wave-1
    // breach leaves exactly one committed wave — never more.
    if report.waves_committed > 1 {
        violations.push(format!(
            "{} waves committed past a wave-1 storm",
            report.waves_committed
        ));
    }
    if !report.quarantined.is_empty() {
        violations.push(format!(
            "rollback failed to restore {:?} (stranded on the storm image)",
            report.quarantined
        ));
    }
    // Blast radius: only wave-1 devices saw the candidate; each one's
    // storm died inside two trap windows.
    let wave1: Vec<NodeId> = plan.waves.first().cloned().unwrap_or_default();
    let mut storm_traps = 0u64;
    for &d in &switches {
        let node = sim.topo.node(d).expect("switch");
        let stats = node.device.stats();
        let trap_window = node.device.sandbox().trap_window;
        if wave1.contains(&d) {
            storm_traps += stats.traps;
            if stats.traps == 0 {
                violations.push(format!("wave-1 device {d} never trapped on the candidate"));
            }
            if stats.dropped > 2 * trap_window {
                violations.push(format!(
                    "wave-1 device {d} dropped {} packets; quarantine must fire within {}",
                    stats.dropped,
                    2 * trap_window
                ));
            }
        } else if stats.dropped > 0 {
            violations.push(format!(
                "unflipped device {d} dropped {} packets: blast radius leaked",
                stats.dropped
            ));
        }
        if node.device.quarantined() {
            violations.push(format!(
                "{d} still quarantined after rollback reinstalled the baseline"
            ));
        }
        let got = node.device.config_digest();
        if Some(&got) != old_digests.get(&d) {
            violations.push(format!("{d} not back on the baseline digest after rollback"));
        }
    }
    // Fleet SLO held throughout: the wave-1 storm is contained.
    let attempts = sim.metrics.delivered + sim.metrics.total_lost();
    if attempts > 0 && sim.metrics.total_lost() * 1_000_000 / attempts > FLEET_LOSS_BUDGET_PPM {
        violations.push(format!(
            "fleet lost {}/{attempts} packets: the storm breached the SLO before the guard",
            sim.metrics.total_lost()
        ));
    }
    // And the network is clean again after the rollback settles.
    let post_from = report.finished_at + SimDuration::from_millis(300);
    let post = sim.metrics.window_stats(post_from, flow_end);
    if post.attempts() == 0 {
        violations.push("no post-rollback traffic observed".into());
    } else if post.lost > 0 {
        violations.push(format!(
            "post-rollback window still losing: {}/{} packets",
            post.lost,
            post.attempts()
        ));
    }

    let _ = seed;
    Ok(SandboxReport {
        schedule,
        quarantined_at: None,
        observed_at: None,
        victim_traps: storm_traps,
        victim_parse_traps: 0,
        rollout: Some(report),
        delivered: sim.metrics.delivered,
        lost: sim.metrics.total_lost(),
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexnet_sim::rogue_sweep;

    #[test]
    fn runaway_loop_is_gas_trapped_and_quarantined() {
        let report = run_sandbox_seed(0).unwrap();
        assert_eq!(report.schedule.scenario, RogueScenario::RunawayLoop);
        assert!(report.passed(), "violations: {:#?}", report.violations);
        assert!(report.quarantined_at.is_some());
        assert!(report.observed_at.is_some());
        assert!(report.victim_traps > 0);
    }

    #[test]
    fn state_bomb_traps_out_of_bounds_and_quarantines() {
        let report = run_sandbox_seed(1).unwrap();
        assert_eq!(report.schedule.scenario, RogueScenario::StateBomb);
        assert!(report.passed(), "violations: {:#?}", report.violations);
        assert!(report.quarantined_at.is_some());
    }

    #[test]
    fn malformed_flood_never_indicts_the_program() {
        let report = run_sandbox_seed(2).unwrap();
        assert_eq!(report.schedule.scenario, RogueScenario::MalformedFlood);
        assert!(report.passed(), "violations: {:#?}", report.violations);
        assert_eq!(report.quarantined_at, None);
        assert!(report.victim_parse_traps > 0);
        assert_eq!(report.victim_traps, 0);
    }

    #[test]
    fn trap_storm_aborts_the_rollout_in_wave_one() {
        let report = run_sandbox_seed(3).unwrap();
        assert_eq!(report.schedule.scenario, RogueScenario::TrapStormRollout);
        assert!(report.passed(), "violations: {:#?}", report.violations);
        let rollout = report.rollout.expect("rollout ran");
        assert!(matches!(rollout.outcome, RolloutOutcome::RolledBack { .. }));
        assert_eq!(rollout.breach.unwrap().guard, "quarantine");
    }

    #[test]
    fn sandbox_runs_are_deterministic_in_their_seed() {
        let a = run_sandbox_seed(5).unwrap();
        let b = run_sandbox_seed(5).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.lost, b.lost);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.quarantined_at, b.quarantined_at);
    }

    #[test]
    fn a_handful_of_consecutive_seeds_all_pass() {
        for s in rogue_sweep(4, 4, LANES) {
            let report = run_sandbox_seed(s.seed).unwrap();
            assert!(
                report.passed(),
                "seed {} ({}) violations: {:#?}",
                s.seed,
                s.scenario.label(),
                report.violations
            );
        }
    }
}
