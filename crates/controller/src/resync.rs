//! Device restart recovery: intended-state reconciliation with
//! digest-based anti-entropy and hitless re-provisioning (experiment
//! E14, `DESIGN.md` §9).
//!
//! A restarted device keeps its flashed program image but loses all
//! runtime state — counters, registers, maps, and control-plane table
//! entries (`Device::restart`). From the controller's point of view the
//! device is *diverged*: it answers heartbeats, it runs a program, but
//! its configuration no longer matches what the control plane intended.
//! This module closes that gap:
//!
//! - [`IntendedStore`] — the controller-side record of each device's
//!   desired program and table entries. Every successful journaled
//!   reconfiguration updates it ([`IntendedStore::commit_target`], called
//!   from `logged_transactional_reconfig` once a transaction is past its
//!   point of no return), and every update is made durable in the
//!   replicated intent log first ([`crate::wal::IntentRecord::IntendedState`]),
//!   so the reconciliation baseline survives controller failover
//!   ([`IntendedStore::digests_from_log`]).
//! - **Divergence detection** — devices piggyback a monotone `boot_id`
//!   and an order-independent configuration digest on heartbeats; the
//!   [`FailureDetector`] turns a boot-id advance into
//!   [`HealthEvent::Flapped`], and [`flexnet_sim::diverged`] compares
//!   reported digests against [`IntendedStore::intended_digests`].
//! - [`Resyncer`] — the anti-entropy pass: probe the device's digest,
//!   and when it diverges, re-provision the intended program through the
//!   existing shadow-program + atomic-flip path (never in-place), replay
//!   the intended table entries, and verify the digests now agree.
//!   Resyncs are admission-controlled through a *shared global*
//!   [`TokenBucket`] (one grant per [`Resyncer::min_gap`], booking a
//!   bounded number of periods ahead) so a mass restart cannot stampede
//!   the control fabric; a device denied by the bucket is requeued —
//!   never dropped — and [`Resyncer::resync_all`] orders
//!   [`ProgramClass::Critical`] devices before telemetry.
//! - [`run_resync_seed`] — the deterministic chaos harness: one seed
//!   expands to a [`RestartSchedule`] (how many devices restart, whether
//!   mid-transaction, how lossy the fabric is), and every convergence
//!   invariant is checked; violations come back as strings in the
//!   [`ResyncChaosReport`], so `report.passed()` is the pass criterion
//!   for benches, CI smoke tests, and property tests alike.

use crate::core::{FailureDetector, HealthEvent, TokenBucket};
use crate::recovery::{recover, RecoveryReport, TargetDirectory};
use crate::retry::{command_rtt, with_retry, LossyFabric, RetryPolicy};
use crate::txn::logged_transactional_reconfig;
use crate::wal::{IntentRecord, ReplicatedIntentLog};
use flexnet_dataplane::{config_digest_of, TableEntry};
use flexnet_lang::ast::ActionCall;
use flexnet_lang::diff::ProgramBundle;
use flexnet_lang::parser::parse_source;
use flexnet_sim::faults::VICTIM_RESTART_DELAY;
use flexnet_sim::{
    diverged, generate, CrashPhase, FlowSpec, RestartSchedule, Simulation, Topology,
};
use flexnet_types::{FlexError, NodeId, Result, SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Reconciliation priority of a device's intended program.
///
/// The ordering is load-bearing: `Critical < Telemetry`, so sorting
/// devices by `(class, node)` puts routing/security programs ahead of
/// measurement programs in every mass-resync pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ProgramClass {
    /// Routing/security: the network is broken (or open) without it.
    Critical,
    /// Measurement: losing it costs visibility, not connectivity.
    Telemetry,
}

/// One device's intended configuration: the program the control plane
/// last committed to it, plus the table entries installed out-of-band.
#[derive(Debug, Clone)]
pub struct IntendedDevice {
    /// The device.
    pub node: NodeId,
    /// The committed program bundle.
    pub bundle: ProgramBundle,
    /// Intended control-plane table entries, in installation order.
    pub entries: Vec<(String, TableEntry)>,
    /// Reconciliation priority.
    pub class: ProgramClass,
    /// The transaction that committed `bundle` (0 = out-of-band).
    pub txn: u64,
}

impl IntendedDevice {
    /// The intended-state digest — what the device's heartbeat digest
    /// must equal once converged.
    pub fn digest(&self) -> u64 {
        config_digest_of(&self.bundle, &self.entries)
    }
}

/// The controller's per-device intended-state store.
///
/// Updates are write-ahead: a durable
/// [`IntentRecord::IntendedState`] is appended to the replicated log
/// *before* the in-memory record changes, so a failover successor can
/// rebuild every intended digest from the log alone
/// ([`IntendedStore::digests_from_log`]).
#[derive(Debug, Default)]
pub struct IntendedStore {
    records: BTreeMap<NodeId, IntendedDevice>,
    classes: BTreeMap<NodeId, ProgramClass>,
}

impl IntendedStore {
    /// An empty store.
    pub fn new() -> IntendedStore {
        IntendedStore::default()
    }

    /// Sets the reconciliation priority of `node`'s program (default:
    /// [`ProgramClass::Critical`] — when in doubt, resync first).
    pub fn set_class(&mut self, node: NodeId, class: ProgramClass) {
        self.classes.insert(node, class);
        if let Some(rec) = self.records.get_mut(&node) {
            rec.class = class;
        }
    }

    /// The reconciliation priority of `node`.
    pub fn class(&self, node: NodeId) -> ProgramClass {
        self.classes
            .get(&node)
            .copied()
            .unwrap_or(ProgramClass::Critical)
    }

    /// The intended record for `node`, if the control plane ever
    /// committed a program to it.
    pub fn get(&self, node: NodeId) -> Option<&IntendedDevice> {
        self.records.get(&node)
    }

    /// The intended digest for `node`.
    pub fn digest(&self, node: NodeId) -> Option<u64> {
        self.records.get(&node).map(IntendedDevice::digest)
    }

    /// Every device's intended digest — the comparison baseline for
    /// [`flexnet_sim::diverged`].
    pub fn intended_digests(&self) -> BTreeMap<NodeId, u64> {
        self.records
            .iter()
            .map(|(n, r)| (*n, r.digest()))
            .collect()
    }

    /// Number of devices with an intended record.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no device has an intended record.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records that transaction `txn` committed `bundle` to `node`.
    ///
    /// Intended entries of tables still declared (by name) in the new
    /// bundle are kept — the hitless reconfiguration path carries
    /// unchanged tables' entries across the flip, so intent follows the
    /// same rule. The durable [`IntentRecord::IntendedState`] is
    /// journaled *before* the store mutates (write-ahead).
    pub fn commit_target(
        &mut self,
        log: &mut ReplicatedIntentLog,
        txn: u64,
        node: NodeId,
        bundle: ProgramBundle,
    ) -> Result<()> {
        let kept: Vec<(String, TableEntry)> = match self.records.get(&node) {
            Some(prev) => prev
                .entries
                .iter()
                .filter(|(t, _)| bundle.program.table(t).is_some())
                .cloned()
                .collect(),
            None => Vec::new(),
        };
        let digest = config_digest_of(&bundle, &kept);
        log.append(&IntentRecord::IntendedState {
            txn,
            device: node.0 as u64,
            digest,
        })?;
        let class = self.class(node);
        self.records.insert(
            node,
            IntendedDevice {
                node,
                bundle,
                entries: kept,
                class,
                txn,
            },
        );
        Ok(())
    }

    /// Records an out-of-band table entry installed on `node` (the
    /// control-plane `add_entry` path, outside any transaction).
    ///
    /// Journaled with txn 0 — replay loops skip intended-state records,
    /// so the marker never collides with a real transaction id.
    pub fn record_entry(
        &mut self,
        log: &mut ReplicatedIntentLog,
        node: NodeId,
        table: &str,
        entry: TableEntry,
    ) -> Result<()> {
        let rec = self.records.get(&node).ok_or_else(|| {
            FlexError::NotFound(format!("no intended program for node {node}"))
        })?;
        if rec.bundle.program.table(table).is_none() {
            return Err(FlexError::NotFound(format!(
                "table `{table}` not in the intended program of {node}"
            )));
        }
        let mut entries = rec.entries.clone();
        entries.push((table.to_string(), entry));
        let digest = config_digest_of(&rec.bundle, &entries);
        log.append(&IntentRecord::IntendedState {
            txn: 0,
            device: node.0 as u64,
            digest,
        })?;
        self.records
            .get_mut(&node)
            .expect("checked above")
            .entries = entries;
        Ok(())
    }

    /// Rebuilds the per-device intended digests from the replicated log
    /// alone: the last [`IntentRecord::IntendedState`] per device wins.
    /// This is what a failover successor starts from — the store's
    /// in-memory state died with the old leader, the log did not.
    pub fn digests_from_log(log: &ReplicatedIntentLog) -> Result<BTreeMap<NodeId, u64>> {
        let mut digests = BTreeMap::new();
        for rec in log.records()? {
            if let IntentRecord::IntendedState { device, digest, .. } = rec {
                digests.insert(NodeId(device as u32), digest);
            }
        }
        Ok(digests)
    }
}

/// How one device's resync ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResyncOutcome {
    /// The device's digest already matched intent — nothing to do.
    AlreadyConverged,
    /// The intended program was re-provisioned through the shadow +
    /// atomic-flip path and the intended entries were replayed.
    Reprovisioned {
        /// Primitive ops in the re-provisioning diff.
        ops: usize,
        /// Intended entries replayed after the flip.
        entries: usize,
    },
    /// The device restarted *again* mid-resync: its shadow died with
    /// the new incarnation. The caller re-runs resync against the new
    /// boot id.
    Superseded {
        /// The incarnation that interrupted the resync.
        new_boot_id: u64,
    },
}

/// One device's resync, as reported by [`Resyncer::complete`].
#[derive(Debug, Clone)]
pub struct ResyncReport {
    /// The reconciled device.
    pub node: NodeId,
    /// Its program's reconciliation priority.
    pub class: ProgramClass,
    /// How the resync ended.
    pub outcome: ResyncOutcome,
    /// Admission-controlled instant the resync started.
    pub started_at: SimTime,
    /// When the resync concluded.
    pub finished_at: SimTime,
    /// Control messages sent (attempts, including lost ones).
    pub messages: u32,
}

/// An in-flight resync: returned by [`Resyncer::start`], consumed by
/// [`Resyncer::complete`]. Between the two, further starts for the same
/// node fail with [`FlexError::ResyncInProgress`].
#[derive(Debug, Clone)]
pub struct ResyncTicket {
    node: NodeId,
    class: ProgramClass,
    /// Incarnation the resync was planned against: a higher boot id at
    /// completion means the device restarted mid-resync (superseded).
    boot_id: u64,
    started_at: SimTime,
    /// Flip instant of the re-provisioning shadow; `None` when the
    /// probe found the device already converged.
    ready_at: Option<SimTime>,
    ops: usize,
    messages: u32,
    after_start: SimTime,
}

/// How many refill periods ahead the resync admission bucket will book
/// before denying with [`FlexError::Backpressure`]. A mass restart of up
/// to this many devices defers (preserving the old min-gap spacing); a
/// larger stampede is told to requeue instead of camping on
/// reservations arbitrarily far in the future.
const RESYNC_BUCKET_DEPTH: u32 = 8;

/// The anti-entropy reconciler: drives diverged devices back to their
/// intended state. Admission flows through one *global* token bucket
/// shared by every device — the rate limit protects the controller and
/// the control fabric, which are shared resources, so limiting
/// per-device would let a mass restart multiply the rate by the fleet
/// size.
#[derive(Debug)]
pub struct Resyncer {
    bucket: TokenBucket,
    in_progress: BTreeSet<NodeId>,
    starts: Vec<(SimTime, NodeId)>,
}

impl Default for Resyncer {
    /// At most one resync admission per 25 ms — half a heartbeat period.
    fn default() -> Resyncer {
        Resyncer::new(SimDuration::from_millis(25))
    }
}

impl Resyncer {
    /// A reconciler admitting at most one resync per `min_gap`
    /// (globally, across all devices), booking at most
    /// [`RESYNC_BUCKET_DEPTH`] admissions ahead.
    pub fn new(min_gap: SimDuration) -> Resyncer {
        Resyncer::with_bucket(TokenBucket::new(min_gap, RESYNC_BUCKET_DEPTH))
    }

    /// A reconciler admitting through the caller's bucket (the overload
    /// harness shares one bucket between subsystems and shrinks the
    /// booking horizon to force the requeue path).
    pub fn with_bucket(bucket: TokenBucket) -> Resyncer {
        Resyncer {
            bucket,
            in_progress: BTreeSet::new(),
            starts: Vec::new(),
        }
    }

    /// The configured admission gap (the bucket's refill period).
    pub fn min_gap(&self) -> SimDuration {
        self.bucket.refill_period()
    }

    /// The shared global admission bucket (its `granted`/`denied`
    /// counters are the observable rate-limit behaviour).
    pub fn bucket(&self) -> &TokenBucket {
        &self.bucket
    }

    /// Every admitted resync start, in admission order.
    pub fn starts(&self) -> &[(SimTime, NodeId)] {
        &self.starts
    }

    /// Starts reconciling `node` against its intended state.
    ///
    /// Admission control first: a resync already in flight for this node
    /// fails with [`FlexError::ResyncInProgress`] (retryable — the
    /// running pass converges the device or frees the slot), and the
    /// start instant is deferred to keep at least `min_gap` between
    /// consecutive admissions. Then the device's digest is probed over
    /// the fabric; on divergence the intended bundle is re-provisioned
    /// through [`flexnet_dataplane::Device::begin_runtime_reconfig`] —
    /// the shadow-program + atomic-flip path, *never* in-place — even
    /// when the image is unchanged and only entries must be replayed.
    ///
    /// `gate`, when set, health-gates admission: a node the detector
    /// grades worse than [`Health::Healthy`](crate::core::Health) is
    /// refused up front with the retryable
    /// [`FlexError::DegradedDevice`] — before any fabric traffic or
    /// shadow provisioning. Pass `None` for remedial passes (post-crash
    /// recovery, rollback cleanup) whose whole point is to repair a
    /// device the detector has written off.
    #[allow(clippy::too_many_arguments)]
    pub fn start(
        &mut self,
        sim: &mut Simulation,
        store: &IntendedStore,
        node: NodeId,
        now: SimTime,
        fabric: &mut LossyFabric,
        policy: &RetryPolicy,
        gate: Option<&FailureDetector>,
    ) -> Result<ResyncTicket> {
        if self.in_progress.contains(&node) {
            return Err(FlexError::ResyncInProgress { node: node.0 as u64 });
        }
        if let Some(detector) = gate {
            detector.admit(node)?;
        }
        let intended = store.get(node).ok_or_else(|| {
            FlexError::NotFound(format!("no intended state for node {node}"))
        })?;
        let want = intended.digest();
        let class = intended.class;
        // Admission: one global token-bucket reservation. The grant is a
        // deferred start instant (≥ min_gap after the previous grant);
        // past the booking horizon the bucket denies with the retryable
        // [`FlexError::Backpressure`] — the caller requeues the node.
        let prior_tat = self.bucket.next_free();
        let start_at = self.bucket.reserve(now, "resync admission")?;
        self.in_progress.insert(node);
        let result = self.start_inner(
            sim, intended, want, node, class, start_at, fabric, policy,
        );
        if result.is_err() {
            self.in_progress.remove(&node);
            // The reservation was never used: give it back so a failed
            // start does not consume admission capacity.
            self.bucket.release(prior_tat);
        } else {
            self.starts.push((start_at, node));
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn start_inner(
        &mut self,
        sim: &mut Simulation,
        intended: &IntendedDevice,
        want: u64,
        node: NodeId,
        class: ProgramClass,
        start_at: SimTime,
        fabric: &mut LossyFabric,
        policy: &RetryPolicy,
    ) -> Result<ResyncTicket> {
        let mut messages = 0u32;
        // Probe the device's digest and boot id over the fabric.
        let mut probed: Option<(u64, u64)> = None;
        let out = with_retry(policy, fabric, start_at, command_rtt(), |_| {
            if let Some(p) = probed {
                return Ok(p);
            }
            let dev = &sim
                .topo
                .node(node)
                .ok_or_else(|| FlexError::Sim(format!("resync: unknown node {node}")))?
                .device;
            if !dev.is_up() {
                return Err(FlexError::Unavailable(format!(
                    "resync probe: device {node} is down"
                )));
            }
            let p = (dev.config_digest(), dev.boot_id());
            probed = Some(p);
            Ok(p)
        });
        messages += out.attempts;
        let mut t = out.finished_at;
        let (got, boot_id) = out.result?;
        if got == want {
            return Ok(ResyncTicket {
                node,
                class,
                boot_id,
                started_at: start_at,
                ready_at: None,
                ops: 0,
                messages,
                after_start: t,
            });
        }

        // Diverged: re-provision the intended bundle via shadow + flip.
        let bundle = intended.bundle.clone();
        let mut acked: Option<flexnet_dataplane::ReconfigReport> = None;
        let out = with_retry(policy, fabric, t, command_rtt(), |at| {
            if let Some(rep) = &acked {
                return Ok(rep.clone());
            }
            let dev = &mut sim
                .topo
                .node_mut(node)
                .ok_or_else(|| FlexError::Sim(format!("resync: unknown node {node}")))?
                .device;
            let rep = dev.begin_runtime_reconfig(bundle.clone(), at)?;
            acked = Some(rep.clone());
            Ok(rep)
        });
        messages += out.attempts;
        t = out.finished_at;
        let rep = out.result?;
        Ok(ResyncTicket {
            node,
            class,
            boot_id,
            started_at: start_at,
            ready_at: Some(rep.ready_at),
            ops: rep.ops,
            messages,
            after_start: t,
        })
    }

    /// Completes a resync started with [`Resyncer::start`]: waits out
    /// the shadow's flip, replays the intended entries (upsert — an
    /// entry already present is replaced, not duplicated), and verifies
    /// the device's digest now equals intent. Always frees the node's
    /// in-progress slot, even on error.
    pub fn complete(
        &mut self,
        sim: &mut Simulation,
        store: &IntendedStore,
        ticket: ResyncTicket,
        fabric: &mut LossyFabric,
        policy: &RetryPolicy,
    ) -> Result<ResyncReport> {
        let node = ticket.node;
        let result = complete_inner(sim, store, &ticket, fabric, policy);
        self.in_progress.remove(&node);
        result
    }

    /// Reconciles every node in `nodes`, critical programs first, one at
    /// a time (sequential + admission gap = no stampede). Returns the
    /// per-device reports in execution order. `gate` is forwarded to
    /// each [`Resyncer::start`]: an unhealthy node fails the whole batch
    /// up front rather than mid-sequence.
    ///
    /// A node denied by the global admission bucket is *requeued, not
    /// dropped*: the batch waits out the bucket's `retry_after` and
    /// retries the same node, so priority order is preserved and every
    /// node in the batch is eventually reconciled.
    #[allow(clippy::too_many_arguments)]
    pub fn resync_all(
        &mut self,
        sim: &mut Simulation,
        store: &IntendedStore,
        nodes: &[NodeId],
        now: SimTime,
        fabric: &mut LossyFabric,
        policy: &RetryPolicy,
        gate: Option<&FailureDetector>,
    ) -> Result<Vec<ResyncReport>> {
        let mut ordered: Vec<NodeId> = nodes.to_vec();
        ordered.sort_by_key(|n| (store.class(*n), *n));
        ordered.dedup();
        if let Some(detector) = gate {
            for node in &ordered {
                detector.admit(*node)?;
            }
        }
        let mut queue: std::collections::VecDeque<NodeId> = ordered.into();
        let mut t = now;
        let mut reports = Vec::new();
        while let Some(node) = queue.pop_front() {
            match self.start(sim, store, node, t, fabric, policy, gate) {
                Ok(ticket) => {
                    let report = self.complete(sim, store, ticket, fabric, policy)?;
                    if report.finished_at > t {
                        t = report.finished_at;
                    }
                    reports.push(report);
                }
                Err(FlexError::Backpressure { retry_after, .. }) => {
                    // Denied by the bucket: requeue at the *front* (the
                    // batch's priority order stands) and wait out the
                    // backlog. Each denial advances `t`, so the retry is
                    // granted and the loop terminates.
                    t += retry_after.max(SimDuration::from_nanos(1));
                    queue.push_front(node);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(reports)
    }
}

fn complete_inner(
    sim: &mut Simulation,
    store: &IntendedStore,
    ticket: &ResyncTicket,
    fabric: &mut LossyFabric,
    policy: &RetryPolicy,
) -> Result<ResyncReport> {
    let node = ticket.node;
    let intended = store.get(node).ok_or_else(|| {
        FlexError::NotFound(format!("no intended state for node {node}"))
    })?;
    let want = intended.digest();
    let mut messages = ticket.messages;
    let mut t = ticket.after_start;

    // A boot-id advance since the start means the device restarted
    // mid-resync: the shadow died with its incarnation. Report it —
    // the caller re-runs resync against the new boot id.
    let current_boot = sim
        .topo
        .node(node)
        .ok_or_else(|| FlexError::Sim(format!("resync: unknown node {node}")))?
        .device
        .boot_id();
    if current_boot > ticket.boot_id {
        return Ok(ResyncReport {
            node,
            class: ticket.class,
            outcome: ResyncOutcome::Superseded {
                new_boot_id: current_boot,
            },
            started_at: ticket.started_at,
            finished_at: t,
            messages,
        });
    }

    let Some(ready_at) = ticket.ready_at else {
        // The probe found the device digest-equal to intent.
        return Ok(ResyncReport {
            node,
            class: ticket.class,
            outcome: ResyncOutcome::AlreadyConverged,
            started_at: ticket.started_at,
            finished_at: t,
            messages,
        });
    };

    // Let the shadow flip (atomic: packets before see the old program,
    // packets after see the new one).
    let flip_at = if ready_at > t { ready_at } else { t };
    sim.topo
        .node_mut(node)
        .ok_or_else(|| FlexError::Sim(format!("resync: unknown node {node}")))?
        .device
        .tick(flip_at);
    t = flip_at;

    // Replay the intended entries. Upsert: remove-then-add is exact and
    // idempotent, so entries the flip carried over are not duplicated.
    let mut replayed = 0usize;
    for (table, entry) in &intended.entries {
        let mut done = false;
        let out = with_retry(policy, fabric, t, command_rtt(), |_| {
            if done {
                return Ok(());
            }
            let dev = &mut sim
                .topo
                .node_mut(node)
                .ok_or_else(|| FlexError::Sim(format!("resync: unknown node {node}")))?
                .device;
            dev.remove_entry(table, &entry.matches)?;
            dev.add_entry(table, entry.clone())?;
            done = true;
            Ok(())
        });
        messages += out.attempts;
        t = out.finished_at;
        out.result?;
        replayed += 1;
    }

    // Verify: the whole point of digest-based anti-entropy is that
    // convergence is checked, not assumed.
    let got = sim
        .topo
        .node(node)
        .ok_or_else(|| FlexError::Sim(format!("resync: unknown node {node}")))?
        .device
        .config_digest();
    if got != want {
        return Err(FlexError::DigestMismatch {
            node: node.0 as u64,
            want,
            got,
        });
    }
    Ok(ResyncReport {
        node,
        class: ticket.class,
        outcome: ResyncOutcome::Reprovisioned {
            ops: ticket.ops,
            entries: replayed,
        },
        started_at: ticket.started_at,
        finished_at: t,
        messages,
    })
}

// ---------------------------------------------------------------------
// The seeded restart-chaos harness (experiment E14).
// ---------------------------------------------------------------------

/// Controller nodes in the harness's Raft cluster.
const CONTROLLERS: usize = 3;
/// Heartbeat sweep cadence.
const HEARTBEAT_PERIOD: SimDuration = SimDuration::from_millis(50);

/// Everything one restart-chaos run observed.
#[derive(Debug, Clone)]
pub struct ResyncChaosReport {
    /// The schedule the seed expanded to.
    pub schedule: RestartSchedule,
    /// Devices the failure detector reported as flapped.
    pub flapped: Vec<NodeId>,
    /// Per-device resync reports, in execution order.
    pub resyncs: Vec<ResyncReport>,
    /// The 2PC recovery pass (mid-transaction schedules only).
    pub recovery: Option<RecoveryReport>,
    /// Packets delivered across the whole run.
    pub delivered: u64,
    /// Packets lost across the whole run (all causes).
    pub lost: u64,
    /// Simulated time from the restart fault to the last resync
    /// completing.
    pub converge_latency: SimDuration,
    /// Every invariant violation observed (empty = the run passed).
    pub violations: Vec<String>,
}

impl ResyncChaosReport {
    /// Whether the run upheld every invariant.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn bundle(src: &str) -> ProgramBundle {
    let file = parse_source(src).expect("harness program parses");
    ProgramBundle {
        headers: file.headers,
        program: file.programs.into_iter().next().expect("one program"),
    }
}

/// The switch's critical program: an ACL table in front of line
/// forwarding. Losing its entries fails open — exactly the divergence
/// resync exists to close.
fn critical_v1() -> ProgramBundle {
    bundle(
        "program gate kind any {
           table acl {
             key { ipv4.src : exact; }
             action deny() { drop(); }
             action allow() { forward(1); }
             default allow();
             size 16;
           }
           handler ingress(pkt) { apply acl; }
         }",
    )
}

/// The critical program's upgrade target (the mid-transaction schedules
/// crash a 2PC reconfiguration toward this).
fn critical_v2() -> ProgramBundle {
    bundle(
        "program gate kind any {
           counter gated;
           table acl {
             key { ipv4.src : exact; }
             action deny() { drop(); }
             action allow() { forward(1); }
             default allow();
             size 16;
           }
           handler ingress(pkt) { count(gated); apply acl; }
         }",
    )
}

/// The NICs' telemetry program: a watch table marking flows of
/// interest, forwarding either way.
fn telemetry_v1() -> ProgramBundle {
    bundle(
        "program tap kind any {
           counter seen;
           table watch {
             key { ipv4.src : exact; }
             action mark() { count(seen); forward(1); }
             action pass() { forward(1); }
             default pass();
             size 8;
           }
           handler ingress(pkt) { apply watch; }
         }",
    )
}

/// The telemetry program's upgrade target.
fn telemetry_v2() -> ProgramBundle {
    bundle(
        "program tap kind any {
           counter seen;
           counter sampled;
           table watch {
             key { ipv4.src : exact; }
             action mark() { count(seen); forward(1); }
             action pass() { forward(1); }
             default pass();
             size 8;
           }
           handler ingress(pkt) { count(sampled); apply watch; }
         }",
    )
}

/// A source address that never appears in generated traffic, so the
/// intended entries are behaviorally benign (losing them changes the
/// digest, not the traffic outcome — loss stays attributable to
/// downtime, not to the entries themselves).
const BENIGN_SRC: u64 = 0xDEAD_BEEF;

fn deny_entry() -> TableEntry {
    TableEntry::exact(
        &[BENIGN_SRC],
        ActionCall {
            action: "deny".into(),
            args: vec![],
        },
    )
}

fn mark_entry() -> TableEntry {
    TableEntry::exact(
        &[BENIGN_SRC],
        ActionCall {
            action: "mark".into(),
            args: vec![],
        },
    )
}

/// Runs the full device-restart/resync scenario for one seed.
///
/// Errors only on harness plumbing failures; protocol misbehaviour is
/// reported as violations, so sweeps keep going and count.
#[allow(clippy::too_many_lines)]
pub fn run_resync_seed(seed: u64) -> Result<ResyncChaosReport> {
    // -- setup: line topology, intended state committed + journaled ------
    let (topo, nodes) = Topology::host_nic_switch_line();
    let devices = [nodes[1], nodes[2], nodes[3]];
    let (src_host, dst_host) = (nodes[0], nodes[4]);
    let sw = nodes[2];
    let mut sim = Simulation::new(topo);
    let schedule = RestartSchedule::from_seed(seed, devices.len());
    let mut log = ReplicatedIntentLog::new(CONTROLLERS, schedule.raft_seed)?;
    let mut fabric = LossyFabric::new(schedule.fabric_loss, seed);
    let policy = RetryPolicy {
        max_attempts: 16,
        deadline: SimDuration::from_secs(60),
        ..RetryPolicy::default()
    };
    let mut violations: Vec<String> = Vec::new();

    let mut store = IntendedStore::new();
    store.set_class(sw, ProgramClass::Critical);
    for nic in [devices[0], devices[2]] {
        store.set_class(nic, ProgramClass::Telemetry);
    }
    let plan_of = |d: NodeId| {
        if d == sw {
            (critical_v1(), "acl", deny_entry())
        } else {
            (telemetry_v1(), "watch", mark_entry())
        }
    };
    for d in devices {
        let (v1, table, entry) = plan_of(d);
        let dev = &mut sim.topo.node_mut(d).expect("line node exists").device;
        dev.install(v1.clone())
            .map_err(|e| FlexError::Sim(format!("seed {seed}: install on {d}: {e}")))?;
        dev.add_entry(table, entry.clone())
            .map_err(|e| FlexError::Sim(format!("seed {seed}: entry on {d}: {e}")))?;
        store.commit_target(&mut log, 0, d, v1)?;
        store.record_entry(&mut log, d, table, entry)?;
    }
    if !diverged(&sim, &store.intended_digests()).is_empty() {
        violations.push("baseline diverged before any fault".into());
    }

    // Baseline the failure detector before any fault: in a long-running
    // network every device has heartbeated many times before it ever
    // restarts, so the detector knows each one's pre-fault boot id.
    // Without this, a restart that lands before the first heartbeat
    // would *become* the baseline and never read as a flap.
    let mut detector = FailureDetector::default();
    let t_baseline = SimTime::from_millis(500);
    for id in sim.topo.node_ids() {
        let node = sim.topo.node(id).expect("listed node exists");
        detector.observe_heartbeat(
            id,
            t_baseline,
            node.device.boot_id(),
            node.device.config_digest(),
        );
    }
    detector.poll(t_baseline);

    // -- act 1 (mid-txn schedules): restarts land between prepare and
    // flip of an in-flight 2PC upgrade; the coordinator dies with them
    // and its successor recovers before anti-entropy runs ---------------
    let mut recovery: Option<RecoveryReport> = None;
    let mut t_base = SimTime::from_secs(1);
    let mut fault_at = t_base;
    if schedule.mid_txn {
        let targets: Vec<(NodeId, ProgramBundle)> = devices
            .iter()
            .map(|d| {
                (*d, if *d == sw { critical_v2() } else { telemetry_v2() })
            })
            .collect();
        // AfterPrepared: the flip decision is NOT durable, so recovery
        // rolls the upgrade back and the intended store (updated only
        // past the point of no return) still names v1 — the resync
        // baseline and the 2PC resolution agree by construction.
        let txn_report = logged_transactional_reconfig(
            &mut sim,
            &targets,
            t_base,
            &mut fabric,
            &policy,
            &mut log,
            Some(CrashPhase::AfterPrepared),
            Some(&mut store),
            None,
        )?;
        fault_at = txn_report.finished_at;
        for &v in &schedule.victims {
            let dev = &mut sim
                .topo
                .node_mut(devices[v])
                .expect("victim exists")
                .device;
            dev.crash(fault_at);
            dev.restart(fault_at + VICTIM_RESTART_DELAY)
                .map_err(|e| FlexError::Sim(format!("seed {seed}: victim restart: {e}")))?;
        }
        let mut directory = TargetDirectory::new();
        directory.insert(txn_report.txn, targets);
        let rec = recover(
            &mut sim,
            &mut log,
            &directory,
            &devices,
            fault_at + SimDuration::from_secs(1),
            &mut fabric,
            &policy,
        )?;
        // Victims lost their prepared shadows with their volatile
        // memory: the rollback must have tolerated (and counted) them.
        if rec.wiped_shadows < schedule.restarts {
            violations.push(format!(
                "recovery counted {} wiped shadows, {} devices restarted mid-txn",
                rec.wiped_shadows, schedule.restarts
            ));
        }
        t_base = rec.finished_at + HEARTBEAT_PERIOD;
        recovery = Some(rec);
    }

    // -- act 2: live traffic + heartbeats + flap-triggered resync --------
    // Steady-state schedules crash the victims mid-traffic (the faults
    // ride the event queue); mid-txn schedules already restarted them.
    let traffic_dur = SimDuration::from_secs(3);
    sim.load(generate(
        &[FlowSpec::udp_cbr(
            src_host,
            dst_host,
            1000,
            t_base + SimDuration::from_millis(1),
            traffic_dur,
        )],
        seed,
    ));
    if !schedule.mid_txn {
        fault_at = t_base + SimDuration::from_secs(1);
        schedule.fault_plan(&devices, fault_at).apply(&mut sim);
    }

    let mut resyncer = Resyncer::default();
    let mut flapped: Vec<NodeId> = Vec::new();
    let mut resyncs: Vec<ResyncReport> = Vec::new();
    let mut converged_at = fault_at;
    let mut t = t_base;
    let t_end = t_base + traffic_dur + SimDuration::from_secs(1);
    while t < t_end {
        t += HEARTBEAT_PERIOD;
        sim.run(t);
        for id in sim.topo.node_ids() {
            let node = sim.topo.node(id).expect("listed node exists");
            if node.device.is_up() && fabric.deliver() {
                detector.observe_heartbeat(
                    id,
                    t,
                    node.device.boot_id(),
                    node.device.config_digest(),
                );
            }
        }
        let mut batch: Vec<NodeId> = Vec::new();
        for (node, event) in detector.poll(t) {
            if let HealthEvent::Flapped { .. } = event {
                flapped.push(node);
                batch.push(node);
            }
        }
        if !batch.is_empty() {
            let reports =
                resyncer.resync_all(&mut sim, &store, &batch, t, &mut fabric, &policy, None)?;
            for r in &reports {
                if r.finished_at > converged_at {
                    converged_at = r.finished_at;
                }
            }
            resyncs.extend(reports);
        }
    }

    // -- invariants ------------------------------------------------------
    // Every victim flapped exactly once; nobody else did.
    let mut expect: Vec<NodeId> = schedule.victims.iter().map(|&v| devices[v]).collect();
    expect.sort_unstable();
    let mut saw = flapped.clone();
    saw.sort_unstable();
    if saw != expect {
        violations.push(format!(
            "flapped {saw:?} but the schedule restarted {expect:?}"
        ));
    }

    // Convergence: every device's digest equals its intended digest.
    let off = diverged(&sim, &store.intended_digests());
    if !off.is_empty() {
        violations.push(format!("diverged after resync: {off:?}"));
    }

    // The durable baseline agrees with the in-memory store (failover
    // would reconcile to the very same digests).
    if IntendedStore::digests_from_log(&log)? != store.intended_digests() {
        violations.push("log-replayed intended digests differ from the store".into());
    }

    // Zero orphan shadows, nothing in doubt, nothing mid-flight.
    let settle = t_end + SimDuration::from_secs(1);
    for d in devices {
        let dev = &mut sim.topo.node_mut(d).expect("device exists").device;
        dev.tick(settle);
        if let Some(tag) = dev.txn_in_doubt() {
            violations.push(format!("orphan in-doubt shadow on {d}: {tag:?}"));
        }
        if dev.reconfig_in_progress() {
            violations.push(format!("{d} still mid-reconfiguration after settling"));
        }
    }

    // Critical before telemetry: no telemetry resync may start before a
    // critical one that was admitted in the same recovery.
    let starts = resyncer.starts();
    for (i, (at, node)) in starts.iter().enumerate() {
        if store.class(*node) == ProgramClass::Critical {
            for (prev_at, prev_node) in &starts[..i] {
                if store.class(*prev_node) == ProgramClass::Telemetry && prev_at > at {
                    violations.push(format!(
                        "telemetry {prev_node} resynced before critical {node}"
                    ));
                }
            }
        }
    }
    // Rate limit: consecutive admissions at least min_gap apart.
    for pair in starts.windows(2) {
        let gap = pair[1].0.saturating_since(pair[0].0);
        if gap < resyncer.min_gap() {
            violations.push(format!(
                "resync admissions {} apart, minimum is {}",
                gap,
                resyncer.min_gap()
            ));
        }
    }

    // Loss is confined to the downtime + resync window. Steady-state
    // schedules lose the packets that hit a down device (~restart delay
    // at 1000 pps, plus detection slack); mid-txn schedules restarted
    // the victims before traffic began, so loss must be (near) zero.
    let downtime_ms = if schedule.mid_txn {
        0
    } else {
        VICTIM_RESTART_DELAY.as_nanos() / 1_000_000
    };
    let loss_budget = downtime_ms + 100; // pps/1000 = 1 pkt per ms, +slack
    let lost = sim.metrics.total_lost();
    if lost > loss_budget {
        violations.push(format!(
            "lost {lost} packets, budget {loss_budget} (downtime {downtime_ms} ms)"
        ));
    }
    if sim.metrics.delivered == 0 {
        violations.push("no traffic delivered at all".into());
    }

    // Old-XOR-new: post-convergence traffic sees exactly one program
    // version per device (the probe's version delta is the check — the
    // main window legitimately spans restart + resync versions).
    let before: BTreeMap<NodeId, Vec<_>> = devices
        .iter()
        .map(|d| (*d, sim.metrics.versions_seen(*d)))
        .collect();
    sim.load(generate(
        &[FlowSpec::udp_cbr(
            src_host,
            dst_host,
            1000,
            settle + SimDuration::from_millis(1),
            SimDuration::from_millis(200),
        )],
        seed ^ 1,
    ));
    sim.run_to_completion();
    for d in devices {
        let seen = sim.metrics.versions_seen(d);
        let fresh: Vec<_> = seen
            .iter()
            .filter(|v| !before[&d].contains(v))
            .collect();
        if fresh.len() > 1 {
            violations.push(format!(
                "{d} processed post-resync packets under {} versions: old-XOR-new violated",
                fresh.len()
            ));
        }
    }
    if sim.metrics.total_lost() > loss_budget {
        violations.push(format!(
            "post-convergence probe lost packets: {} total vs budget {loss_budget}",
            sim.metrics.total_lost()
        ));
    }

    Ok(ResyncChaosReport {
        schedule,
        flapped,
        resyncs,
        recovery,
        delivered: sim.metrics.delivered,
        lost,
        converge_latency: converged_at.saturating_since(fault_at),
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reliable_env() -> (LossyFabric, RetryPolicy) {
        (LossyFabric::reliable(), RetryPolicy::default())
    }

    fn provisioned() -> (Simulation, [NodeId; 3], IntendedStore, ReplicatedIntentLog) {
        let (topo, nodes) = Topology::host_nic_switch_line();
        let devices = [nodes[1], nodes[2], nodes[3]];
        let sw = nodes[2];
        let mut sim = Simulation::new(topo);
        let mut log = ReplicatedIntentLog::new(3, 7).unwrap();
        let mut store = IntendedStore::new();
        store.set_class(sw, ProgramClass::Critical);
        store.set_class(devices[0], ProgramClass::Telemetry);
        store.set_class(devices[2], ProgramClass::Telemetry);
        for d in devices {
            let (v1, table, entry) = if d == sw {
                (critical_v1(), "acl", deny_entry())
            } else {
                (telemetry_v1(), "watch", mark_entry())
            };
            let dev = &mut sim.topo.node_mut(d).unwrap().device;
            dev.install(v1.clone()).unwrap();
            dev.add_entry(table, entry.clone()).unwrap();
            store.commit_target(&mut log, 0, d, v1).unwrap();
            store.record_entry(&mut log, d, table, entry).unwrap();
        }
        (sim, devices, store, log)
    }

    #[test]
    fn store_digest_matches_device_digest() {
        let (sim, devices, store, _log) = provisioned();
        for d in devices {
            assert_eq!(
                store.digest(d).unwrap(),
                sim.topo.node(d).unwrap().device.config_digest(),
                "{d}: intended and actual digests must agree when in sync"
            );
        }
        assert!(diverged(&sim, &store.intended_digests()).is_empty());
    }

    #[test]
    fn commit_target_keeps_entries_of_surviving_tables_only() {
        let (_sim, devices, mut store, mut log) = provisioned();
        let sw = devices[1];
        let with_entry = store.digest(sw).unwrap();
        // Upgrading to v2 keeps the acl table: the entry must survive.
        store.commit_target(&mut log, 9, sw, critical_v2()).unwrap();
        assert_eq!(store.get(sw).unwrap().entries.len(), 1, "entry kept");
        assert_eq!(store.get(sw).unwrap().txn, 9);
        assert_ne!(store.digest(sw).unwrap(), with_entry, "bundle changed");
        // A program without the table drops its intended entries.
        store
            .commit_target(
                &mut log,
                10,
                sw,
                bundle("program gate kind any { handler ingress(pkt) { forward(1); } }"),
            )
            .unwrap();
        assert!(store.get(sw).unwrap().entries.is_empty(), "entry dropped");
    }

    #[test]
    fn record_entry_requires_a_known_table() {
        let (_sim, devices, mut store, mut log) = provisioned();
        let err = store
            .record_entry(&mut log, devices[1], "nope", deny_entry())
            .unwrap_err();
        assert!(matches!(err, FlexError::NotFound(_)));
        let err = store
            .record_entry(&mut log, NodeId(999), "acl", deny_entry())
            .unwrap_err();
        assert!(matches!(err, FlexError::NotFound(_)));
    }

    #[test]
    fn intended_digests_survive_failover_via_the_log() {
        let (_sim, _devices, store, mut log) = provisioned();
        log.kill_leader().unwrap();
        log.elect().unwrap();
        assert_eq!(
            IntendedStore::digests_from_log(&log).unwrap(),
            store.intended_digests(),
            "a successor rebuilds the same reconciliation baseline"
        );
    }

    #[test]
    fn restarted_device_is_reprovisioned_and_verified() {
        let (mut sim, devices, store, _log) = provisioned();
        let sw = devices[1];
        let (mut fabric, policy) = reliable_env();
        let dev = &mut sim.topo.node_mut(sw).unwrap().device;
        dev.crash(SimTime::from_secs(1));
        dev.restart(SimTime::from_secs(1) + VICTIM_RESTART_DELAY).unwrap();
        assert_eq!(diverged(&sim, &store.intended_digests()), vec![sw]);

        let mut r = Resyncer::default();
        let now = SimTime::from_secs(2);
        let ticket = r.start(&mut sim, &store, sw, now, &mut fabric, &policy, None).unwrap();
        let report = r.complete(&mut sim, &store, ticket, &mut fabric, &policy).unwrap();
        assert!(
            matches!(report.outcome, ResyncOutcome::Reprovisioned { entries: 1, .. }),
            "wiped entries force a real re-provision: {:?}",
            report.outcome
        );
        assert!(diverged(&sim, &store.intended_digests()).is_empty());
    }

    #[test]
    fn converged_device_resync_is_a_noop() {
        let (mut sim, devices, store, _log) = provisioned();
        let (mut fabric, policy) = reliable_env();
        let mut r = Resyncer::default();
        let ticket = r
            .start(&mut sim, &store, devices[0], SimTime::from_secs(1), &mut fabric, &policy, None)
            .unwrap();
        let report = r
            .complete(&mut sim, &store, ticket, &mut fabric, &policy)
            .unwrap();
        assert_eq!(report.outcome, ResyncOutcome::AlreadyConverged);
    }

    #[test]
    fn double_start_is_resync_in_progress() {
        let (mut sim, devices, store, _log) = provisioned();
        let sw = devices[1];
        let (mut fabric, policy) = reliable_env();
        let mut r = Resyncer::default();
        let ticket = r
            .start(&mut sim, &store, sw, SimTime::from_secs(1), &mut fabric, &policy, None)
            .unwrap();
        let err = r
            .start(&mut sim, &store, sw, SimTime::from_secs(1), &mut fabric, &policy, None)
            .unwrap_err();
        assert!(matches!(err, FlexError::ResyncInProgress { .. }));
        assert!(err.is_retryable(), "the slot frees itself");
        // Completing frees the slot.
        r.complete(&mut sim, &store, ticket, &mut fabric, &policy).unwrap();
        assert!(r
            .start(&mut sim, &store, sw, SimTime::from_secs(2), &mut fabric, &policy, None)
            .is_ok());
    }

    #[test]
    fn health_gate_refuses_suspect_node_before_any_fabric_traffic() {
        let (mut sim, devices, store, _log) = provisioned();
        let sw = devices[1];
        let (mut fabric, policy) = reliable_env();
        // The detector last heard from the switch a long silence ago.
        let mut detector = FailureDetector::default();
        for d in devices {
            detector.observe(d, SimTime::ZERO);
        }
        detector.observe(devices[0], SimTime::from_millis(800));
        detector.observe(devices[2], SimTime::from_millis(800));
        detector.poll(SimTime::from_millis(850));
        let mut r = Resyncer::default();
        let err = r
            .start(
                &mut sim,
                &store,
                sw,
                SimTime::from_secs(1),
                &mut fabric,
                &policy,
                Some(&detector),
            )
            .unwrap_err();
        assert!(
            matches!(err, FlexError::DegradedDevice { .. }),
            "typed refusal, got {err:?}"
        );
        assert!(err.is_retryable());
        // Refused before admission: no start was journaled, the slot is
        // free, and the device holds no shadow.
        assert!(r.starts().is_empty());
        assert!(!sim.topo.node(sw).unwrap().device.reconfig_in_progress());
        // A batch containing the suspect node fails whole, up front.
        let err = r
            .resync_all(
                &mut sim,
                &store,
                &devices,
                SimTime::from_secs(1),
                &mut fabric,
                &policy,
                Some(&detector),
            )
            .unwrap_err();
        assert!(matches!(err, FlexError::DegradedDevice { .. }));
        // A remedial pass (gate = None) still reaches the device.
        assert!(r
            .start(&mut sim, &store, sw, SimTime::from_secs(1), &mut fabric, &policy, None)
            .is_ok());
    }

    #[test]
    fn restart_mid_resync_is_superseded_not_corrupted() {
        let (mut sim, devices, store, _log) = provisioned();
        let sw = devices[1];
        let (mut fabric, policy) = reliable_env();
        let dev = &mut sim.topo.node_mut(sw).unwrap().device;
        dev.crash(SimTime::from_secs(1));
        dev.restart(SimTime::from_millis(1200)).unwrap();

        let mut r = Resyncer::default();
        let ticket = r
            .start(&mut sim, &store, sw, SimTime::from_secs(2), &mut fabric, &policy, None)
            .unwrap();
        // The device restarts again while the resync's shadow is in
        // flight — the shadow dies with the incarnation.
        let dev = &mut sim.topo.node_mut(sw).unwrap().device;
        dev.crash(SimTime::from_millis(2500));
        dev.restart(SimTime::from_millis(2700)).unwrap();
        let report = r
            .complete(&mut sim, &store, ticket, &mut fabric, &policy)
            .unwrap();
        assert!(
            matches!(report.outcome, ResyncOutcome::Superseded { .. }),
            "{:?}",
            report.outcome
        );
        // The follow-up resync against the new incarnation converges.
        let ticket = r
            .start(&mut sim, &store, sw, SimTime::from_secs(3), &mut fabric, &policy, None)
            .unwrap();
        let report = r
            .complete(&mut sim, &store, ticket, &mut fabric, &policy)
            .unwrap();
        assert!(matches!(report.outcome, ResyncOutcome::Reprovisioned { .. }));
        assert!(diverged(&sim, &store.intended_digests()).is_empty());
    }

    #[test]
    fn mass_resync_is_critical_first_and_rate_limited() {
        let (mut sim, devices, store, _log) = provisioned();
        let (mut fabric, policy) = reliable_env();
        for d in devices {
            let dev = &mut sim.topo.node_mut(d).unwrap().device;
            dev.crash(SimTime::from_secs(1));
            dev.restart(SimTime::from_secs(1) + VICTIM_RESTART_DELAY).unwrap();
        }
        let mut r = Resyncer::default();
        let reports = r
            .resync_all(&mut sim, &store, &devices, SimTime::from_secs(2), &mut fabric, &policy, None)
            .unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(
            reports[0].class,
            ProgramClass::Critical,
            "the switch resyncs before the taps"
        );
        for pair in r.starts().windows(2) {
            assert!(
                pair[1].0.saturating_since(pair[0].0) >= r.min_gap(),
                "admission gap respected: {:?}",
                r.starts()
            );
        }
        assert!(diverged(&sim, &store.intended_digests()).is_empty());
    }

    #[test]
    fn denied_by_the_bucket_is_requeued_not_dropped() {
        let (mut sim, devices, store, _log) = provisioned();
        let (mut fabric, policy) = reliable_env();
        for d in devices {
            let dev = &mut sim.topo.node_mut(d).unwrap().device;
            dev.crash(SimTime::from_secs(1));
            dev.restart(SimTime::from_secs(1) + VICTIM_RESTART_DELAY).unwrap();
        }
        // A zero-depth bucket denies every start that would need to
        // defer — the worst case for a mass restart. The batch must
        // still reconcile every device by requeueing, never dropping.
        let mut r = Resyncer::with_bucket(TokenBucket::new(
            SimDuration::from_millis(25),
            0,
        ));
        // A direct start that needs deferral surfaces typed backpressure.
        let t0 = SimTime::from_secs(2);
        let ticket = r
            .start(&mut sim, &store, devices[1], t0, &mut fabric, &policy, None)
            .unwrap();
        let err = r
            .start(&mut sim, &store, devices[0], t0, &mut fabric, &policy, None)
            .unwrap_err();
        assert!(matches!(err, FlexError::Backpressure { .. }), "{err}");
        assert!(err.is_retryable(), "denial means requeue, not drop");
        assert!(r.bucket().denied > 0);
        r.complete(&mut sim, &store, ticket, &mut fabric, &policy).unwrap();

        // The batch path requeues denied nodes and converges them all.
        let reports = r
            .resync_all(
                &mut sim,
                &store,
                &devices,
                SimTime::from_secs(4),
                &mut fabric,
                &policy,
                None,
            )
            .unwrap();
        assert_eq!(reports.len(), 3, "nothing dropped");
        assert!(diverged(&sim, &store.intended_digests()).is_empty());
        // Spacing held even through the deny/requeue cycles.
        for pair in r.starts().windows(2) {
            assert!(pair[1].0.saturating_since(pair[0].0) >= r.min_gap());
        }
    }

    #[test]
    fn a_known_seed_converges_with_every_invariant() {
        // Seed 2: all three devices restart (2 % 3 == 2 -> all).
        let report = run_resync_seed(2).unwrap();
        assert!(report.passed(), "violations: {:?}", report.violations);
        assert_eq!(report.schedule.restarts, 3);
        assert_eq!(report.flapped.len(), 3);
        assert!(report.delivered > 0);
        assert!(report.converge_latency > SimDuration::ZERO);
    }

    #[test]
    fn mid_transaction_restart_seed_recovers_then_converges() {
        // Find a nearby mid-txn seed so the test is robust to the mix
        // function, then assert the full pipeline: 2PC rollback with
        // wiped shadows tolerated, then anti-entropy convergence.
        let seed = (0..64)
            .find(|s| RestartSchedule::from_seed(*s, 3).mid_txn)
            .expect("some seed restarts mid-transaction");
        let report = run_resync_seed(seed).unwrap();
        assert!(report.passed(), "seed {seed} violations: {:?}", report.violations);
        let rec = report.recovery.expect("mid-txn runs a recovery pass");
        assert!(
            rec.wiped_shadows >= report.schedule.restarts,
            "restarted participants lost their shadows: {rec:?}"
        );
    }

    #[test]
    fn resync_chaos_is_deterministic() {
        let a = run_resync_seed(5).unwrap();
        let b = run_resync_seed(5).unwrap();
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.delivered, b.delivered);
        assert_eq!(a.lost, b.lost);
        assert_eq!(a.converge_latency, b.converge_latency);
    }
}
