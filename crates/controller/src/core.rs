//! The FlexNet controller facade.
//!
//! "End-to-end, the network is piloted by a central controller that
//! maintains a global view of the topology and traffic patterns, as well as
//! the locations and resource requirements of the network apps" (paper §1).
//! The [`Controller`] ties the management subsystems together: the URI-keyed
//! app registry, the tenant manager (composition + VLANs), and the dRPC
//! service registry. It *plans* — producing program bundles and placements —
//! and leaves effecting those plans to runtime reconfiguration commands, so
//! it can drive either live simulations or unit tests.

use crate::apps::{AppRegistry, AppStatus};
use crate::drpc::{ExecutionSite, ServiceRegistry};
use crate::retry::LossyFabric;
use crate::tenant::TenantManager;
use flexnet_compiler::{split_datapath, LogicalDatapath, SplitResult, TargetView};
use flexnet_lang::compose::tenant_prefix;
use flexnet_lang::diff::ProgramBundle;
use flexnet_sim::Simulation;
use flexnet_types::{
    AppId, AppUri, FlexError, NodeId, Result, SimDuration, SimTime, TenantId, VlanId,
};
use std::collections::BTreeMap;

/// Liveness of a device as judged by the controller's heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// Heartbeats arriving on schedule.
    Healthy,
    /// Heartbeats arriving on schedule, but the data-path health
    /// counters they carry show the device misbehaving (drop slope over
    /// the degradation threshold): alive but wrong — the gray-failure
    /// grade. Excluded from admission like `Suspect`, but *not* routed
    /// around: the device still forwards most traffic and a resync or
    /// rollback usually clears it.
    Degraded,
    /// Heartbeats overdue; the device may be down or partitioned.
    Suspect,
    /// Heartbeats long overdue; the controller routes around the device.
    Dead,
}

impl Health {
    /// A short stable label for errors and test output.
    pub fn label(&self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Suspect => "suspect",
            Health::Dead => "dead",
        }
    }
}

/// Cumulative data-path counters piggybacked on a heartbeat. The
/// detector differentiates consecutive observations into a drop slope;
/// absolute values don't matter (and restart-reset counters re-baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataPathHealth {
    /// Packets the device processed to a verdict, cumulative.
    pub processed: u64,
    /// Packets the device's program dropped, cumulative.
    pub dropped: u64,
}

/// One typed failure-detector transition.
///
/// [`FailureDetector::poll`] used to report bare `(node, Health)` pairs,
/// which made a device that resumed heartbeating after `Dead`
/// indistinguishable from one that merely blipped: both surfaced as
/// `Healthy`. The typed event keeps that grade stream *and* reports a
/// boot-id advance as its own event, so callers can route a recovered
/// device straight into resync instead of silently resuming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    /// The silence grade changed (the pre-existing transition stream).
    Graded(Health),
    /// The device resumed heartbeating under a *new* incarnation: it
    /// restarted and lost its runtime state (entries, counters,
    /// registers). Recovery is not resumption — the caller must
    /// reconcile the device against intended state.
    Flapped {
        /// The incarnation the detector had last acknowledged.
        old_boot_id: u64,
        /// The incarnation the latest heartbeat reported.
        new_boot_id: u64,
    },
}

/// Heartbeat-based failure detection with graceful degradation.
///
/// The controller cannot distinguish a crashed device from a partitioned
/// one — both just stop answering. The detector therefore grades silence:
/// a device whose last heartbeat is older than `suspect_after` becomes
/// [`Health::Suspect`], older than `dead_after` becomes [`Health::Dead`].
/// Dead devices should be routed around; a heartbeat from a dead device
/// (crash recovered, partition healed) restores it to [`Health::Healthy`]
/// on the next [`poll`](FailureDetector::poll).
///
/// Heartbeats additionally carry the device's monotone boot id and its
/// configuration digest ([`FailureDetector::observe_heartbeat`]). A
/// boot-id advance surfaces as [`HealthEvent::Flapped`]; the digest is
/// cached per node so the reconciler can check intended-vs-actual
/// convergence without another control-channel round trip.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    suspect_after: SimDuration,
    dead_after: SimDuration,
    /// Drop slope (dropped/processed between heartbeats, ppm) at or
    /// above which a punctual device is graded [`Health::Degraded`].
    degrade_threshold_ppm: u64,
    /// Minimum processed-packet delta before a slope is judged — a
    /// handful of packets is noise, not a health signal.
    degrade_min_sample: u64,
    last_seen: BTreeMap<NodeId, SimTime>,
    status: BTreeMap<NodeId, Health>,
    /// Latest boot id each node's heartbeats reported.
    reported_boot: BTreeMap<NodeId, u64>,
    /// Boot id last acknowledged by a poll (flap detection edge).
    acked_boot: BTreeMap<NodeId, u64>,
    /// Latest config digest each node's heartbeats reported.
    digests: BTreeMap<NodeId, u64>,
    /// Data-path counters at the last judged heartbeat, per node.
    counters: BTreeMap<NodeId, DataPathHealth>,
    /// Whether the last judged slope exceeded the degrade threshold.
    datapath_degraded: BTreeMap<NodeId, bool>,
}

impl FailureDetector {
    /// A detector suspecting after `suspect_after` of silence and declaring
    /// death after `dead_after` (raised to at least `suspect_after`).
    pub fn new(suspect_after: SimDuration, dead_after: SimDuration) -> FailureDetector {
        FailureDetector {
            suspect_after,
            dead_after: dead_after.max(suspect_after),
            degrade_threshold_ppm: 200_000,
            degrade_min_sample: 8,
            last_seen: BTreeMap::new(),
            status: BTreeMap::new(),
            reported_boot: BTreeMap::new(),
            acked_boot: BTreeMap::new(),
            digests: BTreeMap::new(),
            counters: BTreeMap::new(),
            datapath_degraded: BTreeMap::new(),
        }
    }

    /// Overrides the gray-failure drop-slope threshold (ppm of processed
    /// packets dropped between judged heartbeats).
    pub fn set_degrade_threshold_ppm(&mut self, ppm: u64) {
        self.degrade_threshold_ppm = ppm;
    }

    /// Records a bare heartbeat from `node` at `now` (liveness only — no
    /// incarnation or digest payload; flap detection stays quiet).
    pub fn observe(&mut self, node: NodeId, now: SimTime) {
        let seen = self.last_seen.entry(node).or_insert(now);
        if now > *seen {
            *seen = now;
        }
    }

    /// Records a full heartbeat: liveness plus the device's monotone
    /// `boot_id` and configuration `digest`.
    pub fn observe_heartbeat(&mut self, node: NodeId, now: SimTime, boot_id: u64, digest: u64) {
        self.observe(node, now);
        let reported = self.reported_boot.entry(node).or_insert(boot_id);
        if boot_id > *reported {
            *reported = boot_id;
        }
        // The first heartbeat establishes the baseline incarnation: a
        // device the controller has never seen cannot have flapped.
        self.acked_boot.entry(node).or_insert(boot_id);
        self.digests.insert(node, digest);
    }

    /// Records a full heartbeat that additionally carries the device's
    /// cumulative data-path counters — the gray-failure signal. The
    /// detector differentiates against the counters of the last *judged*
    /// heartbeat: once at least `degrade_min_sample` packets separate the
    /// two, the drop slope is compared against the degrade threshold and
    /// the device's data-path verdict updated. Counters that went
    /// backwards (a restart wiped them) re-baseline and clear the verdict
    /// — a fresh incarnation has not yet misbehaved.
    pub fn observe_heartbeat_health(
        &mut self,
        node: NodeId,
        now: SimTime,
        boot_id: u64,
        digest: u64,
        health: DataPathHealth,
    ) {
        self.observe_heartbeat(node, now, boot_id, digest);
        let prev = *self.counters.entry(node).or_insert(health);
        if health.processed < prev.processed || health.dropped < prev.dropped {
            self.counters.insert(node, health);
            self.datapath_degraded.insert(node, false);
            return;
        }
        let d_processed = health.processed - prev.processed;
        if d_processed >= self.degrade_min_sample {
            let d_dropped = health.dropped - prev.dropped;
            self.counters.insert(node, health);
            self.datapath_degraded.insert(
                node,
                d_dropped * 1_000_000 / d_processed >= self.degrade_threshold_ppm,
            );
        }
        // Under the sample floor: keep both the stored counters and the
        // previous verdict, so slow trickles still accumulate into a
        // judgeable delta instead of being re-baselined away.
    }

    /// Re-grades every known device at `now` and returns the typed
    /// transitions since the last poll: grade changes as
    /// [`HealthEvent::Graded`], plus one [`HealthEvent::Flapped`] for
    /// every device whose heartbeats resumed under a new boot id.
    pub fn poll(&mut self, now: SimTime) -> Vec<(NodeId, HealthEvent)> {
        let mut transitions = Vec::new();
        for (&node, &seen) in &self.last_seen {
            let silence = now.saturating_since(seen);
            let health = if silence >= self.dead_after {
                Health::Dead
            } else if silence >= self.suspect_after {
                Health::Suspect
            } else if self.datapath_degraded.get(&node) == Some(&true) {
                // Punctual heartbeats, misbehaving data path: gray.
                Health::Degraded
            } else {
                Health::Healthy
            };
            let prev = self.status.insert(node, health);
            if prev != Some(health) {
                transitions.push((node, HealthEvent::Graded(health)));
            }
            // A boot-id advance is reported once the device is heartbeating
            // again — whether or not the detector ever graded it Dead (a
            // restart faster than one heartbeat period still wipes state).
            // Degraded devices are heartbeating too, so their flaps report.
            if health <= Health::Degraded {
                let reported = self.reported_boot.get(&node).copied();
                let acked = self.acked_boot.get(&node).copied();
                if let (Some(new_boot_id), Some(old_boot_id)) = (reported, acked) {
                    if new_boot_id > old_boot_id {
                        self.acked_boot.insert(node, new_boot_id);
                        transitions.push((
                            node,
                            HealthEvent::Flapped {
                                old_boot_id,
                                new_boot_id,
                            },
                        ));
                    }
                }
            }
        }
        transitions
    }

    /// The current grade of `node` (as of the last poll), if it has ever
    /// heartbeated.
    pub fn health(&self, node: NodeId) -> Option<Health> {
        self.status.get(&node).copied()
    }

    /// Devices currently graded `grade`.
    pub fn graded(&self, grade: Health) -> Vec<NodeId> {
        self.status
            .iter()
            .filter(|(_, h)| **h == grade)
            .map(|(n, _)| *n)
            .collect()
    }

    /// The latest configuration digest `node`'s heartbeats reported.
    pub fn digest(&self, node: NodeId) -> Option<u64> {
        self.digests.get(&node).copied()
    }

    /// The latest boot id `node`'s heartbeats reported.
    pub fn boot_id(&self, node: NodeId) -> Option<u64> {
        self.reported_boot.get(&node).copied()
    }

    /// The admission gate for new transactions, waves, and resyncs: only
    /// a device whose current grade is [`Health::Healthy`] (or that the
    /// detector has never heard of — nothing is known against it) may
    /// participate. `Degraded`/`Suspect`/`Dead` devices are refused with
    /// the typed, retryable [`FlexError::DegradedDevice`] *before* a
    /// two-phase commit starts, instead of failing mid-prepare.
    pub fn admit(&self, node: NodeId) -> Result<()> {
        match self.status.get(&node) {
            None | Some(Health::Healthy) => Ok(()),
            Some(grade) => Err(FlexError::DegradedDevice {
                node: u64::from(node.raw()),
                grade: grade.label().to_string(),
            }),
        }
    }
}

impl Default for FailureDetector {
    /// Suspect after 150 ms of silence, dead after 500 ms — a few missed
    /// 50 ms heartbeat periods.
    fn default() -> FailureDetector {
        FailureDetector::new(SimDuration::from_millis(150), SimDuration::from_millis(500))
    }
}

/// The central controller.
#[derive(Debug)]
pub struct Controller {
    /// URI-named app registry (paper §3.4).
    pub apps: AppRegistry,
    /// Tenant lifecycle and composition (paper §3 scenario).
    pub tenants: TenantManager,
    /// dRPC registry and discovery (paper §3.4).
    pub services: ServiceRegistry,
    /// Heartbeat-based device liveness (graceful degradation under faults).
    pub detector: FailureDetector,
    infra_node: NodeId,
}

impl Controller {
    /// Builds a controller over an infrastructure program hosted at
    /// `infra_node`, registering the infra app and its provided dRPC
    /// services.
    pub fn new(infra: ProgramBundle, infra_node: NodeId, now: SimTime) -> Result<Controller> {
        let mut apps = AppRegistry::new();
        let mut services = ServiceRegistry::new();
        let uri = AppUri::infra(&infra.program.name);
        let mut placement = flexnet_compiler::Placement::default();
        placement
            .assignments
            .insert(infra.program.name.clone(), infra_node);
        apps.register(uri, None, placement, now)?;
        for svc in infra.program.services.iter().filter(|s| s.provided) {
            services.register(
                &svc.name,
                infra_node,
                svc.params.len(),
                ExecutionSite::DataPlane,
            )?;
        }
        Ok(Controller {
            apps,
            tenants: TenantManager::new(infra),
            services,
            detector: FailureDetector::default(),
            infra_node,
        })
    }

    /// Collects one round of heartbeats from every device in `sim` over
    /// `fabric` and returns the typed health transitions that resulted.
    ///
    /// A down device does not answer; an up device's heartbeat can still be
    /// lost in the fabric (that is the point — the controller only ever
    /// sees silence, never its cause). Each delivered heartbeat carries the
    /// device's boot id and configuration digest. Callers react to
    /// [`HealthEvent::Graded`]`(Dead)` by routing around the device
    /// (`Simulation::recompute_routes` already excludes down devices; for
    /// partitions the caller decides) and to [`HealthEvent::Flapped`] by
    /// resynchronizing it against intended state ([`crate::resync`]).
    pub fn sweep_heartbeats(
        &mut self,
        sim: &Simulation,
        fabric: &mut LossyFabric,
        now: SimTime,
    ) -> Vec<(NodeId, HealthEvent)> {
        for node in sim.topo.nodes() {
            if node.device.is_up() && fabric.deliver() {
                let stats = node.device.stats();
                self.detector.observe_heartbeat_health(
                    node.id,
                    now,
                    node.device.boot_id(),
                    node.device.config_digest(),
                    DataPathHealth {
                        processed: stats.processed,
                        dropped: stats.dropped,
                    },
                );
            }
        }
        self.detector.poll(now)
    }

    /// The node hosting the composed infrastructure program.
    pub fn infra_node(&self) -> NodeId {
        self.infra_node
    }

    /// Admits a tenant extension. Returns the assigned VLAN and the new
    /// composed bundle to push to the infrastructure device (via
    /// `Command::RuntimeReconfig`).
    pub fn tenant_arrive(
        &mut self,
        tenant: TenantId,
        extension: ProgramBundle,
        now: SimTime,
    ) -> Result<(VlanId, ProgramBundle)> {
        let app_name = extension.program.name.clone();
        let provided: Vec<(String, usize)> = extension
            .program
            .services
            .iter()
            .filter(|s| s.provided)
            .map(|s| (s.name.clone(), s.params.len()))
            .collect();

        let vlan = self.tenants.arrive(tenant, extension)?;
        let (composed, _report) = self.tenants.composed()?;

        // Register the tenant's app under its URI.
        let uri = AppUri::new(&tenant.to_string(), &app_name)
            .unwrap_or_else(|| AppUri::infra(&app_name));
        let mut placement = flexnet_compiler::Placement::default();
        placement.assignments.insert(app_name, self.infra_node);
        self.apps.register(uri, Some(tenant), placement, now)?;

        // Register namespaced tenant-provided services.
        for (name, arity) in provided {
            let namespaced = format!("{}{}", tenant_prefix(tenant), name);
            self.services.register(
                &namespaced,
                self.infra_node,
                arity,
                ExecutionSite::DataPlane,
            )?;
        }
        Ok((vlan, composed))
    }

    /// Removes a tenant. Returns the composed bundle without it (push via
    /// runtime reconfiguration; its resources are reclaimed by the diff's
    /// remove ops).
    pub fn tenant_depart(&mut self, tenant: TenantId) -> Result<ProgramBundle> {
        self.tenants.depart(tenant)?;
        let (composed, _) = self.tenants.composed()?;
        // Retire the tenant's apps and services.
        let uris: Vec<AppUri> = self
            .apps
            .apps_of_tenant(tenant)
            .iter()
            .map(|r| r.uri.clone())
            .collect();
        for uri in uris {
            self.apps.set_status(&uri, AppStatus::Retired)?;
        }
        let prefix = tenant_prefix(tenant);
        let stale: Vec<String> = self
            .services
            .services()
            .filter(|s| s.name.starts_with(&prefix))
            .map(|s| s.name.clone())
            .collect();
        for name in stale {
            self.services.unregister(&name)?;
        }
        Ok(composed)
    }

    /// Deploys a whole-stack logical datapath across `path`, registering it
    /// as an app named by `uri`.
    pub fn deploy_datapath(
        &mut self,
        uri: AppUri,
        datapath: &LogicalDatapath,
        path: &mut [TargetView],
        now: SimTime,
    ) -> Result<(AppId, SplitResult)> {
        let split = split_datapath(datapath, path)?;
        let id = self
            .apps
            .register(uri, None, split.placement.clone(), now)?;
        Ok((id, split))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexnet_compiler::Component;
    use flexnet_dataplane::Architecture;
    use flexnet_lang::parser::parse_source;

    fn bundle(src: &str) -> ProgramBundle {
        let file = parse_source(src).unwrap();
        ProgramBundle {
            headers: file.headers,
            program: file.programs.into_iter().next().unwrap(),
        }
    }

    fn infra() -> ProgramBundle {
        bundle(
            "program infra kind switch {
               counter total;
               service provide migrate_state(dst: u32);
               handler ingress(pkt) { count(total); forward(0); }
             }",
        )
    }

    fn controller() -> Controller {
        Controller::new(infra(), NodeId(0), SimTime::ZERO).unwrap()
    }

    #[test]
    fn new_registers_infra_app_and_services() {
        let c = controller();
        assert!(c.apps.lookup(&AppUri::infra("infra")).is_some());
        assert!(c.services.discover("migrate_state").is_some());
        assert_eq!(c.infra_node(), NodeId(0));
    }

    #[test]
    fn tenant_lifecycle_updates_all_registries() {
        let mut c = controller();
        let ext = bundle(
            "program scrubber kind any {
               counter seen;
               service provide scrub(level: u8);
               handler ingress(pkt) { count(seen); }
             }",
        );
        let (vlan, composed) = c.tenant_arrive(TenantId(7), ext, SimTime::ZERO).unwrap();
        assert!(vlan.is_valid());
        assert!(composed.program.state("t7_seen").is_some());
        let uri = AppUri::new("tenant7", "scrubber").unwrap();
        assert!(c.apps.lookup(&uri).is_some());
        assert!(c.services.discover("t7_scrub").is_some());

        let composed = c.tenant_depart(TenantId(7)).unwrap();
        assert!(composed.program.state("t7_seen").is_none());
        assert_eq!(c.apps.lookup(&uri).unwrap().status, AppStatus::Retired);
        assert!(c.services.discover("t7_scrub").is_none());
    }

    #[test]
    fn depart_unknown_tenant_fails() {
        let mut c = controller();
        assert!(c.tenant_depart(TenantId(42)).is_err());
    }

    #[test]
    fn deploy_datapath_registers_app_with_placement() {
        let mut c = controller();
        let dp = LogicalDatapath::new(
            "lb",
            vec![Component::new(
                "spread",
                bundle("program spread kind switch { handler ingress(pkt) { forward(0); } }"),
            )],
        );
        let mut path = vec![
            TargetView::fresh(NodeId(1), Architecture::host_default()),
            TargetView::fresh(NodeId(2), Architecture::drmt_default()),
        ];
        let (id, split) = c
            .deploy_datapath(AppUri::infra("lb"), &dp, &mut path, SimTime::ZERO)
            .unwrap();
        assert_eq!(split.placement.node_of("spread"), Some(NodeId(2)));
        let rec = c.apps.lookup(&AppUri::infra("lb")).unwrap();
        assert_eq!(rec.id, id);
        assert_eq!(rec.placement.node_of("spread"), Some(NodeId(2)));
    }

    #[test]
    fn detector_grades_silence_and_recovers() {
        let mut fd = FailureDetector::new(
            SimDuration::from_millis(150),
            SimDuration::from_millis(500),
        );
        let n = NodeId(3);
        fd.observe(n, SimTime::ZERO);
        assert_eq!(
            fd.poll(SimTime::from_millis(100)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
        assert_eq!(
            fd.poll(SimTime::from_millis(200)),
            vec![(n, HealthEvent::Graded(Health::Suspect))]
        );
        assert_eq!(
            fd.poll(SimTime::from_millis(600)),
            vec![(n, HealthEvent::Graded(Health::Dead))]
        );
        assert_eq!(fd.graded(Health::Dead), vec![n]);
        // A heartbeat resurrects it on the next poll. Bare heartbeats
        // carry no incarnation, so this reads as a blip, never a flap.
        fd.observe(n, SimTime::from_millis(700));
        assert_eq!(
            fd.poll(SimTime::from_millis(710)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
        // No change, no transition.
        assert!(fd.poll(SimTime::from_millis(720)).is_empty());
    }

    #[test]
    fn dead_device_returning_with_new_boot_id_flaps() {
        let mut fd = FailureDetector::default();
        let n = NodeId(4);
        fd.observe_heartbeat(n, SimTime::ZERO, 1, 0xAAAA);
        assert_eq!(
            fd.poll(SimTime::from_millis(10)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
        assert_eq!(
            fd.poll(SimTime::from_millis(600)),
            vec![(n, HealthEvent::Graded(Health::Dead))]
        );
        // Heartbeats resume under boot 2: the device restarted, not blipped.
        fd.observe_heartbeat(n, SimTime::from_millis(700), 2, 0xBBBB);
        let events = fd.poll(SimTime::from_millis(710));
        assert!(
            events.contains(&(n, HealthEvent::Graded(Health::Healthy))),
            "grade stream still reports recovery: {events:?}"
        );
        assert!(
            events.contains(&(
                n,
                HealthEvent::Flapped {
                    old_boot_id: 1,
                    new_boot_id: 2
                }
            )),
            "the restart surfaces as a typed flap: {events:?}"
        );
        assert_eq!(fd.digest(n), Some(0xBBBB), "latest digest cached");
        assert_eq!(fd.boot_id(n), Some(2));
        // The flap is edge-triggered: it is reported exactly once.
        fd.observe_heartbeat(n, SimTime::from_millis(750), 2, 0xBBBB);
        assert!(fd.poll(SimTime::from_millis(760)).is_empty());
    }

    #[test]
    fn same_boot_id_recovery_is_a_blip_not_a_flap() {
        let mut fd = FailureDetector::default();
        let n = NodeId(5);
        fd.observe_heartbeat(n, SimTime::ZERO, 3, 0xCCCC);
        fd.poll(SimTime::from_millis(10));
        fd.poll(SimTime::from_millis(600)); // graded Dead
        // Same incarnation resumes: a partition healed; state is intact.
        fd.observe_heartbeat(n, SimTime::from_millis(700), 3, 0xCCCC);
        assert_eq!(
            fd.poll(SimTime::from_millis(710)),
            vec![(n, HealthEvent::Graded(Health::Healthy))],
            "no flap without a boot-id advance"
        );
    }

    #[test]
    fn restart_faster_than_a_heartbeat_period_still_flaps() {
        let mut fd = FailureDetector::default();
        let n = NodeId(6);
        fd.observe_heartbeat(n, SimTime::ZERO, 1, 0xDDDD);
        fd.poll(SimTime::from_millis(10));
        // The next heartbeat already carries boot 2 — the device crashed
        // and restarted between periods, never missing enough beats to be
        // suspected. The wiped state must still be reported.
        fd.observe_heartbeat(n, SimTime::from_millis(50), 2, 0xEEEE);
        assert_eq!(
            fd.poll(SimTime::from_millis(60)),
            vec![(
                n,
                HealthEvent::Flapped {
                    old_boot_id: 1,
                    new_boot_id: 2
                }
            )]
        );
    }

    #[test]
    fn punctual_but_dropping_device_grades_degraded() {
        let mut fd = FailureDetector::default();
        let n = NodeId(7);
        let hb = |fd: &mut FailureDetector, ms, processed, dropped| {
            fd.observe_heartbeat_health(
                n,
                SimTime::from_millis(ms),
                1,
                0xF00,
                DataPathHealth { processed, dropped },
            );
        };
        hb(&mut fd, 0, 0, 0);
        assert_eq!(
            fd.poll(SimTime::from_millis(10)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
        // 100 processed since the baseline, 50 dropped: a 50% slope, far
        // over the 20% threshold — and the heartbeats are on time.
        hb(&mut fd, 50, 100, 50);
        assert_eq!(
            fd.poll(SimTime::from_millis(60)),
            vec![(n, HealthEvent::Graded(Health::Degraded))],
            "alive but wrong is its own grade, not Healthy"
        );
        let refused = fd.admit(n).unwrap_err();
        assert!(matches!(refused, FlexError::DegradedDevice { .. }));
        assert!(refused.is_retryable(), "grades clear; callers may retry");
        // The next interval forwards cleanly: the grade clears.
        hb(&mut fd, 100, 300, 50);
        assert_eq!(
            fd.poll(SimTime::from_millis(110)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
        assert!(fd.admit(n).is_ok());
    }

    #[test]
    fn degrade_judgment_needs_samples_and_rebaselines_on_restart() {
        let mut fd = FailureDetector::default();
        let n = NodeId(8);
        fd.observe_heartbeat_health(n, SimTime::ZERO, 1, 0, DataPathHealth::default());
        // 4 packets, all dropped: under the 8-packet sample floor, so no
        // verdict — a handful of drops is noise.
        fd.observe_heartbeat_health(
            n,
            SimTime::from_millis(50),
            1,
            0,
            DataPathHealth {
                processed: 4,
                dropped: 4,
            },
        );
        assert_eq!(
            fd.poll(SimTime::from_millis(60)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
        // Four more all-dropped packets accumulate past the floor against
        // the *original* baseline: now it is a judgeable 100% slope.
        fd.observe_heartbeat_health(
            n,
            SimTime::from_millis(100),
            1,
            0,
            DataPathHealth {
                processed: 9,
                dropped: 9,
            },
        );
        assert_eq!(
            fd.poll(SimTime::from_millis(110)),
            vec![(n, HealthEvent::Graded(Health::Degraded))]
        );
        // A restart wipes the counters (they go backwards): re-baseline
        // and clear — the new incarnation has not yet misbehaved.
        fd.observe_heartbeat_health(
            n,
            SimTime::from_millis(150),
            2,
            0,
            DataPathHealth {
                processed: 1,
                dropped: 0,
            },
        );
        let events = fd.poll(SimTime::from_millis(160));
        assert!(events.contains(&(n, HealthEvent::Graded(Health::Healthy))));
        assert!(
            events
                .iter()
                .any(|(_, e)| matches!(e, HealthEvent::Flapped { .. })),
            "the boot-id advance still reports: {events:?}"
        );
    }

    #[test]
    fn admission_gate_refuses_every_unhealthy_grade() {
        let mut fd = FailureDetector::default();
        let (a, b) = (NodeId(1), NodeId(2));
        fd.observe(a, SimTime::ZERO);
        fd.observe(b, SimTime::ZERO);
        fd.poll(SimTime::from_millis(200)); // both Suspect
        for n in [a, b] {
            let e = fd.admit(n).unwrap_err();
            assert!(e.to_string().contains("suspect"), "{e}");
        }
        fd.poll(SimTime::from_millis(900)); // both Dead
        assert!(fd.admit(a).unwrap_err().to_string().contains("dead"));
        // A node the detector has never heard of: nothing against it.
        assert!(fd.admit(NodeId(99)).is_ok());
    }

    #[test]
    fn sweep_marks_crashed_device_dead() {
        use flexnet_sim::{Simulation, Topology};
        let (topo, sw, _hosts) = Topology::single_switch(2);
        let mut sim = Simulation::new(topo);
        let mut c = controller();
        let mut fabric = crate::retry::LossyFabric::reliable();
        // Heartbeats every 50 ms; the switch crashes at 200 ms.
        for ms in (0..=200).step_by(50) {
            c.sweep_heartbeats(&sim, &mut fabric, SimTime::from_millis(ms));
        }
        sim.topo
            .node_mut(sw)
            .unwrap()
            .device
            .crash(SimTime::from_millis(200));
        let mut dead_at = None;
        for ms in (250..=1000).step_by(50) {
            let tr = c.sweep_heartbeats(&sim, &mut fabric, SimTime::from_millis(ms));
            if tr
                .iter()
                .any(|(n, h)| *n == sw && *h == HealthEvent::Graded(Health::Dead))
            {
                dead_at = Some(ms);
                break;
            }
        }
        let dead_at = dead_at.expect("crashed switch declared dead");
        assert!(
            dead_at <= 750,
            "detection bounded by dead_after + one period, got {dead_at} ms"
        );
        // The hosts kept heartbeating and stay healthy.
        assert_eq!(c.detector.graded(Health::Dead), vec![sw]);
    }

    #[test]
    fn malicious_tenant_rejected_cleanly() {
        let mut c = controller();
        let evil = bundle("program evil { handler ingress(pkt) { count(total); } }");
        assert!(c.tenant_arrive(TenantId(3), evil, SimTime::ZERO).is_err());
        // Nothing was registered.
        assert!(c.apps.apps_of_tenant(TenantId(3)).is_empty());
        assert_eq!(c.tenants.tenants().len(), 0);
    }
}
