//! The FlexNet controller facade.
//!
//! "End-to-end, the network is piloted by a central controller that
//! maintains a global view of the topology and traffic patterns, as well as
//! the locations and resource requirements of the network apps" (paper §1).
//! The [`Controller`] ties the management subsystems together: the URI-keyed
//! app registry, the tenant manager (composition + VLANs), and the dRPC
//! service registry. It *plans* — producing program bundles and placements —
//! and leaves effecting those plans to runtime reconfiguration commands, so
//! it can drive either live simulations or unit tests.

use crate::apps::{AppRegistry, AppStatus};
use crate::drpc::{ExecutionSite, ServiceRegistry};
use crate::retry::LossyFabric;
use crate::tenant::TenantManager;
use flexnet_compiler::{split_datapath, LogicalDatapath, SplitResult, TargetView};
use flexnet_lang::compose::tenant_prefix;
use flexnet_lang::diff::ProgramBundle;
use flexnet_sim::Simulation;
use flexnet_types::{
    AppId, AppUri, FlexError, NodeId, Result, SimDuration, SimTime, TenantId, VlanId,
};
use std::collections::{BTreeMap, VecDeque};

/// Liveness of a device as judged by the controller's heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// Heartbeats arriving on schedule.
    Healthy,
    /// Heartbeats arriving on schedule, but the data-path health
    /// counters they carry show the device misbehaving (drop slope over
    /// the degradation threshold): alive but wrong — the gray-failure
    /// grade. Excluded from admission like `Suspect`, but *not* routed
    /// around: the device still forwards most traffic and a resync or
    /// rollback usually clears it.
    Degraded,
    /// Heartbeats overdue; the device may be down or partitioned.
    Suspect,
    /// Heartbeats long overdue, but *indirect* evidence (data-plane
    /// counters advancing, peers relaying its traffic) says the device
    /// is alive and forwarding: the one-way-partition grade. We cannot
    /// hear it; the network still can. Excluded from admission like
    /// `Dead`, but — critically — **not** remediated: re-provisioning a
    /// device that is still serving traffic from state we can no longer
    /// observe would split-brain it. The partition heals, the next
    /// heartbeat lands, and the grade clears.
    Unreachable,
    /// Heartbeats long overdue; the controller routes around the device.
    Dead,
}

impl Health {
    /// A short stable label for errors and test output.
    pub fn label(&self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Suspect => "suspect",
            Health::Unreachable => "unreachable",
            Health::Dead => "dead",
        }
    }
}

/// Cumulative data-path counters piggybacked on a heartbeat. The
/// detector differentiates consecutive observations into a drop slope;
/// absolute values don't matter (and restart-reset counters re-baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DataPathHealth {
    /// Packets the device processed to a verdict, cumulative.
    pub processed: u64,
    /// Packets the device's program dropped, cumulative.
    pub dropped: u64,
    /// Program execution traps (gas exhaustion, division by zero,
    /// out-of-bounds state …), cumulative. A drop is policy; a trap is a
    /// fault — the split lets the detector treat a trap storm as gray
    /// failure even while total drop volume still looks tame.
    pub traps: u64,
    /// Whether the device's sandbox has quarantined its program (trap
    /// rate crossed threshold; the device fell back to its
    /// last-known-good image or transparent forwarding). Sticky until a
    /// replacement program is installed.
    pub quarantined: bool,
}

/// One typed failure-detector transition.
///
/// [`FailureDetector::poll`] used to report bare `(node, Health)` pairs,
/// which made a device that resumed heartbeating after `Dead`
/// indistinguishable from one that merely blipped: both surfaced as
/// `Healthy`. The typed event keeps that grade stream *and* reports a
/// boot-id advance as its own event, so callers can route a recovered
/// device straight into resync instead of silently resuming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthEvent {
    /// The silence grade changed (the pre-existing transition stream).
    Graded(Health),
    /// The device resumed heartbeating under a *new* incarnation: it
    /// restarted and lost its runtime state (entries, counters,
    /// registers). Recovery is not resumption — the caller must
    /// reconcile the device against intended state.
    Flapped {
        /// The incarnation the detector had last acknowledged.
        old_boot_id: u64,
        /// The incarnation the latest heartbeat reported.
        new_boot_id: u64,
    },
    /// The device's sandbox quarantined its program: heartbeats are
    /// punctual, but the data plane swapped to its last-known-good
    /// image (or transparent forwarding) after a trap storm. Reported
    /// once per quarantine episode; the device is simultaneously graded
    /// [`Health::Degraded`], so admission refuses it until a
    /// replacement program clears the flag.
    Quarantined {
        /// Cumulative program traps the quarantining heartbeat carried.
        traps: u64,
    },
}

/// Heartbeat-based failure detection with graceful degradation.
///
/// The controller cannot distinguish a crashed device from a partitioned
/// one — both just stop answering. The detector therefore grades silence:
/// a device whose last heartbeat is older than `suspect_after` becomes
/// [`Health::Suspect`], older than `dead_after` becomes [`Health::Dead`].
/// Dead devices should be routed around; a heartbeat from a dead device
/// (crash recovered, partition healed) restores it to [`Health::Healthy`]
/// on the next [`poll`](FailureDetector::poll).
///
/// Heartbeats additionally carry the device's monotone boot id and its
/// configuration digest ([`FailureDetector::observe_heartbeat`]). A
/// boot-id advance surfaces as [`HealthEvent::Flapped`]; the digest is
/// cached per node so the reconciler can check intended-vs-actual
/// convergence without another control-channel round trip.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    suspect_after: SimDuration,
    dead_after: SimDuration,
    /// Hysteresis floor: a device graded `Suspect` or `Dead` only recovers
    /// to `Healthy` once its silence drops *below* this (default
    /// `suspect_after / 2`). Without the band, heartbeats that arrive
    /// late-but-alive — silence oscillating around `suspect_after` — flap
    /// the grade Healthy↔Suspect every poll, and each flap re-triggers
    /// admission churn downstream.
    recover_after: SimDuration,
    /// Multiplier applied to every silence threshold (≥ 1). The overload
    /// governor widens this in `Degraded` mode so a slow controller does
    /// not misread its *own* queueing delay as device death.
    period_scale: u64,
    /// Drop slope (dropped/processed between heartbeats, ppm) at or
    /// above which a punctual device is graded [`Health::Degraded`].
    degrade_threshold_ppm: u64,
    /// Minimum processed-packet delta before a slope is judged — a
    /// handful of packets is noise, not a health signal.
    degrade_min_sample: u64,
    last_seen: BTreeMap<NodeId, SimTime>,
    status: BTreeMap<NodeId, Health>,
    /// Latest boot id each node's heartbeats reported.
    reported_boot: BTreeMap<NodeId, u64>,
    /// Boot id last acknowledged by a poll (flap detection edge).
    acked_boot: BTreeMap<NodeId, u64>,
    /// Latest config digest each node's heartbeats reported.
    digests: BTreeMap<NodeId, u64>,
    /// Data-path counters at the last judged heartbeat, per node.
    counters: BTreeMap<NodeId, DataPathHealth>,
    /// Whether the last judged slope exceeded the degrade threshold.
    datapath_degraded: BTreeMap<NodeId, bool>,
    /// Latest sandbox-quarantine flag each node's heartbeats reported.
    reported_quarantine: BTreeMap<NodeId, bool>,
    /// Quarantine episodes already surfaced by a poll (edge detection).
    acked_quarantine: BTreeMap<NodeId, bool>,
    /// Cumulative trap count from the latest heartbeat, per node.
    reported_traps: BTreeMap<NodeId, u64>,
    /// Latest *indirect* liveness evidence per node (data-plane counters
    /// advancing, a peer relaying the node's traffic). Distinguishes a
    /// one-way-partitioned device ([`Health::Unreachable`]) from a dead
    /// one: heartbeats silent in both cases, but only the former keeps
    /// producing hints.
    liveness_hints: BTreeMap<NodeId, SimTime>,
    /// Ablation hook for the E20 chaos suite: `false` disables the
    /// heartbeat monotonicity guard so the protections-off arm can
    /// demonstrate the damage reordered beats do. Always `true` in
    /// production paths.
    pub monotone_guard: bool,
}

impl FailureDetector {
    /// A detector suspecting after `suspect_after` of silence and declaring
    /// death after `dead_after` (raised to at least `suspect_after`).
    pub fn new(suspect_after: SimDuration, dead_after: SimDuration) -> FailureDetector {
        FailureDetector {
            suspect_after,
            dead_after: dead_after.max(suspect_after),
            recover_after: SimDuration::from_nanos(suspect_after.as_nanos() / 2),
            period_scale: 1,
            degrade_threshold_ppm: 200_000,
            degrade_min_sample: 8,
            last_seen: BTreeMap::new(),
            status: BTreeMap::new(),
            reported_boot: BTreeMap::new(),
            acked_boot: BTreeMap::new(),
            digests: BTreeMap::new(),
            counters: BTreeMap::new(),
            datapath_degraded: BTreeMap::new(),
            reported_quarantine: BTreeMap::new(),
            acked_quarantine: BTreeMap::new(),
            reported_traps: BTreeMap::new(),
            liveness_hints: BTreeMap::new(),
            monotone_guard: true,
        }
    }

    /// Overrides the gray-failure drop-slope threshold (ppm of processed
    /// packets dropped between judged heartbeats).
    pub fn set_degrade_threshold_ppm(&mut self, ppm: u64) {
        self.degrade_threshold_ppm = ppm;
    }

    /// Overrides the hysteresis recovery floor (see the field doc).
    pub fn set_recover_after(&mut self, recover_after: SimDuration) {
        self.recover_after = recover_after;
    }

    /// Scales every silence threshold by `scale` (clamped to ≥ 1). The
    /// overload governor calls this when entering/leaving `Degraded` mode:
    /// widened thresholds keep failure detection *running* under overload
    /// — late heartbeats are tolerated rather than misgraded — instead of
    /// dropping it.
    pub fn widen(&mut self, scale: u64) {
        self.period_scale = scale.max(1);
    }

    /// The current threshold multiplier (1 = nominal).
    pub fn scale(&self) -> u64 {
        self.period_scale
    }

    /// Records a bare heartbeat from `node` at `now` (liveness only — no
    /// incarnation or digest payload; flap detection stays quiet).
    pub fn observe(&mut self, node: NodeId, now: SimTime) {
        let seen = self.last_seen.entry(node).or_insert(now);
        if now > *seen {
            *seen = now;
        }
    }

    /// Records a full heartbeat: liveness plus the device's monotone
    /// `boot_id` and configuration `digest`.
    ///
    /// Monotonicity guard: a beat that is *stale* — older in send time
    /// than one already recorded, or carrying a `boot_id` below the
    /// highest this node has reported — is rejected **wholesale** and
    /// `false` is returned. A reordering fabric can deliver a
    /// pre-restart beat after post-restart ones; accepting any part of
    /// it (the old digest especially) would regress the cached digest to
    /// a dead incarnation's configuration, flag false divergence, and
    /// trigger a needless resync. Fresh beats return `true`.
    pub fn observe_heartbeat(
        &mut self,
        node: NodeId,
        now: SimTime,
        boot_id: u64,
        digest: u64,
    ) -> bool {
        let stale_time = self.last_seen.get(&node).is_some_and(|&seen| now < seen);
        let stale_boot = self
            .reported_boot
            .get(&node)
            .is_some_and(|&reported| boot_id < reported);
        if self.monotone_guard && (stale_time || stale_boot) {
            return false;
        }
        self.observe(node, now);
        self.reported_boot.insert(node, boot_id);
        // The first heartbeat establishes the baseline incarnation: a
        // device the controller has never seen cannot have flapped.
        self.acked_boot.entry(node).or_insert(boot_id);
        self.digests.insert(node, digest);
        true
    }

    /// Records a full heartbeat that additionally carries the device's
    /// cumulative data-path counters — the gray-failure signal. The
    /// detector differentiates against the counters of the last *judged*
    /// heartbeat: once at least `degrade_min_sample` packets separate the
    /// two, the drop slope is compared against the degrade threshold and
    /// the device's data-path verdict updated. Counters that went
    /// backwards (a restart wiped them) re-baseline and clear the verdict
    /// — a fresh incarnation has not yet misbehaved.
    pub fn observe_heartbeat_health(
        &mut self,
        node: NodeId,
        now: SimTime,
        boot_id: u64,
        digest: u64,
        health: DataPathHealth,
    ) {
        if !self.observe_heartbeat(node, now, boot_id, digest) {
            // Stale (reordered) beat: its counters describe a past the
            // detector has already moved beyond — judge nothing from it.
            return;
        }
        // The quarantine flag is authoritative, not a slope: the device
        // itself judged its program and swapped it out. Record it before
        // any sampling-floor early return, and clear the episode edge
        // when a replacement install lifts it.
        self.reported_quarantine.insert(node, health.quarantined);
        self.reported_traps.insert(node, health.traps);
        if !health.quarantined {
            self.acked_quarantine.insert(node, false);
        }
        let prev = *self.counters.entry(node).or_insert(health);
        if health.processed < prev.processed || health.dropped < prev.dropped {
            self.counters.insert(node, health);
            self.datapath_degraded.insert(node, health.quarantined);
            return;
        }
        let d_processed = health.processed - prev.processed;
        if d_processed >= self.degrade_min_sample {
            let d_dropped = health.dropped - prev.dropped;
            self.counters.insert(node, health);
            self.datapath_degraded.insert(
                node,
                health.quarantined
                    || d_dropped * 1_000_000 / d_processed >= self.degrade_threshold_ppm,
            );
        } else if health.quarantined {
            self.datapath_degraded.insert(node, true);
        }
        // Under the sample floor: keep both the stored counters and the
        // previous verdict, so slow trickles still accumulate into a
        // judgeable delta instead of being re-baselined away.
    }

    /// Whether `node`'s latest heartbeat reported a sandbox quarantine.
    pub fn quarantine_reported(&self, node: NodeId) -> bool {
        self.reported_quarantine.get(&node) == Some(&true)
    }

    /// Records *indirect* liveness evidence for `node` at `now`: its
    /// data-plane counters advanced, a downstream device kept receiving
    /// its traffic, a peer relayed its digest — anything proving the
    /// device is alive that did not arrive on its own control channel.
    ///
    /// Hints never feed the silence clock (`last_seen`) — they are not
    /// heartbeats and must not mask a genuinely failing control channel.
    /// Their only effect is in [`FailureDetector::poll`]: a device past
    /// `dead_after` of heartbeat silence whose freshest hint is younger
    /// than `dead_after` grades [`Health::Unreachable`] (one-way
    /// partition — suppress remediation) instead of [`Health::Dead`]
    /// (route around and reprovision).
    pub fn note_liveness_hint(&mut self, node: NodeId, now: SimTime) {
        let hint = self.liveness_hints.entry(node).or_insert(now);
        if now > *hint {
            *hint = now;
        }
    }

    /// Re-grades every known device at `now` and returns the typed
    /// transitions since the last poll: grade changes as
    /// [`HealthEvent::Graded`], plus one [`HealthEvent::Flapped`] for
    /// every device whose heartbeats resumed under a new boot id.
    pub fn poll(&mut self, now: SimTime) -> Vec<(NodeId, HealthEvent)> {
        let scale = |d: SimDuration| SimDuration::from_nanos(d.as_nanos().saturating_mul(self.period_scale));
        let (suspect_after, dead_after, recover_after) = (
            scale(self.suspect_after),
            scale(self.dead_after),
            scale(self.recover_after),
        );
        let mut transitions = Vec::new();
        for (&node, &seen) in &self.last_seen {
            let silence = now.saturating_since(seen);
            let prev_grade = self.status.get(&node).copied();
            let health = if silence >= dead_after {
                // Heartbeat-dead. Before declaring the device gone,
                // consult indirect evidence: a fresh liveness hint means
                // the device is alive and forwarding — we just cannot
                // hear it (one-way partition). Grade it Unreachable so
                // admission refuses it but nothing *remediates* it.
                let hint_fresh = self
                    .liveness_hints
                    .get(&node)
                    .is_some_and(|&h| now.saturating_since(h) < dead_after);
                if hint_fresh {
                    Health::Unreachable
                } else {
                    Health::Dead
                }
            } else if silence >= suspect_after {
                Health::Suspect
            } else if silence >= recover_after && prev_grade >= Some(Health::Suspect) {
                // Hysteresis band: silence has shrunk below `suspect_after`
                // but not yet below the recovery floor. A late-but-alive
                // device sits here every period; re-grading it Healthy now
                // would flap it straight back to Suspect on the next late
                // beat. Hold the previous grade until a punctual beat.
                prev_grade.unwrap()
            } else if self.datapath_degraded.get(&node) == Some(&true) {
                // Punctual heartbeats, misbehaving data path: gray.
                Health::Degraded
            } else {
                Health::Healthy
            };
            let prev = self.status.insert(node, health);
            if prev != Some(health) {
                transitions.push((node, HealthEvent::Graded(health)));
            }
            // A boot-id advance is reported once the device is heartbeating
            // again — whether or not the detector ever graded it Dead (a
            // restart faster than one heartbeat period still wipes state).
            // Degraded devices are heartbeating too, so their flaps report.
            if health <= Health::Degraded {
                let reported = self.reported_boot.get(&node).copied();
                let acked = self.acked_boot.get(&node).copied();
                if let (Some(new_boot_id), Some(old_boot_id)) = (reported, acked) {
                    if new_boot_id > old_boot_id {
                        self.acked_boot.insert(node, new_boot_id);
                        transitions.push((
                            node,
                            HealthEvent::Flapped {
                                old_boot_id,
                                new_boot_id,
                            },
                        ));
                    }
                }
                // A quarantine episode is reported exactly once: on the
                // first poll after the flag appears. A replacement
                // install clears the flag (and the ack), re-arming the
                // edge for any later episode.
                if self.reported_quarantine.get(&node) == Some(&true)
                    && self.acked_quarantine.get(&node) != Some(&true)
                {
                    self.acked_quarantine.insert(node, true);
                    transitions.push((
                        node,
                        HealthEvent::Quarantined {
                            traps: self.reported_traps.get(&node).copied().unwrap_or(0),
                        },
                    ));
                }
            }
        }
        transitions
    }

    /// The current grade of `node` (as of the last poll), if it has ever
    /// heartbeated.
    pub fn health(&self, node: NodeId) -> Option<Health> {
        self.status.get(&node).copied()
    }

    /// Devices currently graded `grade`.
    pub fn graded(&self, grade: Health) -> Vec<NodeId> {
        self.status
            .iter()
            .filter(|(_, h)| **h == grade)
            .map(|(n, _)| *n)
            .collect()
    }

    /// The latest configuration digest `node`'s heartbeats reported.
    pub fn digest(&self, node: NodeId) -> Option<u64> {
        self.digests.get(&node).copied()
    }

    /// The latest boot id `node`'s heartbeats reported.
    pub fn boot_id(&self, node: NodeId) -> Option<u64> {
        self.reported_boot.get(&node).copied()
    }

    /// The admission gate for new transactions, waves, and resyncs: only
    /// a device whose current grade is [`Health::Healthy`] (or that the
    /// detector has never heard of — nothing is known against it) may
    /// participate. `Degraded`/`Suspect`/`Unreachable`/`Dead` devices are
    /// refused with the typed, retryable [`FlexError::DegradedDevice`]
    /// *before* a two-phase commit starts, instead of failing
    /// mid-prepare. For [`Health::Unreachable`] this refusal is the
    /// split-brain guard: the device is still serving traffic behind a
    /// one-way partition, so remedial reprovisioning must wait for the
    /// partition to heal (and the grade to clear) rather than rewrite a
    /// configuration the device is actively using.
    pub fn admit(&self, node: NodeId) -> Result<()> {
        match self.status.get(&node) {
            None | Some(Health::Healthy) => Ok(()),
            Some(grade) => Err(FlexError::DegradedDevice {
                node: u64::from(node.raw()),
                grade: grade.label().to_string(),
            }),
        }
    }
}

impl Default for FailureDetector {
    /// Suspect after 150 ms of silence, dead after 500 ms — a few missed
    /// 50 ms heartbeat periods.
    fn default() -> FailureDetector {
        FailureDetector::new(SimDuration::from_millis(150), SimDuration::from_millis(500))
    }
}

/// Priority class of controller work, most urgent first. The admission
/// queue serves classes *strictly* in this order: remedial work (fault
/// recovery, rollback) preempts resync, resync preempts rollout, and
/// telemetry is served only when nothing else waits. Under overload that
/// ordering is the difference between recovery and collapse — a telemetry
/// flood must never starve the resyncs that end the incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum WorkClass {
    /// Fault recovery: rollbacks, remedial transactions, route repair.
    Remedial,
    /// Intended-state reconciliation of a restarted or diverged device.
    Resync,
    /// Planned change: rollout waves, tenant arrivals.
    Rollout,
    /// Telemetry reports, digest gossip, background polling.
    Telemetry,
}

impl WorkClass {
    /// Every class, most urgent first (serve order).
    pub const ALL: [WorkClass; 4] = [
        WorkClass::Remedial,
        WorkClass::Resync,
        WorkClass::Rollout,
        WorkClass::Telemetry,
    ];

    /// Lane index: 0 = most urgent.
    pub fn index(&self) -> usize {
        *self as usize
    }

    /// A short stable label for errors and test output.
    pub fn label(&self) -> &'static str {
        match self {
            WorkClass::Remedial => "remedial",
            WorkClass::Resync => "resync",
            WorkClass::Rollout => "rollout",
            WorkClass::Telemetry => "telemetry",
        }
    }
}

/// One queued unit of controller work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkItem {
    /// Admission-order id (unique per queue).
    pub id: u64,
    /// Priority class (serve order).
    pub class: WorkClass,
    /// The device this work concerns, if any.
    pub node: Option<NodeId>,
    /// When the item was admitted.
    pub enqueued_at: SimTime,
    /// Propagated deadline: past this instant the *requester* has given
    /// up (timed out, retried, or moved on), so executing the item buys
    /// nothing. Expired items are shed at pop time, before execution —
    /// serving them is the timeout-amplification that sustains
    /// metastable collapse.
    pub deadline: SimTime,
}

/// Shed/serve accounting for an [`AdmissionQueue`].
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueStats {
    /// Items accepted into the queue.
    pub admitted: u64,
    /// Items handed to an executor.
    pub served: u64,
    /// Items shed because the queue was full (evicted victim or refused
    /// arrival).
    pub shed_capacity: u64,
    /// Items shed at pop time because their deadline had passed.
    pub shed_expired: u64,
    /// Sheds per class lane (indexed by [`WorkClass::index`]).
    pub shed_by_class: [u64; 4],
    /// High-water mark of total queue length.
    pub peak_len: usize,
}

impl QueueStats {
    /// Total items shed for any reason.
    pub fn shed_total(&self) -> u64 {
        self.shed_capacity + self.shed_expired
    }
}

/// The controller's front door: a bounded work queue with strict
/// priority classes and deadline-expiry shedding.
///
/// Admission policy when full: an arriving item evicts the *newest* item
/// of the *lowest*-priority occupied lane strictly below its own class
/// (shedding the work the system would serve last anyway); if nothing
/// below it is queued, the arrival itself is refused with the typed,
/// retryable [`FlexError::Backpressure`]. Service policy: lanes drain in
/// class order, and (when deadline shedding is enabled) expired items are
/// discarded unserved — each one costs a counter bump instead of an
/// execution slot.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    cap: usize,
    shed_expired: bool,
    lanes: [VecDeque<WorkItem>; 4],
    next_id: u64,
    /// Shed/serve accounting, readable by the overload governor.
    pub stats: QueueStats,
}

impl AdmissionQueue {
    /// A bounded queue holding at most `cap` items, shedding expired work
    /// at pop time — the protected configuration.
    pub fn bounded(cap: usize) -> AdmissionQueue {
        AdmissionQueue {
            cap: cap.max(1),
            shed_expired: true,
            lanes: Default::default(),
            next_id: 0,
            stats: QueueStats::default(),
        }
    }

    /// An unbounded queue that serves expired work anyway — the
    /// unprotected baseline the chaos suite collapses.
    pub fn unbounded() -> AdmissionQueue {
        AdmissionQueue {
            cap: usize::MAX,
            shed_expired: false,
            lanes: Default::default(),
            next_id: 0,
            stats: QueueStats::default(),
        }
    }

    /// Items currently queued across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.len()).sum()
    }

    /// True when no work is queued.
    pub fn is_empty(&self) -> bool {
        self.lanes.iter().all(|l| l.is_empty())
    }

    /// True when `node` already has queued work of `class` — callers
    /// dedup instead of queueing the same reconciliation twice.
    pub fn contains_node(&self, class: WorkClass, node: NodeId) -> bool {
        self.lanes[class.index()].iter().any(|w| w.node == Some(node))
    }

    /// Admits one item, possibly evicting lower-priority work. Returns
    /// the admission id, or retryable [`FlexError::Backpressure`] when
    /// the queue is full of work at or above `class`.
    pub fn push(
        &mut self,
        class: WorkClass,
        node: Option<NodeId>,
        now: SimTime,
        deadline: SimTime,
    ) -> Result<u64> {
        if self.len() >= self.cap {
            let victim_lane = (class.index() + 1..WorkClass::ALL.len())
                .rev()
                .find(|&i| !self.lanes[i].is_empty());
            match victim_lane {
                Some(i) => {
                    self.lanes[i].pop_back();
                    self.stats.shed_capacity += 1;
                    self.stats.shed_by_class[i] += 1;
                }
                None => {
                    self.stats.shed_capacity += 1;
                    self.stats.shed_by_class[class.index()] += 1;
                    return Err(FlexError::Backpressure {
                        what: format!("work queue ({})", class.label()),
                        retry_after: SimDuration::from_millis(5),
                    });
                }
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.lanes[class.index()].push_back(WorkItem {
            id,
            class,
            node,
            enqueued_at: now,
            deadline,
        });
        self.stats.admitted += 1;
        self.stats.peak_len = self.stats.peak_len.max(self.len());
        Ok(id)
    }

    /// Pops the most urgent live item, shedding (not serving) any item
    /// whose deadline has passed when expiry shedding is enabled.
    pub fn pop(&mut self, now: SimTime) -> Option<WorkItem> {
        for lane in self.lanes.iter_mut() {
            while let Some(item) = lane.pop_front() {
                if self.shed_expired && item.deadline < now {
                    self.stats.shed_expired += 1;
                    self.stats.shed_by_class[item.class.index()] += 1;
                    continue;
                }
                self.stats.served += 1;
                return Some(item);
            }
        }
        None
    }
}

/// A global rate limiter with reservation semantics (a deferral-form
/// GCRA): each grant is a *start time* at least one refill period after
/// the previous grant. A caller whose start time would sit further than
/// `horizon` in the future is denied with the typed, retryable
/// [`FlexError::Backpressure`] — it must requeue, not camp on a
/// reservation. With an unbounded horizon and one caller this degenerates
/// to exactly the old per-queue `min_gap` deferral, which is what keeps
/// the existing resync spacing invariants intact.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    refill: SimDuration,
    horizon: SimDuration,
    tat: SimTime,
    /// Reservations granted.
    pub granted: u64,
    /// Reservations denied (callers told to requeue).
    pub denied: u64,
}

impl TokenBucket {
    /// A bucket granting one reservation per `refill`, willing to book at
    /// most `depth` periods into the future before denying.
    pub fn new(refill: SimDuration, depth: u32) -> TokenBucket {
        TokenBucket {
            refill,
            horizon: SimDuration::from_nanos(refill.as_nanos().saturating_mul(u64::from(depth))),
            tat: SimTime::ZERO,
            granted: 0,
            denied: 0,
        }
    }

    /// The refill period (the guaranteed spacing between grants).
    pub fn refill_period(&self) -> SimDuration {
        self.refill
    }

    /// The earliest instant the next reservation could start.
    pub fn next_free(&self) -> SimTime {
        self.tat
    }

    /// Returns an unused reservation: a caller that reserved a slot but
    /// failed before using it restores the bucket to the
    /// [`next_free`](TokenBucket::next_free) value it snapshotted before
    /// reserving, so the failed start does not consume capacity.
    pub fn release(&mut self, prior_tat: SimTime) {
        self.tat = prior_tat;
        self.granted = self.granted.saturating_sub(1);
    }

    /// Reserves the next slot at `now`. `Ok(start)` is the granted start
    /// time (`start >= now`, spaced ≥ one refill after the previous
    /// grant); `Err(Backpressure)` means the backlog already extends past
    /// the horizon and the caller must requeue and retry later.
    pub fn reserve(&mut self, now: SimTime, what: &str) -> Result<SimTime> {
        let start = self.tat.max(now);
        let wait = start.saturating_since(now);
        if wait > self.horizon {
            self.denied += 1;
            return Err(FlexError::Backpressure {
                what: what.to_string(),
                retry_after: wait,
            });
        }
        let mut tat = start;
        tat += self.refill;
        self.tat = tat;
        self.granted += 1;
        Ok(start)
    }
}

/// The controller's published operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerMode {
    /// Nominal: all work classes admitted.
    Normal,
    /// Sustained shedding detected: new rollouts are paused and heartbeat
    /// intervals widened. Failure detection keeps running (with widened
    /// thresholds) — degrading gracefully means shedding *optional* load,
    /// never the recovery machinery.
    Degraded,
}

impl ControllerMode {
    /// A short stable label for errors and test output.
    pub fn label(&self) -> &'static str {
        match self {
            ControllerMode::Normal => "normal",
            ControllerMode::Degraded => "degraded",
        }
    }
}

/// Watches the admission queue's shed counters and flips the controller
/// between [`ControllerMode::Normal`] and [`ControllerMode::Degraded`]:
/// enough sheds inside a sliding window enter `Degraded`; a quiet period
/// with no sheds exits it. While degraded,
/// [`OverloadGovernor::admit_rollout`] refuses new rollouts with
/// [`FlexError::Backpressure`], and [`OverloadGovernor::heartbeat_period`]
/// plus [`OverloadGovernor::detector_scale`] widen the heartbeat
/// machinery instead of dropping it.
#[derive(Debug, Clone)]
pub struct OverloadGovernor {
    enter_threshold: u64,
    window: SimDuration,
    exit_quiet: SimDuration,
    widen_factor: u64,
    events: VecDeque<(SimTime, u64)>,
    last_total: u64,
    last_shed_at: Option<SimTime>,
    mode: ControllerMode,
    /// Times `Degraded` was entered.
    pub entered: u64,
}

impl OverloadGovernor {
    /// A governor entering `Degraded` after `enter_threshold` sheds
    /// within `window`, and returning to `Normal` after `exit_quiet`
    /// without a shed.
    pub fn new(enter_threshold: u64, window: SimDuration, exit_quiet: SimDuration) -> OverloadGovernor {
        OverloadGovernor {
            enter_threshold: enter_threshold.max(1),
            window,
            exit_quiet,
            widen_factor: 4,
            events: VecDeque::new(),
            last_total: 0,
            last_shed_at: None,
            mode: ControllerMode::Normal,
            entered: 0,
        }
    }

    /// Feeds the governor the queue's *cumulative* shed count at `now`
    /// and returns the (possibly updated) mode. Call once per tick with
    /// `queue.stats.shed_total()`.
    pub fn observe_sheds(&mut self, now: SimTime, total_sheds: u64) -> ControllerMode {
        let delta = total_sheds.saturating_sub(self.last_total);
        self.last_total = self.last_total.max(total_sheds);
        if delta > 0 {
            self.events.push_back((now, delta));
            self.last_shed_at = Some(now);
        }
        while let Some(&(t, _)) = self.events.front() {
            if now.saturating_since(t) > self.window {
                self.events.pop_front();
            } else {
                break;
            }
        }
        let recent: u64 = self.events.iter().map(|(_, n)| n).sum();
        match self.mode {
            ControllerMode::Normal => {
                if recent >= self.enter_threshold {
                    self.mode = ControllerMode::Degraded;
                    self.entered += 1;
                }
            }
            ControllerMode::Degraded => {
                let quiet = self
                    .last_shed_at
                    .map(|t| now.saturating_since(t) >= self.exit_quiet)
                    .unwrap_or(true);
                if quiet {
                    self.mode = ControllerMode::Normal;
                }
            }
        }
        self.mode
    }

    /// The current published mode.
    pub fn mode(&self) -> ControllerMode {
        self.mode
    }

    /// Gate for *new* rollout work: refused (retryable
    /// [`FlexError::Backpressure`]) while degraded. In-flight waves are
    /// not interrupted — pausing means not *starting* more.
    pub fn admit_rollout(&self) -> Result<()> {
        match self.mode {
            ControllerMode::Normal => Ok(()),
            ControllerMode::Degraded => Err(FlexError::Backpressure {
                what: "rollout admission (controller degraded)".to_string(),
                retry_after: self.exit_quiet,
            }),
        }
    }

    /// The heartbeat period devices should use: `base` nominally, widened
    /// by the degradation factor while degraded (fewer beats to serve).
    pub fn heartbeat_period(&self, base: SimDuration) -> SimDuration {
        match self.mode {
            ControllerMode::Normal => base,
            ControllerMode::Degraded => {
                SimDuration::from_nanos(base.as_nanos().saturating_mul(self.widen_factor))
            }
        }
    }

    /// The threshold multiplier to hand [`FailureDetector::widen`]: 1
    /// nominally, the widen factor while degraded — thresholds stretch in
    /// step with the heartbeat period so graded health stays meaningful.
    pub fn detector_scale(&self) -> u64 {
        match self.mode {
            ControllerMode::Normal => 1,
            ControllerMode::Degraded => self.widen_factor,
        }
    }
}

impl Default for OverloadGovernor {
    /// Degraded after 8 sheds inside 200 ms; back to normal after 300 ms
    /// without a shed.
    fn default() -> OverloadGovernor {
        OverloadGovernor::new(
            8,
            SimDuration::from_millis(200),
            SimDuration::from_millis(300),
        )
    }
}

/// The central controller.
#[derive(Debug)]
pub struct Controller {
    /// URI-named app registry (paper §3.4).
    pub apps: AppRegistry,
    /// Tenant lifecycle and composition (paper §3 scenario).
    pub tenants: TenantManager,
    /// dRPC registry and discovery (paper §3.4).
    pub services: ServiceRegistry,
    /// Heartbeat-based device liveness (graceful degradation under faults).
    pub detector: FailureDetector,
    infra_node: NodeId,
}

impl Controller {
    /// Builds a controller over an infrastructure program hosted at
    /// `infra_node`, registering the infra app and its provided dRPC
    /// services.
    pub fn new(infra: ProgramBundle, infra_node: NodeId, now: SimTime) -> Result<Controller> {
        let mut apps = AppRegistry::new();
        let mut services = ServiceRegistry::new();
        let uri = AppUri::infra(&infra.program.name);
        let mut placement = flexnet_compiler::Placement::default();
        placement
            .assignments
            .insert(infra.program.name.clone(), infra_node);
        apps.register(uri, None, placement, now)?;
        for svc in infra.program.services.iter().filter(|s| s.provided) {
            services.register(
                &svc.name,
                infra_node,
                svc.params.len(),
                ExecutionSite::DataPlane,
            )?;
        }
        Ok(Controller {
            apps,
            tenants: TenantManager::new(infra),
            services,
            detector: FailureDetector::default(),
            infra_node,
        })
    }

    /// Collects one round of heartbeats from every device in `sim` over
    /// `fabric` and returns the typed health transitions that resulted.
    ///
    /// A down device does not answer; an up device's heartbeat can still be
    /// lost in the fabric (that is the point — the controller only ever
    /// sees silence, never its cause). Each delivered heartbeat carries the
    /// device's boot id and configuration digest. Callers react to
    /// [`HealthEvent::Graded`]`(Dead)` by routing around the device
    /// (`Simulation::recompute_routes` already excludes down devices; for
    /// partitions the caller decides) and to [`HealthEvent::Flapped`] by
    /// resynchronizing it against intended state ([`crate::resync`]).
    pub fn sweep_heartbeats(
        &mut self,
        sim: &Simulation,
        fabric: &mut LossyFabric,
        now: SimTime,
    ) -> Vec<(NodeId, HealthEvent)> {
        for node in sim.topo.nodes() {
            if node.device.is_up() && fabric.deliver() {
                let stats = node.device.stats();
                self.detector.observe_heartbeat_health(
                    node.id,
                    now,
                    node.device.boot_id(),
                    node.device.config_digest(),
                    DataPathHealth {
                        processed: stats.processed,
                        dropped: stats.dropped,
                        traps: stats.traps,
                        quarantined: node.device.quarantined(),
                    },
                );
            }
        }
        self.detector.poll(now)
    }

    /// The node hosting the composed infrastructure program.
    pub fn infra_node(&self) -> NodeId {
        self.infra_node
    }

    /// Admits a tenant extension. Returns the assigned VLAN and the new
    /// composed bundle to push to the infrastructure device (via
    /// `Command::RuntimeReconfig`).
    pub fn tenant_arrive(
        &mut self,
        tenant: TenantId,
        extension: ProgramBundle,
        now: SimTime,
    ) -> Result<(VlanId, ProgramBundle)> {
        let app_name = extension.program.name.clone();
        let provided: Vec<(String, usize)> = extension
            .program
            .services
            .iter()
            .filter(|s| s.provided)
            .map(|s| (s.name.clone(), s.params.len()))
            .collect();

        let vlan = self.tenants.arrive(tenant, extension)?;
        let (composed, _report) = self.tenants.composed()?;

        // Register the tenant's app under its URI.
        let uri = AppUri::new(&tenant.to_string(), &app_name)
            .unwrap_or_else(|| AppUri::infra(&app_name));
        let mut placement = flexnet_compiler::Placement::default();
        placement.assignments.insert(app_name, self.infra_node);
        self.apps.register(uri, Some(tenant), placement, now)?;

        // Register namespaced tenant-provided services.
        for (name, arity) in provided {
            let namespaced = format!("{}{}", tenant_prefix(tenant), name);
            self.services.register(
                &namespaced,
                self.infra_node,
                arity,
                ExecutionSite::DataPlane,
            )?;
        }
        Ok((vlan, composed))
    }

    /// Removes a tenant. Returns the composed bundle without it (push via
    /// runtime reconfiguration; its resources are reclaimed by the diff's
    /// remove ops).
    pub fn tenant_depart(&mut self, tenant: TenantId) -> Result<ProgramBundle> {
        self.tenants.depart(tenant)?;
        let (composed, _) = self.tenants.composed()?;
        // Retire the tenant's apps and services.
        let uris: Vec<AppUri> = self
            .apps
            .apps_of_tenant(tenant)
            .iter()
            .map(|r| r.uri.clone())
            .collect();
        for uri in uris {
            self.apps.set_status(&uri, AppStatus::Retired)?;
        }
        let prefix = tenant_prefix(tenant);
        let stale: Vec<String> = self
            .services
            .services()
            .filter(|s| s.name.starts_with(&prefix))
            .map(|s| s.name.clone())
            .collect();
        for name in stale {
            self.services.unregister(&name)?;
        }
        Ok(composed)
    }

    /// Deploys a whole-stack logical datapath across `path`, registering it
    /// as an app named by `uri`.
    pub fn deploy_datapath(
        &mut self,
        uri: AppUri,
        datapath: &LogicalDatapath,
        path: &mut [TargetView],
        now: SimTime,
    ) -> Result<(AppId, SplitResult)> {
        let split = split_datapath(datapath, path)?;
        let id = self
            .apps
            .register(uri, None, split.placement.clone(), now)?;
        Ok((id, split))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexnet_compiler::Component;
    use flexnet_dataplane::Architecture;
    use flexnet_lang::parser::parse_source;

    fn bundle(src: &str) -> ProgramBundle {
        let file = parse_source(src).unwrap();
        ProgramBundle {
            headers: file.headers,
            program: file.programs.into_iter().next().unwrap(),
        }
    }

    fn infra() -> ProgramBundle {
        bundle(
            "program infra kind switch {
               counter total;
               service provide migrate_state(dst: u32);
               handler ingress(pkt) { count(total); forward(0); }
             }",
        )
    }

    fn controller() -> Controller {
        Controller::new(infra(), NodeId(0), SimTime::ZERO).unwrap()
    }

    #[test]
    fn new_registers_infra_app_and_services() {
        let c = controller();
        assert!(c.apps.lookup(&AppUri::infra("infra")).is_some());
        assert!(c.services.discover("migrate_state").is_some());
        assert_eq!(c.infra_node(), NodeId(0));
    }

    #[test]
    fn tenant_lifecycle_updates_all_registries() {
        let mut c = controller();
        let ext = bundle(
            "program scrubber kind any {
               counter seen;
               service provide scrub(level: u8);
               handler ingress(pkt) { count(seen); }
             }",
        );
        let (vlan, composed) = c.tenant_arrive(TenantId(7), ext, SimTime::ZERO).unwrap();
        assert!(vlan.is_valid());
        assert!(composed.program.state("t7_seen").is_some());
        let uri = AppUri::new("tenant7", "scrubber").unwrap();
        assert!(c.apps.lookup(&uri).is_some());
        assert!(c.services.discover("t7_scrub").is_some());

        let composed = c.tenant_depart(TenantId(7)).unwrap();
        assert!(composed.program.state("t7_seen").is_none());
        assert_eq!(c.apps.lookup(&uri).unwrap().status, AppStatus::Retired);
        assert!(c.services.discover("t7_scrub").is_none());
    }

    #[test]
    fn depart_unknown_tenant_fails() {
        let mut c = controller();
        assert!(c.tenant_depart(TenantId(42)).is_err());
    }

    #[test]
    fn deploy_datapath_registers_app_with_placement() {
        let mut c = controller();
        let dp = LogicalDatapath::new(
            "lb",
            vec![Component::new(
                "spread",
                bundle("program spread kind switch { handler ingress(pkt) { forward(0); } }"),
            )],
        );
        let mut path = vec![
            TargetView::fresh(NodeId(1), Architecture::host_default()),
            TargetView::fresh(NodeId(2), Architecture::drmt_default()),
        ];
        let (id, split) = c
            .deploy_datapath(AppUri::infra("lb"), &dp, &mut path, SimTime::ZERO)
            .unwrap();
        assert_eq!(split.placement.node_of("spread"), Some(NodeId(2)));
        let rec = c.apps.lookup(&AppUri::infra("lb")).unwrap();
        assert_eq!(rec.id, id);
        assert_eq!(rec.placement.node_of("spread"), Some(NodeId(2)));
    }

    #[test]
    fn detector_grades_silence_and_recovers() {
        let mut fd = FailureDetector::new(
            SimDuration::from_millis(150),
            SimDuration::from_millis(500),
        );
        let n = NodeId(3);
        fd.observe(n, SimTime::ZERO);
        assert_eq!(
            fd.poll(SimTime::from_millis(100)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
        assert_eq!(
            fd.poll(SimTime::from_millis(200)),
            vec![(n, HealthEvent::Graded(Health::Suspect))]
        );
        assert_eq!(
            fd.poll(SimTime::from_millis(600)),
            vec![(n, HealthEvent::Graded(Health::Dead))]
        );
        assert_eq!(fd.graded(Health::Dead), vec![n]);
        // A heartbeat resurrects it on the next poll. Bare heartbeats
        // carry no incarnation, so this reads as a blip, never a flap.
        fd.observe(n, SimTime::from_millis(700));
        assert_eq!(
            fd.poll(SimTime::from_millis(710)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
        // No change, no transition.
        assert!(fd.poll(SimTime::from_millis(720)).is_empty());
    }

    #[test]
    fn dead_device_returning_with_new_boot_id_flaps() {
        let mut fd = FailureDetector::default();
        let n = NodeId(4);
        fd.observe_heartbeat(n, SimTime::ZERO, 1, 0xAAAA);
        assert_eq!(
            fd.poll(SimTime::from_millis(10)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
        assert_eq!(
            fd.poll(SimTime::from_millis(600)),
            vec![(n, HealthEvent::Graded(Health::Dead))]
        );
        // Heartbeats resume under boot 2: the device restarted, not blipped.
        fd.observe_heartbeat(n, SimTime::from_millis(700), 2, 0xBBBB);
        let events = fd.poll(SimTime::from_millis(710));
        assert!(
            events.contains(&(n, HealthEvent::Graded(Health::Healthy))),
            "grade stream still reports recovery: {events:?}"
        );
        assert!(
            events.contains(&(
                n,
                HealthEvent::Flapped {
                    old_boot_id: 1,
                    new_boot_id: 2
                }
            )),
            "the restart surfaces as a typed flap: {events:?}"
        );
        assert_eq!(fd.digest(n), Some(0xBBBB), "latest digest cached");
        assert_eq!(fd.boot_id(n), Some(2));
        // The flap is edge-triggered: it is reported exactly once.
        fd.observe_heartbeat(n, SimTime::from_millis(750), 2, 0xBBBB);
        assert!(fd.poll(SimTime::from_millis(760)).is_empty());
    }

    #[test]
    fn reordered_stale_heartbeat_is_rejected_wholesale() {
        // Regression: a reordering fabric delivers a pre-restart beat
        // *after* post-restart ones. Before the monotonicity guard, the
        // stale beat's digest overwrote the cached one (spurious
        // divergence → needless resync) even though its boot id was
        // silently ignored.
        let mut fd = FailureDetector::default();
        let n = NodeId(7);
        fd.observe_heartbeat(n, SimTime::from_millis(100), 1, 0xAAAA);
        fd.poll(SimTime::from_millis(110));
        // The device restarts; beats resume under boot 2.
        assert!(fd.observe_heartbeat(n, SimTime::from_millis(200), 2, 0xBBBB));
        let events = fd.poll(SimTime::from_millis(210));
        assert!(events
            .iter()
            .any(|(_, e)| matches!(e, HealthEvent::Flapped { .. })));
        // A manually reordered beat: sent at t=150 under boot 1, delivered
        // only now. Both its time and its boot id are stale.
        assert!(
            !fd.observe_heartbeat(n, SimTime::from_millis(150), 1, 0xAAAA),
            "stale beat must be rejected"
        );
        assert_eq!(fd.digest(n), Some(0xBBBB), "digest must not regress");
        assert_eq!(fd.boot_id(n), Some(2), "boot id must not regress");
        assert!(
            fd.poll(SimTime::from_millis(220)).is_empty(),
            "no spurious flap or grade change from the stale beat"
        );
        // Stale-boot-only (fresh timestamp, old incarnation) is equally
        // rejected — a duplicated pre-restart beat delivered late.
        assert!(!fd.observe_heartbeat(n, SimTime::from_millis(230), 1, 0xAAAA));
        assert_eq!(fd.digest(n), Some(0xBBBB));
        assert!(fd.poll(SimTime::from_millis(240)).is_empty());
    }

    #[test]
    fn stale_heartbeat_health_judges_nothing() {
        // The counters on a reordered beat describe a dead incarnation;
        // they must not re-baseline or grade the data path.
        let mut fd = FailureDetector::default();
        let n = NodeId(8);
        let clean = DataPathHealth {
            processed: 1000,
            dropped: 0,
            traps: 0,
            quarantined: false,
        };
        fd.observe_heartbeat_health(n, SimTime::from_millis(100), 2, 0xBBBB, clean);
        fd.poll(SimTime::from_millis(110));
        // Stale beat claiming a quarantine from the old incarnation.
        let poisoned = DataPathHealth {
            processed: 500,
            dropped: 400,
            traps: 400,
            quarantined: true,
        };
        fd.observe_heartbeat_health(n, SimTime::from_millis(50), 1, 0xAAAA, poisoned);
        assert!(!fd.quarantine_reported(n), "stale quarantine flag ignored");
        assert!(
            fd.poll(SimTime::from_millis(120)).is_empty(),
            "no Degraded/Quarantined events from a stale beat"
        );
    }

    #[test]
    fn one_way_partition_grades_unreachable_not_dead() {
        let mut fd = FailureDetector::default();
        let n = NodeId(9);
        fd.observe_heartbeat(n, SimTime::ZERO, 1, 0xAAAA);
        fd.poll(SimTime::from_millis(10));
        // Heartbeats go silent (device→controller direction severed), but
        // the device's traffic keeps arriving downstream: liveness hints.
        fd.note_liveness_hint(n, SimTime::from_millis(550));
        let events = fd.poll(SimTime::from_millis(600));
        assert_eq!(
            events,
            vec![(n, HealthEvent::Graded(Health::Unreachable))],
            "fresh hints + dead-level silence = one-way partition"
        );
        assert_eq!(fd.health(n), Some(Health::Unreachable));
        // Admission refuses it (split-brain guard), retryably, with the
        // stable grade token.
        match fd.admit(n) {
            Err(FlexError::DegradedDevice { node, grade }) => {
                assert_eq!(node, 9);
                assert_eq!(grade, "unreachable");
            }
            other => panic!("expected DegradedDevice, got {other:?}"),
        }
        assert!(fd.admit(n).unwrap_err().is_retryable());
        // Hints age out: with no fresh evidence the grade hardens to Dead.
        let events = fd.poll(SimTime::from_millis(1200));
        assert_eq!(events, vec![(n, HealthEvent::Graded(Health::Dead))]);
        // The partition heals: a punctual beat restores Healthy.
        fd.observe_heartbeat(n, SimTime::from_millis(1250), 1, 0xAAAA);
        assert_eq!(
            fd.poll(SimTime::from_millis(1260)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
    }

    #[test]
    fn liveness_hints_never_feed_the_silence_clock() {
        // A hint is not a heartbeat: a device whose control channel is
        // merely *slow* (Suspect) must not be kept Healthy by hints.
        let mut fd = FailureDetector::default();
        let n = NodeId(10);
        fd.observe(n, SimTime::ZERO);
        fd.poll(SimTime::from_millis(10));
        fd.note_liveness_hint(n, SimTime::from_millis(190));
        assert_eq!(
            fd.poll(SimTime::from_millis(200)),
            vec![(n, HealthEvent::Graded(Health::Suspect))],
            "hints only soften Dead into Unreachable, nothing else"
        );
    }

    #[test]
    fn same_boot_id_recovery_is_a_blip_not_a_flap() {
        let mut fd = FailureDetector::default();
        let n = NodeId(5);
        fd.observe_heartbeat(n, SimTime::ZERO, 3, 0xCCCC);
        fd.poll(SimTime::from_millis(10));
        fd.poll(SimTime::from_millis(600)); // graded Dead
        // Same incarnation resumes: a partition healed; state is intact.
        fd.observe_heartbeat(n, SimTime::from_millis(700), 3, 0xCCCC);
        assert_eq!(
            fd.poll(SimTime::from_millis(710)),
            vec![(n, HealthEvent::Graded(Health::Healthy))],
            "no flap without a boot-id advance"
        );
    }

    #[test]
    fn restart_faster_than_a_heartbeat_period_still_flaps() {
        let mut fd = FailureDetector::default();
        let n = NodeId(6);
        fd.observe_heartbeat(n, SimTime::ZERO, 1, 0xDDDD);
        fd.poll(SimTime::from_millis(10));
        // The next heartbeat already carries boot 2 — the device crashed
        // and restarted between periods, never missing enough beats to be
        // suspected. The wiped state must still be reported.
        fd.observe_heartbeat(n, SimTime::from_millis(50), 2, 0xEEEE);
        assert_eq!(
            fd.poll(SimTime::from_millis(60)),
            vec![(
                n,
                HealthEvent::Flapped {
                    old_boot_id: 1,
                    new_boot_id: 2
                }
            )]
        );
    }

    #[test]
    fn punctual_but_dropping_device_grades_degraded() {
        let mut fd = FailureDetector::default();
        let n = NodeId(7);
        let hb = |fd: &mut FailureDetector, ms, processed, dropped| {
            fd.observe_heartbeat_health(
                n,
                SimTime::from_millis(ms),
                1,
                0xF00,
                DataPathHealth {
                    processed,
                    dropped,
                    ..Default::default()
                },
            );
        };
        hb(&mut fd, 0, 0, 0);
        assert_eq!(
            fd.poll(SimTime::from_millis(10)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
        // 100 processed since the baseline, 50 dropped: a 50% slope, far
        // over the 20% threshold — and the heartbeats are on time.
        hb(&mut fd, 50, 100, 50);
        assert_eq!(
            fd.poll(SimTime::from_millis(60)),
            vec![(n, HealthEvent::Graded(Health::Degraded))],
            "alive but wrong is its own grade, not Healthy"
        );
        let refused = fd.admit(n).unwrap_err();
        assert!(matches!(refused, FlexError::DegradedDevice { .. }));
        assert!(refused.is_retryable(), "grades clear; callers may retry");
        // The next interval forwards cleanly: the grade clears.
        hb(&mut fd, 100, 300, 50);
        assert_eq!(
            fd.poll(SimTime::from_millis(110)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
        assert!(fd.admit(n).is_ok());
    }

    #[test]
    fn degrade_judgment_needs_samples_and_rebaselines_on_restart() {
        let mut fd = FailureDetector::default();
        let n = NodeId(8);
        fd.observe_heartbeat_health(n, SimTime::ZERO, 1, 0, DataPathHealth::default());
        // 4 packets, all dropped: under the 8-packet sample floor, so no
        // verdict — a handful of drops is noise.
        fd.observe_heartbeat_health(
            n,
            SimTime::from_millis(50),
            1,
            0,
            DataPathHealth {
                processed: 4,
                dropped: 4,
                ..Default::default()
            },
        );
        assert_eq!(
            fd.poll(SimTime::from_millis(60)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
        // Four more all-dropped packets accumulate past the floor against
        // the *original* baseline: now it is a judgeable 100% slope.
        fd.observe_heartbeat_health(
            n,
            SimTime::from_millis(100),
            1,
            0,
            DataPathHealth {
                processed: 9,
                dropped: 9,
                ..Default::default()
            },
        );
        assert_eq!(
            fd.poll(SimTime::from_millis(110)),
            vec![(n, HealthEvent::Graded(Health::Degraded))]
        );
        // A restart wipes the counters (they go backwards): re-baseline
        // and clear — the new incarnation has not yet misbehaved.
        fd.observe_heartbeat_health(
            n,
            SimTime::from_millis(150),
            2,
            0,
            DataPathHealth {
                processed: 1,
                dropped: 0,
                ..Default::default()
            },
        );
        let events = fd.poll(SimTime::from_millis(160));
        assert!(events.contains(&(n, HealthEvent::Graded(Health::Healthy))));
        assert!(
            events
                .iter()
                .any(|(_, e)| matches!(e, HealthEvent::Flapped { .. })),
            "the boot-id advance still reports: {events:?}"
        );
    }

    #[test]
    fn quarantine_flag_degrades_and_reports_one_edge_per_episode() {
        let mut fd = FailureDetector::default();
        let n = NodeId(11);
        let hb = |fd: &mut FailureDetector, ms, quarantined, traps| {
            fd.observe_heartbeat_health(
                n,
                SimTime::from_millis(ms),
                1,
                0xF00,
                DataPathHealth {
                    processed: 100 + ms,
                    dropped: 0,
                    traps,
                    quarantined,
                },
            );
        };
        hb(&mut fd, 0, false, 0);
        assert_eq!(
            fd.poll(SimTime::from_millis(10)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
        // The device judged its own program and swapped it out: the flag
        // is authoritative even though the drop slope is pristine.
        hb(&mut fd, 50, true, 37);
        let events = fd.poll(SimTime::from_millis(60));
        assert!(events.contains(&(n, HealthEvent::Graded(Health::Degraded))));
        assert!(
            events.contains(&(n, HealthEvent::Quarantined { traps: 37 })),
            "quarantine episode reports with its trap count: {events:?}"
        );
        assert!(fd.quarantine_reported(n));
        assert!(matches!(
            fd.admit(n).unwrap_err(),
            FlexError::DegradedDevice { .. }
        ));
        // The flag persists: degraded holds, but the edge fired already.
        hb(&mut fd, 100, true, 37);
        assert_eq!(
            fd.poll(SimTime::from_millis(110)),
            vec![],
            "one Quarantined event per episode, not per heartbeat"
        );
        // A replacement install lifts the flag: the grade clears and the
        // edge re-arms for any later episode.
        hb(&mut fd, 150, false, 37);
        assert_eq!(
            fd.poll(SimTime::from_millis(160)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
        assert!(fd.admit(n).is_ok());
        hb(&mut fd, 200, true, 41);
        let events = fd.poll(SimTime::from_millis(210));
        assert!(
            events.contains(&(n, HealthEvent::Quarantined { traps: 41 })),
            "a second episode reports its own edge: {events:?}"
        );
    }

    #[test]
    fn admission_gate_refuses_every_unhealthy_grade() {
        let mut fd = FailureDetector::default();
        let (a, b) = (NodeId(1), NodeId(2));
        fd.observe(a, SimTime::ZERO);
        fd.observe(b, SimTime::ZERO);
        fd.poll(SimTime::from_millis(200)); // both Suspect
        for n in [a, b] {
            let e = fd.admit(n).unwrap_err();
            assert!(e.to_string().contains("suspect"), "{e}");
        }
        fd.poll(SimTime::from_millis(900)); // both Dead
        assert!(fd.admit(a).unwrap_err().to_string().contains("dead"));
        // A node the detector has never heard of: nothing against it.
        assert!(fd.admit(NodeId(99)).is_ok());
    }

    #[test]
    fn sweep_marks_crashed_device_dead() {
        use flexnet_sim::{Simulation, Topology};
        let (topo, sw, _hosts) = Topology::single_switch(2);
        let mut sim = Simulation::new(topo);
        let mut c = controller();
        let mut fabric = crate::retry::LossyFabric::reliable();
        // Heartbeats every 50 ms; the switch crashes at 200 ms.
        for ms in (0..=200).step_by(50) {
            c.sweep_heartbeats(&sim, &mut fabric, SimTime::from_millis(ms));
        }
        sim.topo
            .node_mut(sw)
            .unwrap()
            .device
            .crash(SimTime::from_millis(200));
        let mut dead_at = None;
        for ms in (250..=1000).step_by(50) {
            let tr = c.sweep_heartbeats(&sim, &mut fabric, SimTime::from_millis(ms));
            if tr
                .iter()
                .any(|(n, h)| *n == sw && *h == HealthEvent::Graded(Health::Dead))
            {
                dead_at = Some(ms);
                break;
            }
        }
        let dead_at = dead_at.expect("crashed switch declared dead");
        assert!(
            dead_at <= 750,
            "detection bounded by dead_after + one period, got {dead_at} ms"
        );
        // The hosts kept heartbeating and stay healthy.
        assert_eq!(c.detector.graded(Health::Dead), vec![sw]);
    }

    #[test]
    fn delayed_but_alive_heartbeats_do_not_flap() {
        // Heartbeats that arrive *late* — silence oscillating around the
        // suspect threshold — used to flap the grade Healthy↔Suspect on
        // every poll. The hysteresis band holds Suspect until silence
        // drops below the recovery floor (suspect_after / 2 = 75 ms).
        let mut fd = FailureDetector::new(
            SimDuration::from_millis(150),
            SimDuration::from_millis(500),
        );
        let n = NodeId(1);
        fd.observe(n, SimTime::ZERO);
        fd.poll(SimTime::from_millis(10)); // baseline Healthy
        // Silence crosses the threshold: graded Suspect.
        assert_eq!(
            fd.poll(SimTime::from_millis(155)),
            vec![(n, HealthEvent::Graded(Health::Suspect))]
        );
        // A late beat lands; at the next poll silence is back down to
        // 90 ms — below suspect_after but inside the hysteresis band.
        // Without hysteresis this would re-grade Healthy (and the next
        // late beat would flip it Suspect again, forever).
        fd.observe(n, SimTime::from_millis(160));
        assert!(
            fd.poll(SimTime::from_millis(250)).is_empty(),
            "silence in [recover_after, suspect_after) holds the grade"
        );
        assert_eq!(fd.health(n), Some(Health::Suspect));
        // Another late-but-alive cycle: still held, still no transitions.
        fd.observe(n, SimTime::from_millis(320));
        assert!(fd.poll(SimTime::from_millis(410)).is_empty());
        // A punctual beat (silence 10 ms < 75 ms) genuinely recovers it:
        // exactly one transition back to Healthy over the whole episode.
        fd.observe(n, SimTime::from_millis(480));
        assert_eq!(
            fd.poll(SimTime::from_millis(490)),
            vec![(n, HealthEvent::Graded(Health::Healthy))]
        );
    }

    #[test]
    fn queue_delay_alone_never_grades_degraded() {
        // A slow controller polls late, but the device heartbeats
        // punctually with a clean data path. Degraded is a *data-path*
        // verdict: controller-side queue delay must not trigger it, and
        // with widened thresholds late polling doesn't even Suspect it.
        let mut fd = FailureDetector::default();
        let n = NodeId(2);
        let hb = |fd: &mut FailureDetector, ms, processed| {
            fd.observe_heartbeat_health(
                n,
                SimTime::from_millis(ms),
                1,
                0xABC,
                DataPathHealth {
                    processed,
                    dropped: 0,
                    ..Default::default()
                },
            );
        };
        hb(&mut fd, 0, 0);
        fd.poll(SimTime::from_millis(10));
        // The controller falls behind: polls lag each beat by 200 ms.
        // At nominal thresholds that reads as Suspect — so the governor
        // widens the detector 4× and the grade stays Healthy throughout.
        fd.widen(4);
        for ms in (50..=450).step_by(50) {
            hb(&mut fd, ms, ms);
        }
        let events = fd.poll(SimTime::from_millis(650)); // 200 ms behind
        assert!(
            events.is_empty(),
            "punctual clean heartbeats + widened thresholds: no transitions, got {events:?}"
        );
        assert_eq!(fd.health(n), Some(Health::Healthy));
        assert!(
            !events
                .iter()
                .any(|(_, e)| *e == HealthEvent::Graded(Health::Degraded)),
            "Degraded must come from drop slope, never queue delay"
        );
        // Back to nominal scale with punctual polls: still healthy.
        fd.widen(1);
        hb(&mut fd, 700, 700);
        assert!(fd.poll(SimTime::from_millis(710)).is_empty());
    }

    #[test]
    fn admission_queue_serves_strict_priority_and_sheds_lowest_first() {
        let mut q = AdmissionQueue::bounded(3);
        let now = SimTime::ZERO;
        let far = SimTime::from_millis(1_000);
        q.push(WorkClass::Telemetry, Some(NodeId(1)), now, far).unwrap();
        q.push(WorkClass::Rollout, Some(NodeId(2)), now, far).unwrap();
        q.push(WorkClass::Telemetry, Some(NodeId(3)), now, far).unwrap();
        // Queue full: a resync evicts the newest telemetry item (node 3).
        q.push(WorkClass::Resync, Some(NodeId(4)), now, far).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.stats.shed_capacity, 1);
        assert_eq!(q.stats.shed_by_class[WorkClass::Telemetry.index()], 1);
        assert!(!q.contains_node(WorkClass::Telemetry, NodeId(3)));
        // Remedial work evicts the remaining telemetry.
        q.push(WorkClass::Remedial, Some(NodeId(5)), now, far).unwrap();
        // Serve order is strictly by class, not arrival: remedial,
        // resync, rollout.
        let order: Vec<WorkClass> = std::iter::from_fn(|| q.pop(now)).map(|w| w.class).collect();
        assert_eq!(
            order,
            vec![WorkClass::Remedial, WorkClass::Resync, WorkClass::Rollout]
        );
        assert_eq!(q.stats.served, 3);
    }

    #[test]
    fn full_queue_of_higher_priority_work_refuses_with_backpressure() {
        let mut q = AdmissionQueue::bounded(2);
        let now = SimTime::ZERO;
        let far = SimTime::from_millis(1_000);
        q.push(WorkClass::Remedial, None, now, far).unwrap();
        q.push(WorkClass::Resync, None, now, far).unwrap();
        // Telemetry cannot evict work above its own class.
        let refused = q
            .push(WorkClass::Telemetry, Some(NodeId(9)), now, far)
            .unwrap_err();
        assert!(matches!(refused, FlexError::Backpressure { .. }), "{refused}");
        assert!(refused.is_retryable(), "backpressure means requeue, not drop");
        assert_eq!(q.len(), 2, "queued work untouched");
    }

    #[test]
    fn admission_queue_sheds_expired_work_before_execution() {
        let mut q = AdmissionQueue::bounded(16);
        let t0 = SimTime::ZERO;
        // Three telemetry items whose requesters time out at 50 ms, one
        // resync good until 500 ms.
        for n in 1..=3 {
            q.push(WorkClass::Telemetry, Some(NodeId(n)), t0, SimTime::from_millis(50))
                .unwrap();
        }
        q.push(WorkClass::Resync, Some(NodeId(7)), t0, SimTime::from_millis(500))
            .unwrap();
        // By the time the executor gets there, the telemetry deadlines
        // have passed: the resync is served, the stale telemetry shed
        // unserved (serving it would be pure timeout-amplification).
        let now = SimTime::from_millis(100);
        let served = q.pop(now).unwrap();
        assert_eq!(served.class, WorkClass::Resync);
        assert!(q.pop(now).is_none());
        assert_eq!(q.stats.shed_expired, 3);
        assert_eq!(q.stats.served, 1);
        // The unprotected queue happily serves the same stale work.
        let mut unprot = AdmissionQueue::unbounded();
        unprot
            .push(WorkClass::Telemetry, None, t0, SimTime::from_millis(50))
            .unwrap();
        assert!(unprot.pop(SimTime::from_millis(100)).is_some());
    }

    #[test]
    fn token_bucket_defers_then_denies_beyond_horizon() {
        // One grant per 25 ms, booking at most 2 periods ahead.
        let mut tb = TokenBucket::new(SimDuration::from_millis(25), 2);
        let now = SimTime::ZERO;
        // First grant is immediate; the next two defer by exactly one
        // refill each (the old min_gap spacing, now global).
        assert_eq!(tb.reserve(now, "resync").unwrap(), SimTime::ZERO);
        assert_eq!(tb.reserve(now, "resync").unwrap(), SimTime::from_millis(25));
        assert_eq!(tb.reserve(now, "resync").unwrap(), SimTime::from_millis(50));
        // The fourth would start 75 ms out — past the 50 ms horizon.
        let denied = tb.reserve(now, "resync").unwrap_err();
        assert!(matches!(denied, FlexError::Backpressure { .. }), "{denied}");
        assert!(denied.is_retryable());
        assert_eq!((tb.granted, tb.denied), (3, 1));
        // Once time passes the backlog, reservations flow again.
        let later = SimTime::from_millis(75);
        assert_eq!(tb.reserve(later, "resync").unwrap(), later);
    }

    #[test]
    fn governor_enters_degraded_under_sustained_shed_and_recovers() {
        let mut gov = OverloadGovernor::new(
            4,
            SimDuration::from_millis(100),
            SimDuration::from_millis(200),
        );
        assert_eq!(gov.mode(), ControllerMode::Normal);
        assert!(gov.admit_rollout().is_ok());
        // 3 sheds in the window: still normal.
        assert_eq!(
            gov.observe_sheds(SimTime::from_millis(10), 3),
            ControllerMode::Normal
        );
        // The 4th shed trips it.
        assert_eq!(
            gov.observe_sheds(SimTime::from_millis(20), 4),
            ControllerMode::Degraded
        );
        assert_eq!(gov.entered, 1);
        let paused = gov.admit_rollout().unwrap_err();
        assert!(matches!(paused, FlexError::Backpressure { .. }), "{paused}");
        assert!(paused.is_retryable(), "rollouts resume after recovery");
        // Degradation widens the heartbeat machinery instead of
        // dropping failure detection.
        let base = SimDuration::from_millis(50);
        assert_eq!(gov.heartbeat_period(base), SimDuration::from_millis(200));
        assert_eq!(gov.detector_scale(), 4);
        // Sheds keep trickling: stays degraded.
        assert_eq!(
            gov.observe_sheds(SimTime::from_millis(150), 5),
            ControllerMode::Degraded
        );
        // 200 ms of quiet exits back to normal, and the widening reverts.
        assert_eq!(
            gov.observe_sheds(SimTime::from_millis(360), 5),
            ControllerMode::Normal
        );
        assert!(gov.admit_rollout().is_ok());
        assert_eq!(gov.heartbeat_period(base), base);
        assert_eq!(gov.detector_scale(), 1);
    }

    #[test]
    fn malicious_tenant_rejected_cleanly() {
        let mut c = controller();
        let evil = bundle("program evil { handler ingress(pkt) { count(total); } }");
        assert!(c.tenant_arrive(TenantId(3), evil, SimTime::ZERO).is_err());
        // Nothing was registered.
        assert!(c.apps.apps_of_tenant(TenantId(3)).is_empty());
        assert_eq!(c.tenants.tenants().len(), 0);
    }
}
