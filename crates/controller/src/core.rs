//! The FlexNet controller facade.
//!
//! "End-to-end, the network is piloted by a central controller that
//! maintains a global view of the topology and traffic patterns, as well as
//! the locations and resource requirements of the network apps" (paper §1).
//! The [`Controller`] ties the management subsystems together: the URI-keyed
//! app registry, the tenant manager (composition + VLANs), and the dRPC
//! service registry. It *plans* — producing program bundles and placements —
//! and leaves effecting those plans to runtime reconfiguration commands, so
//! it can drive either live simulations or unit tests.

use crate::apps::{AppRegistry, AppStatus};
use crate::drpc::{ExecutionSite, ServiceRegistry};
use crate::tenant::TenantManager;
use flexnet_compiler::{split_datapath, LogicalDatapath, SplitResult, TargetView};
use flexnet_lang::compose::tenant_prefix;
use flexnet_lang::diff::ProgramBundle;
use flexnet_types::{AppId, AppUri, NodeId, Result, SimTime, TenantId, VlanId};

/// The central controller.
#[derive(Debug)]
pub struct Controller {
    /// URI-named app registry (paper §3.4).
    pub apps: AppRegistry,
    /// Tenant lifecycle and composition (paper §3 scenario).
    pub tenants: TenantManager,
    /// dRPC registry and discovery (paper §3.4).
    pub services: ServiceRegistry,
    infra_node: NodeId,
}

impl Controller {
    /// Builds a controller over an infrastructure program hosted at
    /// `infra_node`, registering the infra app and its provided dRPC
    /// services.
    pub fn new(infra: ProgramBundle, infra_node: NodeId, now: SimTime) -> Result<Controller> {
        let mut apps = AppRegistry::new();
        let mut services = ServiceRegistry::new();
        let uri = AppUri::infra(&infra.program.name);
        let mut placement = flexnet_compiler::Placement::default();
        placement
            .assignments
            .insert(infra.program.name.clone(), infra_node);
        apps.register(uri, None, placement, now)?;
        for svc in infra.program.services.iter().filter(|s| s.provided) {
            services.register(
                &svc.name,
                infra_node,
                svc.params.len(),
                ExecutionSite::DataPlane,
            )?;
        }
        Ok(Controller {
            apps,
            tenants: TenantManager::new(infra),
            services,
            infra_node,
        })
    }

    /// The node hosting the composed infrastructure program.
    pub fn infra_node(&self) -> NodeId {
        self.infra_node
    }

    /// Admits a tenant extension. Returns the assigned VLAN and the new
    /// composed bundle to push to the infrastructure device (via
    /// `Command::RuntimeReconfig`).
    pub fn tenant_arrive(
        &mut self,
        tenant: TenantId,
        extension: ProgramBundle,
        now: SimTime,
    ) -> Result<(VlanId, ProgramBundle)> {
        let app_name = extension.program.name.clone();
        let provided: Vec<(String, usize)> = extension
            .program
            .services
            .iter()
            .filter(|s| s.provided)
            .map(|s| (s.name.clone(), s.params.len()))
            .collect();

        let vlan = self.tenants.arrive(tenant, extension)?;
        let (composed, _report) = self.tenants.composed()?;

        // Register the tenant's app under its URI.
        let uri = AppUri::new(&tenant.to_string(), &app_name)
            .unwrap_or_else(|| AppUri::infra(&app_name));
        let mut placement = flexnet_compiler::Placement::default();
        placement.assignments.insert(app_name, self.infra_node);
        self.apps.register(uri, Some(tenant), placement, now)?;

        // Register namespaced tenant-provided services.
        for (name, arity) in provided {
            let namespaced = format!("{}{}", tenant_prefix(tenant), name);
            self.services.register(
                &namespaced,
                self.infra_node,
                arity,
                ExecutionSite::DataPlane,
            )?;
        }
        Ok((vlan, composed))
    }

    /// Removes a tenant. Returns the composed bundle without it (push via
    /// runtime reconfiguration; its resources are reclaimed by the diff's
    /// remove ops).
    pub fn tenant_depart(&mut self, tenant: TenantId) -> Result<ProgramBundle> {
        self.tenants.depart(tenant)?;
        let (composed, _) = self.tenants.composed()?;
        // Retire the tenant's apps and services.
        let uris: Vec<AppUri> = self
            .apps
            .apps_of_tenant(tenant)
            .iter()
            .map(|r| r.uri.clone())
            .collect();
        for uri in uris {
            self.apps.set_status(&uri, AppStatus::Retired)?;
        }
        let prefix = tenant_prefix(tenant);
        let stale: Vec<String> = self
            .services
            .services()
            .filter(|s| s.name.starts_with(&prefix))
            .map(|s| s.name.clone())
            .collect();
        for name in stale {
            self.services.unregister(&name)?;
        }
        Ok(composed)
    }

    /// Deploys a whole-stack logical datapath across `path`, registering it
    /// as an app named by `uri`.
    pub fn deploy_datapath(
        &mut self,
        uri: AppUri,
        datapath: &LogicalDatapath,
        path: &mut [TargetView],
        now: SimTime,
    ) -> Result<(AppId, SplitResult)> {
        let split = split_datapath(datapath, path)?;
        let id = self
            .apps
            .register(uri, None, split.placement.clone(), now)?;
        Ok((id, split))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexnet_compiler::Component;
    use flexnet_dataplane::Architecture;
    use flexnet_lang::parser::parse_source;

    fn bundle(src: &str) -> ProgramBundle {
        let file = parse_source(src).unwrap();
        ProgramBundle {
            headers: file.headers,
            program: file.programs.into_iter().next().unwrap(),
        }
    }

    fn infra() -> ProgramBundle {
        bundle(
            "program infra kind switch {
               counter total;
               service provide migrate_state(dst: u32);
               handler ingress(pkt) { count(total); forward(0); }
             }",
        )
    }

    fn controller() -> Controller {
        Controller::new(infra(), NodeId(0), SimTime::ZERO).unwrap()
    }

    #[test]
    fn new_registers_infra_app_and_services() {
        let c = controller();
        assert!(c.apps.lookup(&AppUri::infra("infra")).is_some());
        assert!(c.services.discover("migrate_state").is_some());
        assert_eq!(c.infra_node(), NodeId(0));
    }

    #[test]
    fn tenant_lifecycle_updates_all_registries() {
        let mut c = controller();
        let ext = bundle(
            "program scrubber kind any {
               counter seen;
               service provide scrub(level: u8);
               handler ingress(pkt) { count(seen); }
             }",
        );
        let (vlan, composed) = c.tenant_arrive(TenantId(7), ext, SimTime::ZERO).unwrap();
        assert!(vlan.is_valid());
        assert!(composed.program.state("t7_seen").is_some());
        let uri = AppUri::new("tenant7", "scrubber").unwrap();
        assert!(c.apps.lookup(&uri).is_some());
        assert!(c.services.discover("t7_scrub").is_some());

        let composed = c.tenant_depart(TenantId(7)).unwrap();
        assert!(composed.program.state("t7_seen").is_none());
        assert_eq!(c.apps.lookup(&uri).unwrap().status, AppStatus::Retired);
        assert!(c.services.discover("t7_scrub").is_none());
    }

    #[test]
    fn depart_unknown_tenant_fails() {
        let mut c = controller();
        assert!(c.tenant_depart(TenantId(42)).is_err());
    }

    #[test]
    fn deploy_datapath_registers_app_with_placement() {
        let mut c = controller();
        let dp = LogicalDatapath::new(
            "lb",
            vec![Component::new(
                "spread",
                bundle("program spread kind switch { handler ingress(pkt) { forward(0); } }"),
            )],
        );
        let mut path = vec![
            TargetView::fresh(NodeId(1), Architecture::host_default()),
            TargetView::fresh(NodeId(2), Architecture::drmt_default()),
        ];
        let (id, split) = c
            .deploy_datapath(AppUri::infra("lb"), &dp, &mut path, SimTime::ZERO)
            .unwrap();
        assert_eq!(split.placement.node_of("spread"), Some(NodeId(2)));
        let rec = c.apps.lookup(&AppUri::infra("lb")).unwrap();
        assert_eq!(rec.id, id);
        assert_eq!(rec.placement.node_of("spread"), Some(NodeId(2)));
    }

    #[test]
    fn malicious_tenant_rejected_cleanly() {
        let mut c = controller();
        let evil = bundle("program evil { handler ingress(pkt) { count(total); } }");
        assert!(c.tenant_arrive(TenantId(3), evil, SimTime::ZERO).is_err());
        // Nothing was registered.
        assert!(c.apps.apps_of_tenant(TenantId(3)).is_empty());
        assert_eq!(c.tenants.tenants().len(), 0);
    }
}
