//! Crash-consistent durable control state (experiment E21).
//!
//! PRs 2–4 proved the control plane *logically* recovers from crashes,
//! but its Raft logs and intent records lived in in-memory `Vec`s that
//! survived `kill`/`revive` intact. This module puts a real storage
//! discipline under them, on top of [`flexnet_sim::disk::SimDisk`]:
//!
//! - **Record codec** — every durable record is length-prefixed and
//!   CRC-checksummed (`[len u32][crc u32][payload]`), so recovery can
//!   tell a torn tail from bit rot from a clean end of log.
//! - **Scrub** ([`scrub`]) — the recovery scan: verify every record,
//!   truncate at the first torn or corrupt one, and report whether the
//!   fault was a tail tear (benign — the record was never acked) or
//!   mid-log rot (the suffix must be discarded and re-fetched).
//! - **[`SegmentedWal`]** — the per-node Raft log on disk, in bounded
//!   logical segments so compaction can delete whole segments behind a
//!   snapshot.
//! - **[`SnapshotStore`]** — checksummed snapshot generations (the last
//!   two are kept); a rotted newest generation falls back to the
//!   previous one plus a longer log tail.
//! - **[`NodeStorage`]** — one controller node's disks: hard state
//!   (term/vote, fsync'd before any vote or append ack), the WAL, and
//!   snapshots, with [`NodeStorage::recover`] performing the full
//!   scrub + fallback + catch-up-demotion decision.
//! - **Compaction** ([`compact_records`]) — folds the committed intent
//!   log into its recovery-relevant summary: latest intended state per
//!   device, final record per terminal transaction, full history for
//!   anything unresolved, and a [`crate::wal::IntentRecord::Compacted`]
//!   marker preserving the id allocator's high-water mark.
//! - **The E21 harness** ([`run_storage_seed`]) — seeded storage-chaos
//!   scenarios (crash-mid-append, torn-tail-on-failover, cold-log rot,
//!   snapshot rot, `NoSpace` during compaction, lagging fsync) graded
//!   by fleet convergence and cross-node replay digests, with a
//!   protections-off arm (CRC checks disabled) that must diverge on
//!   the rot scenarios — proving the checksums are load-bearing.

use crate::recovery::{recover, TargetDirectory};
use crate::resync::IntendedStore;
use crate::retry::{LossyFabric, RetryPolicy};
use crate::txn::logged_transactional_reconfig;
use crate::wal::{IntentRecord, ReplicatedIntentLog};
use flexnet_lang::diff::ProgramBundle;
use flexnet_lang::parser::parse_source;
use flexnet_sim::disk::{DiskFaultPlan, SimDisk};
use flexnet_sim::{
    generate, FlowSpec, Simulation, StorageScenario, StorageSchedule, Topology,
};
use flexnet_types::{
    FlexError, NodeId, Result, SimDuration, SimTime, StorageError,
};
use std::collections::BTreeMap;

/// Bytes of record header: `[len u32 LE][crc u32 LE]`.
pub const RECORD_HEADER: usize = 8;

/// Records per logical WAL segment. Compaction deletes storage only in
/// whole-segment units, so the bound keeps deletions aligned and cheap.
pub const SEG_CAP: u64 = 8;

/// Snapshot generations retained. Recovery falls back at most this many
/// times before declaring the node snapshot-less.
pub const SNAP_GENERATIONS: usize = 2;

/// FNV-1a 32-bit over `bytes` — the record checksum. (The workspace has
/// no CRC crate and must not grow one; FNV-1a detects the single-bit
/// and short-burst corruptions the fault model injects.)
pub fn record_crc(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Frames `payload` as one durable record: `[len][crc][payload]`.
pub fn encode_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&record_crc(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Frames a Raft log entry as a record payload: `[term u64 LE][command]`.
pub fn encode_entry(term: u64, command: &str) -> Vec<u8> {
    let mut p = Vec::with_capacity(8 + command.len());
    p.extend_from_slice(&term.to_le_bytes());
    p.extend_from_slice(command.as_bytes());
    p
}

/// Inverse of [`encode_entry`]. Short or non-UTF-8 payloads decode
/// *lossily* (term 0 / replacement characters) rather than panicking —
/// with CRC checks disabled (the protections-off arm), rotted payloads
/// reach this decoder and must surface as wrong state, never a crash.
pub fn decode_entry(payload: &[u8]) -> (u64, String) {
    if payload.len() < 8 {
        return (0, String::new());
    }
    let mut term = [0u8; 8];
    term.copy_from_slice(&payload[..8]);
    (
        u64::from_le_bytes(term),
        String::from_utf8_lossy(&payload[8..]).into_owned(),
    )
}

/// What one recovery scan of a byte region found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubOutcome {
    /// Every record that verified, in order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte length of the verified prefix (the truncation point).
    pub valid_bytes: usize,
    /// Whether any synced bytes follow the verified prefix (i.e. the
    /// scan stopped short and truncation will drop data).
    pub truncated: bool,
    /// What stopped the scan (`None` = clean end of log).
    pub fault: Option<StorageError>,
    /// Whether a structurally valid, checksum-clean record follows the
    /// fault — rot landed *mid-log* on cold data, not on the tail.
    pub mid_log: bool,
}

/// Scans `bytes` as a sequence of framed records, verifying structure
/// and (when `crc_checks`) checksums. `base_record` numbers the first
/// record for error reporting (segment = global index / [`SEG_CAP`]).
///
/// The scan is the crash-consistency workhorse: a record whose bytes
/// end early is a **torn write** (the crash hit between the write and
/// its fsync barrier — the record was never acknowledged, so truncating
/// it loses nothing durable); a record that parses but fails its CRC is
/// **bit rot** on synced data (everything from it on is untrustworthy).
pub fn scrub(bytes: &[u8], base_record: u64, crc_checks: bool) -> ScrubOutcome {
    let mut payloads: Vec<Vec<u8>> = Vec::new();
    let mut off = 0usize;
    let mut fault = None;
    while off < bytes.len() {
        let global = base_record + payloads.len() as u64;
        let segment = global / SEG_CAP;
        let remaining = bytes.len() - off;
        if remaining < RECORD_HEADER {
            fault = Some(StorageError::TornRecord {
                segment,
                offset: off as u64,
            });
            break;
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&bytes[off..off + 4]);
        let len = u32::from_le_bytes(len4) as usize;
        if len > remaining - RECORD_HEADER {
            fault = Some(StorageError::TornRecord {
                segment,
                offset: off as u64,
            });
            break;
        }
        let mut crc4 = [0u8; 4];
        crc4.copy_from_slice(&bytes[off + 4..off + 8]);
        let want = u32::from_le_bytes(crc4);
        let payload = &bytes[off + RECORD_HEADER..off + RECORD_HEADER + len];
        let got = record_crc(payload);
        if crc_checks && got != want {
            fault = Some(StorageError::ChecksumFailed {
                segment,
                want: u64::from(want),
                got: u64::from(got),
            });
            break;
        }
        payloads.push(payload.to_vec());
        off += RECORD_HEADER + len;
    }
    // Mid-log detection: does a verifiable record follow the fault? If
    // so the corruption hit cold data, not the in-flight tail.
    let mid_log = if fault.is_some() {
        next_record_verifies(&bytes[off..])
    } else {
        false
    };
    ScrubOutcome {
        payloads,
        valid_bytes: off,
        truncated: off < bytes.len(),
        fault,
        mid_log,
    }
}

/// Whether `bytes` starts with (possibly after the one bad record) a
/// structurally valid, checksum-clean record.
fn next_record_verifies(bytes: &[u8]) -> bool {
    // Skip the bad record if its length prefix is still plausible, then
    // try to verify the record after it.
    let mut starts = vec![0usize];
    if bytes.len() >= RECORD_HEADER {
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&bytes[..4]);
        let len = u32::from_le_bytes(len4) as usize;
        if let Some(next) = RECORD_HEADER.checked_add(len) {
            if next < bytes.len() {
                starts.push(next);
            }
        }
    }
    starts.into_iter().skip(1).any(|s| {
        let rest = &bytes[s..];
        if rest.len() < RECORD_HEADER {
            return false;
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&rest[..4]);
        let len = u32::from_le_bytes(len4) as usize;
        if len > rest.len() - RECORD_HEADER {
            return false;
        }
        let mut crc4 = [0u8; 4];
        crc4.copy_from_slice(&rest[4..8]);
        record_crc(&rest[RECORD_HEADER..RECORD_HEADER + len]) == u32::from_le_bytes(crc4)
    })
}

/// Byte offsets `(start, total_len)` of each framed record in a healthy
/// region (structural parse only — callers use it on bytes they wrote).
fn record_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut off = 0usize;
    while off + RECORD_HEADER <= bytes.len() {
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&bytes[off..off + 4]);
        let len = u32::from_le_bytes(len4) as usize;
        if len > bytes.len() - off - RECORD_HEADER {
            break;
        }
        spans.push((off, RECORD_HEADER + len));
        off += RECORD_HEADER + len;
    }
    spans
}

/// The per-node Raft log on disk: framed records over a [`SimDisk`], in
/// bounded logical segments of [`SEG_CAP`] records.
///
/// `base_record` is the global index of the first record still on disk;
/// compaction advances it by deleting whole segments behind the
/// snapshot-fallback horizon.
#[derive(Debug)]
pub struct SegmentedWal {
    disk: SimDisk,
    base_record: u64,
    count: u64,
    crc_checks: bool,
}

impl SegmentedWal {
    /// A WAL over `disk` (usually freshly planned, possibly armed).
    pub fn new(disk: SimDisk, crc_checks: bool) -> SegmentedWal {
        SegmentedWal {
            disk,
            base_record: 0,
            count: 0,
            crc_checks,
        }
    }

    /// Global index of the first record on disk.
    pub fn base_record(&self) -> u64 {
        self.base_record
    }

    /// Global index one past the last durable record.
    pub fn next_record(&self) -> u64 {
        self.base_record + self.count
    }

    /// Appends one framed record (volatile until [`SegmentedWal::fsync`]).
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        self.disk.write(&encode_record(payload))?;
        self.count += 1;
        Ok(())
    }

    /// The fsync barrier; returns the latency charged.
    pub fn fsync(&mut self) -> Result<SimDuration> {
        self.disk.fsync()
    }

    /// Power loss: volatile bytes die (the armed plan may tear the
    /// in-flight record onto the platter).
    pub fn crash(&mut self) {
        self.disk.crash();
    }

    /// Scans the durable region.
    pub fn scrub(&self) -> ScrubOutcome {
        scrub(self.disk.synced_bytes(), self.base_record, self.crc_checks)
    }

    /// Recovery: scrub, truncate the disk at the first bad record, and
    /// return the verified payloads (plus what was wrong, if anything).
    pub fn recover(&mut self) -> ScrubOutcome {
        let outcome = self.scrub();
        if outcome.truncated {
            let keep = self.disk.synced_bytes()[..outcome.valid_bytes].to_vec();
            self.disk.set_synced(keep);
        }
        self.count = outcome.payloads.len() as u64;
        outcome
    }

    /// Drops every record at global index ≥ `keep_until` (the Raft
    /// conflicting-suffix truncation, mirrored onto disk).
    pub fn truncate_records(&mut self, keep_until: u64) {
        if keep_until >= self.next_record() {
            return;
        }
        let keep = keep_until.saturating_sub(self.base_record) as usize;
        let spans = record_spans(self.disk.synced_bytes());
        let cut = spans.get(keep).map_or(0, |(s, _)| *s);
        let bytes = self.disk.synced_bytes()[..cut].to_vec();
        self.disk.set_synced(bytes);
        self.count = keep as u64;
    }

    /// Deletes whole segments wholly below `horizon` (records covered by
    /// a retained snapshot generation). Advances `base_record` to the
    /// largest segment boundary ≤ `horizon`.
    pub fn delete_through(&mut self, horizon: u64) {
        let boundary = (horizon / SEG_CAP) * SEG_CAP;
        if boundary <= self.base_record {
            return;
        }
        let boundary = boundary.min(self.next_record());
        let drop = (boundary - self.base_record) as usize;
        let spans = record_spans(self.disk.synced_bytes());
        let cut = spans.get(drop).map_or_else(
            || self.disk.synced_bytes().len(),
            |(s, _)| *s,
        );
        let bytes = self.disk.synced_bytes()[cut..].to_vec();
        self.disk.set_synced(bytes);
        self.count -= drop as u64;
        self.base_record = boundary;
    }

    /// Discards volatile (un-fsync'd) bytes after a refused write, so a
    /// half-built batch can't leak into a later barrier. Only valid when
    /// the synced region is healthy (not after a torn crash).
    fn abort_volatile(&mut self) {
        let keep = self.disk.synced_bytes().to_vec();
        self.disk.set_synced(keep);
        self.count = record_spans(self.disk.synced_bytes()).len() as u64;
    }

    /// Injects bit rot into the *payload* of the record at global index
    /// `global` — past the 8-byte term field when the payload is long
    /// enough, so the corrupted bytes are the command content itself.
    /// Returns the rotted byte offset, or `None` if out of range.
    pub fn rot_payload(&mut self, global: u64) -> Option<usize> {
        if global < self.base_record || global >= self.next_record() {
            return None;
        }
        let idx = (global - self.base_record) as usize;
        let (start, total) = *record_spans(self.disk.synced_bytes()).get(idx)?;
        let payload_start = start + RECORD_HEADER;
        let payload_len = total - RECORD_HEADER;
        let lo = if payload_len > 16 {
            payload_start + 16
        } else {
            payload_start
        };
        self.disk.rot_byte(lo, start + total)
    }

    /// The underlying disk (stats, fault state).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }
}

/// Checksummed snapshot generations (newest last, at most
/// [`SNAP_GENERATIONS`] kept).
///
/// A snapshot's payload is `[base_index u64][base_term u64][commands
/// joined by '\n']` — the summary command sequence that replaces the
/// compacted log prefix. Loading tries the newest generation first and
/// falls back on checksum failure; the fallback horizon (the oldest
/// retained generation's base) bounds how much WAL compaction may
/// delete.
#[derive(Debug)]
pub struct SnapshotStore {
    /// `(generation id, base_index, disk)`, oldest first.
    gens: Vec<(u64, u64, SimDisk)>,
    next_gen: u64,
    capacity: Option<u64>,
    seed: u64,
    crc_checks: bool,
    fsync_lag: SimDuration,
}

impl SnapshotStore {
    /// A store writing generations to fresh disks seeded from `seed`,
    /// each capped at `capacity` bytes (`None` = unbounded).
    pub fn new(seed: u64, capacity: Option<u64>, crc_checks: bool) -> SnapshotStore {
        SnapshotStore {
            gens: Vec::new(),
            next_gen: 1,
            capacity,
            seed,
            crc_checks,
            fsync_lag: SimDuration::ZERO,
        }
    }

    /// Arms an fsync latency on every future generation's disk.
    pub fn with_fsync_lag(mut self, lag: SimDuration) -> SnapshotStore {
        self.fsync_lag = lag;
        self
    }

    /// Writes a new generation. On [`StorageError::NoSpace`] nothing is
    /// retained — the store (and the log behind it) are unchanged.
    pub fn install(&mut self, base_index: u64, base_term: u64, cmds: &[String]) -> Result<u64> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&base_index.to_le_bytes());
        payload.extend_from_slice(&base_term.to_le_bytes());
        payload.extend_from_slice(cmds.join("\n").as_bytes());
        let mut plan = DiskFaultPlan::seeded(self.seed ^ self.next_gen);
        plan.fsync_lag = self.fsync_lag;
        if let Some(cap) = self.capacity {
            plan = plan.with_capacity(cap);
        }
        let mut disk = SimDisk::with_plan(plan);
        disk.write(&encode_record(&payload))?;
        disk.fsync()?;
        let gen = self.next_gen;
        self.next_gen += 1;
        self.gens.push((gen, base_index, disk));
        while self.gens.len() > SNAP_GENERATIONS {
            self.gens.remove(0);
        }
        Ok(gen)
    }

    /// Loads the newest verifiable generation. Returns
    /// `(generation, base_index, base_term, commands, fallbacks)` where
    /// `fallbacks` counts newer generations that failed their checksum
    /// and were skipped. `None` when no generation verifies (or none
    /// exists).
    pub fn load(&self) -> Option<(u64, u64, u64, Vec<String>, u64)> {
        let mut fallbacks = 0u64;
        for (gen, _, disk) in self.gens.iter().rev() {
            let outcome = scrub(disk.synced_bytes(), 0, self.crc_checks);
            let Some(payload) = outcome.payloads.first() else {
                fallbacks += 1;
                continue;
            };
            if payload.len() < 16 {
                fallbacks += 1;
                continue;
            }
            let mut b = [0u8; 8];
            b.copy_from_slice(&payload[..8]);
            let base_index = u64::from_le_bytes(b);
            b.copy_from_slice(&payload[8..16]);
            let base_term = u64::from_le_bytes(b);
            let rest = String::from_utf8_lossy(&payload[16..]);
            let cmds: Vec<String> = if rest.is_empty() {
                Vec::new()
            } else {
                rest.split('\n').map(str::to_string).collect()
            };
            return Some((*gen, base_index, base_term, cmds, fallbacks));
        }
        None
    }

    /// The oldest retained generation's base index — the WAL-deletion
    /// horizon (records below it may be deleted; records above it must
    /// stay so a fallback can replay its tail).
    pub fn fallback_horizon(&self) -> Option<u64> {
        self.gens.first().map(|(_, base, _)| *base)
    }

    /// How many generations are retained.
    pub fn generations(&self) -> usize {
        self.gens.len()
    }

    /// Injects bit rot into the newest generation's command region (past
    /// the 16-byte base fields, so the corruption lands on content).
    /// Returns whether a byte was flipped.
    pub fn rot_latest(&mut self) -> bool {
        let Some((_, _, disk)) = self.gens.last_mut() else {
            return false;
        };
        let len = disk.synced_bytes().len();
        disk.rot_byte(RECORD_HEADER + 16, len).is_some()
    }
}

/// Observability counters for one node's storage stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageCounters {
    /// Recoveries that truncated a torn tail record.
    pub torn_truncations: u64,
    /// Recoveries that truncated at a failed checksum.
    pub checksum_truncations: u64,
    /// Checksum failures with verifiable records *after* them — rot on
    /// cold data, the catch-up-demotion trigger.
    pub mid_log_rot: u64,
    /// Snapshot generations skipped for a failed checksum.
    pub snapshot_fallbacks: u64,
    /// Recoveries that demoted the node to catch-up-only (it discarded
    /// synced bytes and must not vote until the leader refills it).
    pub catchup_demotions: u64,
    /// Writes refused with `NoSpace`.
    pub nospace: u64,
    /// Votes refused because the node was in catch-up-only mode.
    pub votes_refused_catchup: u64,
    /// Total fsync latency charged across all disks.
    pub fsync_lag: SimDuration,
}

impl StorageCounters {
    /// Folds `other` into `self` (the harness rolls per-node counters
    /// into one fleet-wide account).
    pub fn merge(&mut self, other: &StorageCounters) {
        self.torn_truncations += other.torn_truncations;
        self.checksum_truncations += other.checksum_truncations;
        self.mid_log_rot += other.mid_log_rot;
        self.snapshot_fallbacks += other.snapshot_fallbacks;
        self.catchup_demotions += other.catchup_demotions;
        self.nospace += other.nospace;
        self.votes_refused_catchup += other.votes_refused_catchup;
        self.fsync_lag += other.fsync_lag;
    }
}

/// Everything [`NodeStorage::recover`] reconstructs from disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredState {
    /// Persisted current term (0 when nothing was ever persisted).
    pub term: u64,
    /// Persisted vote in that term.
    pub voted_for: Option<usize>,
    /// Global index the snapshot covers through (0 = no snapshot).
    pub base_index: u64,
    /// Term of the entry at `base_index`.
    pub base_term: u64,
    /// The snapshot's summary command sequence.
    pub snapshot_cmds: Vec<String>,
    /// Verified log tail: `(term, command)` for entries after
    /// `base_index`.
    pub entries: Vec<(u64, String)>,
    /// The node discarded synced bytes (tear or rot) or lost its
    /// snapshot chain: it must rejoin as a non-voting catch-up follower
    /// until the leader has refilled everything committed.
    pub needs_catchup: bool,
}

/// One controller node's durable storage: hard state (term/vote), the
/// segmented WAL, and snapshot generations.
#[derive(Debug)]
pub struct NodeStorage {
    hard: SimDisk,
    wal: SegmentedWal,
    snaps: SnapshotStore,
    crc_checks: bool,
    hard_records: u64,
    counters: StorageCounters,
}

impl NodeStorage {
    /// Fault-free storage (the default under every legacy experiment:
    /// every write fsyncs immediately and crashes lose nothing).
    pub fn fault_free(seed: u64) -> NodeStorage {
        NodeStorage::with_plans(
            DiskFaultPlan::seeded(seed),
            DiskFaultPlan::seeded(seed ^ 0x4A2D_0001),
            None,
            seed,
            true,
        )
    }

    /// Storage with explicit fault plans: `wal_plan` under the log,
    /// `hard_plan` under term/vote, `snap_capacity` capping snapshot
    /// generations, `crc_checks` arming checksum verification (the
    /// protections switch).
    pub fn with_plans(
        wal_plan: DiskFaultPlan,
        hard_plan: DiskFaultPlan,
        snap_capacity: Option<u64>,
        seed: u64,
        crc_checks: bool,
    ) -> NodeStorage {
        let snap_lag = wal_plan.fsync_lag;
        NodeStorage {
            hard: SimDisk::with_plan(hard_plan),
            wal: SegmentedWal::new(SimDisk::with_plan(wal_plan), crc_checks),
            snaps: SnapshotStore::new(seed ^ 0x5AAF_5AAF, snap_capacity, crc_checks)
                .with_fsync_lag(snap_lag),
            crc_checks,
            hard_records: 0,
            counters: StorageCounters::default(),
        }
    }

    /// Whether checksum verification is armed.
    pub fn crc_checks(&self) -> bool {
        self.crc_checks
    }

    /// Durably records `(term, vote)` — the write-then-barrier that must
    /// precede any vote or append acknowledgement. The hard-state log is
    /// rewritten in place once it accumulates a segment's worth of
    /// records (only the last one matters).
    pub fn persist_hard(&mut self, term: u64, vote: Option<usize>) -> Result<SimDuration> {
        let line = match vote {
            Some(v) => format!("hs {term} {v}"),
            None => format!("hs {term} -"),
        };
        self.hard.write(&encode_record(line.as_bytes()))?;
        let lag = self.hard.fsync()?;
        self.counters.fsync_lag += lag;
        self.hard_records += 1;
        if self.hard_records > 64 {
            let last = encode_record(line.as_bytes());
            self.hard.set_synced(last);
            self.hard_records = 1;
        }
        Ok(lag)
    }

    /// Mirrors the in-memory log suffix onto disk: truncates any
    /// conflicting records at global index ≥ `from`, appends `entries`,
    /// and fsyncs once. Returns the barrier latency. On error the
    /// in-flight record is in the volatile buffer and the caller must
    /// treat the node as crashed (the ack must never be sent).
    pub fn sync_log(&mut self, from: u64, entries: &[(u64, String)]) -> Result<SimDuration> {
        self.wal.truncate_records(from);
        if entries.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        for (term, cmd) in entries {
            if let Err(e) = self.wal.append(&encode_entry(*term, cmd)) {
                if matches!(e, FlexError::Storage(StorageError::NoSpace { .. })) {
                    self.counters.nospace += 1;
                }
                // A typed refusal leaves the synced region healthy —
                // drop the half-built batch. A tripped medium keeps its
                // in-flight bytes for the crash to tear.
                if !self.wal.disk().is_tripped() {
                    self.wal.abort_volatile();
                }
                return Err(e);
            }
        }
        let lag = self.wal.fsync()?;
        self.counters.fsync_lag += lag;
        Ok(lag)
    }

    /// Local compaction: installs a snapshot generation covering through
    /// `base_index` and deletes WAL segments behind the fallback
    /// horizon. The log tail above `base_index` stays. `NoSpace` leaves
    /// everything intact.
    pub fn compact_snapshot(
        &mut self,
        base_index: u64,
        base_term: u64,
        cmds: &[String],
    ) -> Result<()> {
        match self.snaps.install(base_index, base_term, cmds) {
            Ok(_) => {}
            Err(e) => {
                if matches!(e, FlexError::Storage(StorageError::NoSpace { .. })) {
                    self.counters.nospace += 1;
                }
                return Err(e);
            }
        }
        if let Some(horizon) = self.snaps.fallback_horizon() {
            self.wal.delete_through(horizon);
        }
        Ok(())
    }

    /// Adopts a leader-shipped snapshot (InstallSnapshot): the local log
    /// is discarded wholesale and restarts empty at `base_index`.
    pub fn adopt_snapshot(
        &mut self,
        base_index: u64,
        base_term: u64,
        cmds: &[String],
    ) -> Result<()> {
        self.snaps.install(base_index, base_term, cmds)?;
        self.wal.truncate_records(self.wal.base_record());
        self.wal.base_record = base_index;
        Ok(())
    }

    /// Power loss across all disks.
    pub fn crash(&mut self) {
        self.hard.crash();
        self.wal.crash();
    }

    /// Full recovery: hard-state scrub, snapshot load with generation
    /// fallback, WAL scrub with tail truncation, and the catch-up
    /// decision ("never votes with a hole").
    pub fn recover(&mut self) -> RecoveredState {
        // Hard state: last verified record wins.
        let hard_scrub = scrub(self.hard.synced_bytes(), 0, self.crc_checks);
        if hard_scrub.truncated {
            let keep = self.hard.synced_bytes()[..hard_scrub.valid_bytes].to_vec();
            self.hard.set_synced(keep);
        }
        self.hard_records = hard_scrub.payloads.len() as u64;
        let (mut term, mut voted_for) = (0u64, None);
        if let Some(last) = hard_scrub.payloads.last() {
            let line = String::from_utf8_lossy(last);
            let mut parts = line.split_whitespace();
            if parts.next() == Some("hs") {
                term = parts.next().and_then(|t| t.parse().ok()).unwrap_or(0);
                voted_for = match parts.next() {
                    Some("-") | None => None,
                    Some(v) => v.parse().ok(),
                };
            }
        }

        // Snapshot: newest verifiable generation.
        let (base_index, base_term, snapshot_cmds, fallbacks) = match self.snaps.load() {
            Some((_, base, bterm, cmds, fb)) => (base, bterm, cmds, fb),
            None => (0, 0, Vec::new(), self.snaps.generations() as u64),
        };
        self.counters.snapshot_fallbacks += fallbacks;

        // WAL tail.
        let outcome = self.wal.recover();
        match &outcome.fault {
            Some(StorageError::TornRecord { .. }) => self.counters.torn_truncations += 1,
            Some(StorageError::ChecksumFailed { .. }) => {
                self.counters.checksum_truncations += 1;
                if outcome.mid_log {
                    self.counters.mid_log_rot += 1;
                }
            }
            _ => {}
        }
        let mut needs_catchup = outcome.truncated;

        // Assemble the tail above the snapshot base. A WAL that starts
        // *after* the recovered base (every covering generation rotted
        // away) is a hole: the node keeps nothing and catches up.
        let wal_base = self.wal.base_record();
        let mut entries: Vec<(u64, String)> = Vec::new();
        if wal_base > base_index {
            needs_catchup = true;
            self.wal.truncate_records(wal_base);
        } else {
            let skip = (base_index - wal_base) as usize;
            for payload in outcome.payloads.iter().skip(skip) {
                let (t, cmd) = decode_entry(payload);
                entries.push((t, cmd));
            }
        }
        if needs_catchup {
            self.counters.catchup_demotions += 1;
        }
        RecoveredState {
            term,
            voted_for,
            base_index,
            base_term,
            snapshot_cmds,
            entries,
            needs_catchup,
        }
    }

    /// Observability counters.
    pub fn counters(&self) -> &StorageCounters {
        &self.counters
    }

    /// Mutable counters (the Raft layer accounts vote refusals here).
    pub fn counters_mut(&mut self) -> &mut StorageCounters {
        &mut self.counters
    }

    /// The WAL (fault injection in harnesses).
    pub fn wal_mut(&mut self) -> &mut SegmentedWal {
        &mut self.wal
    }

    /// The WAL, read-only.
    pub fn wal(&self) -> &SegmentedWal {
        &self.wal
    }

    /// The snapshot store (fault injection in harnesses).
    pub fn snaps_mut(&mut self) -> &mut SnapshotStore {
        &mut self.snaps
    }

    /// The snapshot store, read-only.
    pub fn snaps(&self) -> &SnapshotStore {
        &self.snaps
    }

    /// Whether any underlying disk is tripped mid-write.
    pub fn is_tripped(&self) -> bool {
        self.hard.is_tripped() || self.wal.disk().is_tripped()
    }
}

// ---------------------------------------------------------------------
// Compaction and replay digests
// ---------------------------------------------------------------------

/// Folds a committed record sequence into its recovery-relevant
/// summary:
///
/// - a [`IntentRecord::Compacted`] marker carrying the id allocator's
///   high-water mark (so a successor never reuses a compacted-away id),
/// - the latest [`IntentRecord::IntendedState`] per device (the
///   reconciliation targets),
/// - the *final* record of every terminal transaction and rollout
///   (their resolution is all recovery needs),
/// - the *full* record history of every non-terminal transaction and
///   rollout (recovery must still resolve them).
///
/// Replaying summary + tail is state-equivalent to replaying the full
/// log ([`replay_digest`] is the checked form of that claim).
pub fn compact_records(records: &[IntentRecord]) -> Vec<IntentRecord> {
    let mut max_txn = 0u64;
    let mut intended: BTreeMap<u64, IntentRecord> = BTreeMap::new();
    // Per id: (history, terminal?)
    let mut txns: BTreeMap<u64, (Vec<IntentRecord>, bool)> = BTreeMap::new();
    for rec in records {
        max_txn = max_txn.max(rec.txn());
        match rec {
            IntentRecord::IntendedState { device, .. } => {
                intended.insert(*device, rec.clone());
            }
            IntentRecord::Compacted { .. } => {}
            _ => {
                let id = match rec {
                    IntentRecord::RolloutStarted { rollout, .. }
                    | IntentRecord::WaveCommitted { rollout, .. }
                    | IntentRecord::RolloutAborted { rollout, .. }
                    | IntentRecord::RolloutCompleted { rollout }
                    | IntentRecord::RolledBack { rollout } => *rollout,
                    other => other.txn(),
                };
                let terminal = matches!(
                    rec,
                    IntentRecord::Committed { .. }
                        | IntentRecord::Aborted { .. }
                        | IntentRecord::RolloutCompleted { .. }
                        | IntentRecord::RolledBack { .. }
                );
                let slot = txns.entry(id).or_insert_with(|| (Vec::new(), false));
                slot.0.push(rec.clone());
                slot.1 = terminal;
            }
        }
    }
    let mut out = vec![IntentRecord::Compacted { txn: max_txn }];
    out.extend(intended.into_values());
    for (_, (history, terminal)) in txns {
        if terminal {
            if let Some(last) = history.into_iter().last() {
                out.push(last);
            }
        } else {
            out.extend(history);
        }
    }
    out
}

/// A semantic digest of a replayed record sequence: FNV-1a 64 over the
/// state recovery actually consumes — the final record per transaction
/// and rollout, the latest intended state per device, and the id
/// high-water mark. Invariant under [`compact_records`]: summary + tail
/// digests equal to full-log digests, and any content corruption that
/// survives decoding perturbs it.
pub fn replay_digest(records: &[IntentRecord]) -> u64 {
    let mut max_txn = 0u64;
    let mut intended: BTreeMap<u64, String> = BTreeMap::new();
    let mut finals: BTreeMap<u64, String> = BTreeMap::new();
    for rec in records {
        max_txn = max_txn.max(rec.txn());
        match rec {
            IntentRecord::IntendedState { device, .. } => {
                intended.insert(*device, rec.encode());
            }
            IntentRecord::Compacted { .. } => {}
            _ => {
                let id = match rec {
                    IntentRecord::RolloutStarted { rollout, .. }
                    | IntentRecord::WaveCommitted { rollout, .. }
                    | IntentRecord::RolloutAborted { rollout, .. }
                    | IntentRecord::RolloutCompleted { rollout }
                    | IntentRecord::RolledBack { rollout } => *rollout,
                    other => other.txn(),
                };
                finals.insert(id, rec.encode());
            }
        }
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0xff;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    eat(&max_txn.to_le_bytes());
    for (dev, line) in &intended {
        eat(&dev.to_le_bytes());
        eat(line.as_bytes());
    }
    for (id, line) in &finals {
        eat(&id.to_le_bytes());
        eat(line.as_bytes());
    }
    h
}

/// Decodes a committed command sequence (skipping election barriers)
/// and digests it. A command that fails to decode is itself the signal
/// — with checksums disabled, rotted bytes replay as garbage — so the
/// error propagates for the caller to grade as divergence.
pub fn state_digest(cmds: &[String]) -> Result<u64> {
    let records: Vec<IntentRecord> = cmds
        .iter()
        .filter(|s| !s.starts_with("barrier"))
        .map(|s| IntentRecord::decode(s))
        .collect::<Result<_>>()?;
    Ok(replay_digest(&records))
}

// ---------------------------------------------------------------------------
// The E21 storage-chaos harness.
// ---------------------------------------------------------------------------

/// Controller nodes in the storage scenario's Raft cluster.
const CONTROLLERS: usize = 3;

/// The protections switch for the E21 oracle arm.
///
/// Protections-on (the default) arms checksum verification on every
/// durable record; protections-off disables only CRC checks (structural
/// torn-record detection stays, because a torn length prefix is not a
/// protection — it is unparseable). The rot scenarios must diverge with
/// CRC off, proving the checksums are load-bearing rather than
/// decorative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageProtections {
    /// Verify record checksums during recovery scrubs and snapshot loads.
    pub crc_checks: bool,
}

impl Default for StorageProtections {
    fn default() -> StorageProtections {
        StorageProtections { crc_checks: true }
    }
}

/// Everything one E21 run observed.
#[derive(Debug, Clone)]
pub struct StorageReport {
    /// The schedule the seed expanded to.
    pub schedule: StorageSchedule,
    /// Which protections the run armed.
    pub protections: StorageProtections,
    /// Whether replica state diverged (undecodable committed records, or
    /// replay digests that disagree across live nodes).
    pub diverged: bool,
    /// Fleet-wide storage counters, rolled up across all nodes.
    pub counters: StorageCounters,
    /// Packets delivered by the post-scenario traffic check.
    pub delivered: u64,
    /// Committed intent records in the leader's final log view.
    pub replay_records: usize,
    /// Every invariant violation observed (empty = the run passed).
    pub violations: Vec<String>,
}

impl StorageReport {
    /// Whether the run upheld every invariant without diverging.
    pub fn passed(&self) -> bool {
        !self.diverged && self.violations.is_empty()
    }
}

fn bundle(src: &str) -> ProgramBundle {
    let file = parse_source(src).expect("storage program parses");
    ProgramBundle {
        headers: file.headers,
        program: file.programs.into_iter().next().expect("one program"),
    }
}

/// The pre-scenario program: plain forwarding along the line.
fn v1() -> ProgramBundle {
    bundle("program app kind any { handler ingress(pkt) { forward(1); } }")
}

/// First reconfiguration target: forwarding plus a counter.
fn v2() -> ProgramBundle {
    bundle(
        "program app kind any {
           counter c;
           handler ingress(pkt) { count(c); forward(1); }
         }",
    )
}

/// Second reconfiguration target: two counters, so the multi-txn
/// scenarios produce a non-trivial third program state.
fn v3() -> ProgramBundle {
    bundle(
        "program app kind any {
           counter c;
           counter d;
           handler ingress(pkt) { count(c); count(d); forward(1); }
         }",
    )
}

/// Builds the per-node storage stacks the schedule demands. Disk seeds
/// derive arithmetically from `schedule.disk_seed` — storage never draws
/// from the cluster's RNG, so arming faults cannot perturb the election
/// byte-stream legacy experiments pin.
fn storages_for(schedule: &StorageSchedule, prot: StorageProtections) -> Vec<NodeStorage> {
    (0..CONTROLLERS)
        .map(|i| {
            let node_seed =
                schedule.disk_seed ^ ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut wal_plan = DiskFaultPlan::seeded(node_seed).tearing();
            let mut snap_capacity = None;
            if i == schedule.victim {
                match schedule.scenario {
                    StorageScenario::CrashMidAppend | StorageScenario::TornTailOnFailover => {
                        wal_plan = wal_plan.crash_at_write(schedule.crash_at_write);
                    }
                    StorageScenario::NoSpaceDuringCompaction => {
                        snap_capacity = schedule.snap_capacity;
                    }
                    _ => {}
                }
            }
            if schedule.scenario == StorageScenario::LaggingFsync {
                wal_plan =
                    wal_plan.with_fsync_lag(SimDuration::from_micros(schedule.fsync_lag_us));
            }
            NodeStorage::with_plans(
                wal_plan,
                DiskFaultPlan::seeded(node_seed ^ 0x4A2D_0001),
                snap_capacity,
                node_seed,
                prot.crc_checks,
            )
        })
        .collect()
}

/// Runs one seeded storage-chaos scenario with full protections.
pub fn run_storage_seed(seed: u64) -> Result<StorageReport> {
    run_storage_seed_with(seed, StorageProtections::default())
}

/// Runs one seeded storage-chaos scenario under explicit protections
/// (the bench's oracle arm re-runs rot seeds with CRC checks off and
/// requires the divergence the checksums exist to prevent).
///
/// Errors only on harness plumbing failures (a cluster that cannot
/// elect at all); protocol misbehaviour is reported as violations or
/// divergence, not errors, so sweeps keep going and count.
pub fn run_storage_seed_with(seed: u64, prot: StorageProtections) -> Result<StorageReport> {
    // -- setup: line topology, v1 everywhere, durable-storage Raft -------
    let (topo, nodes) = Topology::host_nic_switch_line();
    let devices = [nodes[1], nodes[2], nodes[3]];
    let (src_host, dst_host) = (nodes[0], nodes[4]);
    let mut sim = Simulation::new(topo);
    for d in devices {
        sim.topo
            .node_mut(d)
            .expect("line node exists")
            .device
            .install(v1())
            .map_err(|e| FlexError::Sim(format!("seed {seed}: install v1 on {d}: {e}")))?;
    }
    let schedule = StorageSchedule::from_seed(seed, CONTROLLERS);
    let storages = storages_for(&schedule, prot);
    let mut log = ReplicatedIntentLog::new_with(CONTROLLERS, schedule.raft_seed, storages)?;
    log.epoch()?;
    let mut fabric = LossyFabric::new(schedule.fabric_loss, seed);
    let policy = RetryPolicy {
        max_attempts: 16,
        deadline: SimDuration::from_secs(60),
        ..RetryPolicy::default()
    };
    let mut store = IntendedStore::new();
    let mut violations: Vec<String> = Vec::new();

    // Recovery needs roll-forward targets for any transaction left in
    // doubt. A transaction that dies in `append` never reports its id,
    // so the directory is pre-populated for every id this harness can
    // allocate; recovery only consults ids that actually exist.
    let targets_v2: Vec<(NodeId, ProgramBundle)> = devices.iter().map(|d| (*d, v2())).collect();
    let targets_v3: Vec<(NodeId, ProgramBundle)> = devices.iter().map(|d| (*d, v3())).collect();
    let mut directory = TargetDirectory::new();
    for id in 1..=8u64 {
        directory.insert(id, targets_v2.clone());
    }

    // Which program each transaction id targeted, in execution order;
    // the expected fleet program is folded from the committed subset.
    let mut txn_programs: Vec<(u64, ProgramBundle)> = Vec::new();
    let mut recovery_finished: Option<SimTime> = None;

    // One journaled reconfiguration act; an `Err` means the coordinator's
    // own storage died mid-append, which the caller handles as a crash.
    macro_rules! txn_act {
        ($targets:expr, $bundle:expr, $at:expr, $crash:expr) => {
            match logged_transactional_reconfig(
                &mut sim,
                $targets,
                $at,
                &mut fabric,
                &policy,
                &mut log,
                $crash,
                Some(&mut store),
                None,
            ) {
                Ok(report) => {
                    txn_programs.push((report.txn, $bundle));
                    Ok(report)
                }
                Err(e) => Err(e),
            }
        };
    }

    // Fail over off a dead (or suspect) coordinator and resolve every
    // in-doubt transaction at the devices. An armed victim disk can trip
    // *during* recovery's own appends and collapse a bare-majority
    // quorum — the retry arm restarts every dead replica (whose recovery
    // scrubs its torn tail) and re-runs the idempotent recovery pass.
    macro_rules! failover_and_recover {
        ($from:expr) => {{
            let mut attempts = 0;
            loop {
                let result = log.elect().and_then(|_| {
                    recover(
                        &mut sim,
                        &mut log,
                        &directory,
                        &devices,
                        $from,
                        &mut fabric,
                        &policy,
                    )
                });
                match result {
                    Ok(recovery) => {
                        recovery_finished = Some(recovery.finished_at);
                        break;
                    }
                    // An undecodable committed log (bit rot replicated
                    // with checksums disabled) makes resolution
                    // impossible by construction — grading surfaces it
                    // as divergence; don't mask it as a harness error.
                    // Only the decode failure qualifies: a transient
                    // `NoLeader` between attempts must keep retrying.
                    Err(_)
                        if matches!(log.records(), Err(FlexError::Consensus(_))) =>
                    {
                        break
                    }
                    Err(_) if attempts < 3 => {
                        attempts += 1;
                        let cluster = log.cluster_mut();
                        for i in 0..CONTROLLERS {
                            if !cluster.is_alive(i) {
                                cluster.revive(i)?;
                            }
                        }
                        cluster.run_for(SimDuration::from_secs(1), SimDuration::from_millis(10));
                    }
                    Err(e) => return Err(e),
                }
            }
        }};
    }

    // -- the scenario act ------------------------------------------------
    match schedule.scenario {
        // The victim's WAL disk trips mid-append. A victim coordinator
        // surfaces it as a failed propose (crash + failover + recovery);
        // a victim follower self-crashes without acking. Either way the
        // node then recovers from its torn disk and must catch up.
        StorageScenario::CrashMidAppend => {
            let outcome = txn_act!(&targets_v2, v2(), SimTime::from_secs(1), None);
            if outcome.is_err() {
                failover_and_recover!(SimTime::from_secs(2));
            }
            let cluster = log.cluster_mut();
            if cluster.is_alive(schedule.victim) {
                cluster.kill(schedule.victim)?;
            }
            cluster.revive(schedule.victim)?;
            cluster.run_for(SimDuration::from_secs(2), SimDuration::from_millis(10));
        }

        // The E13 kill schedule composed with a tearing disk: the
        // transaction crashes at its scheduled phase, the leader dies,
        // and the victim's torn WAL tail must truncate cleanly on revive.
        StorageScenario::TornTailOnFailover => {
            let outcome = txn_act!(
                &targets_v2,
                v2(),
                SimTime::from_secs(1),
                Some(schedule.crash_phase)
            );
            // A victim *follower* whose disk tripped mid-append
            // self-crashed without acking. Bring it back through the
            // torn-tail scrub now, while a leader can still refill it —
            // the coming failover needs it as a voting majority member.
            {
                let cluster = log.cluster_mut();
                if !cluster.is_alive(schedule.victim) {
                    cluster.revive(schedule.victim)?;
                    cluster.run_for(SimDuration::from_secs(2), SimDuration::from_millis(10));
                }
            }
            let from = match outcome {
                Ok(report) => {
                    log.kill_leader()?;
                    report.finished_at + SimDuration::from_secs(1)
                }
                // The coordinator's own disk died before the scheduled
                // phase; it is already down.
                Err(_) => SimTime::from_secs(2),
            };
            failover_and_recover!(from);
            let cluster = log.cluster_mut();
            if cluster.is_alive(schedule.victim) {
                cluster.kill(schedule.victim)?;
            }
            cluster.revive(schedule.victim)?;
            cluster.run_for(SimDuration::from_secs(2), SimDuration::from_millis(10));
        }

        // Two clean transactions land, then a bit rots in the victim's
        // *cold* log (a record everyone already committed). With CRC on,
        // recovery truncates there and demotes the node to catch-up-only;
        // with CRC off the rot replays as garbage and the replica
        // diverges — the oracle arm requires exactly that.
        StorageScenario::BitRotInColdLog => {
            txn_act!(&targets_v2, v2(), SimTime::from_secs(1), None)?;
            txn_act!(&targets_v3, v3(), SimTime::from_secs(3), None)?;
            let cluster = log.cluster_mut();
            cluster.kill(schedule.victim)?;
            if cluster
                .storage_mut(schedule.victim)?
                .wal_mut()
                .rot_payload(1)
                .is_none()
            {
                violations.push("rot target record 1 missing from victim WAL".into());
            }
            cluster.revive(schedule.victim)?;
            cluster.run_for(SimDuration::from_secs(2), SimDuration::from_millis(10));
            // Failover pressure: the catch-up-only node must not block a
            // re-election once the leader has refilled it.
            log.kill_leader()?;
            log.elect()?;
        }

        // Two transactions, each followed by compaction, build two
        // snapshot generations on every node; then the victim's newest
        // snapshot rots. With CRC on, recovery falls back to the prior
        // generation plus a longer WAL tail; with CRC off the rotted
        // snapshot replays as garbage state.
        StorageScenario::RotInSnapshot => {
            txn_act!(&targets_v2, v2(), SimTime::from_secs(1), None)?;
            log.cluster_mut()
                .run_for(SimDuration::from_secs(1), SimDuration::from_millis(10));
            log.compact()?;
            txn_act!(&targets_v3, v3(), SimTime::from_secs(3), None)?;
            log.cluster_mut()
                .run_for(SimDuration::from_secs(1), SimDuration::from_millis(10));
            let second = log.compact()?;
            if !second.compacted.contains(&schedule.victim) {
                violations.push(format!(
                    "victim {} missing generation 2 (compacted {:?}, skipped {:?})",
                    schedule.victim, second.compacted, second.skipped
                ));
            }
            let cluster = log.cluster_mut();
            cluster.kill(schedule.victim)?;
            if !cluster.storage_mut(schedule.victim)?.snaps_mut().rot_latest() {
                violations.push("victim has no snapshot generation to rot".into());
            }
            cluster.revive(schedule.victim)?;
            cluster.run_for(SimDuration::from_secs(2), SimDuration::from_millis(10));
        }

        // The victim's snapshot disk is too small for any summary: its
        // compaction must be refused with a typed `NoSpace`, skipped
        // without touching the node, while the rest of the fleet
        // compacts and the cluster keeps committing.
        StorageScenario::NoSpaceDuringCompaction => {
            txn_act!(&targets_v2, v2(), SimTime::from_secs(1), None)?;
            log.cluster_mut()
                .run_for(SimDuration::from_secs(1), SimDuration::from_millis(10));
            let report = log.compact()?;
            if report.nospace == 0 {
                violations.push(format!(
                    "victim compaction was not refused with NoSpace (compacted {:?})",
                    report.compacted
                ));
            }
            if report.compacted.len() != CONTROLLERS - 1 {
                violations.push(format!(
                    "expected {} nodes compacted, got {:?} (skipped {:?})",
                    CONTROLLERS - 1,
                    report.compacted,
                    report.skipped
                ));
            }
            txn_act!(&targets_v3, v3(), SimTime::from_secs(3), None)?;
        }

        // Every disk fsyncs slowly. The full E13 crash/failover/recovery
        // drill runs on top, and the harness checks the latency was
        // actually charged to the durability path.
        StorageScenario::LaggingFsync => {
            let outcome = txn_act!(
                &targets_v2,
                v2(),
                SimTime::from_secs(1),
                Some(schedule.crash_phase)
            );
            let from = match outcome {
                Ok(report) => {
                    log.kill_leader()?;
                    report.finished_at + SimDuration::from_secs(1)
                }
                Err(_) => SimTime::from_secs(2),
            };
            failover_and_recover!(from);
        }
    }

    // -- heal the fleet and let replication settle -----------------------
    for i in 0..CONTROLLERS {
        if !log.cluster_mut().is_alive(i) {
            log.cluster_mut().revive(i)?;
        }
    }
    log.cluster_mut()
        .run_for(SimDuration::from_secs(2), SimDuration::from_millis(10));
    // Two jobs before grading. (1) A leader elected organically
    // mid-scenario may sit on a fully replicated but uncommitted
    // prior-term tail (Raft only commits old-term entries under an
    // own-term entry) — the barrier `elect` plays the no-op-on-election
    // rule and covers the tail. (2) A coordinator whose disk tripped
    // *while appending the terminal record* leaves a durable
    // `FlipScheduled` with flipped devices — by design the terminal
    // append is best-effort past the point of no return, and the
    // recovery sweep is the documented roll-forward. Both are idempotent,
    // so the sweep runs unconditionally.
    let sweep_from = recovery_finished.map_or(SimTime::from_secs(8), |t| {
        t.max(SimTime::from_secs(8))
    });
    failover_and_recover!(sweep_from);
    log.cluster_mut()
        .run_for(SimDuration::from_secs(1), SimDuration::from_millis(10));

    // -- grading: terminal transactions and the expected program ---------
    let mut diverged = false;
    let records = match log.records() {
        Ok(records) => records,
        Err(e) => {
            diverged = true;
            violations.push(format!("committed records undecodable: {e}"));
            Vec::new()
        }
    };
    let replay_records = records.len();
    let mut last_per_txn: BTreeMap<u64, &IntentRecord> = BTreeMap::new();
    for rec in &records {
        // Intended-state records are reconciliation targets, compaction
        // markers are allocator bookkeeping, rollout records belong to
        // the canary journal — none of them is a 2PC phase.
        if matches!(
            rec,
            IntentRecord::IntendedState { .. }
                | IntentRecord::Compacted { .. }
                | IntentRecord::RolloutStarted { .. }
                | IntentRecord::WaveCommitted { .. }
                | IntentRecord::RolloutAborted { .. }
                | IntentRecord::RolledBack { .. }
                | IntentRecord::RolloutCompleted { .. }
        ) {
            continue;
        }
        last_per_txn.insert(rec.txn(), rec);
    }
    for (txn, rec) in &last_per_txn {
        if !matches!(
            rec,
            IntentRecord::Committed { .. } | IntentRecord::Aborted { .. }
        ) {
            violations.push(format!("txn {txn} left unresolved: {rec:?}"));
        }
    }
    let mut want = v1();
    for (txn, bundle) in &txn_programs {
        if matches!(last_per_txn.get(txn), Some(IntentRecord::Committed { .. })) {
            want = bundle.clone();
        }
    }

    // -- grading: every live replica replays to the same state -----------
    let cluster = log.cluster_mut();
    let leader = cluster
        .leader()
        .ok_or_else(|| FlexError::Consensus(format!("seed {seed}: no leader after settling")))?;
    let leader_digest = match state_digest(&cluster.committed(leader)?) {
        Ok(digest) => Some(digest),
        Err(e) => {
            diverged = true;
            violations.push(format!("leader {leader} replays garbage: {e}"));
            None
        }
    };
    let leader_commit = cluster.commit_index(leader)?;
    for i in 0..CONTROLLERS {
        if !cluster.is_alive(i) || i == leader {
            continue;
        }
        let commit = cluster.commit_index(i)?;
        if commit < leader_commit {
            violations.push(format!(
                "node {i} commit {commit} never caught leader commit {leader_commit}"
            ));
            continue;
        }
        match state_digest(&cluster.committed(i)?) {
            Ok(digest) if Some(digest) == leader_digest => {}
            Ok(digest) => {
                diverged = true;
                violations.push(format!(
                    "node {i} replay digest {digest:016x} disagrees with leader"
                ));
            }
            Err(e) => {
                diverged = true;
                violations.push(format!("node {i} replays garbage: {e}"));
            }
        }
    }

    // -- grading: storage counters match the scenario's story ------------
    let mut counters = StorageCounters::default();
    for i in 0..CONTROLLERS {
        counters.merge(cluster.storage(i)?.counters());
    }
    if prot.crc_checks {
        match schedule.scenario {
            StorageScenario::CrashMidAppend => {
                if counters.torn_truncations == 0 {
                    violations.push("mid-append trip never produced a torn-tail truncation".into());
                }
            }
            StorageScenario::BitRotInColdLog => {
                if counters.checksum_truncations == 0 || counters.mid_log_rot == 0 {
                    violations.push(format!(
                        "cold-log rot not detected (checksum_truncations {}, mid_log_rot {})",
                        counters.checksum_truncations, counters.mid_log_rot
                    ));
                }
                if counters.catchup_demotions == 0 {
                    violations.push("cold-log rot did not demote the victim to catch-up".into());
                }
            }
            StorageScenario::RotInSnapshot => {
                if counters.snapshot_fallbacks == 0 {
                    violations.push("rotted snapshot never fell back a generation".into());
                }
            }
            StorageScenario::NoSpaceDuringCompaction => {
                if counters.nospace == 0 {
                    violations.push("capped snapshot disk never counted a NoSpace".into());
                }
            }
            StorageScenario::LaggingFsync => {
                if counters.fsync_lag == SimDuration::ZERO {
                    violations.push("lagging fsync charged no latency".into());
                }
            }
            StorageScenario::TornTailOnFailover => {}
        }
    }

    // -- the network converges on one program and still moves packets ----
    let settle = recovery_finished
        .map(|t| t + SimDuration::from_secs(2))
        .unwrap_or_default()
        .max(SimTime::from_secs(8));
    for d in devices {
        sim.topo
            .node_mut(d)
            .expect("device exists")
            .device
            .tick(settle);
    }
    for d in devices {
        let dev = &sim.topo.node(d).expect("device exists").device;
        if dev.reconfig_in_progress() {
            violations.push(format!("{d} still mid-reconfiguration after settling"));
        }
        match dev.program() {
            Some(p) if p.bundle == want => {}
            Some(_) => violations.push(format!("{d} runs the wrong program (mixed network)")),
            None => violations.push(format!("{d} lost its program entirely")),
        }
    }
    sim.load(generate(
        &[FlowSpec::udp_cbr(
            src_host,
            dst_host,
            1000,
            settle + SimDuration::from_millis(1),
            SimDuration::from_millis(200),
        )],
        seed,
    ));
    sim.run_to_completion();
    let delivered = sim.metrics.delivered;
    if delivered == 0 {
        violations.push("no post-scenario traffic delivered".into());
    }
    for d in devices {
        let versions = sim.metrics.versions_seen(d);
        if versions.len() > 1 {
            violations.push(format!(
                "{d} processed packets under {} different versions: old-XOR-new violated",
                versions.len()
            ));
        }
    }

    Ok(StorageReport {
        schedule,
        protections: prot,
        diverged,
        counters,
        delivered,
        replay_records,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal(seed: u64) -> SegmentedWal {
        SegmentedWal::new(SimDisk::with_plan(DiskFaultPlan::seeded(seed).tearing()), true)
    }

    #[test]
    fn scrub_accepts_a_clean_log_and_truncates_a_torn_tail() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_record(b"alpha"));
        bytes.extend_from_slice(&encode_record(b"beta"));
        let clean = scrub(&bytes, 0, true);
        assert_eq!(clean.payloads, vec![b"alpha".to_vec(), b"beta".to_vec()]);
        assert!(!clean.truncated);
        assert_eq!(clean.valid_bytes, bytes.len());

        // Tear the second record mid-payload: only the first survives.
        let torn = scrub(&bytes[..bytes.len() - 2], 0, true);
        assert_eq!(torn.payloads, vec![b"alpha".to_vec()]);
        assert!(torn.truncated);
        assert!(matches!(
            torn.fault,
            Some(StorageError::TornRecord { .. })
        ));
        assert!(!torn.mid_log);
    }

    #[test]
    fn scrub_flags_mid_log_rot_but_only_when_checksums_are_armed() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_record(b"record zero padded long"));
        let flip = bytes.len() - 3;
        bytes.extend_from_slice(&encode_record(b"record one"));
        bytes[flip] ^= 0x40; // rot inside record 0's payload

        let armed = scrub(&bytes, 0, true);
        assert!(armed.payloads.is_empty());
        assert!(armed.truncated);
        assert!(matches!(
            armed.fault,
            Some(StorageError::ChecksumFailed { .. })
        ));
        // A verifiable record sits after the corrupt one: rot, not tear.
        assert!(armed.mid_log);

        let disarmed = scrub(&bytes, 0, false);
        assert_eq!(disarmed.payloads.len(), 2);
        assert!(!disarmed.truncated);
    }

    #[test]
    fn segmented_wal_survives_crash_only_past_the_fsync_barrier() {
        let mut w = wal(7);
        w.append(b"first").unwrap();
        w.fsync().unwrap();
        w.append(b"second").unwrap();
        // No barrier for "second": the crash tears it away.
        w.crash();
        let outcome = w.recover();
        assert_eq!(outcome.payloads, vec![b"first".to_vec()]);
        assert_eq!(w.next_record(), 1);
    }

    #[test]
    fn delete_through_frees_whole_segments_and_keeps_the_tail() {
        let mut w = wal(11);
        for i in 0..20u8 {
            w.append(&[i]).unwrap();
        }
        w.fsync().unwrap();
        // Horizon 13 rounds down to the segment boundary at record 8.
        w.delete_through(13);
        assert_eq!(w.base_record(), 8);
        assert_eq!(w.next_record(), 20);
        let outcome = w.scrub();
        assert_eq!(outcome.payloads.len(), 12);
        assert_eq!(outcome.payloads[0], vec![8u8]);
    }

    #[test]
    fn snapshot_store_falls_back_past_a_rotted_generation() {
        let mut s = SnapshotStore::new(5, None, true);
        s.install(4, 2, &["a".into(), "b".into()]).unwrap();
        s.install(8, 3, &["a".into(), "b".into(), "c".into()]).unwrap();
        assert!(s.rot_latest());
        let (_gen, base, term, cmds, fallbacks) = s.load().expect("older generation verifies");
        assert_eq!((base, term, fallbacks), (4, 2, 1));
        assert_eq!(cmds, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(s.generations(), 2);
    }

    #[test]
    fn node_storage_recovers_hard_state_snapshot_and_tail() {
        let mut ns = NodeStorage::fault_free(21);
        ns.persist_hard(3, Some(1)).unwrap();
        ns.sync_log(0, &[(1, "one".into()), (1, "two".into()), (3, "three".into())])
            .unwrap();
        ns.compact_snapshot(2, 1, &["summary".into()]).unwrap();
        ns.crash();
        let state = ns.recover();
        assert_eq!(state.term, 3);
        assert_eq!(state.voted_for, Some(1));
        assert_eq!(state.base_index, 2);
        assert_eq!(state.base_term, 1);
        assert_eq!(state.snapshot_cmds, vec!["summary".to_string()]);
        assert_eq!(state.entries, vec![(3, "three".to_string())]);
        assert!(!state.needs_catchup);
    }

    #[test]
    fn mid_log_rot_demotes_recovery_to_catch_up_only() {
        let mut ns = NodeStorage::fault_free(22);
        ns.sync_log(
            0,
            &[
                (1, "committed long ago".into()),
                (1, "also cold data here".into()),
                (1, "the warm tail record".into()),
            ],
        )
        .unwrap();
        ns.crash();
        assert!(ns.wal_mut().rot_payload(0).is_some());
        let state = ns.recover();
        assert!(state.needs_catchup);
        assert!(state.entries.is_empty());
        assert_eq!(ns.counters().mid_log_rot, 1);
        assert_eq!(ns.counters().catchup_demotions, 1);
    }

    #[test]
    fn compaction_summary_replays_to_the_full_log_digest() {
        let records = vec![
            IntentRecord::Intent { txn: 1, devices: vec![4, 5] },
            IntentRecord::Prepared { txn: 1, devices: vec![4, 5] },
            IntentRecord::FlipScheduled { txn: 1, commit_at: SimTime::from_secs(1) },
            IntentRecord::IntendedState { txn: 1, device: 4, digest: 11 },
            IntentRecord::IntendedState { txn: 1, device: 5, digest: 12 },
            IntentRecord::Committed { txn: 1 },
            IntentRecord::IntendedState { txn: 2, device: 4, digest: 13 },
            IntentRecord::Intent { txn: 2, devices: vec![4] },
            IntentRecord::Prepared { txn: 2, devices: vec![4] },
        ];
        let summary = compact_records(&records);
        // The open txn 2 keeps its full history; txn 1 folds to its
        // terminal record; device 4's intended state keeps only digest 13.
        assert!(matches!(summary[0], IntentRecord::Compacted { txn: 2 }));
        assert_eq!(replay_digest(&summary), replay_digest(&records));
        // And compaction is idempotent under replay.
        assert_eq!(
            replay_digest(&compact_records(&summary)),
            replay_digest(&records)
        );
    }

    #[test]
    fn recovery_after_compaction_is_bounded_by_the_tail() {
        // The satellite-1 regression: after compaction, recovery replays
        // snapshot + tail, not the full history. Write many records, keep
        // a short tail, and pin the replayed entry count to the tail.
        let mut ns = NodeStorage::fault_free(33);
        let entries: Vec<(u64, String)> =
            (0..40).map(|i| (1, format!("intended 0 dev 4 digest {i}"))).collect();
        ns.sync_log(0, &entries).unwrap();
        ns.compact_snapshot(36, 1, &["intended 0 dev 4 digest 35".into()]).unwrap();
        ns.crash();
        let state = ns.recover();
        assert_eq!(state.base_index, 36);
        assert_eq!(state.entries.len(), 4, "recovery must replay only the tail");
        // The WAL holds at most the tail rounded up to a segment.
        assert!(ns.wal().next_record() - ns.wal().base_record() <= 8);
    }

    #[test]
    fn storage_seed_zero_passes_with_protections_on() {
        let report = run_storage_seed(0).expect("harness runs");
        assert!(report.passed(), "violations: {:?}", report.violations);
    }

    #[test]
    fn cold_log_rot_seed_diverges_with_checksums_off() {
        // Seed 2 is the pinned oracle: scenario BitRotInColdLog.
        let on = run_storage_seed(2).expect("harness runs");
        assert!(on.passed(), "violations: {:?}", on.violations);
        let off = run_storage_seed_with(2, StorageProtections { crc_checks: false })
            .expect("harness runs");
        assert!(off.diverged, "rot with CRC off must diverge");
    }
}
