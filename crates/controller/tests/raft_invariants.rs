//! Adversarial/invariant tests for the Raft controller cluster: election
//! safety (at most one leader per term), log-matching on committed
//! prefixes, and liveness under churn and loss.

use flexnet_controller::raft::{RaftCluster, Role};
use flexnet_types::SimDuration;
use proptest::prelude::*;

/// Committed prefixes across nodes must never conflict: one is a prefix of
/// the other.
fn assert_log_matching(c: &RaftCluster) {
    for i in 0..c.len() {
        for j in (i + 1)..c.len() {
            let a = c.committed(i).unwrap();
            let b = c.committed(j).unwrap();
            let n = a.len().min(b.len());
            assert_eq!(&a[..n], &b[..n], "committed prefixes diverge ({i} vs {j})");
        }
    }
}

#[test]
fn at_most_one_leader_per_term_over_long_run() {
    use std::collections::BTreeMap;
    let mut c = RaftCluster::new(5, 314);
    c.drop_prob = 0.1;
    let mut leaders_by_term: BTreeMap<u64, std::collections::BTreeSet<usize>> = BTreeMap::new();
    for step in 0..2_000 {
        c.step(SimDuration::from_millis(5));
        for i in 0..c.len() {
            if c.role(i) == Role::Leader {
                leaders_by_term.entry(c.term(i)).or_default().insert(i);
            }
        }
        // Periodic churn: kill and revive a rotating node.
        if step % 400 == 399 {
            let victim = (step / 400) % c.len();
            c.kill(victim).unwrap();
        }
        if step % 400 == 200 && step > 400 {
            let victim = ((step - 200) / 400) % c.len();
            c.revive(victim).unwrap();
        }
    }
    for (term, leaders) in &leaders_by_term {
        assert!(
            leaders.len() <= 1,
            "term {term} had multiple leaders: {leaders:?}"
        );
    }
    assert!(!leaders_by_term.is_empty(), "someone led at some point");
}

#[test]
fn committed_prefixes_never_diverge_under_churn() {
    let mut c = RaftCluster::new(5, 2718);
    c.drop_prob = 0.05;
    let mut proposed = 0;
    for round in 0..40 {
        c.run_for(SimDuration::from_millis(250), SimDuration::from_millis(10));
        if c.leader().is_some() {
            let _ = c.propose(&format!("cmd{proposed}"));
            proposed += 1;
        }
        assert_log_matching(&c);
        if round % 10 == 9 {
            if let Some(l) = c.leader() {
                c.kill(l).unwrap();
                c.run_for(SimDuration::from_secs(1), SimDuration::from_millis(10));
                c.revive(l).unwrap();
            }
        }
    }
    c.drop_prob = 0.0;
    c.run_for(SimDuration::from_secs(3), SimDuration::from_millis(10));
    assert_log_matching(&c);
    // Liveness: a healthy quiescent cluster converges on a sizable log.
    let leader = c.leader().expect("leader after recovery");
    assert!(
        c.committed(leader).unwrap().len() >= proposed / 2,
        "committed {} of {} proposals",
        c.committed(leader).unwrap().len(),
        proposed
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Elections succeed for any seed and moderate loss.
    #[test]
    fn election_liveness(seed in any::<u64>(), loss in 0u32..30) {
        let mut c = RaftCluster::new(5, seed);
        c.drop_prob = loss as f64 / 100.0;
        let leader = c.run_until_leader(SimDuration::from_secs(30));
        prop_assert!(leader.is_some(), "no leader with seed {seed} loss {loss}%");
    }

    /// A committed entry survives the crash of any minority subset.
    #[test]
    fn committed_entries_survive_minority_crash(
        seed in any::<u64>(),
        kill_mask in 0usize..5,
    ) {
        let mut c = RaftCluster::new(5, seed);
        c.run_until_leader(SimDuration::from_secs(10)).unwrap();
        c.propose("durable").unwrap();
        c.run_for(SimDuration::from_secs(1), SimDuration::from_millis(10));
        // Kill up to two nodes (a minority), chosen by the mask.
        let mut killed = 0;
        for i in 0..c.len() {
            if killed < 2 && (i + kill_mask) % 2 == 0 {
                c.kill(i).unwrap();
                killed += 1;
            }
        }
        c.run_for(SimDuration::from_secs(3), SimDuration::from_millis(10));
        let leader = c.leader().expect("majority keeps a leader");
        prop_assert!(c.committed(leader).unwrap().contains(&"durable".to_string()));
    }
}
