//! The chaos smoke suite: a fixed 25-seed slice of the E13 sweep, small
//! enough for CI, wide enough to cover every crash phase, victim
//! placement, and fabric-loss tier.
//!
//! Each seed expands deterministically into a full scenario (journaled
//! transaction → coordinator + optional device crash → failover →
//! recovery → zombie replay → live traffic), so a failure here reproduces
//! bit-identically with `run_chaos_seed(<seed>)`.

use flexnet_controller::chaos::run_chaos_seed;
use flexnet_sim::{ChaosSchedule, CrashPhase};

/// The pinned CI seed set. Contiguous so phase coverage is guaranteed
/// (seeds cycle phases mod 4); pinned so CI failures are reproducible
/// and not a lottery.
const SMOKE_SEEDS: [u64; 25] = [
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24,
];

#[test]
fn the_smoke_seed_set_covers_the_scenario_space() {
    let schedules: Vec<ChaosSchedule> = SMOKE_SEEDS
        .iter()
        .map(|&s| ChaosSchedule::from_seed(s, 3))
        .collect();
    for phase in CrashPhase::ALL {
        assert!(
            schedules.iter().any(|s| s.crash_phase == phase),
            "no smoke seed crashes {}",
            phase.label()
        );
    }
    assert!(
        schedules.iter().any(|s| s.victim.is_some()),
        "no smoke seed crashes a device"
    );
    assert!(
        schedules.iter().any(|s| s.victim.is_none()),
        "no smoke seed is coordinator-only"
    );
    assert!(
        schedules.iter().any(|s| s.fabric_loss > 0.0),
        "no smoke seed has a lossy fabric"
    );
}

#[test]
fn every_smoke_seed_upholds_every_invariant() {
    let mut failures = Vec::new();
    for &seed in &SMOKE_SEEDS {
        match run_chaos_seed(seed) {
            Ok(report) if report.passed() => {
                assert_eq!(
                    report.zombie_attempts, report.zombie_rejected,
                    "seed {seed}: zombie partially accepted"
                );
                assert!(
                    report.new_epoch > report.old_epoch,
                    "seed {seed}: epoch not monotone"
                );
            }
            Ok(report) => failures.push(format!(
                "seed {seed} ({}): {:?}",
                report.schedule.crash_phase.label(),
                report.violations
            )),
            Err(e) => failures.push(format!("seed {seed}: harness error: {e}")),
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} smoke seeds failed:\n{}",
        failures.len(),
        SMOKE_SEEDS.len(),
        failures.join("\n")
    );
}
