//! The chaos smoke suite: fixed seed slices of the E13, E14, and E15
//! sweeps, small enough for CI, wide enough to cover every crash phase,
//! victim placement, restart cohort, candidate fault class, and
//! fabric-loss tier.
//!
//! Each seed expands deterministically into a full scenario (E13:
//! journaled transaction → coordinator + optional device crash →
//! failover → recovery → zombie replay → live traffic; E14: device
//! restarts — sometimes mid-transaction — → flap detection →
//! rate-limited digest resync → convergence; E15: canary rollout of a
//! seeded-bad candidate → SLO guard breach → automatic rollback), so a
//! failure here reproduces bit-identically with `run_chaos_seed(<seed>)`,
//! `run_resync_seed(<seed>)`, or `run_canary_seed(<seed>)`.

use flexnet_controller::chaos::run_chaos_seed;
use flexnet_controller::resync::{run_resync_seed, ResyncOutcome};
use flexnet_controller::rollout::{run_canary_seed, RolloutOutcome};
use flexnet_sim::{ChaosSchedule, CrashPhase, RestartSchedule, RolloutFault, RolloutSchedule};

/// The pinned CI seed set. Contiguous so phase coverage is guaranteed
/// (seeds cycle phases mod 4); pinned so CI failures are reproducible
/// and not a lottery.
const SMOKE_SEEDS: [u64; 25] = [
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24,
];

#[test]
fn the_smoke_seed_set_covers_the_scenario_space() {
    let schedules: Vec<ChaosSchedule> = SMOKE_SEEDS
        .iter()
        .map(|&s| ChaosSchedule::from_seed(s, 3))
        .collect();
    for phase in CrashPhase::ALL {
        assert!(
            schedules.iter().any(|s| s.crash_phase == phase),
            "no smoke seed crashes {}",
            phase.label()
        );
    }
    assert!(
        schedules.iter().any(|s| s.victim.is_some()),
        "no smoke seed crashes a device"
    );
    assert!(
        schedules.iter().any(|s| s.victim.is_none()),
        "no smoke seed is coordinator-only"
    );
    assert!(
        schedules.iter().any(|s| s.fabric_loss > 0.0),
        "no smoke seed has a lossy fabric"
    );
}

#[test]
fn every_smoke_seed_upholds_every_invariant() {
    let mut failures = Vec::new();
    for &seed in &SMOKE_SEEDS {
        match run_chaos_seed(seed) {
            Ok(report) if report.passed() => {
                assert_eq!(
                    report.zombie_attempts, report.zombie_rejected,
                    "seed {seed}: zombie partially accepted"
                );
                assert!(
                    report.new_epoch > report.old_epoch,
                    "seed {seed}: epoch not monotone"
                );
            }
            Ok(report) => failures.push(format!(
                "seed {seed} ({}): {:?}",
                report.schedule.crash_phase.label(),
                report.violations
            )),
            Err(e) => failures.push(format!("seed {seed}: harness error: {e}")),
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} smoke seeds failed:\n{}",
        failures.len(),
        SMOKE_SEEDS.len(),
        failures.join("\n")
    );
}

/// The pinned E14 restart-smoke seed set. Contiguous so restart-cohort
/// coverage is guaranteed (cohorts cycle mod 3); 12 seeds keeps the
/// suite CI-sized while hitting every cohort, both fault timings
/// (steady-state and mid-transaction), and lossy fabrics.
const RESTART_SMOKE_SEEDS: [u64; 12] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];

#[test]
fn the_restart_smoke_seed_set_covers_the_scenario_space() {
    let schedules: Vec<RestartSchedule> = RESTART_SMOKE_SEEDS
        .iter()
        .map(|&s| RestartSchedule::from_seed(s, 3))
        .collect();
    for cohort in [1, 2, 3] {
        assert!(
            schedules.iter().any(|s| s.restarts == cohort),
            "no restart smoke seed restarts {cohort} device(s)"
        );
    }
    assert!(
        schedules.iter().any(|s| s.mid_txn),
        "no restart smoke seed restarts mid-transaction"
    );
    assert!(
        schedules.iter().any(|s| !s.mid_txn),
        "no restart smoke seed restarts in steady state"
    );
    assert!(
        schedules.iter().any(|s| s.fabric_loss > 0.0),
        "no restart smoke seed has a lossy fabric"
    );
}

#[test]
fn every_restart_smoke_seed_converges_with_every_invariant() {
    let mut failures = Vec::new();
    for &seed in &RESTART_SMOKE_SEEDS {
        match run_resync_seed(seed) {
            Ok(report) if report.passed() => {
                assert_eq!(
                    report.flapped.len(),
                    report.schedule.restarts,
                    "seed {seed}: every restarted device flaps exactly once"
                );
                let reprovisioned = report
                    .resyncs
                    .iter()
                    .filter(|r| matches!(r.outcome, ResyncOutcome::Reprovisioned { .. }))
                    .count();
                assert!(
                    reprovisioned >= report.schedule.restarts,
                    "seed {seed}: a restart wipes entries, so resync must \
                     re-provision (got {reprovisioned} of {})",
                    report.schedule.restarts
                );
                if report.schedule.mid_txn {
                    let rec = report.recovery.as_ref().expect("mid-txn runs recovery");
                    assert!(
                        rec.wiped_shadows >= report.schedule.restarts,
                        "seed {seed}: restarted participants lost their \
                         prepared shadows: {rec:?}"
                    );
                }
            }
            Ok(report) => failures.push(format!(
                "seed {seed} (restarts {}, mid_txn {}): {:?}",
                report.schedule.restarts, report.schedule.mid_txn, report.violations
            )),
            Err(e) => failures.push(format!("seed {seed}: harness error: {e}")),
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} restart smoke seeds failed:\n{}",
        failures.len(),
        RESTART_SMOKE_SEEDS.len(),
        failures.join("\n")
    );
}

/// The pinned E15 canary-smoke seed set. Contiguous so fault-class
/// coverage is guaranteed (classes cycle mod 5); 12 seeds keeps the
/// suite CI-sized while hitting every candidate class at least twice,
/// gray victims in more than one wave, and lossy control fabrics.
const CANARY_SMOKE_SEEDS: [u64; 12] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];

#[test]
fn the_canary_smoke_seed_set_covers_the_scenario_space() {
    let schedules: Vec<RolloutSchedule> = CANARY_SMOKE_SEEDS
        .iter()
        .map(|&s| RolloutSchedule::from_seed(s, 8))
        .collect();
    for fault in RolloutFault::ALL {
        assert!(
            schedules.iter().any(|s| s.fault == fault),
            "no canary smoke seed deploys a {} candidate",
            fault.label()
        );
    }
    assert!(
        schedules.iter().any(|s| s.gray_victim.is_some()),
        "no canary smoke seed places a gray build"
    );
    assert!(
        schedules.iter().any(|s| s.fabric_loss > 0.0),
        "no canary smoke seed has a lossy control fabric"
    );
}

#[test]
fn every_canary_smoke_seed_upholds_every_invariant() {
    let mut failures = Vec::new();
    for &seed in &CANARY_SMOKE_SEEDS {
        match run_canary_seed(seed) {
            Ok(report) if report.passed() => match report.schedule.fault {
                RolloutFault::Clean => {
                    assert_eq!(
                        report.rollout.outcome,
                        RolloutOutcome::Completed,
                        "seed {seed}: clean candidate must complete"
                    );
                    assert_eq!(report.lost, 0, "seed {seed}: clean rollout pays loss");
                }
                _ => {
                    assert!(
                        matches!(report.rollout.outcome, RolloutOutcome::RolledBack { .. }),
                        "seed {seed}: bad candidate must roll back"
                    );
                    assert!(
                        report.rollout.rollback_latency.is_some(),
                        "seed {seed}: rollback must report its latency"
                    );
                }
            },
            Ok(report) => failures.push(format!(
                "seed {seed} ({}): {:?}",
                report.schedule.fault.label(),
                report.violations
            )),
            Err(e) => failures.push(format!("seed {seed}: harness error: {e}")),
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} canary smoke seeds failed:\n{}",
        failures.len(),
        CANARY_SMOKE_SEEDS.len(),
        failures.join("\n")
    );
}
