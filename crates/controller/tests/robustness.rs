//! Deterministic integration tests for the ISSUE acceptance scenarios:
//!
//! (a) a device crash during the prepare phase of a transactional hitless
//!     reconfiguration aborts the transaction with zero packet loss and a
//!     full rollback on the surviving participants;
//! (b) after a controller-fabric partition heals, the failure detector
//!     recovers within a bounded time and control operations succeed again;
//! (c) dRPC invocations succeed under ≤30% control-message loss via
//!     retry with exponential backoff.

use flexnet_controller::core::{Controller, Health, HealthEvent};
use flexnet_controller::drpc::{ExecutionSite, ServiceRegistry};
use flexnet_controller::retry::{invoke_with_retry, LossyFabric, RetryPolicy};
use flexnet_controller::txn::{transactional_reconfig, TxnOutcome};
use flexnet_lang::diff::ProgramBundle;
use flexnet_lang::parser::parse_source;
use flexnet_sim::workload::{generate, FlowSpec};
use flexnet_sim::{Command, Simulation, Topology};
use flexnet_types::{NodeId, SimDuration, SimTime};

fn bundle(src: &str) -> ProgramBundle {
    let file = parse_source(src).unwrap();
    ProgramBundle {
        headers: file.headers,
        program: file.programs.into_iter().next().unwrap(),
    }
}

fn v1() -> ProgramBundle {
    bundle("program app kind any { handler ingress(pkt) { forward(0); } }")
}

fn v2() -> ProgramBundle {
    bundle(
        "program app kind any {
           counter c;
           handler ingress(pkt) { count(c); forward(0); }
         }",
    )
}

/// (a) Crash during prepare: the transaction aborts, live traffic sees
/// zero loss, and the surviving participant is rolled back exactly.
#[test]
fn crash_during_prepare_aborts_with_zero_packet_loss() {
    let (topo, sw, hosts) = Topology::single_switch(3);
    let mut sim = Simulation::new(topo);
    sim.schedule(
        SimTime::ZERO,
        Command::Install {
            node: sw,
            bundle: v1(),
        },
    );
    // 2 kpps from host 0 to host 1 for 2 s, through the switch.
    sim.load(generate(
        &[FlowSpec::udp_cbr(
            hosts[0],
            hosts[1],
            2000,
            SimTime::from_millis(1),
            SimDuration::from_secs(2),
        )],
        7,
    ));
    // Run the first half, then a bystander participant (host 2's device,
    // off the traffic path) crashes just before the transaction.
    sim.run(SimTime::from_secs(1));
    let t1 = SimTime::from_secs(1);
    sim.topo.node_mut(hosts[2]).unwrap().device.crash(t1);

    // Transactional reconfig spanning the switch and the crashed device:
    // the switch prepares its shadow, the crashed device fails prepare,
    // the coordinator rolls the switch back.
    let before = sim.topo.node(sw).unwrap().device.program().unwrap().clone();
    let version_before = sim.topo.node(sw).unwrap().device.version();
    let targets = vec![(sw, v2()), (hosts[2], v2())];
    let report = transactional_reconfig(&mut sim, &targets, t1);
    assert_eq!(report.outcome, TxnOutcome::Aborted);
    assert_eq!(report.prepared, 1, "only the switch prepared");
    assert!(report.reason.as_deref().unwrap().contains("unavailable"));
    let rollback = report.rollback_latency.unwrap();
    assert!(
        rollback <= SimDuration::from_millis(100),
        "rollback latency bounded, got {rollback}"
    );

    // The switch is exactly as before the transaction.
    let dev = &sim.topo.node(sw).unwrap().device;
    assert!(!dev.reconfig_in_progress());
    let after = dev.program().unwrap();
    assert_eq!(after.bundle, before.bundle, "program image restored");
    assert_eq!(dev.version(), version_before, "no version flip");

    // Traffic never noticed: every packet of the 2 s flow is delivered.
    sim.run_to_completion();
    assert_eq!(sim.metrics.total_lost(), 0, "{:?}", sim.metrics.losses);
    assert_eq!(sim.metrics.delivered, sim.metrics.sent);
}

/// (b) A controller-fabric partition makes every device look dead; once
/// the partition heals the detector recovers within one sweep period plus
/// `suspect_after`, and transactional control works again.
#[test]
fn partition_heal_recovers_within_bound() {
    let (topo, sw, _hosts) = Topology::single_switch(2);
    let mut sim = Simulation::new(topo);
    sim.topo.node_mut(sw).unwrap().device.install(v1()).unwrap();
    let infra = bundle(
        "program infra kind switch {
           service provide migrate_state(dst: u32);
           handler ingress(pkt) { forward(0); }
         }",
    );
    let mut c = Controller::new(infra, sw, SimTime::ZERO).unwrap();

    let period = SimDuration::from_millis(50);
    let heal_at = SimTime::from_secs(2);
    let mut healthy = LossyFabric::reliable();
    let mut partitioned = LossyFabric::new(1.0, 5);
    let mut dead_seen_at = None;
    let mut recovered_at = None;
    let mut t = SimTime::ZERO;
    while t < SimTime::from_secs(3) {
        // The partition swallows every heartbeat during [1 s, 2 s).
        let partitioned_now = t >= SimTime::from_secs(1) && t < heal_at;
        let fabric = if partitioned_now {
            &mut partitioned
        } else {
            &mut healthy
        };
        for (node, event) in c.sweep_heartbeats(&sim, fabric, t) {
            if node == sw && event == HealthEvent::Graded(Health::Dead) {
                dead_seen_at.get_or_insert(t);
            }
            if node == sw && event == HealthEvent::Graded(Health::Healthy) && dead_seen_at.is_some()
            {
                recovered_at.get_or_insert(t);
            }
        }
        t += period;
    }
    let dead_seen_at = dead_seen_at.expect("partitioned switch declared dead");
    assert!(
        dead_seen_at < heal_at,
        "death detected during the partition"
    );
    let recovered_at = recovered_at.expect("switch recovered after heal");
    let recovery = recovered_at.saturating_since(heal_at);
    assert!(
        recovery <= period + SimDuration::from_millis(150),
        "recovery bounded by one sweep + suspect window, got {recovery}"
    );

    // Control works again after the heal: a transaction commits.
    let report = transactional_reconfig(&mut sim, &[(sw, v2())], recovered_at);
    assert_eq!(report.outcome, TxnOutcome::Committed);
}

/// (c) dRPC with retry/backoff succeeds despite 30% message loss.
#[test]
fn drpc_survives_30_percent_message_loss() {
    let mut reg = ServiceRegistry::new();
    reg.register("migrate_state", NodeId(0), 1, ExecutionSite::DataPlane)
        .unwrap();
    let mut fabric = LossyFabric::new(0.3, 2024);
    let policy = RetryPolicy {
        max_attempts: 16,
        deadline: SimDuration::from_secs(120),
        ..RetryPolicy::default()
    };
    let mut retried = 0u32;
    for i in 0..500u64 {
        let out = invoke_with_retry(
            &mut reg,
            &mut fabric,
            &policy,
            "migrate_state",
            NodeId(1),
            &[i],
            2,
            SimTime::from_millis(i),
        );
        assert!(out.is_ok(), "call {i} failed: {:?}", out.result);
        if out.attempts > 1 {
            retried += 1;
        }
    }
    assert!(retried > 100, "loss forced retries ({retried} calls retried)");
    let seen = fabric.dropped as f64 / (fabric.dropped + fabric.delivered) as f64;
    assert!((0.25..0.35).contains(&seen), "observed loss rate {seen}");
}
