//! The FlexBPF type checker.
//!
//! FlexBPF has a deliberately small type system — packet fields, map values,
//! registers, and locals are unsigned integers of declared widths; conditions
//! are booleans produced by comparisons and logical operators. The checker
//! validates that every name resolves (headers, fields, state, tables,
//! services, locals), that state objects are used according to their kind
//! (you can't `count()` a map), and that booleans and integers don't mix.
//!
//! Keeping the language "analyzable to certify bounded execution \[and\]
//! well-behavedness" (paper §3.1) starts here: anything the checker admits
//! has fully resolved, kind-correct state access, which the verifier and
//! compiler build on.

use crate::ast::*;
use crate::headers::HeaderRegistry;
use flexnet_types::{FlexError, Result};
use std::collections::BTreeMap;

/// The type of a FlexBPF expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// An unsigned integer (widths are advisory; arithmetic is u64).
    Int,
    /// A boolean, produced by comparisons/logical ops and `valid()`.
    Bool,
}

/// Type-checks `program` against the given header registry.
pub fn check_program(program: &Program, headers: &HeaderRegistry) -> Result<()> {
    Checker::new(program, headers)?.check()
}

/// Convenience: checks a whole source file (registering its header decls).
pub fn check_source(file: &SourceFile) -> Result<()> {
    let registry = HeaderRegistry::with_user_headers(&file.headers)?;
    for p in &file.programs {
        check_program(p, &registry)?;
    }
    Ok(())
}

struct Checker<'a> {
    program: &'a Program,
    headers: &'a HeaderRegistry,
}

impl<'a> Checker<'a> {
    fn new(program: &'a Program, headers: &'a HeaderRegistry) -> Result<Checker<'a>> {
        Ok(Checker { program, headers })
    }

    fn check(&self) -> Result<()> {
        self.check_unique_names()?;
        for t in &self.program.tables {
            self.check_table(t)?;
        }
        for h in &self.program.handlers {
            let mut scope = Scope::default();
            self.check_block(&h.body, &mut scope)
                .map_err(|e| prefix(e, &format!("handler `{}`", h.name)))?;
        }
        Ok(())
    }

    fn check_unique_names(&self) -> Result<()> {
        let mut seen = BTreeMap::new();
        for s in &self.program.states {
            if seen.insert(s.name.clone(), "state").is_some() {
                return Err(FlexError::Type(format!("duplicate name `{}`", s.name)));
            }
        }
        for t in &self.program.tables {
            if seen.insert(t.name.clone(), "table").is_some() {
                return Err(FlexError::Type(format!("duplicate name `{}`", t.name)));
            }
        }
        for svc in &self.program.services {
            if seen.insert(svc.name.clone(), "service").is_some() {
                return Err(FlexError::Type(format!("duplicate name `{}`", svc.name)));
            }
        }
        let mut handlers = BTreeMap::new();
        for h in &self.program.handlers {
            if handlers.insert(h.name.clone(), ()).is_some() {
                return Err(FlexError::Type(format!(
                    "duplicate handler `{}`",
                    h.name
                )));
            }
        }
        Ok(())
    }

    fn state(&self, name: &str) -> Result<&StateDecl> {
        self.program
            .state(name)
            .ok_or_else(|| FlexError::Type(format!("unknown state object `{name}`")))
    }

    fn expect_state_kind(
        &self,
        name: &str,
        want: &str,
        pred: impl Fn(&StateKind) -> bool,
    ) -> Result<&StateDecl> {
        let s = self.state(name)?;
        if !pred(&s.kind) {
            return Err(FlexError::Type(format!(
                "state `{name}` is not a {want}"
            )));
        }
        Ok(s)
    }

    fn check_field(&self, path: &FieldPath) -> Result<()> {
        match path {
            FieldPath::Header(proto, field) => {
                if !self.headers.has_proto(proto) {
                    return Err(FlexError::Type(format!("unknown protocol `{proto}`")));
                }
                if self.headers.field(proto, field).is_none() {
                    return Err(FlexError::Type(format!(
                        "protocol `{proto}` has no field `{field}`"
                    )));
                }
                Ok(())
            }
            // Metadata slots are dynamically created integer scratch.
            FieldPath::Meta(_) => Ok(()),
        }
    }

    fn check_table(&self, t: &TableDecl) -> Result<()> {
        if t.size == 0 {
            return Err(FlexError::Type(format!("table `{}` has size 0", t.name)));
        }
        if t.keys.is_empty() {
            return Err(FlexError::Type(format!(
                "table `{}` declares no keys",
                t.name
            )));
        }
        for k in &t.keys {
            self.check_field(&k.field)
                .map_err(|e| prefix(e, &format!("table `{}`", t.name)))?;
        }
        let mut action_names = BTreeMap::new();
        for a in &t.actions {
            if action_names.insert(a.name.clone(), ()).is_some() {
                return Err(FlexError::Type(format!(
                    "table `{}` declares action `{}` twice",
                    t.name, a.name
                )));
            }
            let mut scope = Scope::default();
            for (p, _) in &a.params {
                scope.declare(p, Ty::Int)?;
            }
            self.check_block(&a.body, &mut scope)
                .map_err(|e| prefix(e, &format!("action `{}.{}`", t.name, a.name)))?;
        }
        if let Some(d) = &t.default_action {
            let Some(decl) = t.action(&d.action) else {
                return Err(FlexError::Type(format!(
                    "table `{}` default action `{}` is not declared",
                    t.name, d.action
                )));
            };
            if decl.params.len() != d.args.len() {
                return Err(FlexError::Type(format!(
                    "table `{}` default `{}` takes {} args, {} given",
                    t.name,
                    d.action,
                    decl.params.len(),
                    d.args.len()
                )));
            }
        }
        Ok(())
    }

    fn check_block(&self, block: &Block, scope: &mut Scope) -> Result<()> {
        scope.push();
        for stmt in block {
            self.check_stmt(stmt, scope)?;
        }
        scope.pop();
        Ok(())
    }

    fn check_stmt(&self, stmt: &Stmt, scope: &mut Scope) -> Result<()> {
        match stmt {
            Stmt::Let(n, e) => {
                let ty = self.check_expr(e, scope)?;
                scope.declare(n, ty)
            }
            Stmt::AssignLocal(n, e) => {
                let ty = self.check_expr(e, scope)?;
                let declared = scope
                    .lookup(n)
                    .ok_or_else(|| FlexError::Type(format!("unknown local `{n}`")))?;
                if declared != ty {
                    return Err(FlexError::Type(format!(
                        "local `{n}` was {declared:?}, assigned {ty:?}"
                    )));
                }
                Ok(())
            }
            Stmt::AssignField(p, e) => {
                self.check_field(p)?;
                self.expect_int(e, scope, "field assignment")
            }
            Stmt::MapPut(m, k, v) => {
                self.expect_state_kind(m, "map", |k| matches!(k, StateKind::Map { .. }))?;
                self.expect_int(k, scope, "map key")?;
                self.expect_int(v, scope, "map value")
            }
            Stmt::MapDelete(m, k) => {
                self.expect_state_kind(m, "map", |k| matches!(k, StateKind::Map { .. }))?;
                self.expect_int(k, scope, "map key")
            }
            Stmt::RegWrite(r, i, v) => {
                self.expect_state_kind(r, "register", |k| {
                    matches!(k, StateKind::Register { .. })
                })?;
                self.expect_int(i, scope, "register index")?;
                self.expect_int(v, scope, "register value")
            }
            Stmt::Count(c) => {
                self.expect_state_kind(c, "counter", |k| matches!(k, StateKind::Counter))?;
                Ok(())
            }
            Stmt::If(cond, then, els) => {
                let t = self.check_expr(cond, scope)?;
                if t != Ty::Bool {
                    return Err(FlexError::Type(
                        "if condition must be boolean".to_string(),
                    ));
                }
                self.check_block(then, scope)?;
                self.check_block(els, scope)
            }
            Stmt::Repeat(n, body) => {
                if *n == 0 {
                    return Err(FlexError::Type("repeat count must be >= 1".to_string()));
                }
                self.check_block(body, scope)
            }
            Stmt::Apply(t) => {
                if self.program.table(t).is_none() {
                    return Err(FlexError::Type(format!("unknown table `{t}`")));
                }
                Ok(())
            }
            Stmt::Forward(e) => self.expect_int(e, scope, "forward port"),
            Stmt::Drop | Stmt::Punt | Stmt::Recirculate | Stmt::Return => Ok(()),
            Stmt::Invoke(s, args) => {
                let Some(svc) = self.program.services.iter().find(|x| x.name == *s) else {
                    return Err(FlexError::Type(format!("unknown service `{s}`")));
                };
                if svc.params.len() != args.len() {
                    return Err(FlexError::Type(format!(
                        "service `{s}` takes {} args, {} given",
                        svc.params.len(),
                        args.len()
                    )));
                }
                for a in args {
                    self.expect_int(a, scope, "service argument")?;
                }
                Ok(())
            }
            Stmt::AddHeader(p) | Stmt::RemoveHeader(p) => {
                if !self.headers.has_proto(p) {
                    return Err(FlexError::Type(format!("unknown protocol `{p}`")));
                }
                Ok(())
            }
        }
    }

    fn expect_int(&self, e: &Expr, scope: &Scope, what: &str) -> Result<()> {
        match self.check_expr(e, scope)? {
            Ty::Int => Ok(()),
            Ty::Bool => Err(FlexError::Type(format!("{what} must be an integer"))),
        }
    }

    fn check_expr(&self, e: &Expr, scope: &Scope) -> Result<Ty> {
        match e {
            Expr::Int(_) | Expr::PktLen => Ok(Ty::Int),
            Expr::Local(n) => scope
                .lookup(n)
                .ok_or_else(|| FlexError::Type(format!("unknown local `{n}`"))),
            Expr::Field(p) => {
                self.check_field(p)?;
                Ok(Ty::Int)
            }
            Expr::Valid(p) => {
                if !self.headers.has_proto(p) {
                    return Err(FlexError::Type(format!("unknown protocol `{p}`")));
                }
                Ok(Ty::Bool)
            }
            Expr::MapGet(m, k) => {
                self.expect_state_kind(m, "map", |k| matches!(k, StateKind::Map { .. }))?;
                self.expect_int(k, scope, "map key")?;
                Ok(Ty::Int)
            }
            Expr::MapHas(m, k) => {
                self.expect_state_kind(m, "map", |k| matches!(k, StateKind::Map { .. }))?;
                self.expect_int(k, scope, "map key")?;
                Ok(Ty::Bool)
            }
            Expr::RegRead(r, i) => {
                self.expect_state_kind(r, "register", |k| {
                    matches!(k, StateKind::Register { .. })
                })?;
                self.expect_int(i, scope, "register index")?;
                Ok(Ty::Int)
            }
            Expr::CounterRead(c) => {
                self.expect_state_kind(c, "counter", |k| matches!(k, StateKind::Counter))?;
                Ok(Ty::Int)
            }
            Expr::MeterCheck(m, k) => {
                self.expect_state_kind(m, "meter", |k| matches!(k, StateKind::Meter { .. }))?;
                self.expect_int(k, scope, "meter key")?;
                Ok(Ty::Bool)
            }
            Expr::Hash(args) => {
                if args.is_empty() {
                    return Err(FlexError::Type("hash() needs at least one argument".into()));
                }
                for a in args {
                    self.expect_int(a, scope, "hash argument")?;
                }
                Ok(Ty::Int)
            }
            Expr::Bin(op, l, r) => {
                let lt = self.check_expr(l, scope)?;
                let rt = self.check_expr(r, scope)?;
                if op.is_logical() {
                    if lt != Ty::Bool || rt != Ty::Bool {
                        return Err(FlexError::Type(format!(
                            "`{}` requires boolean operands",
                            op.symbol()
                        )));
                    }
                    Ok(Ty::Bool)
                } else if op.is_comparison() {
                    if lt != Ty::Int || rt != Ty::Int {
                        return Err(FlexError::Type(format!(
                            "`{}` requires integer operands",
                            op.symbol()
                        )));
                    }
                    Ok(Ty::Bool)
                } else {
                    if lt != Ty::Int || rt != Ty::Int {
                        return Err(FlexError::Type(format!(
                            "`{}` requires integer operands",
                            op.symbol()
                        )));
                    }
                    Ok(Ty::Int)
                }
            }
            Expr::Un(op, v) => {
                let t = self.check_expr(v, scope)?;
                match op {
                    UnOp::Not => {
                        if t != Ty::Bool {
                            return Err(FlexError::Type("`!` requires a boolean".into()));
                        }
                        Ok(Ty::Bool)
                    }
                    UnOp::BitNot | UnOp::Neg => {
                        if t != Ty::Int {
                            return Err(FlexError::Type("`~`/`-` require integers".into()));
                        }
                        Ok(Ty::Int)
                    }
                }
            }
        }
    }
}

fn prefix(e: FlexError, ctx: &str) -> FlexError {
    match e {
        FlexError::Type(m) => FlexError::Type(format!("in {ctx}: {m}")),
        other => other,
    }
}

/// A lexical scope stack for locals.
#[derive(Default)]
struct Scope {
    frames: Vec<BTreeMap<String, Ty>>,
}

impl Scope {
    fn push(&mut self) {
        self.frames.push(BTreeMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn declare(&mut self, name: &str, ty: Ty) -> Result<()> {
        if self.lookup(name).is_some() {
            return Err(FlexError::Type(format!(
                "local `{name}` is already declared (shadowing is not allowed)"
            )));
        }
        if self.frames.is_empty() {
            self.frames.push(BTreeMap::new());
        }
        self.frames
            .last_mut()
            .expect("frame pushed above")
            .insert(name.to_string(), ty);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Ty> {
        self.frames.iter().rev().find_map(|f| f.get(name).copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_source};

    fn check(src: &str) -> Result<()> {
        let file = parse_source(src)?;
        check_source(&file)
    }

    #[test]
    fn accepts_well_typed_program() {
        check(
            "program ok kind switch {
               map m : map<u32, u8>[16];
               counter c;
               register r : u64[8];
               meter lim rate 100 burst 10;
               table t {
                 key { ipv4.src : exact; }
                 action a(port: u16) { forward(port); }
                 default a(1);
                 size 8;
               }
               handler ingress(pkt) {
                 let x = map_get(m, ipv4.src) + 1;
                 if (x > 3 && valid(tcp)) {
                   map_put(m, ipv4.src, x);
                   reg_write(r, 0, reg_read(r, 0) + 1);
                   count(c);
                 }
                 if (!meter_check(lim, ipv4.src)) { drop(); }
                 apply t;
               }
             }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_unknown_names() {
        assert!(check("program p { handler h(pkt) { apply nope; } }").is_err());
        assert!(check("program p { handler h(pkt) { count(nope); } }").is_err());
        assert!(check("program p { handler h(pkt) { let x = map_get(nope, 1); } }").is_err());
        assert!(check("program p { handler h(pkt) { let x = ipv9.src; } }").is_err());
        assert!(check("program p { handler h(pkt) { let x = ipv4.nofield; } }").is_err());
        assert!(check("program p { handler h(pkt) { invoke nosvc(1); } }").is_err());
    }

    #[test]
    fn rejects_kind_confusion() {
        // counting a map
        assert!(check(
            "program p { map m : map<u32,u8>[4]; handler h(pkt) { count(m); } }"
        )
        .is_err());
        // reading a counter as a register
        assert!(check(
            "program p { counter c; handler h(pkt) { let x = reg_read(c, 0); } }"
        )
        .is_err());
    }

    #[test]
    fn rejects_bool_int_mixing() {
        assert!(check("program p { handler h(pkt) { if (1 + 2) { drop(); } } }").is_err());
        assert!(check("program p { handler h(pkt) { forward(1 == 1); } }").is_err());
        assert!(check("program p { handler h(pkt) { let x = valid(ipv4) + 1; } }").is_err());
        assert!(check("program p { handler h(pkt) { let x = !3; } }").is_err());
        assert!(
            check("program p { handler h(pkt) { let b = 1 == 1; let y = ~b; } }").is_err()
        );
    }

    #[test]
    fn rejects_duplicate_names() {
        assert!(check("program p { counter c; counter c; }").is_err());
        assert!(check(
            "program p { handler h(pkt) { drop(); } handler h(pkt) { drop(); } }"
        )
        .is_err());
        assert!(check(
            "program p { counter x; table x { key { ipv4.src : exact; } size 4; } }"
        )
        .is_err());
    }

    #[test]
    fn rejects_shadowing_and_type_changing_assignment() {
        assert!(check("program p { handler h(pkt) { let x = 1; let x = 2; } }").is_err());
        assert!(
            check("program p { handler h(pkt) { let x = 1; x = 1 == 1; } }").is_err()
        );
        assert!(check("program p { handler h(pkt) { x = 1; } }").is_err());
    }

    #[test]
    fn block_scoping_drops_locals() {
        // `y` declared inside the if-body is not visible after it.
        assert!(check(
            "program p { handler h(pkt) {
               if (valid(ipv4)) { let y = 1; }
               forward(y);
             } }"
        )
        .is_err());
    }

    #[test]
    fn table_validation() {
        assert!(check("program p { table t { key { ipv4.src : exact; } size 0; } }").is_err());
        assert!(check("program p { table t { size 4; } }").is_err(), "no keys");
        assert!(check(
            "program p { table t { key { ipv4.src : exact; }
               action a() { drop(); } action a() { drop(); } size 4; } }"
        )
        .is_err());
        assert!(check(
            "program p { table t { key { ipv4.src : exact; }
               action a(x: u16) { forward(x); } default a(); size 4; } }"
        )
        .is_err());
        assert!(check(
            "program p { table t { key { ipv4.src : exact; } default nope(); size 4; } }"
        )
        .is_err());
    }

    #[test]
    fn service_arity_checked() {
        assert!(check(
            "program p { service require s(a: u32, b: u32);
               handler h(pkt) { invoke s(1); } }"
        )
        .is_err());
    }

    #[test]
    fn user_headers_become_known() {
        check(
            "header vxlan { fields { vni: 24; } follows udp when udp.dport == 4789; }
             program p { handler h(pkt) { if (valid(vxlan)) { let v = vxlan.vni; } } }",
        )
        .unwrap();
    }

    #[test]
    fn action_params_usable_in_bodies() {
        let p = parse_program(
            "program p { table t { key { ipv4.src : exact; }
               action set(port: u16, mark: u32) { meta.m = mark; forward(port); }
               size 4; } }",
        )
        .unwrap();
        check_program(&p, &HeaderRegistry::builtins()).unwrap();
    }

    #[test]
    fn repeat_zero_rejected() {
        // Parses (it's an INT token) but the checker rejects it.
        assert!(check("program p { handler h(pkt) { repeat (0) { drop(); } } }").is_err());
    }

    #[test]
    fn hash_requires_args() {
        assert!(check("program p { handler h(pkt) { let x = hash(); } }").is_err());
        check("program p { handler h(pkt) { let x = hash(ipv4.src, ipv4.dst); } }").unwrap();
    }
}
