//! The FlexBPF lexer.
//!
//! Hand-rolled, position-tracking, with `//` line comments and `/* */`
//! block comments. Produces a flat `Vec<Token>` terminated by `Eof`.

use crate::token::{Token, TokenKind};
use flexnet_types::{FlexError, Result};

/// Lexes FlexBPF (or FlexBPF-patch) source text into tokens.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($kind:expr, $l:expr, $c:expr) => {
            tokens.push(Token {
                kind: $kind,
                line: $l,
                col: $c,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tl, tc) = (line, col);
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                i += 2;
                col += 2;
                let mut closed = false;
                while i + 1 < bytes.len() {
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        col += 2;
                        closed = true;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
                if !closed {
                    return Err(FlexError::parse(tl, tc, "unterminated block comment"));
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                col += 1;
                let mut closed = false;
                while i < bytes.len() {
                    let ch = bytes[i] as char;
                    i += 1;
                    col += 1;
                    if ch == '"' {
                        closed = true;
                        break;
                    }
                    if ch == '\n' {
                        return Err(FlexError::parse(tl, tc, "newline in string literal"));
                    }
                    s.push(ch);
                }
                if !closed {
                    return Err(FlexError::parse(tl, tc, "unterminated string literal"));
                }
                push!(TokenKind::Str(s), tl, tc);
            }
            '0'..='9' => {
                let start = i;
                let value = if c == '0' && i + 1 < bytes.len() && (bytes[i + 1] | 32) == b'x' {
                    i += 2;
                    let hex_start = i;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
                        i += 1;
                    }
                    if i == hex_start {
                        return Err(FlexError::parse(tl, tc, "hex literal with no digits"));
                    }
                    u64::from_str_radix(&src[hex_start..i], 16)
                        .map_err(|_| FlexError::parse(tl, tc, "hex literal out of range"))?
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    src[start..i]
                        .parse::<u64>()
                        .map_err(|_| FlexError::parse(tl, tc, "integer literal out of range"))?
                };
                if i < bytes.len() && (bytes[i].is_ascii_alphabetic() || bytes[i] == b'_') {
                    return Err(FlexError::parse(
                        tl,
                        tc,
                        "identifier may not start with a digit",
                    ));
                }
                col += (i - start) as u32;
                push!(TokenKind::Int(value), tl, tc);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                col += (i - start) as u32;
                push!(TokenKind::Ident(src[start..i].to_string()), tl, tc);
            }
            _ => {
                // Two-character operator lookahead on raw bytes: slicing the
                // &str here would panic on multi-byte UTF-8 input.
                let two: &[u8] = if i + 1 < bytes.len() {
                    &bytes[i..i + 2]
                } else {
                    &[]
                };
                let (kind, width) = match two {
                    b"==" => (TokenKind::Eq, 2),
                    b"!=" => (TokenKind::Ne, 2),
                    b"<=" => (TokenKind::Le, 2),
                    b">=" => (TokenKind::Ge, 2),
                    b"&&" => (TokenKind::AndAnd, 2),
                    b"||" => (TokenKind::OrOr, 2),
                    b"<<" => (TokenKind::Shl, 2),
                    b">>" => (TokenKind::Shr, 2),
                    _ => match c {
                        '{' => (TokenKind::LBrace, 1),
                        '}' => (TokenKind::RBrace, 1),
                        '(' => (TokenKind::LParen, 1),
                        ')' => (TokenKind::RParen, 1),
                        '[' => (TokenKind::LBracket, 1),
                        ']' => (TokenKind::RBracket, 1),
                        ';' => (TokenKind::Semi, 1),
                        ':' => (TokenKind::Colon, 1),
                        ',' => (TokenKind::Comma, 1),
                        '.' => (TokenKind::Dot, 1),
                        '=' => (TokenKind::Assign, 1),
                        '<' => (TokenKind::Lt, 1),
                        '>' => (TokenKind::Gt, 1),
                        '+' => (TokenKind::Plus, 1),
                        '-' => (TokenKind::Minus, 1),
                        '*' => (TokenKind::Star, 1),
                        '/' => (TokenKind::Slash, 1),
                        '%' => (TokenKind::Percent, 1),
                        '&' => (TokenKind::Amp, 1),
                        '|' => (TokenKind::Pipe, 1),
                        '^' => (TokenKind::Caret, 1),
                        '~' => (TokenKind::Tilde, 1),
                        '!' => (TokenKind::Bang, 1),
                        other => {
                            return Err(FlexError::parse(
                                tl,
                                tc,
                                format!("unexpected character `{other}`"),
                            ))
                        }
                    },
                };
                i += width;
                col += width as u32;
                push!(kind, tl, tc);
            }
        }
    }
    push!(TokenKind::Eof, line, col);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_idents_and_ints() {
        assert_eq!(
            kinds("foo 42 0x1f"),
            vec![
                TokenKind::Ident("foo".into()),
                TokenKind::Int(42),
                TokenKind::Int(0x1f),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators_greedily() {
        assert_eq!(
            kinds("== != <= >= && || << >>"),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::AndAnd,
                TokenKind::OrOr,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn single_char_fallbacks() {
        assert_eq!(
            kinds("< > = & |"),
            vec![
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Assign,
                TokenKind::Amp,
                TokenKind::Pipe,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // comment\nb /* multi\nline */ c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_literals() {
        assert_eq!(
            kinds(r#"matching "acl*""#),
            vec![
                TokenKind::Ident("matching".into()),
                TokenKind::Str("acl*".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("a\n  @").unwrap_err();
        match err {
            flexnet_types::FlexError::Parse { line, col, .. } => {
                assert_eq!((line, col), (2, 3));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_unterminated_constructs() {
        assert!(lex("/* never closed").is_err());
        assert!(lex("\"never closed").is_err());
        assert!(lex("\"newline\nin string\"").is_err());
    }

    #[test]
    fn rejects_digit_prefixed_ident_and_bad_hex() {
        assert!(lex("1abc").is_err());
        assert!(lex("0x").is_err());
    }

    #[test]
    fn lexes_hex_upper_and_lower() {
        assert_eq!(kinds("0XFF")[0], TokenKind::Int(255));
        assert_eq!(kinds("0xff")[0], TokenKind::Int(255));
    }
}
