//! # flexnet-lang — the FlexBPF language
//!
//! Paper §3.1 envisions "a domain-specific language that mixes match/action-
//! style packet processing and eBPF-style offloads, which we will call
//! FlexBPF", whose programs "express programmable congestion control,
//! transport protocols, constrained higher-layer offloads, and packet-
//! processing pipelines", exposing "a logical and constrained form of
//! network state, organized in key/value maps", and "analyzable to certify
//! bounded execution \[and\] well-behavedness".
//!
//! This crate is that language:
//!
//! - [`lexer`] / [`parser`] / [`ast`] — the FlexBPF surface syntax.
//! - [`headers`] — the protocol/header-type registry (builtins + user
//!   declarations consumed by runtime parser reconfiguration).
//! - [`typecheck`] — name resolution and the int/bool type discipline.
//! - [`verifier`] — bounded-execution certification, register-index safety
//!   via interval analysis, and per-packet op bounds.
//! - [`interp`] — the reference interpreter, executing handlers against an
//!   [`interp::ExecEnv`] provided by each device model.
//! - [`bytecode`] — the fast path: install-time lowering to flat,
//!   slot-resolved instructions executed against a [`bytecode::SlotEnv`].
//! - [`ir`] — decomposition into placeable elements with resource demands.
//! - [`diff`] — program diffing into runtime [`diff::ReconfigOp`]s.
//! - [`patch`] — the incremental-change DSL (paper §3.2).
//! - [`compose`] — tenant datapath composition with VLAN isolation, access
//!   control, sharing, and conflict detection (paper §3.2).
//!
//! ## Quick example
//!
//! ```
//! use flexnet_lang::prelude::*;
//!
//! let src = r#"
//!     program firewall kind switch {
//!       map blocked : map<u32, u8>[1024];
//!       handler ingress(pkt) {
//!         if (map_get(blocked, ipv4.src) == 1) { drop(); }
//!         forward(1);
//!       }
//!     }
//! "#;
//! let program = parse_program(src).unwrap();
//! let headers = HeaderRegistry::builtins();
//! check_program(&program, &headers).unwrap();
//! let report = verify_program(&program, &headers).unwrap();
//! assert!(report.max_ops > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod bytecode;
pub mod compose;
pub mod diff;
pub mod headers;
pub mod interp;
pub mod ir;
pub mod lexer;
pub mod parser;
pub mod patch;
pub mod token;
pub mod typecheck;
pub mod verifier;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::ast::{Program, ProgramKind, SourceFile};
    pub use crate::bytecode::{
        compile, compile_with_program_slots, execute_compiled, execute_compiled_at,
        execute_compiled_metered, execute_compiled_vector, CompiledProgram, SlotEnv, SlotResolver,
        SymbolKind, VmScratch,
    };
    pub use crate::compose::{compose, TenantExtension};
    pub use crate::diff::{diff_bundles, ProgramBundle, ReconfigOp};
    pub use crate::headers::HeaderRegistry;
    pub use crate::interp::{
        execute, execute_metered, ExecEnv, ExecOutcome, MemEnv, GAS_UNLIMITED,
        MAX_TABLE_KEY_WIDTH,
    };
    pub use crate::ir::IrProgram;
    pub use crate::parser::{parse_program, parse_source};
    pub use crate::patch::{apply_patch, parse_patch, Patch};
    pub use crate::typecheck::check_program;
    pub use crate::verifier::{verify_program, VerifyReport};
}
