//! The FlexBPF parser: a hand-written recursive-descent parser with
//! precedence climbing for expressions.
//!
//! Grammar sketch (see `ast.rs` for node meanings):
//!
//! ```text
//! file        := (header_decl | program)*
//! header_decl := "header" NAME "{" "fields" "{" (NAME ":" INT ";")* "}"
//!                  [ "follows" NAME "when" NAME "." NAME "==" INT ";" ] "}"
//! program     := "program" NAME [ "kind" NAME ] "{" item* "}"
//! item        := map | counter | register | meter | service | table | handler
//! stmt        := let | if | repeat | apply | drop | forward | punt | …
//! ```

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Token, TokenKind};
use flexnet_types::{FlexError, Result};

/// Parses a FlexBPF source file (headers + programs).
pub fn parse_source(src: &str) -> Result<SourceFile> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    p.parse_file()
}

/// Parses a source that must contain exactly one program (headers allowed).
pub fn parse_program(src: &str) -> Result<Program> {
    let file = parse_source(src)?;
    match file.programs.len() {
        1 => Ok(file.programs.into_iter().next().expect("len checked")),
        n => Err(FlexError::parse(
            1,
            1,
            format!("expected exactly one program, found {n}"),
        )),
    }
}

pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(tokens: Vec<Token>) -> Parser {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn error_here(&self, msg: impl Into<String>) -> FlexError {
        let t = self.peek();
        FlexError::parse(t.line, t.col, msg.into())
    }

    pub(crate) fn expect(&mut self, kind: &TokenKind) -> Result<Token> {
        if &self.peek().kind == kind {
            Ok(self.advance())
        } else {
            Err(self.error_here(format!("expected {kind}, found {}", self.peek().kind)))
        }
    }

    /// Consumes an identifier token (any word), returning its text.
    pub(crate) fn ident(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(self.error_here(format!("expected identifier, found {other}"))),
        }
    }

    /// Consumes a specific keyword (an identifier with exact text).
    pub(crate) fn keyword(&mut self, kw: &str) -> Result<()> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s == kw => {
                self.advance();
                Ok(())
            }
            other => Err(self.error_here(format!("expected `{kw}`, found {other}"))),
        }
    }

    /// True (and consumes) when the next token is the given keyword.
    pub(crate) fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    pub(crate) fn int(&mut self) -> Result<u64> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.advance();
                Ok(v)
            }
            ref other => Err(self.error_here(format!("expected integer, found {other}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s == kw)
    }

    pub(crate) fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    // -- file ---------------------------------------------------------------

    fn parse_file(&mut self) -> Result<SourceFile> {
        let mut file = SourceFile::default();
        while !self.at_eof() {
            if self.at_keyword("header") {
                file.headers.push(self.parse_header_decl()?);
            } else if self.at_keyword("program") {
                file.programs.push(self.parse_program_decl()?);
            } else {
                return Err(self.error_here(format!(
                    "expected `header` or `program`, found {}",
                    self.peek().kind
                )));
            }
        }
        Ok(file)
    }

    pub(crate) fn parse_header_decl(&mut self) -> Result<HeaderDecl> {
        self.keyword("header")?;
        let name = self.ident()?;
        self.expect(&TokenKind::LBrace)?;
        self.keyword("fields")?;
        self.expect(&TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let fname = self.ident()?;
            self.expect(&TokenKind::Colon)?;
            let width = self.int()?;
            if width == 0 || width > 64 {
                return Err(self.error_here("field width must be 1..=64 bits"));
            }
            self.expect(&TokenKind::Semi)?;
            fields.push(FieldDecl {
                name: fname,
                width: width as u8,
            });
        }
        let follows = if self.at_keyword("follows") {
            self.keyword("follows")?;
            let prev = self.ident()?;
            self.keyword("when")?;
            let sel_proto = self.ident()?;
            self.expect(&TokenKind::Dot)?;
            let sel_field = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            let value = self.int()?;
            self.expect(&TokenKind::Semi)?;
            if sel_proto != prev {
                return Err(self.error_here(format!(
                    "follows clause must select on the predecessor `{prev}`, found `{sel_proto}`"
                )));
            }
            Some(FollowsClause {
                prev_proto: prev,
                select_field: sel_field,
                value,
            })
        } else {
            None
        };
        self.expect(&TokenKind::RBrace)?;
        Ok(HeaderDecl {
            name,
            fields,
            follows,
        })
    }

    fn parse_program_decl(&mut self) -> Result<Program> {
        self.keyword("program")?;
        let name = self.ident()?;
        let kind = if self.eat_keyword("kind") {
            match self.ident()?.as_str() {
                "switch" => ProgramKind::Switch,
                "nic" => ProgramKind::Nic,
                "host" => ProgramKind::Host,
                "any" => ProgramKind::Any,
                other => {
                    return Err(self.error_here(format!(
                        "unknown program kind `{other}` (expected switch/nic/host/any)"
                    )))
                }
            }
        } else {
            ProgramKind::Any
        };
        self.expect(&TokenKind::LBrace)?;
        let mut program = Program::empty(&name, kind);
        while !self.eat(&TokenKind::RBrace) {
            if let Some(state) = self.try_parse_state_decl()? {
                program.states.push(state);
            } else if self.at_keyword("service") {
                program.services.push(self.parse_service_decl()?);
            } else if self.at_keyword("table") {
                program.tables.push(self.parse_table_decl()?);
            } else if self.at_keyword("handler") {
                program.handlers.push(self.parse_handler()?);
            } else {
                return Err(self.error_here(format!(
                    "expected a program item, found {}",
                    self.peek().kind
                )));
            }
        }
        Ok(program)
    }

    /// Parses a state declaration when the cursor is on one of the state
    /// keywords (`map`/`counter`/`register`/`meter`); `Ok(None)` otherwise.
    /// Shared between the program parser and the patch DSL parser.
    pub(crate) fn try_parse_state_decl(&mut self) -> Result<Option<StateDecl>> {
        if self.at_keyword("map") {
            return Ok(Some(self.parse_map_decl()?));
        }
        if self.at_keyword("counter") {
            self.keyword("counter")?;
            let n = self.ident()?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Some(StateDecl {
                name: n,
                kind: StateKind::Counter,
                size: 1,
            }));
        }
        if self.at_keyword("register") {
            self.keyword("register")?;
            let n = self.ident()?;
            self.expect(&TokenKind::Colon)?;
            let width = self.parse_width_ty()?;
            self.expect(&TokenKind::LBracket)?;
            let size = self.int()?;
            self.expect(&TokenKind::RBracket)?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Some(StateDecl {
                name: n,
                kind: StateKind::Register { width },
                size,
            }));
        }
        if self.at_keyword("meter") {
            self.keyword("meter")?;
            let n = self.ident()?;
            self.keyword("rate")?;
            let rate = self.int()?;
            self.keyword("burst")?;
            let burst = self.int()?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Some(StateDecl {
                name: n,
                kind: StateKind::Meter {
                    rate_pps: rate,
                    burst,
                },
                size: 1,
            }));
        }
        Ok(None)
    }

    fn parse_map_decl(&mut self) -> Result<StateDecl> {
        self.keyword("map")?;
        let name = self.ident()?;
        self.expect(&TokenKind::Colon)?;
        self.keyword("map")?;
        self.expect(&TokenKind::Lt)?;
        let key_width = self.parse_width_ty()?;
        self.expect(&TokenKind::Comma)?;
        let value_width = self.parse_width_ty()?;
        self.expect(&TokenKind::Gt)?;
        self.expect(&TokenKind::LBracket)?;
        let size = self.int()?;
        self.expect(&TokenKind::RBracket)?;
        self.expect(&TokenKind::Semi)?;
        Ok(StateDecl {
            name,
            kind: StateKind::Map {
                key_width,
                value_width,
            },
            size,
        })
    }

    fn parse_width_ty(&mut self) -> Result<u8> {
        let t = self.ident()?;
        match t.as_str() {
            "u8" => Ok(8),
            "u16" => Ok(16),
            "u32" => Ok(32),
            "u64" => Ok(64),
            other => Err(self.error_here(format!(
                "unknown type `{other}` (expected u8/u16/u32/u64)"
            ))),
        }
    }

    fn parse_params(&mut self) -> Result<Vec<(String, u8)>> {
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let n = self.ident()?;
                self.expect(&TokenKind::Colon)?;
                let w = self.parse_width_ty()?;
                params.push((n, w));
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(&TokenKind::Comma)?;
            }
        }
        Ok(params)
    }

    pub(crate) fn parse_service_decl(&mut self) -> Result<ServiceDecl> {
        self.keyword("service")?;
        let provided = if self.eat_keyword("provide") {
            true
        } else {
            self.keyword("require")?;
            false
        };
        let name = self.ident()?;
        let params = self.parse_params()?;
        self.expect(&TokenKind::Semi)?;
        Ok(ServiceDecl {
            name,
            params,
            provided,
        })
    }

    /// Consumes a string literal token.
    pub(crate) fn string(&mut self) -> Result<String> {
        match &self.peek().kind {
            TokenKind::Str(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(self.error_here(format!("expected string literal, found {other}"))),
        }
    }

    /// Peeks the text of the next token when it is an identifier.
    pub(crate) fn peek_ident(&self) -> Option<String> {
        match &self.peek().kind {
            TokenKind::Ident(s) => Some(s.clone()),
            _ => None,
        }
    }

    pub(crate) fn parse_table_decl(&mut self) -> Result<TableDecl> {
        self.keyword("table")?;
        let name = self.ident()?;
        let mut decl = self.parse_table_body()?;
        decl.name = name;
        Ok(decl)
    }

    /// Parses a table body `{ key … actions … }` with a placeholder name —
    /// shared with the patch DSL, which parses the name and an optional
    /// position itself.
    pub(crate) fn parse_table_body(&mut self) -> Result<TableDecl> {
        let name = String::new();
        self.expect(&TokenKind::LBrace)?;
        let mut keys = Vec::new();
        let mut actions = Vec::new();
        let mut default_action = None;
        let mut size = 64u64;
        while !self.eat(&TokenKind::RBrace) {
            if self.at_keyword("key") {
                self.keyword("key")?;
                self.expect(&TokenKind::LBrace)?;
                while !self.eat(&TokenKind::RBrace) {
                    let field = self.parse_field_path()?;
                    self.expect(&TokenKind::Colon)?;
                    let mk = match self.ident()?.as_str() {
                        "exact" => MatchKind::Exact,
                        "lpm" => MatchKind::Lpm,
                        "ternary" => MatchKind::Ternary,
                        "range" => MatchKind::Range,
                        other => {
                            return Err(self.error_here(format!(
                                "unknown match kind `{other}`"
                            )))
                        }
                    };
                    self.expect(&TokenKind::Semi)?;
                    keys.push(TableKey {
                        field,
                        match_kind: mk,
                    });
                }
            } else if self.at_keyword("action") {
                self.keyword("action")?;
                let aname = self.ident()?;
                let params = self.parse_params()?;
                let body = self.parse_block()?;
                actions.push(ActionDecl {
                    name: aname,
                    params,
                    body,
                });
            } else if self.at_keyword("default") {
                self.keyword("default")?;
                let aname = self.ident()?;
                self.expect(&TokenKind::LParen)?;
                let mut args = Vec::new();
                if !self.eat(&TokenKind::RParen) {
                    loop {
                        args.push(self.int()?);
                        if self.eat(&TokenKind::RParen) {
                            break;
                        }
                        self.expect(&TokenKind::Comma)?;
                    }
                }
                self.expect(&TokenKind::Semi)?;
                default_action = Some(ActionCall {
                    action: aname,
                    args,
                });
            } else if self.at_keyword("size") {
                self.keyword("size")?;
                size = self.int()?;
                self.expect(&TokenKind::Semi)?;
            } else {
                return Err(self.error_here(format!(
                    "expected key/action/default/size in table, found {}",
                    self.peek().kind
                )));
            }
        }
        Ok(TableDecl {
            name,
            keys,
            actions,
            default_action,
            size,
        })
    }

    pub(crate) fn parse_handler(&mut self) -> Result<Handler> {
        self.keyword("handler")?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let _pkt = self.ident()?; // conventionally `pkt`; name is ignored
        self.expect(&TokenKind::RParen)?;
        let body = self.parse_block()?;
        Ok(Handler { name, body })
    }

    pub(crate) fn parse_block(&mut self) -> Result<Block> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            stmts.push(self.parse_stmt()?);
        }
        Ok(stmts)
    }

    fn parse_field_path(&mut self) -> Result<FieldPath> {
        let proto = self.ident()?;
        self.expect(&TokenKind::Dot)?;
        let field = self.ident()?;
        Ok(if proto == "meta" {
            FieldPath::Meta(field)
        } else {
            FieldPath::Header(proto, field)
        })
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        // Keyword statements first.
        if self.at_keyword("let") {
            self.keyword("let")?;
            let n = self.ident()?;
            self.expect(&TokenKind::Assign)?;
            let e = self.parse_expr()?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::Let(n, e));
        }
        if self.at_keyword("if") {
            self.keyword("if")?;
            self.expect(&TokenKind::LParen)?;
            let cond = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
            let then = self.parse_block()?;
            let els = if self.eat_keyword("else") {
                if self.at_keyword("if") {
                    vec![self.parse_stmt()?]
                } else {
                    self.parse_block()?
                }
            } else {
                Vec::new()
            };
            return Ok(Stmt::If(cond, then, els));
        }
        if self.at_keyword("repeat") {
            self.keyword("repeat")?;
            self.expect(&TokenKind::LParen)?;
            let n = self.int()?;
            self.expect(&TokenKind::RParen)?;
            let body = self.parse_block()?;
            return Ok(Stmt::Repeat(n, body));
        }
        if self.at_keyword("apply") {
            self.keyword("apply")?;
            let t = self.ident()?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::Apply(t));
        }
        if self.at_keyword("drop") {
            self.keyword("drop")?;
            self.expect(&TokenKind::LParen)?;
            self.expect(&TokenKind::RParen)?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::Drop);
        }
        if self.at_keyword("forward") {
            self.keyword("forward")?;
            self.expect(&TokenKind::LParen)?;
            let e = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::Forward(e));
        }
        if self.at_keyword("punt") {
            self.keyword("punt")?;
            self.expect(&TokenKind::LParen)?;
            self.expect(&TokenKind::RParen)?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::Punt);
        }
        if self.at_keyword("recirculate") {
            self.keyword("recirculate")?;
            self.expect(&TokenKind::LParen)?;
            self.expect(&TokenKind::RParen)?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::Recirculate);
        }
        if self.at_keyword("count") {
            self.keyword("count")?;
            self.expect(&TokenKind::LParen)?;
            let c = self.ident()?;
            self.expect(&TokenKind::RParen)?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::Count(c));
        }
        if self.at_keyword("map_put") {
            self.keyword("map_put")?;
            self.expect(&TokenKind::LParen)?;
            let m = self.ident()?;
            self.expect(&TokenKind::Comma)?;
            let k = self.parse_expr()?;
            self.expect(&TokenKind::Comma)?;
            let v = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::MapPut(m, k, v));
        }
        if self.at_keyword("map_del") {
            self.keyword("map_del")?;
            self.expect(&TokenKind::LParen)?;
            let m = self.ident()?;
            self.expect(&TokenKind::Comma)?;
            let k = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::MapDelete(m, k));
        }
        if self.at_keyword("reg_write") {
            self.keyword("reg_write")?;
            self.expect(&TokenKind::LParen)?;
            let r = self.ident()?;
            self.expect(&TokenKind::Comma)?;
            let i = self.parse_expr()?;
            self.expect(&TokenKind::Comma)?;
            let v = self.parse_expr()?;
            self.expect(&TokenKind::RParen)?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::RegWrite(r, i, v));
        }
        if self.at_keyword("invoke") {
            self.keyword("invoke")?;
            let s = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let mut args = Vec::new();
            if !self.eat(&TokenKind::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if self.eat(&TokenKind::RParen) {
                        break;
                    }
                    self.expect(&TokenKind::Comma)?;
                }
            }
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::Invoke(s, args));
        }
        if self.at_keyword("add_header") {
            self.keyword("add_header")?;
            self.expect(&TokenKind::LParen)?;
            let p = self.ident()?;
            self.expect(&TokenKind::RParen)?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::AddHeader(p));
        }
        if self.at_keyword("remove_header") {
            self.keyword("remove_header")?;
            self.expect(&TokenKind::LParen)?;
            let p = self.ident()?;
            self.expect(&TokenKind::RParen)?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::RemoveHeader(p));
        }
        if self.at_keyword("return") {
            self.keyword("return")?;
            self.expect(&TokenKind::Semi)?;
            return Ok(Stmt::Return);
        }
        // Assignments: `proto.field = e;` or `local = e;`
        if matches!(self.peek().kind, TokenKind::Ident(_)) {
            if self.peek2() == &TokenKind::Dot {
                let path = self.parse_field_path()?;
                self.expect(&TokenKind::Assign)?;
                let e = self.parse_expr()?;
                self.expect(&TokenKind::Semi)?;
                return Ok(Stmt::AssignField(path, e));
            }
            if self.peek2() == &TokenKind::Assign {
                let n = self.ident()?;
                self.expect(&TokenKind::Assign)?;
                let e = self.parse_expr()?;
                self.expect(&TokenKind::Semi)?;
                return Ok(Stmt::AssignLocal(n, e));
            }
        }
        Err(self.error_here(format!(
            "expected a statement, found {}",
            self.peek().kind
        )))
    }

    // -- expressions ----------------------------------------------------------

    pub(crate) fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_bin(0)
    }

    /// Operator precedence, lowest first.
    fn bin_op_at(&self, min_prec: u8) -> Option<(BinOp, u8)> {
        let (op, prec) = match self.peek().kind {
            TokenKind::OrOr => (BinOp::LOr, 1),
            TokenKind::AndAnd => (BinOp::LAnd, 2),
            TokenKind::Pipe => (BinOp::Or, 3),
            TokenKind::Caret => (BinOp::Xor, 4),
            TokenKind::Amp => (BinOp::And, 5),
            TokenKind::Eq => (BinOp::Eq, 6),
            TokenKind::Ne => (BinOp::Ne, 6),
            TokenKind::Lt => (BinOp::Lt, 7),
            TokenKind::Le => (BinOp::Le, 7),
            TokenKind::Gt => (BinOp::Gt, 7),
            TokenKind::Ge => (BinOp::Ge, 7),
            TokenKind::Shl => (BinOp::Shl, 8),
            TokenKind::Shr => (BinOp::Shr, 8),
            TokenKind::Plus => (BinOp::Add, 9),
            TokenKind::Minus => (BinOp::Sub, 9),
            TokenKind::Star => (BinOp::Mul, 10),
            TokenKind::Slash => (BinOp::Div, 10),
            TokenKind::Percent => (BinOp::Mod, 10),
            _ => return None,
        };
        (prec >= min_prec).then_some((op, prec))
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        while let Some((op, prec)) = self.bin_op_at(min_prec) {
            self.advance();
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        match self.peek().kind {
            TokenKind::Bang => {
                self.advance();
                Ok(Expr::Un(UnOp::Not, Box::new(self.parse_unary()?)))
            }
            TokenKind::Tilde => {
                self.advance();
                Ok(Expr::Un(UnOp::BitNot, Box::new(self.parse_unary()?)))
            }
            TokenKind::Minus => {
                self.advance();
                Ok(Expr::Un(UnOp::Neg, Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().kind.clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(Expr::Int(v))
            }
            TokenKind::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                // Builtin call forms.
                match name.as_str() {
                    "valid" => {
                        self.advance();
                        self.expect(&TokenKind::LParen)?;
                        let p = self.ident()?;
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Expr::Valid(p));
                    }
                    "map_get" | "map_has" | "reg_read" | "meter_check" => {
                        self.advance();
                        self.expect(&TokenKind::LParen)?;
                        let obj = self.ident()?;
                        self.expect(&TokenKind::Comma)?;
                        let arg = self.parse_expr()?;
                        self.expect(&TokenKind::RParen)?;
                        return Ok(match name.as_str() {
                            "map_get" => Expr::MapGet(obj, Box::new(arg)),
                            "map_has" => Expr::MapHas(obj, Box::new(arg)),
                            "reg_read" => Expr::RegRead(obj, Box::new(arg)),
                            _ => Expr::MeterCheck(obj, Box::new(arg)),
                        });
                    }
                    "counter_read" => {
                        self.advance();
                        self.expect(&TokenKind::LParen)?;
                        let c = self.ident()?;
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Expr::CounterRead(c));
                    }
                    "hash" => {
                        self.advance();
                        self.expect(&TokenKind::LParen)?;
                        let mut args = Vec::new();
                        if !self.eat(&TokenKind::RParen) {
                            loop {
                                args.push(self.parse_expr()?);
                                if self.eat(&TokenKind::RParen) {
                                    break;
                                }
                                self.expect(&TokenKind::Comma)?;
                            }
                        }
                        return Ok(Expr::Hash(args));
                    }
                    "pktlen" => {
                        self.advance();
                        self.expect(&TokenKind::LParen)?;
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Expr::PktLen);
                    }
                    _ => {}
                }
                // Field path or bare local.
                if self.peek2() == &TokenKind::Dot {
                    let path = self.parse_field_path()?;
                    Ok(Expr::Field(path))
                } else {
                    self.advance();
                    Ok(Expr::Local(name))
                }
            }
            ref other => Err(self.error_here(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIREWALL: &str = r#"
        header vxlan {
          fields { flags: 8; vni: 24; }
          follows udp when udp.dport == 4789;
        }

        program firewall kind switch {
          map blocked : map<u32, u8>[1024];
          counter dropped;
          register last_seen : u64[4096];
          meter limiter rate 10000 burst 100;
          service require migrate_state(dst: u32);

          table acl {
            key { ipv4.src : exact; ipv4.dst : lpm; }
            action drop_pkt() { count(dropped); drop(); }
            action set_port(port: u16) { forward(port); }
            default set_port(1);
            size 256;
          }

          handler ingress(pkt) {
            if (valid(ipv4)) {
              if (map_get(blocked, ipv4.src) == 1) {
                count(dropped);
                drop();
              }
              apply acl;
            }
            forward(1);
          }
        }
    "#;

    #[test]
    fn parses_full_firewall() {
        let file = parse_source(FIREWALL).unwrap();
        assert_eq!(file.headers.len(), 1);
        assert_eq!(file.programs.len(), 1);
        let p = &file.programs[0];
        assert_eq!(p.name, "firewall");
        assert_eq!(p.kind, ProgramKind::Switch);
        assert_eq!(p.states.len(), 4);
        assert_eq!(p.tables.len(), 1);
        assert_eq!(p.services.len(), 1);
        let t = p.table("acl").unwrap();
        assert_eq!(t.keys.len(), 2);
        assert_eq!(t.keys[1].match_kind, MatchKind::Lpm);
        assert_eq!(t.size, 256);
        assert_eq!(t.actions.len(), 2);
        assert_eq!(
            t.default_action,
            Some(ActionCall {
                action: "set_port".into(),
                args: vec![1]
            })
        );
    }

    #[test]
    fn header_decl_follows_clause() {
        let file = parse_source(FIREWALL).unwrap();
        let h = &file.headers[0];
        assert_eq!(h.name, "vxlan");
        assert_eq!(h.fields.len(), 2);
        assert_eq!(
            h.follows,
            Some(FollowsClause {
                prev_proto: "udp".into(),
                select_field: "dport".into(),
                value: 4789
            })
        );
    }

    #[test]
    fn round_trips_through_pretty_printer() {
        let file = parse_source(FIREWALL).unwrap();
        let printed = file.to_source();
        let reparsed = parse_source(&printed).unwrap();
        assert_eq!(file, reparsed);
    }

    #[test]
    fn expression_precedence() {
        let p = parse_program(
            "program t { handler h(pkt) { let x = 1 + 2 * 3 == 7 && valid(ipv4); } }",
        )
        .unwrap();
        let Stmt::Let(_, e) = &p.handlers[0].body[0] else {
            panic!("expected let");
        };
        // (&& ((1 + (2*3)) == 7) valid(ipv4))
        let Expr::Bin(BinOp::LAnd, l, r) = e else {
            panic!("expected && at top: {e:?}");
        };
        assert!(matches!(**r, Expr::Valid(_)));
        let Expr::Bin(BinOp::Eq, ll, _) = &**l else {
            panic!("expected == under &&");
        };
        let Expr::Bin(BinOp::Add, _, mul) = &**ll else {
            panic!("expected + under ==");
        };
        assert!(matches!(**mul, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn else_if_chains() {
        let p = parse_program(
            "program t { handler h(pkt) {
                if (1 == 1) { drop(); } else if (2 == 2) { punt(); } else { forward(1); }
             } }",
        )
        .unwrap();
        let Stmt::If(_, _, els) = &p.handlers[0].body[0] else {
            panic!()
        };
        assert_eq!(els.len(), 1);
        assert!(matches!(&els[0], Stmt::If(_, _, e2) if e2.len() == 1));
    }

    #[test]
    fn meta_fields_parse_as_meta() {
        let p = parse_program(
            "program t { handler h(pkt) { meta.mark = 1; let x = meta.mark; } }",
        )
        .unwrap();
        assert!(matches!(
            &p.handlers[0].body[0],
            Stmt::AssignField(FieldPath::Meta(f), _) if f == "mark"
        ));
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = parse_source("program p {\n  bogus item;\n}").unwrap_err();
        match err {
            FlexError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_multi_program_in_parse_program() {
        assert!(parse_program("program a {} program b {}").is_err());
        assert!(parse_program("").is_err());
    }

    #[test]
    fn rejects_bad_header_widths_and_kinds() {
        assert!(parse_source("header h { fields { x: 0; } }").is_err());
        assert!(parse_source("header h { fields { x: 65; } }").is_err());
        assert!(parse_source("program p kind quantum {}").is_err());
    }

    #[test]
    fn rejects_follows_on_wrong_proto() {
        let src = "header h { fields { x: 8; } follows udp when tcp.dport == 1; }";
        assert!(parse_source(src).is_err());
    }

    #[test]
    fn repeat_and_registers() {
        let p = parse_program(
            "program t { register r : u32[8]; handler h(pkt) {
               repeat (4) { reg_write(r, 0, reg_read(r, 0) + 1); }
             } }",
        )
        .unwrap();
        let Stmt::Repeat(4, body) = &p.handlers[0].body[0] else {
            panic!()
        };
        assert!(matches!(&body[0], Stmt::RegWrite(..)));
    }

    #[test]
    fn invoke_and_header_ops() {
        let p = parse_program(
            "program t { service require mig(dst: u32); handler h(pkt) {
               invoke mig(3);
               add_header(vlan);
               remove_header(vlan);
               return;
             } }",
        )
        .unwrap();
        assert_eq!(p.handlers[0].body.len(), 4);
        assert!(matches!(&p.handlers[0].body[0], Stmt::Invoke(s, a) if s == "mig" && a.len() == 1));
    }

    #[test]
    fn unary_operators_nest() {
        let p = parse_program("program t { handler h(pkt) { let x = !~-1; } }").unwrap();
        let Stmt::Let(_, e) = &p.handlers[0].body[0] else {
            panic!()
        };
        assert!(matches!(e, Expr::Un(UnOp::Not, _)));
    }
}
