//! The header-type registry.
//!
//! FlexBPF is protocol-independent: besides a small set of built-in header
//! types (Ethernet, VLAN, IPv4, TCP, UDP), programs bring their own `header`
//! declarations, and runtime parser reconfiguration (paper §2) installs or
//! removes them on live devices. The registry is the single source of truth
//! for "which fields does protocol X have", shared by the type checker, the
//! verifier, and the data-plane parser model.

use crate::ast::{FieldDecl, FollowsClause, HeaderDecl};
use flexnet_types::{FlexError, Result};
use std::collections::BTreeMap;

/// A registry of known header types.
#[derive(Debug, Clone, Default)]
pub struct HeaderRegistry {
    decls: BTreeMap<String, HeaderDecl>,
}

fn builtin(name: &str, fields: &[(&str, u8)], follows: Option<(&str, &str, u64)>) -> HeaderDecl {
    HeaderDecl {
        name: name.to_string(),
        fields: fields
            .iter()
            .map(|(n, w)| FieldDecl {
                name: n.to_string(),
                width: *w,
            })
            .collect(),
        follows: follows.map(|(p, f, v)| FollowsClause {
            prev_proto: p.to_string(),
            select_field: f.to_string(),
            value: v,
        }),
    }
}

impl HeaderRegistry {
    /// A registry with only the built-in protocols.
    pub fn builtins() -> HeaderRegistry {
        let mut r = HeaderRegistry::default();
        for decl in [
            builtin(
                "eth",
                &[("src", 48), ("dst", 48), ("ethertype", 16)],
                None,
            ),
            builtin(
                "vlan",
                &[("vid", 12), ("pcp", 3)],
                Some(("eth", "ethertype", 0x8100)),
            ),
            builtin(
                "ipv4",
                &[
                    ("src", 32),
                    ("dst", 32),
                    ("proto", 8),
                    ("ttl", 8),
                    ("ecn", 2),
                    ("dscp", 6),
                ],
                Some(("eth", "ethertype", 0x0800)),
            ),
            builtin(
                "tcp",
                &[
                    ("sport", 16),
                    ("dport", 16),
                    ("flags", 8),
                    ("seq", 32),
                    ("ack", 32),
                    ("window", 16),
                ],
                Some(("ipv4", "proto", 6)),
            ),
            builtin(
                "udp",
                &[("sport", 16), ("dport", 16)],
                Some(("ipv4", "proto", 17)),
            ),
        ] {
            r.decls.insert(decl.name.clone(), decl);
        }
        r
    }

    /// Registers a user header declaration. The `follows` predecessor, if
    /// any, must already be known. Redeclaring an existing protocol is an
    /// error (runtime parser updates go through the reconfiguration engine,
    /// not the registry).
    pub fn register(&mut self, decl: &HeaderDecl) -> Result<()> {
        if self.decls.contains_key(&decl.name) {
            return Err(FlexError::Type(format!(
                "header `{}` is already declared",
                decl.name
            )));
        }
        if decl.fields.is_empty() {
            return Err(FlexError::Type(format!(
                "header `{}` declares no fields",
                decl.name
            )));
        }
        if let Some(f) = &decl.follows {
            let Some(prev) = self.decls.get(&f.prev_proto) else {
                return Err(FlexError::Type(format!(
                    "header `{}` follows unknown protocol `{}`",
                    decl.name, f.prev_proto
                )));
            };
            if !prev.fields.iter().any(|fd| fd.name == f.select_field) {
                return Err(FlexError::Type(format!(
                    "header `{}` selects on `{}.{}` which does not exist",
                    decl.name, f.prev_proto, f.select_field
                )));
            }
        }
        self.decls.insert(decl.name.clone(), decl.clone());
        Ok(())
    }

    /// A registry seeded with builtins plus the given user declarations.
    pub fn with_user_headers(headers: &[HeaderDecl]) -> Result<HeaderRegistry> {
        let mut r = HeaderRegistry::builtins();
        for h in headers {
            r.register(h)?;
        }
        Ok(r)
    }

    /// Whether `proto` is a known header type.
    pub fn has_proto(&self, proto: &str) -> bool {
        self.decls.contains_key(proto)
    }

    /// Looks up a field declaration.
    pub fn field(&self, proto: &str, field: &str) -> Option<&FieldDecl> {
        self.decls
            .get(proto)?
            .fields
            .iter()
            .find(|f| f.name == field)
    }

    /// The full declaration for `proto`.
    pub fn decl(&self, proto: &str) -> Option<&HeaderDecl> {
        self.decls.get(proto)
    }

    /// Iterates over all known declarations.
    pub fn iter(&self) -> impl Iterator<Item = &HeaderDecl> {
        self.decls.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_are_present() {
        let r = HeaderRegistry::builtins();
        for p in ["eth", "vlan", "ipv4", "tcp", "udp"] {
            assert!(r.has_proto(p), "missing builtin {p}");
        }
        assert_eq!(r.field("ipv4", "src").unwrap().width, 32);
        assert!(r.field("ipv4", "nonesuch").is_none());
        assert!(r.field("nonesuch", "src").is_none());
    }

    #[test]
    fn registering_custom_header() {
        let mut r = HeaderRegistry::builtins();
        let vxlan = builtin("vxlan", &[("vni", 24)], Some(("udp", "dport", 4789)));
        r.register(&vxlan).unwrap();
        assert!(r.has_proto("vxlan"));
        assert_eq!(r.decl("vxlan").unwrap().follows.as_ref().unwrap().value, 4789);
    }

    #[test]
    fn rejects_duplicate_and_dangling() {
        let mut r = HeaderRegistry::builtins();
        let dup = builtin("ipv4", &[("x", 8)], None);
        assert!(r.register(&dup).is_err());
        let dangling = builtin("x", &[("y", 8)], Some(("nope", "f", 1)));
        assert!(r.register(&dangling).is_err());
        let bad_select = builtin("x", &[("y", 8)], Some(("udp", "nofield", 1)));
        assert!(r.register(&bad_select).is_err());
        let empty = builtin("e", &[], None);
        assert!(r.register(&empty).is_err());
    }

    #[test]
    fn with_user_headers_builds_registry() {
        let vxlan = builtin("vxlan", &[("vni", 24)], Some(("udp", "dport", 4789)));
        let r = HeaderRegistry::with_user_headers(&[vxlan]).unwrap();
        assert!(r.has_proto("vxlan"));
        assert_eq!(r.iter().count(), 6);
    }
}
