//! Program elements and resource-demand estimation.
//!
//! The compiler (paper §3.3) places *program elements* — tables, state
//! objects, handlers, and parser additions — onto physical devices, and the
//! fungible-compilation loop moves them around. This module decomposes a
//! FlexBPF program into its elements and estimates each element's canonical
//! resource demand as a [`ResourceVec`]. Device models translate canonical
//! demands into architecture-specific resources (e.g. a SmartNIC satisfies
//! SRAM demand from DRAM; a tiled ASIC satisfies an exact-match table with
//! hash tiles).

use crate::ast::*;
use crate::headers::HeaderRegistry;
use crate::verifier::{block_ops, VerifyReport};
use flexnet_types::{ResourceKind, ResourceVec};
use serde::{Deserialize, Serialize};

/// What kind of program element this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ElementKind {
    /// A match/action table.
    Table,
    /// A state object (map, counter, register, meter).
    State,
    /// A packet handler (control block).
    Handler,
    /// A parser addition for one user-declared header type.
    Parser,
}

/// One placeable unit of a program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Element {
    /// Element name (table/state/handler/header name).
    pub name: String,
    /// The element's kind.
    pub kind: ElementKind,
    /// Canonical resource demand.
    pub demand: ResourceVec,
    /// Whether this element requires TCAM (non-exact table keys).
    pub needs_tcam: bool,
    /// Worst-case per-packet ops attributable to this element.
    pub ops: u64,
    /// Names of elements this one must be co-located with or ordered after
    /// (a handler depends on the tables it applies and the state it uses).
    pub deps: Vec<String>,
}

/// Total key width of a table in bits.
fn table_key_bits(t: &TableDecl, headers: &HeaderRegistry) -> u64 {
    t.keys
        .iter()
        .map(|k| match &k.field {
            FieldPath::Header(p, f) => headers
                .field(p, f)
                .map(|fd| fd.width as u64)
                .unwrap_or(32),
            FieldPath::Meta(_) => 32,
        })
        .sum()
}

/// Estimates the resource demand of a table.
///
/// Cost model: each entry stores the key plus a 32-bit action descriptor;
/// exact keys live in SRAM, any lpm/ternary/range key moves the whole table
/// to TCAM (as on real ASICs). Sizes are rounded up to 1 KiB.
pub fn table_demand(t: &TableDecl, headers: &HeaderRegistry) -> ResourceVec {
    let key_bits = table_key_bits(t, headers);
    let entry_bits = key_bits + 32;
    let kib = (t.size.saturating_mul(entry_bits) / 8).div_ceil(1024).max(1);
    let mut v = ResourceVec::new();
    if t.needs_tcam() {
        v.set(ResourceKind::TcamKb, kib);
    } else {
        v.set(ResourceKind::SramKb, kib);
    }
    // One action slot per declared action (VLIW slots on RMT).
    v.set(ResourceKind::ActionSlots, t.actions.len().max(1) as u64);
    v
}

/// Estimates the resource demand of a state object.
pub fn state_demand(s: &StateDecl) -> ResourceVec {
    let mut v = ResourceVec::new();
    match &s.kind {
        StateKind::Map {
            key_width,
            value_width,
        } => {
            let bits = (*key_width as u64 + *value_width as u64).max(8);
            let kib = (s.size.saturating_mul(bits) / 8).div_ceil(1024).max(1);
            v.set(ResourceKind::SramKb, kib);
        }
        StateKind::Counter => {
            v.set(ResourceKind::MeterSlots, 1);
        }
        StateKind::Register { .. } => {
            v.set(ResourceKind::RegisterCells, s.size.max(1));
        }
        StateKind::Meter { .. } => {
            v.set(ResourceKind::MeterSlots, 1);
        }
    }
    v
}

/// Estimates the resource demand of a handler: its worst-case op count as
/// action slots (compute demand).
pub fn handler_demand(h: &Handler) -> ResourceVec {
    ResourceVec::of(ResourceKind::ActionSlots, block_ops(&h.body).max(1))
}

/// Estimates the demand of installing one user header type into a parser.
pub fn parser_demand(h: &HeaderDecl) -> ResourceVec {
    // One parser TCAM entry per transition into the header, plus one per
    // field extracted (PHV allocation proxy).
    ResourceVec::of(
        ResourceKind::ParserEntries,
        1 + h.fields.len() as u64,
    )
}

/// Names of state objects and tables referenced by a block.
fn block_refs(block: &Block, out: &mut Vec<String>) {
    fn expr_refs(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::MapGet(n, k) | Expr::MapHas(n, k) | Expr::RegRead(n, k)
            | Expr::MeterCheck(n, k) => {
                out.push(n.clone());
                expr_refs(k, out);
            }
            Expr::CounterRead(n) => out.push(n.clone()),
            Expr::Hash(args) => args.iter().for_each(|a| expr_refs(a, out)),
            Expr::Bin(_, l, r) => {
                expr_refs(l, out);
                expr_refs(r, out);
            }
            Expr::Un(_, v) => expr_refs(v, out),
            _ => {}
        }
    }
    for s in block {
        match s {
            Stmt::Let(_, e) | Stmt::AssignLocal(_, e) | Stmt::AssignField(_, e)
            | Stmt::Forward(e) => expr_refs(e, out),
            Stmt::MapPut(n, k, v) | Stmt::RegWrite(n, k, v) => {
                out.push(n.clone());
                expr_refs(k, out);
                expr_refs(v, out);
            }
            Stmt::MapDelete(n, k) => {
                out.push(n.clone());
                expr_refs(k, out);
            }
            Stmt::Count(n) => out.push(n.clone()),
            Stmt::If(c, t, e) => {
                expr_refs(c, out);
                block_refs(t, out);
                block_refs(e, out);
            }
            Stmt::Repeat(_, b) => block_refs(b, out),
            Stmt::Apply(t) => out.push(t.clone()),
            Stmt::Invoke(_, args) => args.iter().for_each(|a| expr_refs(a, out)),
            _ => {}
        }
    }
}

/// Decomposes a program (plus the user headers it relies on) into placeable
/// elements with demand estimates.
pub fn program_elements(
    program: &Program,
    user_headers: &[HeaderDecl],
    headers: &HeaderRegistry,
) -> Vec<Element> {
    let mut out = Vec::new();
    for h in user_headers {
        out.push(Element {
            name: h.name.clone(),
            kind: ElementKind::Parser,
            demand: parser_demand(h),
            needs_tcam: false,
            ops: 0,
            deps: Vec::new(),
        });
    }
    for s in &program.states {
        out.push(Element {
            name: s.name.clone(),
            kind: ElementKind::State,
            demand: state_demand(s),
            needs_tcam: false,
            ops: 0,
            deps: Vec::new(),
        });
    }
    for t in &program.tables {
        let mut deps = Vec::new();
        for a in &t.actions {
            block_refs(&a.body, &mut deps);
        }
        deps.sort();
        deps.dedup();
        out.push(Element {
            name: t.name.clone(),
            kind: ElementKind::Table,
            demand: table_demand(t, headers),
            needs_tcam: t.needs_tcam(),
            ops: t
                .actions
                .iter()
                .map(|a| block_ops(&a.body))
                .max()
                .unwrap_or(0),
            deps,
        });
    }
    for h in &program.handlers {
        let mut deps = Vec::new();
        block_refs(&h.body, &mut deps);
        deps.sort();
        deps.dedup();
        out.push(Element {
            name: h.name.clone(),
            kind: ElementKind::Handler,
            demand: handler_demand(h),
            needs_tcam: false,
            ops: block_ops(&h.body),
            deps,
        });
    }
    out
}

/// Total canonical demand of a program (sum over elements).
pub fn program_demand(
    program: &Program,
    user_headers: &[HeaderDecl],
    headers: &HeaderRegistry,
) -> ResourceVec {
    let mut total = ResourceVec::new();
    for e in program_elements(program, user_headers, headers) {
        total += e.demand;
    }
    total
}

/// A verified, placement-ready program: AST plus its certification and its
/// element decomposition. This is the unit the compiler consumes and the
/// unit that migrates between devices "carr\[ying\] its state in this logical
/// representation" (paper §3.1).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IrProgram {
    /// The program AST.
    pub program: Program,
    /// User header declarations the program depends on.
    pub user_headers: Vec<HeaderDecl>,
    /// Per-handler op bounds from the verifier.
    pub max_ops: u64,
    /// Element decomposition with demands.
    pub elements: Vec<Element>,
}

impl IrProgram {
    /// Builds an [`IrProgram`] from a checked and verified AST.
    pub fn build(
        program: Program,
        user_headers: Vec<HeaderDecl>,
        headers: &HeaderRegistry,
        report: &VerifyReport,
    ) -> IrProgram {
        let elements = program_elements(&program, &user_headers, headers);
        IrProgram {
            program,
            user_headers,
            max_ops: report.max_ops,
            elements,
        }
    }

    /// Looks up an element by name.
    pub fn element(&self, name: &str) -> Option<&Element> {
        self.elements.iter().find(|e| e.name == name)
    }

    /// Total canonical demand.
    pub fn total_demand(&self) -> ResourceVec {
        let mut total = ResourceVec::new();
        for e in &self.elements {
            total += e.demand.clone();
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_source};
    use crate::typecheck::check_program;
    use crate::verifier::verify_program;

    fn ir(src: &str) -> IrProgram {
        let file = parse_source(src).unwrap();
        let headers = HeaderRegistry::with_user_headers(&file.headers).unwrap();
        let program = file.programs.into_iter().next().unwrap();
        check_program(&program, &headers).unwrap();
        let report = verify_program(&program, &headers).unwrap();
        IrProgram::build(program, file.headers, &headers, &report)
    }

    #[test]
    fn exact_table_demands_sram() {
        let p = parse_program(
            "program p { table t { key { ipv4.src : exact; } size 1024; } }",
        )
        .unwrap();
        let d = table_demand(&p.tables[0], &HeaderRegistry::builtins());
        assert!(d.get(ResourceKind::SramKb) > 0);
        assert_eq!(d.get(ResourceKind::TcamKb), 0);
    }

    #[test]
    fn lpm_table_demands_tcam() {
        let p = parse_program(
            "program p { table t { key { ipv4.dst : lpm; } size 1024; } }",
        )
        .unwrap();
        let d = table_demand(&p.tables[0], &HeaderRegistry::builtins());
        assert_eq!(d.get(ResourceKind::SramKb), 0);
        assert!(d.get(ResourceKind::TcamKb) > 0);
    }

    #[test]
    fn table_demand_scales_with_size() {
        let small = parse_program(
            "program p { table t { key { ipv4.src : exact; } size 1024; } }",
        )
        .unwrap();
        let large = parse_program(
            "program p { table t { key { ipv4.src : exact; } size 65536; } }",
        )
        .unwrap();
        let reg = HeaderRegistry::builtins();
        assert!(
            table_demand(&large.tables[0], &reg).get(ResourceKind::SramKb)
                > table_demand(&small.tables[0], &reg).get(ResourceKind::SramKb)
        );
    }

    #[test]
    fn state_demands_by_kind() {
        let p = parse_program(
            "program p {
               map m : map<u64, u64>[8192];
               counter c;
               register r : u32[512];
               meter lim rate 1 burst 1;
             }",
        )
        .unwrap();
        assert!(state_demand(&p.states[0]).get(ResourceKind::SramKb) > 0);
        assert_eq!(state_demand(&p.states[1]).get(ResourceKind::MeterSlots), 1);
        assert_eq!(
            state_demand(&p.states[2]).get(ResourceKind::RegisterCells),
            512
        );
        assert_eq!(state_demand(&p.states[3]).get(ResourceKind::MeterSlots), 1);
    }

    #[test]
    fn elements_cover_all_parts_with_deps() {
        let ir = ir(
            "header vxlan { fields { vni: 24; } follows udp when udp.dport == 4789; }
             program p {
               counter c;
               table t {
                 key { ipv4.src : exact; }
                 action a() { count(c); drop(); }
                 size 4;
               }
               handler ingress(pkt) { apply t; forward(1); }
             }",
        );
        let names: Vec<_> = ir.elements.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["vxlan", "c", "t", "ingress"]);
        let table = ir.element("t").unwrap();
        assert_eq!(table.deps, vec!["c"]);
        let handler = ir.element("ingress").unwrap();
        assert_eq!(handler.deps, vec!["t"]);
        assert_eq!(ir.element("vxlan").unwrap().kind, ElementKind::Parser);
        assert!(ir.max_ops > 0);
    }

    #[test]
    fn total_demand_sums_elements() {
        let ir = ir(
            "program p {
               map m : map<u64, u64>[8192];
               table t { key { ipv4.dst : lpm; } size 256; }
             }",
        );
        let d = ir.total_demand();
        assert!(d.get(ResourceKind::SramKb) > 0);
        assert!(d.get(ResourceKind::TcamKb) > 0);
    }

    #[test]
    fn handler_demand_tracks_ops() {
        let ir = ir("program p { handler h(pkt) { repeat (8) { meta.x = meta.x + 1; } forward(1); } }");
        let h = ir.element("h").unwrap();
        assert!(h.demand.get(ResourceKind::ActionSlots) > 8);
    }
}
