//! Token definitions for the FlexBPF surface language.

use std::fmt;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// The kinds of FlexBPF tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are distinguished by the parser,
    /// so that e.g. a field may be named `size`).
    Ident(String),
    /// An unsigned integer literal (decimal or `0x` hex).
    Int(u64),
    /// A string literal (used by patch selectors, e.g. `matching "acl*"`).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `&&`
    AndAnd,
    /// `|`
    Pipe,
    /// `||`
    OrOr,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(v) => write!(f, "integer {v}"),
            TokenKind::Str(s) => write!(f, "string \"{s}\""),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::Eq => write!(f, "`==`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::Amp => write!(f, "`&`"),
            TokenKind::AndAnd => write!(f, "`&&`"),
            TokenKind::Pipe => write!(f, "`|`"),
            TokenKind::OrOr => write!(f, "`||`"),
            TokenKind::Caret => write!(f, "`^`"),
            TokenKind::Tilde => write!(f, "`~`"),
            TokenKind::Bang => write!(f, "`!`"),
            TokenKind::Shl => write!(f, "`<<`"),
            TokenKind::Shr => write!(f, "`>>`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
