//! Datapath composition: laying tenant extension programs atop the
//! infrastructure program.
//!
//! Paper §3 (scenario) and §3.2: the network owner maintains an
//! "infrastructure" program; tenants inject "extension" programs, which are
//! "admitted by the network owner after access control validation" and
//! "isolated from each other and from the infrastructure code via, e.g.,
//! VLAN-based isolation mechanisms". Composition must also detect
//! "logically-sharable code that present\[s\] optimization opportunities or
//! conflicting datapaths that need to be resolved".
//!
//! Concretely, [`compose`]:
//!
//! 1. **Access control** — rejects extensions that reference state, tables,
//!    or handlers they did not declare (the only cross-boundary interface is
//!    invoking an infra-`provide`d dRPC service).
//! 2. **Namespacing** — renames every tenant element to `t<id>_<name>` and
//!    rewrites all references, so tenants can never collide with each other
//!    or the infrastructure.
//! 3. **VLAN guards** — wraps each tenant handler body in
//!    `if (valid(vlan) && vlan.vid == <tenant vlan>) { … }`, so a tenant's
//!    code only ever sees its own traffic.
//! 4. **Sharing** — structurally identical *stateless* tenant tables are
//!    deduplicated into a single shared table.
//! 5. **Conflict detection** — duplicate `provide`d services and
//!    incompatible redeclarations of the same header type are hard errors.

use crate::ast::*;
use crate::diff::ProgramBundle;
use flexnet_types::{FlexError, Result, TenantId, VlanId};
use std::collections::BTreeMap;

/// A tenant extension awaiting composition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantExtension {
    /// The owning tenant.
    pub tenant: TenantId,
    /// The VLAN isolating this tenant's traffic.
    pub vlan: VlanId,
    /// The extension program (plus any header types it brings).
    pub bundle: ProgramBundle,
}

/// What composition did, for reporting and tests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompositionReport {
    /// Number of tenant extensions composed.
    pub tenants: usize,
    /// Renames applied: (original, namespaced).
    pub renamed: Vec<(String, String)>,
    /// Number of tenant tables eliminated by sharing.
    pub shared_tables: usize,
}

/// The result of composing extensions onto the infrastructure program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Composition {
    /// The composed bundle, ready for checking/verification/compilation.
    pub bundle: ProgramBundle,
    /// Composition statistics.
    pub report: CompositionReport,
}

/// The tenant namespace prefix for an element name.
pub fn tenant_prefix(tenant: TenantId) -> String {
    format!("t{}_", tenant.raw())
}

/// Composes the infrastructure bundle with tenant extensions.
pub fn compose(infra: &ProgramBundle, extensions: &[TenantExtension]) -> Result<Composition> {
    let mut out = infra.clone();
    let mut report = CompositionReport {
        tenants: extensions.len(),
        ..CompositionReport::default()
    };

    // Headers: merge, rejecting incompatible redeclarations.
    for ext in extensions {
        for h in &ext.bundle.headers {
            match out.headers.iter().find(|x| x.name == h.name) {
                None => out.headers.push(h.clone()),
                Some(existing) if existing == h => {} // identical: share
                Some(_) => {
                    return Err(FlexError::Conflict(format!(
                        "tenant {} redeclares header `{}` incompatibly",
                        ext.tenant, h.name
                    )))
                }
            }
        }
    }

    // Provided services must be unique across the composition.
    let mut providers: BTreeMap<String, String> = out
        .program
        .services
        .iter()
        .filter(|s| s.provided)
        .map(|s| (s.name.clone(), "infra".to_string()))
        .collect();

    let mut guarded_ingress: Vec<Stmt> = Vec::new();

    for ext in extensions {
        validate_access(&ext.bundle.program, infra)
            .map_err(|e| prefix_err(e, ext.tenant))?;

        let prefix = tenant_prefix(ext.tenant);
        let mut renames: BTreeMap<String, String> = BTreeMap::new();
        for s in &ext.bundle.program.states {
            renames.insert(s.name.clone(), format!("{prefix}{}", s.name));
        }
        for t in &ext.bundle.program.tables {
            renames.insert(t.name.clone(), format!("{prefix}{}", t.name));
        }

        for s in &ext.bundle.program.states {
            let mut s = s.clone();
            let new = renames[&s.name].clone();
            report.renamed.push((s.name.clone(), new.clone()));
            s.name = new;
            out.program.states.push(s);
        }
        for t in &ext.bundle.program.tables {
            let mut t = t.clone();
            let new = renames[&t.name].clone();
            report.renamed.push((t.name.clone(), new.clone()));
            t.name = new;
            for a in &mut t.actions {
                rename_block(&mut a.body, &renames);
            }
            out.program.tables.push(t);
        }
        for svc in &ext.bundle.program.services {
            if svc.provided {
                let name = format!("{prefix}{}", svc.name);
                if providers.contains_key(&svc.name) || providers.contains_key(&name) {
                    return Err(FlexError::Conflict(format!(
                        "tenant {} provides service `{}` which is already provided",
                        ext.tenant, svc.name
                    )));
                }
                providers.insert(name.clone(), ext.tenant.to_string());
                out.program.services.push(ServiceDecl {
                    name,
                    params: svc.params.clone(),
                    provided: true,
                });
            } else {
                // Imported service: must be provided by the infrastructure.
                let Some(infra_svc) = infra
                    .program
                    .services
                    .iter()
                    .find(|s| s.provided && s.name == svc.name)
                else {
                    return Err(FlexError::Denied(format!(
                        "tenant {} requires service `{}` which the infrastructure does not provide",
                        ext.tenant, svc.name
                    )));
                };
                if infra_svc.params.len() != svc.params.len() {
                    return Err(FlexError::Conflict(format!(
                        "tenant {} requires service `{}` with {} params, infra provides {}",
                        ext.tenant,
                        svc.name,
                        svc.params.len(),
                        infra_svc.params.len()
                    )));
                }
                // The composed program already declares it (from infra).
            }
        }

        for h in &ext.bundle.program.handlers {
            let mut body = h.body.clone();
            rename_block(&mut body, &renames);
            if h.name == "ingress" {
                // Guard the tenant's ingress code behind its VLAN.
                let guard = Expr::Bin(
                    BinOp::LAnd,
                    Box::new(Expr::Valid("vlan".to_string())),
                    Box::new(Expr::eq(
                        Expr::field("vlan", "vid"),
                        Expr::Int(ext.vlan.0 as u64),
                    )),
                );
                guarded_ingress.push(Stmt::If(guard, body, Vec::new()));
            } else {
                // Non-ingress handlers are installed namespaced.
                out.program.handlers.push(Handler {
                    name: format!("{prefix}{}", h.name),
                    body,
                });
            }
        }
    }

    // Tenant ingress guards run before the infrastructure ingress body, so
    // a tenant verdict (e.g. a tenant firewall drop) takes effect first and
    // fall-through continues into infrastructure processing.
    if !guarded_ingress.is_empty() {
        match out.program.handlers.iter_mut().find(|h| h.name == "ingress") {
            Some(h) => {
                let mut body = guarded_ingress;
                body.append(&mut h.body);
                h.body = body;
            }
            None => out.program.handlers.insert(
                0,
                Handler {
                    name: "ingress".to_string(),
                    body: guarded_ingress,
                },
            ),
        }
    }

    report.shared_tables = dedup_stateless_tables(&mut out.program);
    Ok(Composition {
        bundle: out,
        report,
    })
}

fn prefix_err(e: FlexError, tenant: TenantId) -> FlexError {
    match e {
        FlexError::Denied(m) => FlexError::Denied(format!("{tenant}: {m}")),
        other => other,
    }
}

/// Rejects extension programs that reference names they did not declare.
/// Required imports (non-provided services) are checked against the infra
/// program separately.
fn validate_access(ext: &Program, _infra: &ProgramBundle) -> Result<()> {
    let mut declared: Vec<&str> = ext.states.iter().map(|s| s.name.as_str()).collect();
    declared.extend(ext.tables.iter().map(|t| t.name.as_str()));

    let mut refs = Vec::new();
    for h in &ext.handlers {
        collect_refs(&h.body, &mut refs);
    }
    for t in &ext.tables {
        for a in &t.actions {
            collect_refs(&a.body, &mut refs);
        }
    }
    for r in refs {
        if !declared.contains(&r.as_str()) {
            return Err(FlexError::Denied(format!(
                "extension references `{r}` which it does not declare \
                 (cross-program access is only allowed via dRPC services)"
            )));
        }
    }
    Ok(())
}

/// Collects every state/table name referenced in a block.
fn collect_refs(block: &Block, out: &mut Vec<String>) {
    fn expr(e: &Expr, out: &mut Vec<String>) {
        match e {
            Expr::MapGet(n, k) | Expr::MapHas(n, k) | Expr::RegRead(n, k)
            | Expr::MeterCheck(n, k) => {
                out.push(n.clone());
                expr(k, out);
            }
            Expr::CounterRead(n) => out.push(n.clone()),
            Expr::Hash(args) => args.iter().for_each(|a| expr(a, out)),
            Expr::Bin(_, l, r) => {
                expr(l, out);
                expr(r, out);
            }
            Expr::Un(_, v) => expr(v, out),
            _ => {}
        }
    }
    for s in block {
        match s {
            Stmt::Let(_, e) | Stmt::AssignLocal(_, e) | Stmt::AssignField(_, e)
            | Stmt::Forward(e) => expr(e, out),
            Stmt::MapPut(n, k, v) | Stmt::RegWrite(n, k, v) => {
                out.push(n.clone());
                expr(k, out);
                expr(v, out);
            }
            Stmt::MapDelete(n, k) => {
                out.push(n.clone());
                expr(k, out);
            }
            Stmt::Count(n) => out.push(n.clone()),
            Stmt::If(c, t, e) => {
                expr(c, out);
                collect_refs(t, out);
                collect_refs(e, out);
            }
            Stmt::Repeat(_, b) => collect_refs(b, out),
            Stmt::Apply(t) => out.push(t.clone()),
            Stmt::Invoke(_, args) => args.iter().for_each(|a| expr(a, out)),
            _ => {}
        }
    }
}

/// Renames state/table references in a block according to `map`.
pub fn rename_block(block: &mut Block, map: &BTreeMap<String, String>) {
    fn ren(n: &mut String, map: &BTreeMap<String, String>) {
        if let Some(new) = map.get(n) {
            *n = new.clone();
        }
    }
    fn expr(e: &mut Expr, map: &BTreeMap<String, String>) {
        match e {
            Expr::MapGet(n, k) | Expr::MapHas(n, k) | Expr::RegRead(n, k)
            | Expr::MeterCheck(n, k) => {
                ren(n, map);
                expr(k, map);
            }
            Expr::CounterRead(n) => ren(n, map),
            Expr::Hash(args) => args.iter_mut().for_each(|a| expr(a, map)),
            Expr::Bin(_, l, r) => {
                expr(l, map);
                expr(r, map);
            }
            Expr::Un(_, v) => expr(v, map),
            _ => {}
        }
    }
    for s in block {
        match s {
            Stmt::Let(_, e) | Stmt::AssignLocal(_, e) | Stmt::AssignField(_, e)
            | Stmt::Forward(e) => expr(e, map),
            Stmt::MapPut(n, k, v) | Stmt::RegWrite(n, k, v) => {
                ren(n, map);
                expr(k, map);
                expr(v, map);
            }
            Stmt::MapDelete(n, k) => {
                ren(n, map);
                expr(k, map);
            }
            Stmt::Count(n) => ren(n, map),
            Stmt::If(c, t, e) => {
                expr(c, map);
                rename_block(t, map);
                rename_block(e, map);
            }
            Stmt::Repeat(_, b) => rename_block(b, map),
            Stmt::Apply(t) => ren(t, map),
            Stmt::Invoke(_, args) => args.iter_mut().for_each(|a| expr(a, map)),
            _ => {}
        }
    }
}

/// Whether a block touches any state (blocks that don't are shareable).
fn block_is_stateless(block: &Block) -> bool {
    let mut refs = Vec::new();
    collect_refs(block, &mut refs);
    refs.is_empty()
}

/// Deduplicates structurally identical stateless tenant tables, rewriting
/// applies to the surviving copy. Returns the number of tables eliminated.
fn dedup_stateless_tables(program: &mut Program) -> usize {
    // Only tenant tables (prefixed `t<digits>_`) participate.
    fn is_tenant_table(name: &str) -> bool {
        let Some(rest) = name.strip_prefix('t') else {
            return false;
        };
        let Some((digits, _)) = rest.split_once('_') else {
            return false;
        };
        !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit())
    }

    // Signature: the table definition with the name blanked.
    fn signature(t: &TableDecl) -> TableDecl {
        let mut t = t.clone();
        t.name = String::new();
        t
    }

    let mut keep: Vec<TableDecl> = Vec::new();
    let mut renames: BTreeMap<String, String> = BTreeMap::new();
    let mut eliminated = 0usize;

    for t in std::mem::take(&mut program.tables) {
        let shareable = is_tenant_table(&t.name)
            && t.actions.iter().all(|a| block_is_stateless(&a.body));
        if shareable {
            if let Some(existing) = keep.iter().find(|k| {
                is_tenant_table(&k.name)
                    && signature(k) == signature(&t)
                    && k.actions.iter().all(|a| block_is_stateless(&a.body))
            }) {
                renames.insert(t.name.clone(), existing.name.clone());
                eliminated += 1;
                continue;
            }
        }
        keep.push(t);
    }
    program.tables = keep;

    if !renames.is_empty() {
        for h in &mut program.handlers {
            rename_block(&mut h.body, &renames);
        }
        for t in &mut program.tables {
            for a in &mut t.actions {
                rename_block(&mut a.body, &renames);
            }
        }
    }
    eliminated
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::headers::HeaderRegistry;
    use crate::parser::parse_source;
    use crate::typecheck::check_program;
    use crate::verifier::verify_program;

    fn bundle(src: &str) -> ProgramBundle {
        let file = parse_source(src).unwrap();
        ProgramBundle {
            headers: file.headers,
            program: file.programs.into_iter().next().unwrap(),
        }
    }

    fn infra() -> ProgramBundle {
        bundle(
            "program infra kind switch {
               counter total;
               service provide migrate_state(dst: u32);
               table routing {
                 key { ipv4.dst : lpm; }
                 action out(port: u16) { forward(port); }
                 default out(0);
                 size 1024;
               }
               handler ingress(pkt) { count(total); apply routing; forward(0); }
             }",
        )
    }

    fn tenant_fw(tenant: u32, vlan: u16) -> TenantExtension {
        TenantExtension {
            tenant: TenantId(tenant),
            vlan: VlanId(vlan),
            bundle: bundle(
                "program fw kind any {
                   map blocked : map<u32, u8>[64];
                   handler ingress(pkt) {
                     if (map_get(blocked, ipv4.src) == 1) { drop(); }
                   }
                 }",
            ),
        }
    }

    #[test]
    fn composes_and_still_verifies() {
        let c = compose(&infra(), &[tenant_fw(1, 100), tenant_fw(2, 200)]).unwrap();
        assert_eq!(c.report.tenants, 2);
        // Namespaced state exists for both tenants.
        assert!(c.bundle.program.state("t1_blocked").is_some());
        assert!(c.bundle.program.state("t2_blocked").is_some());
        // Composed program passes the checker and verifier.
        let reg = HeaderRegistry::with_user_headers(&c.bundle.headers).unwrap();
        check_program(&c.bundle.program, &reg).unwrap();
        verify_program(&c.bundle.program, &reg).unwrap();
        // Tenant guards precede infra processing.
        let ingress = c.bundle.program.handler("ingress").unwrap();
        assert!(matches!(&ingress.body[0], Stmt::If(..)));
        assert!(matches!(&ingress.body[1], Stmt::If(..)));
        assert!(matches!(&ingress.body[2], Stmt::Count(c) if c == "total"));
    }

    #[test]
    fn vlan_guard_references_tenant_vlan() {
        let c = compose(&infra(), &[tenant_fw(7, 777)]).unwrap();
        let ingress = c.bundle.program.handler("ingress").unwrap();
        let Stmt::If(guard, body, _) = &ingress.body[0] else {
            panic!()
        };
        let printed = format!("{guard:?}");
        assert!(printed.contains("777"), "guard must test the tenant vlan: {printed}");
        // Tenant body had its state refs renamed.
        let body_str = format!("{body:?}");
        assert!(body_str.contains("t7_blocked"));
    }

    #[test]
    fn extension_referencing_infra_state_denied() {
        let evil = TenantExtension {
            tenant: TenantId(3),
            vlan: VlanId(300),
            bundle: bundle(
                "program evil { handler ingress(pkt) { count(total); } }",
            ),
        };
        let err = compose(&infra(), &[evil]).unwrap_err();
        assert!(matches!(err, FlexError::Denied(_)), "{err}");
    }

    #[test]
    fn extension_applying_infra_table_denied() {
        let evil = TenantExtension {
            tenant: TenantId(3),
            vlan: VlanId(300),
            bundle: bundle("program evil { handler ingress(pkt) { apply routing; } }"),
        };
        assert!(compose(&infra(), &[evil]).is_err());
    }

    #[test]
    fn required_service_must_be_provided_by_infra() {
        let ok = TenantExtension {
            tenant: TenantId(1),
            vlan: VlanId(10),
            bundle: bundle(
                "program x {
                   service require migrate_state(dst: u32);
                   handler ingress(pkt) { invoke migrate_state(1); }
                 }",
            ),
        };
        compose(&infra(), &[ok]).unwrap();

        let bad = TenantExtension {
            tenant: TenantId(1),
            vlan: VlanId(10),
            bundle: bundle(
                "program x {
                   service require nonexistent(dst: u32);
                   handler ingress(pkt) { invoke nonexistent(1); }
                 }",
            ),
        };
        assert!(compose(&infra(), &[bad]).is_err());
    }

    #[test]
    fn identical_headers_shared_incompatible_rejected() {
        let a = TenantExtension {
            tenant: TenantId(1),
            vlan: VlanId(10),
            bundle: bundle(
                "header vxlan { fields { vni: 24; } follows udp when udp.dport == 4789; }
                 program x { handler ingress(pkt) { meta.m = 0; } }",
            ),
        };
        let b_same = TenantExtension {
            tenant: TenantId(2),
            vlan: VlanId(20),
            bundle: a.bundle.clone(),
        };
        let c = compose(&infra(), &[a.clone(), b_same]).unwrap();
        assert_eq!(
            c.bundle.headers.iter().filter(|h| h.name == "vxlan").count(),
            1
        );

        let b_diff = TenantExtension {
            tenant: TenantId(2),
            vlan: VlanId(20),
            bundle: bundle(
                "header vxlan { fields { vni: 32; } }
                 program x { handler ingress(pkt) { meta.m = 0; } }",
            ),
        };
        assert!(compose(&infra(), &[a, b_diff]).is_err());
    }

    #[test]
    fn stateless_tables_deduplicated() {
        let mk = |tenant, vlan| TenantExtension {
            tenant: TenantId(tenant),
            vlan: VlanId(vlan),
            bundle: bundle(
                "program x {
                   table screen {
                     key { tcp.dport : exact; }
                     action deny() { drop(); }
                     size 16;
                   }
                   handler ingress(pkt) { apply screen; }
                 }",
            ),
        };
        let c = compose(&infra(), &[mk(1, 10), mk(2, 20)]).unwrap();
        assert_eq!(c.report.shared_tables, 1);
        // Only one copy survives, and both tenants' applies point at it.
        let screens: Vec<_> = c
            .bundle
            .program
            .tables
            .iter()
            .filter(|t| t.name.ends_with("_screen"))
            .collect();
        assert_eq!(screens.len(), 1);
        let reg = HeaderRegistry::builtins();
        check_program(&c.bundle.program, &reg).unwrap();
    }

    #[test]
    fn stateful_tables_not_shared() {
        let mk = |tenant, vlan| TenantExtension {
            tenant: TenantId(tenant),
            vlan: VlanId(vlan),
            bundle: bundle(
                "program x {
                   counter hits;
                   table screen {
                     key { tcp.dport : exact; }
                     action deny() { count(hits); drop(); }
                     size 16;
                   }
                   handler ingress(pkt) { apply screen; }
                 }",
            ),
        };
        let c = compose(&infra(), &[mk(1, 10), mk(2, 20)]).unwrap();
        assert_eq!(c.report.shared_tables, 0, "stateful tables must stay isolated");
    }

    #[test]
    fn duplicate_provided_services_conflict() {
        let mk = |tenant, vlan| TenantExtension {
            tenant: TenantId(tenant),
            vlan: VlanId(vlan),
            bundle: bundle(
                "program x {
                   service provide scrub(level: u8);
                   handler ingress(pkt) { meta.m = 1; }
                 }",
            ),
        };
        // Two different tenants providing `scrub` are namespaced apart: OK.
        compose(&infra(), &[mk(1, 10), mk(2, 20)]).unwrap();
        // But a tenant colliding with an infra-provided service conflicts.
        let clash = TenantExtension {
            tenant: TenantId(3),
            vlan: VlanId(30),
            bundle: bundle(
                "program x {
                   service provide migrate_state(dst: u32);
                   handler ingress(pkt) { meta.m = 1; }
                 }",
            ),
        };
        assert!(compose(&infra(), &[clash]).is_err());
    }

    #[test]
    fn infra_without_ingress_gets_one() {
        let bare = bundle("program infra { counter c; }");
        let c = compose(&bare, &[tenant_fw(1, 100)]).unwrap();
        assert!(c.bundle.program.handler("ingress").is_some());
    }
}
