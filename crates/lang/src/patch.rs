//! The incremental-change DSL ("patch programs").
//!
//! Paper §3.2: "Our goal is to develop a domain-specific language that
//! concisely specif\[ies\] where, when, and how an existing FlexNet program is
//! updated. Programs in this DSL precisely model the changes that need to be
//! made, without having to re-specify the entire stacks all over again. For
//! instance, this DSL may expose name matching utilities (e.g., via pattern
//! matches on match/action tables and actions) to programmatically select
//! and modify" parts of the base program.
//!
//! Syntax:
//!
//! ```text
//! patch add_rate_limit on firewall {
//!   add map seen : map<u64, u64>[256];
//!   add table rate before acl { key { ipv4.src : exact; } size 64; }
//!   add handler egress(pkt) { forward(1); }
//!   modify handler ingress { prepend { if (meta.x == 1) { drop(); } } }
//!   resize table acl to 512;
//!   set_default acl deny();
//!   remove table old_table;
//!   remove tables matching "tmp_*";
//! }
//! ```
//!
//! Applying a patch produces a *new* [`ProgramBundle`]; callers re-run the
//! type checker and verifier on the result, then diff old vs. new
//! ([`crate::diff::diff_bundles`]) to obtain the runtime reconfiguration
//! operations. The patch itself never touches a live device.

use crate::ast::*;
use crate::diff::ProgramBundle;
use crate::lexer::lex;
use crate::parser::Parser;
use crate::token::TokenKind;
use flexnet_types::{FlexError, Result};
use serde::{Deserialize, Serialize};

/// Where an added table goes relative to existing tables (placement
/// adjacency matters for incremental recompilation, paper §3.3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TablePosition {
    /// Append after all existing tables.
    Append,
    /// Insert before the named table.
    Before(String),
    /// Insert after the named table.
    After(String),
}

/// How a handler body is modified.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModifyMode {
    /// New statements run before the existing body.
    Prepend,
    /// New statements run after the existing body.
    Append,
    /// The body is replaced outright.
    Replace,
}

/// One operation of a patch program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatchOp {
    /// `add map|counter|register|meter …`
    AddState(StateDecl),
    /// `add header …`
    AddHeader(HeaderDecl),
    /// `add table [before|after NAME] { … }`
    AddTable(TableDecl, TablePosition),
    /// `add service …`
    AddService(ServiceDecl),
    /// `add handler NAME(pkt) { … }`
    AddHandler(Handler),
    /// `remove table NAME;`
    RemoveTable(String),
    /// `remove state NAME;`
    RemoveState(String),
    /// `remove header NAME;`
    RemoveHeader(String),
    /// `remove handler NAME;`
    RemoveHandler(String),
    /// `remove service NAME;`
    RemoveService(String),
    /// `remove tables matching "GLOB";`
    RemoveTablesMatching(String),
    /// `resize table NAME to SIZE;`
    ResizeTable(String, u64),
    /// `set_default TABLE ACTION(args…);`
    SetDefault(String, ActionCall),
    /// `modify handler NAME { prepend|append|replace { … } }`
    ModifyHandler(String, ModifyMode, Block),
}

/// A parsed patch program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Patch {
    /// Patch name (for management/audit).
    pub name: String,
    /// Name of the program this patch applies to.
    pub target: String,
    /// Operations, applied in order.
    pub ops: Vec<PatchOp>,
}

/// Parses a patch program.
pub fn parse_patch(src: &str) -> Result<Patch> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    let patch = parse_patch_body(&mut p)?;
    if !p.at_eof() {
        return Err(p.error_here("trailing input after patch"));
    }
    Ok(patch)
}

fn parse_patch_body(p: &mut Parser) -> Result<Patch> {
    p.keyword("patch")?;
    let name = p.ident()?;
    p.keyword("on")?;
    let target = p.ident()?;
    p.expect(&TokenKind::LBrace)?;
    let mut ops = Vec::new();
    loop {
        if p.expect(&TokenKind::RBrace).is_ok() {
            break;
        }
        if p.eat_keyword("add") {
            if let Some(state) = p.try_parse_state_decl()? {
                ops.push(PatchOp::AddState(state));
            } else if matches!(peek_kw(p).as_deref(), Some("header")) {
                ops.push(PatchOp::AddHeader(p.parse_header_decl()?));
            } else if matches!(peek_kw(p).as_deref(), Some("service")) {
                ops.push(PatchOp::AddService(p.parse_service_decl()?));
            } else if matches!(peek_kw(p).as_deref(), Some("handler")) {
                ops.push(PatchOp::AddHandler(p.parse_handler()?));
            } else if matches!(peek_kw(p).as_deref(), Some("table")) {
                // `add table NAME [before|after OTHER] { … }` — we parse the
                // name, then an optional position, then hand the body to the
                // table parser by re-synthesizing the header tokens. Simpler:
                // parse position between name and `{`.
                ops.push(parse_add_table(p)?);
            } else {
                return Err(p.error_here("expected a declaration after `add`"));
            }
        } else if p.eat_keyword("remove") {
            if p.eat_keyword("table") {
                let n = p.ident()?;
                p.expect(&TokenKind::Semi)?;
                ops.push(PatchOp::RemoveTable(n));
            } else if p.eat_keyword("tables") {
                p.keyword("matching")?;
                let pat = p.string()?;
                p.expect(&TokenKind::Semi)?;
                ops.push(PatchOp::RemoveTablesMatching(pat));
            } else if p.eat_keyword("state") {
                let n = p.ident()?;
                p.expect(&TokenKind::Semi)?;
                ops.push(PatchOp::RemoveState(n));
            } else if p.eat_keyword("header") {
                let n = p.ident()?;
                p.expect(&TokenKind::Semi)?;
                ops.push(PatchOp::RemoveHeader(n));
            } else if p.eat_keyword("handler") {
                let n = p.ident()?;
                p.expect(&TokenKind::Semi)?;
                ops.push(PatchOp::RemoveHandler(n));
            } else if p.eat_keyword("service") {
                let n = p.ident()?;
                p.expect(&TokenKind::Semi)?;
                ops.push(PatchOp::RemoveService(n));
            } else {
                return Err(p.error_here(
                    "expected table/tables/state/header/handler/service after `remove`",
                ));
            }
        } else if p.eat_keyword("resize") {
            p.keyword("table")?;
            let n = p.ident()?;
            p.keyword("to")?;
            let size = p.int()?;
            p.expect(&TokenKind::Semi)?;
            ops.push(PatchOp::ResizeTable(n, size));
        } else if p.eat_keyword("set_default") {
            let table = p.ident()?;
            let action = p.ident()?;
            p.expect(&TokenKind::LParen)?;
            let mut args = Vec::new();
            if p.expect(&TokenKind::RParen).is_err() {
                loop {
                    args.push(p.int()?);
                    if p.expect(&TokenKind::RParen).is_ok() {
                        break;
                    }
                    p.expect(&TokenKind::Comma)?;
                }
            }
            p.expect(&TokenKind::Semi)?;
            ops.push(PatchOp::SetDefault(table, ActionCall { action, args }));
        } else if p.eat_keyword("modify") {
            p.keyword("handler")?;
            let n = p.ident()?;
            p.expect(&TokenKind::LBrace)?;
            let mode = if p.eat_keyword("prepend") {
                ModifyMode::Prepend
            } else if p.eat_keyword("append") {
                ModifyMode::Append
            } else if p.eat_keyword("replace") {
                ModifyMode::Replace
            } else {
                return Err(p.error_here("expected prepend/append/replace"));
            };
            let body = p.parse_block()?;
            p.expect(&TokenKind::RBrace)?;
            ops.push(PatchOp::ModifyHandler(n, mode, body));
        } else {
            return Err(p.error_here("expected a patch operation"));
        }
    }
    Ok(Patch { name, target, ops })
}

fn peek_kw(p: &Parser) -> Option<String> {
    p.peek_ident()
}

fn parse_add_table(p: &mut Parser) -> Result<PatchOp> {
    // The table parser expects `table NAME { … }`; we intercept the optional
    // position between the name and the brace.
    p.keyword("table")?;
    let name = p.ident()?;
    let position = if p.eat_keyword("before") {
        TablePosition::Before(p.ident()?)
    } else if p.eat_keyword("after") {
        TablePosition::After(p.ident()?)
    } else {
        TablePosition::Append
    };
    let mut decl = p.parse_table_body()?;
    decl.name = name;
    Ok(PatchOp::AddTable(decl, position))
}

/// A simple glob matcher supporting `*` (any run) and `?` (any one char).
pub fn glob_match(pattern: &str, name: &str) -> bool {
    fn inner(p: &[u8], n: &[u8]) -> bool {
        match (p.first(), n.first()) {
            (None, None) => true,
            (Some(b'*'), _) => {
                inner(&p[1..], n) || (!n.is_empty() && inner(p, &n[1..]))
            }
            (Some(b'?'), Some(_)) => inner(&p[1..], &n[1..]),
            (Some(a), Some(b)) if a == b => inner(&p[1..], &n[1..]),
            _ => false,
        }
    }
    inner(pattern.as_bytes(), name.as_bytes())
}

/// Applies `patch` to `base`, producing the patched bundle.
///
/// The result must be re-checked (`typecheck`) and re-certified (`verifier`)
/// before installation; `apply_patch` validates only structural properties
/// (names exist, no duplicates).
pub fn apply_patch(base: &ProgramBundle, patch: &Patch) -> Result<ProgramBundle> {
    if base.program.name != patch.target {
        return Err(FlexError::Patch(format!(
            "patch `{}` targets `{}` but base program is `{}`",
            patch.name, patch.target, base.program.name
        )));
    }
    let mut out = base.clone();
    for op in &patch.ops {
        apply_op(&mut out, op, &patch.name)?;
    }
    Ok(out)
}

fn apply_op(out: &mut ProgramBundle, op: &PatchOp, patch_name: &str) -> Result<()> {
    let missing = |what: &str, name: &str| {
        FlexError::Patch(format!("patch `{patch_name}`: {what} `{name}` does not exist"))
    };
    let duplicate = |what: &str, name: &str| {
        FlexError::Patch(format!("patch `{patch_name}`: {what} `{name}` already exists"))
    };
    match op {
        PatchOp::AddState(s) => {
            if out.program.state(&s.name).is_some() {
                return Err(duplicate("state", &s.name));
            }
            out.program.states.push(s.clone());
        }
        PatchOp::AddHeader(h) => {
            if out.headers.iter().any(|x| x.name == h.name) {
                return Err(duplicate("header", &h.name));
            }
            out.headers.push(h.clone());
        }
        PatchOp::AddTable(t, pos) => {
            if out.program.table(&t.name).is_some() {
                return Err(duplicate("table", &t.name));
            }
            let idx = match pos {
                TablePosition::Append => out.program.tables.len(),
                TablePosition::Before(other) => out
                    .program
                    .tables
                    .iter()
                    .position(|x| &x.name == other)
                    .ok_or_else(|| missing("table", other))?,
                TablePosition::After(other) => {
                    out.program
                        .tables
                        .iter()
                        .position(|x| &x.name == other)
                        .ok_or_else(|| missing("table", other))?
                        + 1
                }
            };
            out.program.tables.insert(idx, t.clone());
        }
        PatchOp::AddService(s) => {
            if out.program.services.iter().any(|x| x.name == s.name) {
                return Err(duplicate("service", &s.name));
            }
            out.program.services.push(s.clone());
        }
        PatchOp::AddHandler(h) => {
            if out.program.handler(&h.name).is_some() {
                return Err(duplicate("handler", &h.name));
            }
            out.program.handlers.push(h.clone());
        }
        PatchOp::RemoveTable(n) => {
            let before = out.program.tables.len();
            out.program.tables.retain(|t| &t.name != n);
            if out.program.tables.len() == before {
                return Err(missing("table", n));
            }
        }
        PatchOp::RemoveState(n) => {
            let before = out.program.states.len();
            out.program.states.retain(|s| &s.name != n);
            if out.program.states.len() == before {
                return Err(missing("state", n));
            }
        }
        PatchOp::RemoveHeader(n) => {
            let before = out.headers.len();
            out.headers.retain(|h| &h.name != n);
            if out.headers.len() == before {
                return Err(missing("header", n));
            }
        }
        PatchOp::RemoveHandler(n) => {
            let before = out.program.handlers.len();
            out.program.handlers.retain(|h| &h.name != n);
            if out.program.handlers.len() == before {
                return Err(missing("handler", n));
            }
        }
        PatchOp::RemoveService(n) => {
            let before = out.program.services.len();
            out.program.services.retain(|s| &s.name != n);
            if out.program.services.len() == before {
                return Err(missing("service", n));
            }
        }
        PatchOp::RemoveTablesMatching(pat) => {
            // Pattern removals are allowed to match nothing: patches written
            // against a family of deployments use them for cleanup.
            out.program.tables.retain(|t| !glob_match(pat, &t.name));
        }
        PatchOp::ResizeTable(n, size) => {
            if *size == 0 {
                return Err(FlexError::Patch(format!(
                    "patch `{patch_name}`: cannot resize table `{n}` to 0"
                )));
            }
            let t = out
                .program
                .tables
                .iter_mut()
                .find(|t| &t.name == n)
                .ok_or_else(|| missing("table", n))?;
            t.size = *size;
        }
        PatchOp::SetDefault(n, call) => {
            let t = out
                .program
                .tables
                .iter_mut()
                .find(|t| &t.name == n)
                .ok_or_else(|| missing("table", n))?;
            let Some(decl) = t.action(&call.action) else {
                return Err(FlexError::Patch(format!(
                    "patch `{patch_name}`: table `{n}` has no action `{}`",
                    call.action
                )));
            };
            if decl.params.len() != call.args.len() {
                return Err(FlexError::Patch(format!(
                    "patch `{patch_name}`: default `{}` arity mismatch",
                    call.action
                )));
            }
            t.default_action = Some(call.clone());
        }
        PatchOp::ModifyHandler(n, mode, body) => {
            let h = out
                .program
                .handlers
                .iter_mut()
                .find(|h| &h.name == n)
                .ok_or_else(|| missing("handler", n))?;
            match mode {
                ModifyMode::Prepend => {
                    let mut nb = body.clone();
                    nb.append(&mut h.body);
                    h.body = nb;
                }
                ModifyMode::Append => h.body.extend(body.iter().cloned()),
                ModifyMode::Replace => h.body = body.clone(),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    fn base() -> ProgramBundle {
        let file = parse_source(
            "program fw kind switch {
               counter dropped;
               table acl {
                 key { ipv4.src : exact; }
                 action deny() { drop(); }
                 action allow() { forward(1); }
                 default allow();
                 size 128;
               }
               table tmp_probe { key { ipv4.dst : exact; } size 4; }
               table tmp_trace { key { tcp.dport : exact; } size 4; }
               handler ingress(pkt) { apply acl; forward(1); }
             }",
        )
        .unwrap();
        ProgramBundle {
            headers: file.headers,
            program: file.programs.into_iter().next().unwrap(),
        }
    }

    #[test]
    fn parse_and_apply_full_patch() {
        let patch = parse_patch(
            r#"patch hardening on fw {
                 add map seen : map<u64, u64>[256];
                 add counter syns;
                 add table rate before acl {
                   key { ipv4.src : exact; }
                   action limit() { drop(); }
                   size 64;
                 }
                 add handler egress(pkt) { forward(2); }
                 modify handler ingress { prepend { if (valid(tcp)) { count(syns); } } }
                 resize table acl to 512;
                 set_default acl deny();
                 remove tables matching "tmp_*";
               }"#,
        )
        .unwrap();
        assert_eq!(patch.name, "hardening");
        assert_eq!(patch.target, "fw");
        assert_eq!(patch.ops.len(), 8);

        let out = apply_patch(&base(), &patch).unwrap();
        // New table inserted before acl.
        assert_eq!(out.program.tables[0].name, "rate");
        assert_eq!(out.program.tables[1].name, "acl");
        // tmp_* removed.
        assert!(out.program.table("tmp_probe").is_none());
        assert!(out.program.table("tmp_trace").is_none());
        // acl resized, default switched.
        let acl = out.program.table("acl").unwrap();
        assert_eq!(acl.size, 512);
        assert_eq!(acl.default_action.as_ref().unwrap().action, "deny");
        // Handler prepended.
        let h = out.program.handler("ingress").unwrap();
        assert!(matches!(&h.body[0], Stmt::If(..)));
        assert_eq!(h.body.len(), 3);
        // New handler and state.
        assert!(out.program.handler("egress").is_some());
        assert!(out.program.state("seen").is_some());
        assert!(out.program.state("syns").is_some());
        // Patched result still type checks and verifies.
        let reg = crate::headers::HeaderRegistry::with_user_headers(&out.headers).unwrap();
        crate::typecheck::check_program(&out.program, &reg).unwrap();
        crate::verifier::verify_program(&out.program, &reg).unwrap();
    }

    #[test]
    fn wrong_target_rejected() {
        let patch = parse_patch("patch x on other { remove table acl; }").unwrap();
        assert!(apply_patch(&base(), &patch).is_err());
    }

    #[test]
    fn missing_and_duplicate_names_rejected() {
        let p = parse_patch("patch x on fw { remove table nope; }").unwrap();
        assert!(apply_patch(&base(), &p).is_err());
        let p = parse_patch("patch x on fw { add counter dropped; }").unwrap();
        assert!(apply_patch(&base(), &p).is_err());
        let p = parse_patch("patch x on fw { modify handler nope { append { drop(); } } }")
            .unwrap();
        assert!(apply_patch(&base(), &p).is_err());
        let p = parse_patch(
            "patch x on fw { add table t after nope { key { ipv4.src : exact; } size 4; } }",
        )
        .unwrap();
        assert!(apply_patch(&base(), &p).is_err());
    }

    #[test]
    fn set_default_validates_action() {
        let p = parse_patch("patch x on fw { set_default acl nope(); }").unwrap();
        assert!(apply_patch(&base(), &p).is_err());
        let p = parse_patch("patch x on fw { set_default acl deny(7); }").unwrap();
        assert!(apply_patch(&base(), &p).is_err(), "arity mismatch");
    }

    #[test]
    fn replace_and_append_handler_modes() {
        let p = parse_patch(
            "patch x on fw { modify handler ingress { replace { drop(); } } }",
        )
        .unwrap();
        let out = apply_patch(&base(), &p).unwrap();
        assert_eq!(out.program.handler("ingress").unwrap().body, vec![Stmt::Drop]);

        let p = parse_patch(
            "patch x on fw { modify handler ingress { append { punt(); } } }",
        )
        .unwrap();
        let out = apply_patch(&base(), &p).unwrap();
        let body = &out.program.handler("ingress").unwrap().body;
        assert!(matches!(body.last(), Some(Stmt::Punt)));
    }

    #[test]
    fn add_table_after_position() {
        let p = parse_patch(
            "patch x on fw { add table t2 after acl { key { ipv4.src : exact; } size 4; } }",
        )
        .unwrap();
        let out = apply_patch(&base(), &p).unwrap();
        let names: Vec<_> = out.program.tables.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["acl", "t2", "tmp_probe", "tmp_trace"]);
    }

    #[test]
    fn glob_matcher() {
        assert!(glob_match("tmp_*", "tmp_probe"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("a?c", "abc"));
        assert!(!glob_match("a?c", "abbc"));
        assert!(!glob_match("tmp_*", "temp"));
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
        assert!(glob_match("*_*", "a_b"));
    }

    #[test]
    fn remove_header_roundtrip() {
        let mut b = base();
        b.headers.push(HeaderDecl {
            name: "vxlan".into(),
            fields: vec![FieldDecl {
                name: "vni".into(),
                width: 24,
            }],
            follows: None,
        });
        let p = parse_patch("patch x on fw { remove header vxlan; }").unwrap();
        let out = apply_patch(&b, &p).unwrap();
        assert!(out.headers.is_empty());
        assert!(apply_patch(&out, &p).is_err(), "double remove fails");
    }

    #[test]
    fn resize_to_zero_rejected() {
        let p = parse_patch("patch x on fw { resize table acl to 0; }").unwrap();
        assert!(apply_patch(&base(), &p).is_err());
    }
}
