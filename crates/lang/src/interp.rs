//! The FlexBPF reference interpreter.
//!
//! The interpreter executes a handler against a packet, delegating all
//! *stateful* operations (table lookups, maps, registers, counters, meters,
//! dRPC invocations) to an [`ExecEnv`] implemented by the device models in
//! `flexnet-dataplane`. This split mirrors the paper's observation (§3.1)
//! that "individual devices have drastically different ways of implementing
//! this state": the program sees logical key/value maps; the device chooses
//! the encoding.
//!
//! Execution also counts abstract operations, which device models convert
//! into per-packet latency using their own cost models.

use crate::ast::*;
use crate::headers::HeaderRegistry;
use flexnet_types::{FlexError, Packet, Result, Trap, Verdict};
use std::collections::BTreeMap;

/// Sentinel gas budget meaning "no limit". The metering checkpoints still
/// run (so metered and unmetered execution share one code path and one op
/// accounting), but the budget can never be exceeded.
pub const GAS_UNLIMITED: u64 = u64::MAX;

/// The widest table key (in field count) either engine will build at
/// runtime. Statically-typechecked programs never get near it; a runtime
/// reconfiguration that grafts a wider table onto a live program trips
/// [`Trap::KeyOverflow`] instead of unbounded key-build work.
pub const MAX_TABLE_KEY_WIDTH: usize = 16;

/// The environment a program executes against: the device's state plane.
pub trait ExecEnv {
    /// Looks up `keys` (one value per declared table key, in declaration
    /// order) in `table`, returning the matched entry's action on a hit.
    fn table_lookup(&mut self, table: &str, keys: &[u64]) -> Option<ActionCall>;
    /// Reads a map; `None` on a miss.
    fn map_get(&mut self, map: &str, key: u64) -> Option<u64>;
    /// Inserts/updates a map entry. May fail when the map is full.
    fn map_put(&mut self, map: &str, key: u64, value: u64) -> Result<()>;
    /// Deletes a map entry (no-op on a miss).
    fn map_del(&mut self, map: &str, key: u64);
    /// Reads a register cell. The verifier proved `idx` in bounds against
    /// the *install-time* layout; a runtime reconfiguration can shrink the
    /// register afterwards, so the environment re-checks and returns
    /// [`Trap::StateOutOfBounds`] when the static proof no longer holds.
    fn reg_read(&mut self, reg: &str, idx: u64) -> Result<u64>;
    /// Writes a register cell (same bounds contract as [`ExecEnv::reg_read`]).
    fn reg_write(&mut self, reg: &str, idx: u64, val: u64) -> Result<()>;
    /// Adds to a counter.
    fn counter_add(&mut self, counter: &str, pkts: u64, bytes: u64);
    /// Reads a counter's packet count.
    fn counter_read(&mut self, counter: &str) -> u64;
    /// Checks a meter for `key`; `true` when conforming.
    fn meter_check(&mut self, meter: &str, key: u64) -> bool;
    /// Invokes a dRPC service (paper §3.4). Fire-and-forget at the data
    /// plane; delivery is the device/controller's concern.
    fn invoke_service(&mut self, service: &str, args: &[u64]);
}

/// The result of running one handler over one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// The verdict, or `None` when the handler fell through / `return`ed
    /// without one (the device applies its default behaviour), and always
    /// `None` when the packet trapped.
    pub verdict: Option<Verdict>,
    /// Abstract operations executed (for device latency models). On a trap
    /// this is the gas consumed up to and including the trapping operation,
    /// identical across both execution engines.
    pub ops: u64,
    /// The trap that ended execution, if any. A trapped packet carries no
    /// verdict; the device fails closed (drops) and accounts the trap.
    pub trap: Option<Trap>,
}

impl ExecOutcome {
    /// Whether execution ended in a trap.
    pub fn trapped(&self) -> bool {
        self.trap.is_some()
    }
}

/// Deterministic FNV-1a mixing used by the `hash()` builtin.
pub fn hash_values(values: &[u64]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in values {
        for i in 0..8 {
            h ^= (v >> (i * 8)) & 0xff;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Executes `handler` of `program` over `pkt` against `env` with no gas
/// limit. See [`execute_metered`] for the sandboxed form.
pub fn execute(
    program: &Program,
    handler: &str,
    pkt: &mut Packet,
    env: &mut dyn ExecEnv,
    headers: &HeaderRegistry,
) -> Result<ExecOutcome> {
    execute_metered(program, handler, pkt, env, headers, GAS_UNLIMITED)
}

/// Executes `handler` of `program` over `pkt` against `env` under a gas
/// budget of `gas` abstract operations.
///
/// The program must have passed the type checker and verifier; the
/// interpreter still fails gracefully on internal inconsistencies rather
/// than panicking, since runtime reconfiguration can race a packet with a
/// program swap in adversarial tests. Faults attributable to the packet or
/// to a post-verification reconfiguration are returned as `Ok` outcomes
/// carrying a [`Trap`] (verdict `None`); only faults that indict the
/// *program image* itself (unknown handler, dangling table reference)
/// surface as `Err`.
///
/// Gas is charged at exactly the same checkpoints as the bytecode VM, so a
/// trapping packet exhausts at the identical `ops` count in both engines —
/// the differential suite pins this.
pub fn execute_metered(
    program: &Program,
    handler: &str,
    pkt: &mut Packet,
    env: &mut dyn ExecEnv,
    headers: &HeaderRegistry,
    gas: u64,
) -> Result<ExecOutcome> {
    let h = program
        .handler(handler)
        .ok_or_else(|| FlexError::NotFound(format!("handler `{handler}`")))?;
    let mut interp = Interp {
        program,
        env,
        headers,
        ops: 0,
        gas,
        locals: BTreeMap::new(),
    };
    match interp.run_block(&h.body, pkt) {
        Ok(flow) => {
            let verdict = match flow {
                Flow::Verdict(v) => Some(v),
                Flow::Continue | Flow::Return => None,
            };
            Ok(ExecOutcome {
                verdict,
                ops: interp.ops,
                trap: None,
            })
        }
        // Traps unwind to the packet boundary and become a fail-closed
        // outcome; everything else is a real error for the caller.
        Err(FlexError::Trap(t)) => Ok(ExecOutcome {
            verdict: None,
            ops: interp.ops,
            trap: Some(t),
        }),
        Err(e) => Err(e),
    }
}

enum Flow {
    Continue,
    Return,
    Verdict(Verdict),
}

struct Interp<'a> {
    program: &'a Program,
    env: &'a mut dyn ExecEnv,
    headers: &'a HeaderRegistry,
    ops: u64,
    gas: u64,
    locals: BTreeMap<String, u64>,
}

impl<'a> Interp<'a> {
    /// Charges `n` gas. Both engines charge at the same checkpoints with
    /// the same amounts, so exhaustion fires at the identical cumulative
    /// count — trap/gas parity is by construction, not by test luck.
    fn tick(&mut self, n: u64) -> Result<()> {
        self.ops += n;
        if self.ops > self.gas {
            return Err(Trap::GasExhausted { limit: self.gas }.into());
        }
        Ok(())
    }

    fn run_block(&mut self, block: &Block, pkt: &mut Packet) -> Result<Flow> {
        for stmt in block {
            match self.run_stmt(stmt, pkt)? {
                Flow::Continue => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Continue)
    }

    /// Each arm charges gas exactly where the bytecode VM's corresponding
    /// instruction does — operands first, the operation's own tick at the
    /// store/branch/env-call point — so any trap (gas or fault) fires at
    /// the identical cumulative count in both engines. Per-construct op
    /// *totals* are unchanged; only the checkpoint positions are aligned.
    fn run_stmt(&mut self, stmt: &Stmt, pkt: &mut Packet) -> Result<Flow> {
        match stmt {
            Stmt::Let(n, e) | Stmt::AssignLocal(n, e) => {
                let v = self.eval(e, pkt)?;
                self.tick(1)?; // StoreLocal
                self.locals.insert(n.clone(), v);
                Ok(Flow::Continue)
            }
            Stmt::AssignField(p, e) => {
                let v = self.eval(e, pkt)?;
                self.tick(1)?; // StoreField
                pkt.set_field(&p.dotted(), v);
                Ok(Flow::Continue)
            }
            Stmt::MapPut(m, k, val) => {
                let k = self.eval(k, pkt)?;
                let v = self.eval(val, pkt)?;
                self.tick(1)?; // MapPut
                // A full map drops the insert; data planes degrade, not trap.
                let _ = self.env.map_put(m, k, v);
                Ok(Flow::Continue)
            }
            Stmt::MapDelete(m, k) => {
                let k = self.eval(k, pkt)?;
                self.tick(1)?; // MapDelete
                self.env.map_del(m, k);
                Ok(Flow::Continue)
            }
            Stmt::RegWrite(r, i, val) => {
                let i = self.eval(i, pkt)?;
                let v = self.eval(val, pkt)?;
                self.tick(1)?; // RegWrite
                self.env.reg_write(r, i, v)?;
                Ok(Flow::Continue)
            }
            Stmt::Count(c) => {
                self.tick(1)?; // Count
                self.env.counter_add(c, 1, pkt.wire_len() as u64);
                Ok(Flow::Continue)
            }
            Stmt::If(cond, then, els) => {
                let c = self.eval(cond, pkt)?;
                self.tick(1)?; // BranchIfZero
                if c != 0 {
                    self.run_block(then, pkt)
                } else {
                    self.run_block(els, pkt)
                }
            }
            Stmt::Repeat(n, body) => {
                self.tick(1)?; // LoopEnter
                for _ in 0..*n {
                    match self.run_block(body, pkt)? {
                        Flow::Continue => {}
                        other => return Ok(other),
                    }
                }
                Ok(Flow::Continue)
            }
            Stmt::Apply(tname) => {
                // 1 for the statement + 3 for key build, lookup, dispatch —
                // one charge, like the VM's single Apply instruction.
                self.tick(4)?;
                let table = self
                    .program
                    .table(tname)
                    .ok_or_else(|| FlexError::Sim(format!("apply of unknown table `{tname}`")))?
                    .clone();
                if table.keys.len() > MAX_TABLE_KEY_WIDTH {
                    return Err(Trap::KeyOverflow {
                        table: tname.clone(),
                        width: table.keys.len() as u64,
                        max: MAX_TABLE_KEY_WIDTH as u64,
                    }
                    .into());
                }
                let keys: Vec<u64> = table
                    .keys
                    .iter()
                    .map(|k| pkt.get_field(&k.field.dotted()).unwrap_or(0))
                    .collect();
                let call = self
                    .env
                    .table_lookup(tname, &keys)
                    .or_else(|| table.default_action.clone());
                if let Some(call) = call {
                    let Some(action) = table.action(&call.action) else {
                        return Err(Trap::UnknownAction {
                            table: tname.clone(),
                            action: call.action.clone(),
                        }
                        .into());
                    };
                    if action.params.len() != call.args.len() {
                        return Err(Trap::ArityMismatch {
                            table: tname.clone(),
                            action: call.action.clone(),
                        }
                        .into());
                    }
                    // Action bodies are lexically scoped (the type checker
                    // gives them a fresh params-only scope), so neither the
                    // params nor any `let` inside the body may leak into the
                    // caller's locals: snapshot and restore the whole frame.
                    let saved = self.locals.clone();
                    for ((p, _), v) in action.params.iter().zip(&call.args) {
                        self.locals.insert(p.clone(), *v);
                    }
                    let body = action.body.clone();
                    let flow = self.run_block(&body, pkt)?;
                    self.locals = saved;
                    return Ok(flow);
                }
                Ok(Flow::Continue)
            }
            Stmt::Drop => {
                self.tick(1)?; // HaltVerdict
                Ok(Flow::Verdict(Verdict::Drop))
            }
            Stmt::Forward(e) => {
                let port = self.eval(e, pkt)?;
                self.tick(1)?; // HaltForward
                Ok(Flow::Verdict(Verdict::Forward(port as u16)))
            }
            Stmt::Punt => {
                self.tick(1)?; // HaltVerdict
                Ok(Flow::Verdict(Verdict::ToController))
            }
            Stmt::Recirculate => {
                self.tick(1)?; // HaltVerdict
                Ok(Flow::Verdict(Verdict::Recirculate))
            }
            Stmt::Invoke(svc, args) => {
                let vals = args
                    .iter()
                    .map(|a| self.eval(a, pkt))
                    .collect::<Result<Vec<_>>>()?;
                self.tick(1)?; // Invoke
                self.env.invoke_service(svc, &vals);
                Ok(Flow::Continue)
            }
            Stmt::AddHeader(proto) => {
                self.tick(1)?; // AddHeader
                if !pkt.has_header(proto) {
                    let mut fields = BTreeMap::new();
                    if let Some(decl) = self.headers.decl(proto) {
                        for f in &decl.fields {
                            fields.insert(f.name.clone(), 0);
                        }
                    }
                    let after = self
                        .headers
                        .decl(proto)
                        .and_then(|d| d.follows.as_ref())
                        .map(|f| f.prev_proto.clone());
                    pkt.insert_header(
                        flexnet_types::Header {
                            proto: proto.clone(),
                            fields,
                        },
                        after.as_deref(),
                    );
                }
                Ok(Flow::Continue)
            }
            Stmt::RemoveHeader(proto) => {
                self.tick(1)?; // RemoveHeader
                pkt.remove_header(proto);
                Ok(Flow::Continue)
            }
            Stmt::Return => {
                self.tick(1)?; // HaltNone
                Ok(Flow::Return)
            }
        }
    }

    /// Like [`Interp::run_stmt`], charges each node's tick at the position
    /// of its compiled instruction (operands before operators), so gas
    /// checkpoints line up with the bytecode VM exactly.
    fn eval(&mut self, e: &Expr, pkt: &Packet) -> Result<u64> {
        Ok(match e {
            Expr::Int(v) => {
                self.tick(1)?;
                *v
            }
            Expr::Local(n) => {
                self.tick(1)?;
                self.locals
                    .get(n)
                    .copied()
                    .ok_or_else(|| FlexError::Sim(format!("unbound local `{n}`")))?
            }
            Expr::Field(p) => {
                self.tick(1)?;
                pkt.get_field(&p.dotted()).unwrap_or(0)
            }
            Expr::Valid(proto) => {
                self.tick(1)?;
                pkt.has_header(proto) as u64
            }
            Expr::MapGet(m, k) => {
                let k = self.eval(k, pkt)?;
                self.tick(1)?;
                self.env.map_get(m, k).unwrap_or(0)
            }
            Expr::MapHas(m, k) => {
                let k = self.eval(k, pkt)?;
                self.tick(1)?;
                self.env.map_get(m, k).is_some() as u64
            }
            Expr::RegRead(r, i) => {
                let i = self.eval(i, pkt)?;
                self.tick(1)?;
                self.env.reg_read(r, i)?
            }
            Expr::CounterRead(c) => {
                self.tick(1)?;
                self.env.counter_read(c)
            }
            Expr::MeterCheck(m, k) => {
                let k = self.eval(k, pkt)?;
                self.tick(1)?;
                self.env.meter_check(m, k) as u64
            }
            Expr::Hash(args) => {
                let vals = args
                    .iter()
                    .map(|a| self.eval(a, pkt))
                    .collect::<Result<Vec<_>>>()?;
                self.tick(1)?;
                hash_values(&vals)
            }
            Expr::PktLen => {
                self.tick(1)?;
                pkt.wire_len() as u64
            }
            Expr::Bin(op, l, r) => {
                let a = self.eval(l, pkt)?;
                // The `&&`/`||` node's tick sits between the operands
                // (the VM's probe instruction); other operators tick
                // after both (the VM's Bin instruction).
                match op {
                    BinOp::LAnd | BinOp::LOr => {
                        self.tick(1)?;
                        match op {
                            BinOp::LAnd if a == 0 => return Ok(0),
                            BinOp::LOr if a != 0 => return Ok(1),
                            _ => {}
                        }
                        let b = self.eval(r, pkt)?;
                        (b != 0) as u64
                    }
                    _ => {
                        let b = self.eval(r, pkt)?;
                        self.tick(1)?;
                        eval_bin(*op, a, b)?
                    }
                }
            }
            Expr::Un(op, v) => {
                let a = self.eval(v, pkt)?;
                self.tick(1)?;
                match op {
                    UnOp::Not => (a == 0) as u64,
                    UnOp::BitNot => !a,
                    UnOp::Neg => a.wrapping_neg(),
                }
            }
        })
    }
}

/// Wrapping u64 semantics; division/modulo by zero raise a typed
/// [`Trap::DivisionByZero`] (shift amounts ≥ 64 remain defined as 0 —
/// they lose information, they don't indict the packet). Shared with the
/// bytecode VM so both engines agree bit for bit, traps included.
pub(crate) fn eval_bin(op: BinOp, a: u64, b: u64) -> Result<u64> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => match a.checked_div(b) {
            Some(v) => v,
            None => return Err(Trap::DivisionByZero { op: "/" }.into()),
        },
        BinOp::Mod => match a.checked_rem(b) {
            Some(v) => v,
            None => return Err(Trap::DivisionByZero { op: "%" }.into()),
        },
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= 64 {
                0
            } else {
                a << b
            }
        }
        BinOp::Shr => {
            if b >= 64 {
                0
            } else {
                a >> b
            }
        }
        BinOp::Eq => (a == b) as u64,
        BinOp::Ne => (a != b) as u64,
        BinOp::Lt => (a < b) as u64,
        BinOp::Le => (a <= b) as u64,
        BinOp::Gt => (a > b) as u64,
        BinOp::Ge => (a >= b) as u64,
        BinOp::LAnd => ((a != 0) && (b != 0)) as u64,
        BinOp::LOr => ((a != 0) || (b != 0)) as u64,
    })
}

/// A plain in-memory [`ExecEnv`] backed by hash maps, used by unit tests and
/// by the host device model (eBPF-style software state).
#[derive(Debug, Default)]
pub struct MemEnv {
    /// Table entries: table name → list of (keys, action) exact entries.
    pub tables: BTreeMap<String, Vec<(Vec<u64>, ActionCall)>>,
    /// Map state.
    pub maps: BTreeMap<String, BTreeMap<u64, u64>>,
    /// Map capacity limits (optional; absent = unbounded).
    pub map_caps: BTreeMap<String, usize>,
    /// Register state.
    pub regs: BTreeMap<String, Vec<u64>>,
    /// Declared register sizes (optional). When a register has a declared
    /// size, accesses are bounds-checked and out-of-range indices trap;
    /// without one the register auto-grows (legacy test convenience).
    pub reg_sizes: BTreeMap<String, u64>,
    /// Counter state: (packets, bytes).
    pub counters: BTreeMap<String, (u64, u64)>,
    /// Meter token state: meter name → key → tokens remaining.
    pub meters: BTreeMap<String, BTreeMap<u64, u64>>,
    /// Default tokens granted to a fresh meter key.
    pub meter_default_tokens: u64,
    /// Recorded dRPC invocations.
    pub invocations: Vec<(String, Vec<u64>)>,
}

impl MemEnv {
    /// An empty environment with a default meter budget.
    pub fn new() -> MemEnv {
        MemEnv {
            meter_default_tokens: 100,
            ..MemEnv::default()
        }
    }

    /// Installs an exact-match entry.
    pub fn install_entry(&mut self, table: &str, keys: Vec<u64>, action: ActionCall) {
        self.tables.entry(table.to_string()).or_default().push((keys, action));
    }
}

impl ExecEnv for MemEnv {
    fn table_lookup(&mut self, table: &str, keys: &[u64]) -> Option<ActionCall> {
        self.tables
            .get(table)?
            .iter()
            .find(|(k, _)| k.as_slice() == keys)
            .map(|(_, a)| a.clone())
    }

    fn map_get(&mut self, map: &str, key: u64) -> Option<u64> {
        self.maps.get(map)?.get(&key).copied()
    }

    fn map_put(&mut self, map: &str, key: u64, value: u64) -> Result<()> {
        let m = self.maps.entry(map.to_string()).or_default();
        if let Some(cap) = self.map_caps.get(map) {
            if m.len() >= *cap && !m.contains_key(&key) {
                return Err(FlexError::Sim(format!("map `{map}` full")));
            }
        }
        m.insert(key, value);
        Ok(())
    }

    fn map_del(&mut self, map: &str, key: u64) {
        if let Some(m) = self.maps.get_mut(map) {
            m.remove(&key);
        }
    }

    fn reg_read(&mut self, reg: &str, idx: u64) -> Result<u64> {
        if let Some(&size) = self.reg_sizes.get(reg) {
            if idx >= size {
                return Err(Trap::StateOutOfBounds {
                    kind: "register",
                    name: reg.to_string(),
                    index: idx,
                    size,
                }
                .into());
            }
        }
        Ok(self
            .regs
            .get(reg)
            .and_then(|r| r.get(idx as usize))
            .copied()
            .unwrap_or(0))
    }

    fn reg_write(&mut self, reg: &str, idx: u64, val: u64) -> Result<()> {
        if let Some(&size) = self.reg_sizes.get(reg) {
            if idx >= size {
                return Err(Trap::StateOutOfBounds {
                    kind: "register",
                    name: reg.to_string(),
                    index: idx,
                    size,
                }
                .into());
            }
        }
        let r = self.regs.entry(reg.to_string()).or_default();
        if r.len() <= idx as usize {
            r.resize(idx as usize + 1, 0);
        }
        r[idx as usize] = val;
        Ok(())
    }

    fn counter_add(&mut self, counter: &str, pkts: u64, bytes: u64) {
        let c = self.counters.entry(counter.to_string()).or_insert((0, 0));
        c.0 += pkts;
        c.1 += bytes;
    }

    fn counter_read(&mut self, counter: &str) -> u64 {
        self.counters.get(counter).map(|c| c.0).unwrap_or(0)
    }

    fn meter_check(&mut self, meter: &str, key: u64) -> bool {
        let default = self.meter_default_tokens;
        let tokens = self
            .meters
            .entry(meter.to_string())
            .or_default()
            .entry(key)
            .or_insert(default);
        if *tokens > 0 {
            *tokens -= 1;
            true
        } else {
            false
        }
    }

    fn invoke_service(&mut self, service: &str, args: &[u64]) {
        self.invocations.push((service.to_string(), args.to_vec()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str, pkt: &mut Packet, env: &mut MemEnv) -> ExecOutcome {
        let p = parse_program(src).unwrap();
        let headers = HeaderRegistry::builtins();
        crate::typecheck::check_program(&p, &headers).unwrap();
        execute(&p, "ingress", pkt, env, &headers).unwrap()
    }

    #[test]
    fn forward_verdict() {
        let mut pkt = Packet::tcp(1, 1, 2, 3, 4, 0);
        let mut env = MemEnv::new();
        let out = run(
            "program p { handler ingress(pkt) { forward(7); } }",
            &mut pkt,
            &mut env,
        );
        assert_eq!(out.verdict, Some(Verdict::Forward(7)));
        assert!(out.ops >= 2);
    }

    #[test]
    fn map_and_counter_state() {
        let mut pkt = Packet::tcp(1, 10, 2, 3, 4, 0);
        let mut env = MemEnv::new();
        let out = run(
            "program p {
               map m : map<u32, u32>[16];
               counter c;
               handler ingress(pkt) {
                 map_put(m, ipv4.src, map_get(m, ipv4.src) + 1);
                 count(c);
                 if (map_get(m, ipv4.src) >= 1) { drop(); }
                 forward(1);
               }
             }",
            &mut pkt,
            &mut env,
        );
        assert_eq!(out.verdict, Some(Verdict::Drop));
        assert_eq!(env.maps["m"][&10], 1);
        assert_eq!(env.counters["c"].0, 1);
    }

    #[test]
    fn table_hit_runs_action_with_params() {
        let mut pkt = Packet::tcp(1, 99, 2, 3, 4, 0);
        let mut env = MemEnv::new();
        env.install_entry(
            "acl",
            vec![99],
            ActionCall {
                action: "set_port".into(),
                args: vec![42],
            },
        );
        let out = run(
            "program p {
               table acl {
                 key { ipv4.src : exact; }
                 action set_port(port: u16) { forward(port); }
                 action deny() { drop(); }
                 default deny();
                 size 8;
               }
               handler ingress(pkt) { apply acl; }
             }",
            &mut pkt,
            &mut env,
        );
        assert_eq!(out.verdict, Some(Verdict::Forward(42)));
    }

    #[test]
    fn table_miss_runs_default() {
        let mut pkt = Packet::tcp(1, 1, 2, 3, 4, 0);
        let mut env = MemEnv::new();
        let out = run(
            "program p {
               table acl {
                 key { ipv4.src : exact; }
                 action deny() { drop(); }
                 default deny();
                 size 8;
               }
               handler ingress(pkt) { apply acl; forward(1); }
             }",
            &mut pkt,
            &mut env,
        );
        assert_eq!(out.verdict, Some(Verdict::Drop));
    }

    #[test]
    fn table_miss_without_default_falls_through() {
        let mut pkt = Packet::tcp(1, 1, 2, 3, 4, 0);
        let mut env = MemEnv::new();
        let out = run(
            "program p {
               table acl { key { ipv4.src : exact; } size 8; }
               handler ingress(pkt) { apply acl; forward(9); }
             }",
            &mut pkt,
            &mut env,
        );
        assert_eq!(out.verdict, Some(Verdict::Forward(9)));
    }

    #[test]
    fn registers_and_repeat() {
        let mut pkt = Packet::tcp(1, 1, 2, 3, 4, 0);
        let mut env = MemEnv::new();
        run(
            "program p {
               register r : u64[4];
               handler ingress(pkt) {
                 repeat (3) { reg_write(r, 0, reg_read(r, 0) + 2); }
                 forward(1);
               }
             }",
            &mut pkt,
            &mut env,
        );
        assert_eq!(env.regs["r"][0], 6);
    }

    #[test]
    fn meter_rejects_after_tokens_exhausted() {
        let mut env = MemEnv::new();
        env.meter_default_tokens = 2;
        let src = "program p {
            meter lim rate 1 burst 2;
            handler ingress(pkt) {
              if (meter_check(lim, ipv4.src)) { forward(1); } else { drop(); }
            }
          }";
        let mut pkt = Packet::tcp(1, 5, 2, 3, 4, 0);
        assert_eq!(run(src, &mut pkt, &mut env).verdict, Some(Verdict::Forward(1)));
        assert_eq!(run(src, &mut pkt, &mut env).verdict, Some(Verdict::Forward(1)));
        assert_eq!(run(src, &mut pkt, &mut env).verdict, Some(Verdict::Drop));
    }

    #[test]
    fn header_add_remove_and_validity() {
        let mut pkt = Packet::tcp(1, 1, 2, 3, 4, 0);
        let mut env = MemEnv::new();
        let out = run(
            "program p { handler ingress(pkt) {
               add_header(vlan);
               vlan.vid = 42;
               if (valid(vlan)) { meta.tagged = 1; }
               remove_header(vlan);
               if (!valid(vlan)) { forward(2); }
               drop();
             } }",
            &mut pkt,
            &mut env,
        );
        assert_eq!(out.verdict, Some(Verdict::Forward(2)));
        assert_eq!(pkt.metadata.get("tagged"), Some(&1));
        assert!(!pkt.has_header("vlan"));
    }

    #[test]
    fn vlan_inserted_after_eth() {
        let mut pkt = Packet::tcp(1, 1, 2, 3, 4, 0);
        let mut env = MemEnv::new();
        run(
            "program p { handler ingress(pkt) { add_header(vlan); forward(1); } }",
            &mut pkt,
            &mut env,
        );
        assert_eq!(pkt.headers[1].proto, "vlan");
    }

    #[test]
    fn short_circuit_logical_ops() {
        // map_get on the rhs of && must not run when lhs is false: use a
        // meter with 0 tokens as an observable side effect.
        let mut env = MemEnv::new();
        env.meter_default_tokens = 5;
        let mut pkt = Packet::tcp(1, 1, 2, 3, 4, 0);
        run(
            "program p {
               meter lim rate 1 burst 1;
               handler ingress(pkt) {
                 if (1 == 2 && meter_check(lim, 0)) { drop(); }
                 forward(1);
               }
             }",
            &mut pkt,
            &mut env,
        );
        assert!(env.meters.get("lim").is_none_or(|m| m.is_empty()));
    }

    #[test]
    fn punt_recirculate_return() {
        let mut env = MemEnv::new();
        let mut pkt = Packet::tcp(1, 1, 2, 3, 4, 0);
        let out = run(
            "program p { handler ingress(pkt) { punt(); } }",
            &mut pkt,
            &mut env,
        );
        assert_eq!(out.verdict, Some(Verdict::ToController));
        let out = run(
            "program p { handler ingress(pkt) { recirculate(); } }",
            &mut pkt,
            &mut env,
        );
        assert_eq!(out.verdict, Some(Verdict::Recirculate));
        let out = run(
            "program p { handler ingress(pkt) { return; drop(); } }",
            &mut pkt,
            &mut env,
        );
        assert_eq!(out.verdict, None, "return yields no verdict");
    }

    #[test]
    fn invoke_records_service_call() {
        let mut env = MemEnv::new();
        let mut pkt = Packet::tcp(1, 1, 2, 3, 4, 0);
        run(
            "program p {
               service require mig(dst: u32, tag: u32);
               handler ingress(pkt) { invoke mig(7, ipv4.src); forward(1); }
             }",
            &mut pkt,
            &mut env,
        );
        assert_eq!(env.invocations, vec![("mig".to_string(), vec![7, 1])]);
    }

    #[test]
    fn division_by_zero_traps_shifts_stay_defined() {
        assert_eq!(
            eval_bin(BinOp::Div, 5, 0),
            Err(Trap::DivisionByZero { op: "/" }.into())
        );
        assert_eq!(
            eval_bin(BinOp::Mod, 5, 0),
            Err(Trap::DivisionByZero { op: "%" }.into())
        );
        assert_eq!(eval_bin(BinOp::Shl, 1, 64), Ok(0));
        assert_eq!(eval_bin(BinOp::Shr, u64::MAX, 64), Ok(0));
    }

    #[test]
    fn wrapping_arithmetic() {
        assert_eq!(eval_bin(BinOp::Add, u64::MAX, 1), Ok(0));
        assert_eq!(eval_bin(BinOp::Sub, 0, 1), Ok(u64::MAX));
        assert_eq!(eval_bin(BinOp::Mul, u64::MAX, 2), Ok(u64::MAX - 1));
    }

    #[test]
    fn division_by_zero_in_program_is_a_trapped_outcome() {
        let p = parse_program(
            "program p { handler ingress(pkt) { let x = 10 / meta.z; forward(1); } }",
        )
        .unwrap();
        let headers = HeaderRegistry::builtins();
        crate::typecheck::check_program(&p, &headers).unwrap();
        let mut pkt = Packet::tcp(1, 1, 2, 3, 4, 0);
        let mut env = MemEnv::new();
        let out = execute(&p, "ingress", &mut pkt, &mut env, &headers).unwrap();
        assert_eq!(out.verdict, None, "a trapped packet carries no verdict");
        assert_eq!(out.trap, Some(Trap::DivisionByZero { op: "/" }));
    }

    #[test]
    fn gas_exhaustion_traps_at_limit_plus_one() {
        let p = parse_program(
            "program p {
               register r : u64[4];
               handler ingress(pkt) {
                 repeat (64) { reg_write(r, 0, reg_read(r, 0) + 1); }
                 forward(1);
               }
             }",
        )
        .unwrap();
        let headers = HeaderRegistry::builtins();
        crate::typecheck::check_program(&p, &headers).unwrap();

        // Unmetered run establishes the true cost.
        let mut pkt = Packet::tcp(1, 1, 2, 3, 4, 0);
        let mut env = MemEnv::new();
        let full = execute(&p, "ingress", &mut pkt, &mut env, &headers).unwrap();
        assert!(full.trap.is_none());
        let cost = full.ops;

        // One op short of the cost must trap at exactly limit + 1.
        let gas = cost - 1;
        let mut pkt = Packet::tcp(1, 1, 2, 3, 4, 0);
        let mut env = MemEnv::new();
        let out = execute_metered(&p, "ingress", &mut pkt, &mut env, &headers, gas).unwrap();
        assert_eq!(out.trap, Some(Trap::GasExhausted { limit: gas }));
        assert_eq!(out.ops, gas + 1, "the trapping op is the first over budget");
        assert_eq!(out.verdict, None);

        // Exactly the cost completes.
        let mut pkt = Packet::tcp(1, 1, 2, 3, 4, 0);
        let mut env = MemEnv::new();
        let out = execute_metered(&p, "ingress", &mut pkt, &mut env, &headers, cost).unwrap();
        assert!(out.trap.is_none());
        assert_eq!(out.verdict, Some(Verdict::Forward(1)));
    }

    #[test]
    fn shrunken_register_traps_out_of_bounds() {
        // The program verifies against size 64; the environment models a
        // register shrunk to 4 by a post-install reconfiguration.
        let p = parse_program(
            "program p {
               register r : u64[64];
               handler ingress(pkt) { reg_write(r, ipv4.src % 64, 1); forward(1); }
             }",
        )
        .unwrap();
        let headers = HeaderRegistry::builtins();
        crate::typecheck::check_program(&p, &headers).unwrap();
        crate::verifier::verify_program(&p, &headers).unwrap();
        let mut env = MemEnv::new();
        env.reg_sizes.insert("r".into(), 4);
        let mut pkt = Packet::tcp(1, 40, 2, 3, 4, 0);
        let out = execute(&p, "ingress", &mut pkt, &mut env, &headers).unwrap();
        assert_eq!(
            out.trap,
            Some(Trap::StateOutOfBounds {
                kind: "register",
                name: "r".into(),
                index: 40,
                size: 4,
            })
        );
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_values(&[1, 2, 3]), hash_values(&[1, 2, 3]));
        assert_ne!(hash_values(&[1, 2, 3]), hash_values(&[3, 2, 1]));
    }

    #[test]
    fn map_capacity_enforced() {
        let mut env = MemEnv::new();
        env.map_caps.insert("m".into(), 1);
        env.map_put("m", 1, 1).unwrap();
        assert!(env.map_put("m", 2, 2).is_err());
        env.map_put("m", 1, 9).unwrap(); // update in place is fine
    }
}
