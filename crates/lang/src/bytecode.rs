//! Slot-resolved bytecode: the fast packet path.
//!
//! The reference interpreter ([`crate::interp`]) walks the AST per packet
//! and resolves every table/map/register/counter/meter/service reference by
//! *name* through `BTreeMap`s — exactly the cost the paper says runtime
//! programmability must not impose on the data plane. This module lowers a
//! type-checked program **once, at install/flip time**, into a flat
//! instruction array in which every symbol is a dense `u16` slot index and
//! every field path is an interned id. Devices keep a matching slot-indexed
//! state plane and swap whole compiled images atomically on a flip, so the
//! old-XOR-new reconfiguration semantics are untouched.
//!
//! The lowering is **exactly** semantics- and ops-count-preserving with
//! respect to the interpreter: every AST node that ticks the abstract op
//! counter compiles to exactly one ticking instruction (jump/glue
//! instructions tick zero), short-circuit evaluation skips the same
//! sub-expressions, and runtime error messages on the reachable error paths
//! (action arity mismatches) are byte-identical. The differential test
//! suite in `tests/` holds this line.
//!
//! Name resolution failures surface here, at compile time, as
//! [`FlexError::UnresolvedSymbol`] — never as a silent per-packet miss.

use crate::ast::*;
use crate::headers::HeaderRegistry;
use crate::interp::{eval_bin, hash_values, ExecEnv, ExecOutcome, GAS_UNLIMITED, MAX_TABLE_KEY_WIDTH};
use flexnet_types::{FlexError, Header, Packet, Result, Trap, Verdict};
use std::collections::BTreeMap;

/// The kind of symbol a [`SlotResolver`] is asked to resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// A match/action table.
    Table,
    /// A key/value map state object.
    Map,
    /// A register array state object.
    Register,
    /// A counter state object.
    Counter,
    /// A meter state object.
    Meter,
    /// A dRPC service.
    Service,
}

impl SymbolKind {
    /// The single-token label used in [`FlexError::UnresolvedSymbol`].
    pub fn as_str(&self) -> &'static str {
        match self {
            SymbolKind::Table => "table",
            SymbolKind::Map => "map",
            SymbolKind::Register => "register",
            SymbolKind::Counter => "counter",
            SymbolKind::Meter => "meter",
            SymbolKind::Service => "service",
        }
    }
}

/// Maps symbol names to the dense slot indices of a concrete state plane.
///
/// The device models implement this over their slot-indexed table sets and
/// state planes; [`ProgramResolver`] implements it positionally over the
/// program's own declarations (the layout `TableSet::from_decls` /
/// `DeviceState::from_decls` produce at install time).
pub trait SlotResolver {
    /// Resolves `name` of `kind` to its slot, or `None` if the target
    /// image does not provide it.
    fn resolve(&self, kind: SymbolKind, name: &str) -> Option<u16>;
}

/// A [`SlotResolver`] assigning slots by declaration position: table `i` of
/// the program gets slot `i`, and each state kind is numbered independently
/// in declaration order (map 0, 1, …; register 0, 1, …; and so on).
#[derive(Debug, Clone, Copy)]
pub struct ProgramResolver<'a> {
    program: &'a Program,
}

impl<'a> ProgramResolver<'a> {
    /// A resolver over `program`'s own declarations.
    pub fn new(program: &'a Program) -> ProgramResolver<'a> {
        ProgramResolver { program }
    }

    fn state_slot(&self, name: &str, want: fn(&StateKind) -> bool) -> Option<u16> {
        self.program
            .states
            .iter()
            .filter(|s| want(&s.kind))
            .position(|s| s.name == name)
            .map(|i| i as u16)
    }
}

impl SlotResolver for ProgramResolver<'_> {
    fn resolve(&self, kind: SymbolKind, name: &str) -> Option<u16> {
        match kind {
            SymbolKind::Table => self
                .program
                .tables
                .iter()
                .position(|t| t.name == name)
                .map(|i| i as u16),
            SymbolKind::Map => self.state_slot(name, |k| matches!(k, StateKind::Map { .. })),
            SymbolKind::Register => {
                self.state_slot(name, |k| matches!(k, StateKind::Register { .. }))
            }
            SymbolKind::Counter => self.state_slot(name, |k| matches!(k, StateKind::Counter)),
            SymbolKind::Meter => self.state_slot(name, |k| matches!(k, StateKind::Meter { .. })),
            SymbolKind::Service => self
                .program
                .services
                .iter()
                .position(|s| s.name == name)
                .map(|i| i as u16),
        }
    }
}

/// The environment compiled programs execute against: the device's state
/// plane addressed by dense slot indices instead of names.
///
/// Mirrors [`ExecEnv`] operation for operation; the only structural change
/// is `table_lookup`, which returns the matched entry's *resolved action
/// index* and a borrow of its argument vector, so the hot path neither
/// hashes a string nor clones an `ActionCall`.
pub trait SlotEnv {
    /// Looks up `keys` in table `table`, returning `(action index within
    /// the table's declared actions, action arguments)` on a hit.
    fn table_lookup(&mut self, table: u16, keys: &[u64]) -> Option<(u16, &[u64])>;
    /// Reads a map; `None` on a miss.
    fn map_get(&mut self, map: u16, key: u64) -> Option<u64>;
    /// Inserts/updates a map entry. May fail when the map is full.
    fn map_put(&mut self, map: u16, key: u64, value: u64) -> Result<()>;
    /// Deletes a map entry (no-op on a miss).
    fn map_del(&mut self, map: u16, key: u64);
    /// Reads a register cell. Returns [`Trap::StateOutOfBounds`] when a
    /// post-verification reconfiguration shrank the register under the
    /// program's static proof.
    fn reg_read(&mut self, reg: u16, idx: u64) -> Result<u64>;
    /// Writes a register cell (same bounds contract as [`SlotEnv::reg_read`]).
    fn reg_write(&mut self, reg: u16, idx: u64, val: u64) -> Result<()>;
    /// Adds to a counter.
    fn counter_add(&mut self, counter: u16, pkts: u64, bytes: u64);
    /// Reads a counter's packet count.
    fn counter_read(&mut self, counter: u16) -> u64;
    /// Checks a meter for `key`; `true` when conforming.
    fn meter_check(&mut self, meter: u16, key: u64) -> bool;
    /// Invokes a dRPC service (fire-and-forget).
    fn invoke_service(&mut self, service: u16, args: &[u64]);
}

/// One flat instruction. Instructions that correspond to an AST node tick
/// the op counter by the same amount the interpreter does for that node;
/// pure control glue ([`Insn::Jump`], [`Insn::BoolCast`], [`Insn::LoopTest`],
/// [`Insn::ActionEnd`], [`Insn::EndHandler`]) ticks zero, keeping the two
/// engines' op counts identical on every path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// Push an integer literal.
    PushInt(u64),
    /// Push a local slot's value.
    PushLocal(u16),
    /// Push a packet field (interned dotted-path id); absent fields read 0.
    PushField(u32),
    /// Push 1 if the header (interned proto id) is present, else 0.
    PushValid(u32),
    /// Pop a key; push the map value or 0 on a miss.
    MapGet(u16),
    /// Pop a key; push 1 if present, else 0.
    MapHas(u16),
    /// Pop an index; push the register cell.
    RegRead(u16),
    /// Push a counter's packet count.
    CounterRead(u16),
    /// Pop a key; push 1 when the meter conforms, else 0.
    MeterCheck(u16),
    /// Pop the top `n` values (in push order) and push their FNV-1a hash.
    Hash(u16),
    /// Push the packet's wire length.
    PktLen,
    /// Pop `b` then `a`; push `a op b` (wrapping semantics; division and
    /// modulo by zero raise [`Trap::DivisionByZero`]).
    Bin(BinOp),
    /// Pop `a`; push the unary result.
    Un(UnOp),
    /// Short-circuit `&&`: pop `a`; if zero, push 0 and jump to the target,
    /// else fall through to the right-hand side. Ticks the `&&` node's op.
    LAndProbe(u32),
    /// Short-circuit `||`: pop `a`; if nonzero, push 1 and jump to the
    /// target, else fall through. Ticks the `||` node's op.
    LOrProbe(u32),
    /// Pop `b`; push `b != 0` (completes a non-short-circuited `&&`/`||`).
    BoolCast,
    /// Unconditional jump (glue; ticks zero).
    Jump(u32),
    /// Pop a value into a local slot (`let` / local assignment).
    StoreLocal(u16),
    /// Pop a value into a packet field (interned dotted-path id).
    StoreField(u32),
    /// Pop value then key; insert into the map (full maps drop the insert).
    MapPut(u16),
    /// Pop a key; delete it from the map.
    MapDelete(u16),
    /// Pop value then index; write the register cell.
    RegWrite(u16),
    /// Bump a counter by one packet / the packet's wire length.
    Count(u16),
    /// Pop the condition; jump to the target when it is zero (the `if`).
    BranchIfZero(u32),
    /// Begin a `repeat`: push the iteration count on the loop stack.
    LoopEnter(u64),
    /// Loop head: exit to the target when the count hits zero, else
    /// decrement and fall into the body (glue; ticks zero).
    LoopTest(u32),
    /// Apply a table: build keys, look up, dispatch the matched or default
    /// action (ticks the interpreter's `1 + 3` apply ops).
    Apply(u16),
    /// Return from an action body to the apply site (glue; ticks zero).
    ActionEnd,
    /// Halt with a fixed verdict (`drop()` / `punt()` / `recirculate()`).
    HaltVerdict(Verdict),
    /// Pop the port; halt with `Forward(port)`.
    HaltForward,
    /// Halt with no verdict (`return;`).
    HaltNone,
    /// Fell off the end of the handler: no verdict (glue; ticks zero).
    EndHandler,
    /// Pop the top `n` values (in push order) and invoke the service.
    Invoke(u16, u16),
    /// Add a header from the interned template if not already present.
    AddHeader(u32),
    /// Remove a header (interned proto id).
    RemoveHeader(u32),
}

/// An action's compiled footprint inside a [`TableMeta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionMeta {
    /// The action's declared name (kept for runtime error messages).
    pub name: String,
    /// Entry pc of the compiled body.
    pub entry: u32,
    /// First local slot of the parameter block.
    pub param_base: u16,
    /// Declared parameter count.
    pub arity: u16,
}

/// A table's compiled metadata, referenced by [`Insn::Apply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMeta {
    /// The table's declared name (kept for runtime error messages).
    pub name: String,
    /// The state-plane slot passed to [`SlotEnv::table_lookup`].
    pub slot: u16,
    /// Interned dotted-path ids of the match keys, in declaration order.
    pub key_fields: Vec<u32>,
    /// Compiled actions, indexed by declaration position.
    pub actions: Vec<ActionMeta>,
    /// The default action (index + args), resolved at compile time.
    pub default: Option<(u16, Vec<u64>)>,
}

/// A header-insertion template precomputed from the registry, so
/// `add_header` allocates nothing but the header itself on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderTemplate {
    /// The protocol name.
    pub proto: String,
    /// All declared fields, zeroed.
    pub fields: BTreeMap<String, u64>,
    /// Where to insert: after this protocol, or at the top of the stack.
    pub after: Option<String>,
}

/// A program lowered to slot-resolved bytecode.
///
/// Everything name-shaped was resolved at compile time; the per-kind
/// `*_names` vectors (slot → name) exist so adapters and logs can translate
/// back without consulting the AST.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompiledProgram {
    /// The source program's name.
    pub name: String,
    /// The flat instruction array.
    pub insns: Vec<Insn>,
    /// Handler entry points: `(name, pc)`.
    pub handlers: Vec<(String, u32)>,
    /// Table metadata, indexed by [`Insn::Apply`]'s operand.
    pub tables: Vec<TableMeta>,
    /// Interned dotted field paths (`ipv4.src`, `meta.mark`, …).
    pub field_names: Vec<String>,
    /// The same interned fields pre-split into `(proto, field)` parts,
    /// index-aligned with [`CompiledProgram::field_names`]. The vector
    /// executor's prefetch lane reads these to skip the per-access
    /// `split_once('.')` of the dotted form.
    pub field_parts: Vec<(String, String)>,
    /// Interned protocol names (for `valid` / `remove_header`).
    pub proto_names: Vec<String>,
    /// Header-insertion templates (for `add_header`).
    pub header_templates: Vec<HeaderTemplate>,
    /// Service names by slot (for invocation logging / adapters).
    pub service_names: Vec<String>,
    /// Map names by slot.
    pub map_names: Vec<String>,
    /// Register names by slot.
    pub register_names: Vec<String>,
    /// Counter names by slot.
    pub counter_names: Vec<String>,
    /// Meter names by slot.
    pub meter_names: Vec<String>,
    /// Local slot count (the VM's frame size).
    pub n_locals: u16,
}

impl CompiledProgram {
    /// The entry pc of `handler`, if compiled.
    pub fn handler_entry(&self, handler: &str) -> Option<u32> {
        self.handlers
            .iter()
            .find(|(n, _)| n == handler)
            .map(|(_, pc)| *pc)
    }

    /// The declaration index of `action` within the table compiled at
    /// state-plane slot `table_slot`. Used by name-keyed adapter
    /// environments to translate an `ActionCall` into the VM's indices.
    pub fn action_index(&self, table_slot: u16, action: &str) -> Option<u16> {
        self.tables
            .iter()
            .find(|t| t.slot == table_slot)?
            .actions
            .iter()
            .position(|a| a.name == action)
            .map(|i| i as u16)
    }
}

fn unresolved(kind: SymbolKind, name: &str) -> FlexError {
    FlexError::UnresolvedSymbol {
        kind: kind.as_str().into(),
        name: name.into(),
    }
}

/// Compiles `program` to bytecode, resolving every symbol through
/// `resolver`. The program must already have passed the type checker; the
/// compiler still reports dangling names as
/// [`FlexError::UnresolvedSymbol`] rather than panicking, because runtime
/// reconfiguration rebuilds images against a *device's* slot layout, which
/// adversarial tests deliberately desynchronize.
pub fn compile(
    program: &Program,
    registry: &HeaderRegistry,
    resolver: &dyn SlotResolver,
) -> Result<CompiledProgram> {
    let mut c = Compiler {
        registry,
        resolver,
        out: CompiledProgram {
            name: program.name.clone(),
            ..CompiledProgram::default()
        },
        field_ids: BTreeMap::new(),
        proto_ids: BTreeMap::new(),
        template_ids: BTreeMap::new(),
        scopes: Vec::new(),
        next_local: 0,
    };

    // Slot → name reverse maps, so adapters and invocation logs can
    // translate without the AST. Dangling state/service declarations are
    // impossible from ProgramResolver but possible against a foreign
    // (device) layout — surface them now, not per packet.
    for s in &program.states {
        let (kind, names) = match s.kind {
            StateKind::Map { .. } => (SymbolKind::Map, &mut c.out.map_names),
            StateKind::Register { .. } => (SymbolKind::Register, &mut c.out.register_names),
            StateKind::Counter => (SymbolKind::Counter, &mut c.out.counter_names),
            StateKind::Meter { .. } => (SymbolKind::Meter, &mut c.out.meter_names),
        };
        let slot = c
            .resolver
            .resolve(kind, &s.name)
            .ok_or_else(|| unresolved(kind, &s.name))? as usize;
        if names.len() <= slot {
            names.resize(slot + 1, String::new());
        }
        names[slot] = s.name.clone();
    }
    for s in &program.services {
        let slot = c
            .resolver
            .resolve(SymbolKind::Service, &s.name)
            .ok_or_else(|| unresolved(SymbolKind::Service, &s.name))? as usize;
        if c.out.service_names.len() <= slot {
            c.out.service_names.resize(slot + 1, String::new());
        }
        c.out.service_names[slot] = s.name.clone();
    }

    // Pass 1: compile every table's actions as subroutines and build the
    // table metadata (including the resolved default action).
    for t in &program.tables {
        let slot = c
            .resolver
            .resolve(SymbolKind::Table, &t.name)
            .ok_or_else(|| unresolved(SymbolKind::Table, &t.name))?;
        let key_fields = t.keys.iter().map(|k| c.intern_field(&k.field)).collect();
        let mut actions = Vec::with_capacity(t.actions.len());
        for a in &t.actions {
            let param_base = c.next_local;
            c.scopes.clear();
            c.scopes.push(BTreeMap::new());
            for (p, _) in &a.params {
                let s = c.alloc_local()?;
                c.scopes.last_mut().expect("frame").insert(p.clone(), s);
            }
            let entry = c.out.insns.len() as u32;
            c.compile_block(&a.body)?;
            c.out.insns.push(Insn::ActionEnd);
            actions.push(ActionMeta {
                name: a.name.clone(),
                entry,
                param_base,
                arity: a.params.len() as u16,
            });
        }
        let default = match &t.default_action {
            Some(call) => {
                let idx = actions
                    .iter()
                    .position(|a| a.name == call.action)
                    .ok_or_else(|| {
                        FlexError::UnresolvedSymbol {
                            kind: "action".into(),
                            name: call.action.clone(),
                        }
                    })?;
                if actions[idx].arity as usize != call.args.len() {
                    return Err(FlexError::Compile(format!(
                        "table `{}` default action `{}` arity mismatch",
                        t.name, call.action
                    )));
                }
                Some((idx as u16, call.args.clone()))
            }
            None => None,
        };
        c.out.tables.push(TableMeta {
            name: t.name.clone(),
            slot,
            key_fields,
            actions,
            default,
        });
    }

    // Pass 2: compile the handlers.
    for h in &program.handlers {
        c.scopes.clear();
        c.scopes.push(BTreeMap::new());
        let entry = c.out.insns.len() as u32;
        c.compile_block(&h.body)?;
        c.out.insns.push(Insn::EndHandler);
        c.out.handlers.push((h.name.clone(), entry));
    }

    c.out.n_locals = c.next_local;
    Ok(c.out)
}

/// Compiles `program` against its own declaration order (the layout devices
/// build at install time) via [`ProgramResolver`].
pub fn compile_with_program_slots(
    program: &Program,
    registry: &HeaderRegistry,
) -> Result<CompiledProgram> {
    compile(program, registry, &ProgramResolver::new(program))
}

struct Compiler<'a> {
    registry: &'a HeaderRegistry,
    resolver: &'a dyn SlotResolver,
    out: CompiledProgram,
    field_ids: BTreeMap<String, u32>,
    proto_ids: BTreeMap<String, u32>,
    template_ids: BTreeMap<String, u32>,
    /// Lexical frames, innermost last — mirrors the type checker exactly,
    /// which is what makes compile-time slot assignment sound.
    scopes: Vec<BTreeMap<String, u16>>,
    next_local: u16,
}

impl Compiler<'_> {
    fn alloc_local(&mut self) -> Result<u16> {
        let s = self.next_local;
        self.next_local = self
            .next_local
            .checked_add(1)
            .ok_or_else(|| FlexError::Compile("too many locals".into()))?;
        Ok(s)
    }

    fn local(&self, name: &str) -> Result<u16> {
        self.scopes
            .iter()
            .rev()
            .find_map(|f| f.get(name).copied())
            .ok_or_else(|| FlexError::UnresolvedSymbol {
                kind: "local".into(),
                name: name.into(),
            })
    }

    fn intern_field(&mut self, p: &FieldPath) -> u32 {
        let dotted = p.dotted();
        if let Some(&id) = self.field_ids.get(&dotted) {
            return id;
        }
        let id = self.out.field_names.len() as u32;
        self.out.field_names.push(dotted.clone());
        self.out.field_parts.push(match p {
            FieldPath::Header(proto, field) => (proto.clone(), field.clone()),
            FieldPath::Meta(field) => ("meta".to_string(), field.clone()),
        });
        self.field_ids.insert(dotted, id);
        id
    }

    fn intern_proto(&mut self, proto: &str) -> u32 {
        if let Some(&id) = self.proto_ids.get(proto) {
            return id;
        }
        let id = self.out.proto_names.len() as u32;
        self.out.proto_names.push(proto.to_string());
        self.proto_ids.insert(proto.to_string(), id);
        id
    }

    fn intern_template(&mut self, proto: &str) -> u32 {
        if let Some(&id) = self.template_ids.get(proto) {
            return id;
        }
        // Mirrors the interpreter: unknown protos insert an empty-field
        // header at the top of the stack.
        let decl = self.registry.decl(proto);
        let fields = decl
            .map(|d| d.fields.iter().map(|f| (f.name.clone(), 0)).collect())
            .unwrap_or_default();
        let after = decl
            .and_then(|d| d.follows.as_ref())
            .map(|f| f.prev_proto.clone());
        let id = self.out.header_templates.len() as u32;
        self.out.header_templates.push(HeaderTemplate {
            proto: proto.to_string(),
            fields,
            after,
        });
        self.template_ids.insert(proto.to_string(), id);
        id
    }

    fn slot(&self, kind: SymbolKind, name: &str) -> Result<u16> {
        self.resolver
            .resolve(kind, name)
            .ok_or_else(|| unresolved(kind, name))
    }

    fn here(&self) -> u32 {
        self.out.insns.len() as u32
    }

    /// Emits a placeholder jump operand, returning its position for
    /// [`Self::patch`].
    fn emit_patched(&mut self, make: fn(u32) -> Insn) -> usize {
        self.out.insns.push(make(u32::MAX));
        self.out.insns.len() - 1
    }

    fn patch(&mut self, at: usize, target: u32) {
        let insn = &mut self.out.insns[at];
        match insn {
            Insn::Jump(t)
            | Insn::BranchIfZero(t)
            | Insn::LoopTest(t)
            | Insn::LAndProbe(t)
            | Insn::LOrProbe(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn compile_block(&mut self, block: &Block) -> Result<()> {
        self.scopes.push(BTreeMap::new());
        for stmt in block {
            self.compile_stmt(stmt)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn compile_stmt(&mut self, stmt: &Stmt) -> Result<()> {
        match stmt {
            Stmt::Let(n, e) => {
                self.compile_expr(e)?;
                // A fresh slot per `let`, even when an outer block already
                // used the name (the checker forbids reads across the gap,
                // so distinct slots are unobservable).
                let s = self.alloc_local()?;
                self.scopes.last_mut().expect("frame").insert(n.clone(), s);
                self.out.insns.push(Insn::StoreLocal(s));
            }
            Stmt::AssignLocal(n, e) => {
                self.compile_expr(e)?;
                let s = self.local(n)?;
                self.out.insns.push(Insn::StoreLocal(s));
            }
            Stmt::AssignField(p, e) => {
                self.compile_expr(e)?;
                let f = self.intern_field(p);
                self.out.insns.push(Insn::StoreField(f));
            }
            Stmt::MapPut(m, k, v) => {
                self.compile_expr(k)?;
                self.compile_expr(v)?;
                let s = self.slot(SymbolKind::Map, m)?;
                self.out.insns.push(Insn::MapPut(s));
            }
            Stmt::MapDelete(m, k) => {
                self.compile_expr(k)?;
                let s = self.slot(SymbolKind::Map, m)?;
                self.out.insns.push(Insn::MapDelete(s));
            }
            Stmt::RegWrite(r, i, v) => {
                self.compile_expr(i)?;
                self.compile_expr(v)?;
                let s = self.slot(SymbolKind::Register, r)?;
                self.out.insns.push(Insn::RegWrite(s));
            }
            Stmt::Count(c) => {
                let s = self.slot(SymbolKind::Counter, c)?;
                self.out.insns.push(Insn::Count(s));
            }
            Stmt::If(cond, then, els) => {
                self.compile_expr(cond)?;
                let br = self.emit_patched(Insn::BranchIfZero);
                self.compile_block(then)?;
                if els.is_empty() {
                    let end = self.here();
                    self.patch(br, end);
                } else {
                    let skip = self.emit_patched(Insn::Jump);
                    let else_at = self.here();
                    self.patch(br, else_at);
                    self.compile_block(els)?;
                    let end = self.here();
                    self.patch(skip, end);
                }
            }
            Stmt::Repeat(n, body) => {
                self.out.insns.push(Insn::LoopEnter(*n));
                let head = self.here();
                let test = self.emit_patched(Insn::LoopTest);
                self.compile_block(body)?;
                self.out.insns.push(Insn::Jump(head));
                let end = self.here();
                self.patch(test, end);
            }
            Stmt::Apply(tname) => {
                let idx = self
                    .out
                    .tables
                    .iter()
                    .position(|t| t.name == *tname)
                    .ok_or_else(|| unresolved(SymbolKind::Table, tname))?;
                self.out.insns.push(Insn::Apply(idx as u16));
            }
            Stmt::Drop => self.out.insns.push(Insn::HaltVerdict(Verdict::Drop)),
            Stmt::Forward(e) => {
                self.compile_expr(e)?;
                self.out.insns.push(Insn::HaltForward);
            }
            Stmt::Punt => self.out.insns.push(Insn::HaltVerdict(Verdict::ToController)),
            Stmt::Recirculate => self
                .out
                .insns
                .push(Insn::HaltVerdict(Verdict::Recirculate)),
            Stmt::Invoke(svc, args) => {
                for a in args {
                    self.compile_expr(a)?;
                }
                let s = self.slot(SymbolKind::Service, svc)?;
                self.out.insns.push(Insn::Invoke(s, args.len() as u16));
            }
            Stmt::AddHeader(proto) => {
                let t = self.intern_template(proto);
                self.out.insns.push(Insn::AddHeader(t));
            }
            Stmt::RemoveHeader(proto) => {
                let p = self.intern_proto(proto);
                self.out.insns.push(Insn::RemoveHeader(p));
            }
            Stmt::Return => self.out.insns.push(Insn::HaltNone),
        }
        Ok(())
    }

    fn compile_expr(&mut self, e: &Expr) -> Result<()> {
        match e {
            Expr::Int(v) => self.out.insns.push(Insn::PushInt(*v)),
            Expr::Local(n) => {
                let s = self.local(n)?;
                self.out.insns.push(Insn::PushLocal(s));
            }
            Expr::Field(p) => {
                let f = self.intern_field(p);
                self.out.insns.push(Insn::PushField(f));
            }
            Expr::Valid(proto) => {
                let p = self.intern_proto(proto);
                self.out.insns.push(Insn::PushValid(p));
            }
            Expr::MapGet(m, k) => {
                self.compile_expr(k)?;
                let s = self.slot(SymbolKind::Map, m)?;
                self.out.insns.push(Insn::MapGet(s));
            }
            Expr::MapHas(m, k) => {
                self.compile_expr(k)?;
                let s = self.slot(SymbolKind::Map, m)?;
                self.out.insns.push(Insn::MapHas(s));
            }
            Expr::RegRead(r, i) => {
                self.compile_expr(i)?;
                let s = self.slot(SymbolKind::Register, r)?;
                self.out.insns.push(Insn::RegRead(s));
            }
            Expr::CounterRead(c) => {
                let s = self.slot(SymbolKind::Counter, c)?;
                self.out.insns.push(Insn::CounterRead(s));
            }
            Expr::MeterCheck(m, k) => {
                self.compile_expr(k)?;
                let s = self.slot(SymbolKind::Meter, m)?;
                self.out.insns.push(Insn::MeterCheck(s));
            }
            Expr::Hash(args) => {
                for a in args {
                    self.compile_expr(a)?;
                }
                self.out.insns.push(Insn::Hash(args.len() as u16));
            }
            Expr::PktLen => self.out.insns.push(Insn::PktLen),
            Expr::Bin(BinOp::LAnd, l, r) => {
                self.compile_expr(l)?;
                let probe = self.emit_patched(Insn::LAndProbe);
                self.compile_expr(r)?;
                self.out.insns.push(Insn::BoolCast);
                let end = self.here();
                self.patch(probe, end);
            }
            Expr::Bin(BinOp::LOr, l, r) => {
                self.compile_expr(l)?;
                let probe = self.emit_patched(Insn::LOrProbe);
                self.compile_expr(r)?;
                self.out.insns.push(Insn::BoolCast);
                let end = self.here();
                self.patch(probe, end);
            }
            Expr::Bin(op, l, r) => {
                self.compile_expr(l)?;
                self.compile_expr(r)?;
                self.out.insns.push(Insn::Bin(*op));
            }
            Expr::Un(op, v) => {
                self.compile_expr(v)?;
                self.out.insns.push(Insn::Un(*op));
            }
        }
        Ok(())
    }
}

/// Executes `handler` of a compiled program over `pkt` against `env` with
/// no gas limit. See [`execute_compiled_metered`] for the sandboxed form.
pub fn execute_compiled(
    prog: &CompiledProgram,
    handler: &str,
    pkt: &mut Packet,
    env: &mut dyn SlotEnv,
) -> Result<ExecOutcome> {
    execute_compiled_metered(prog, handler, pkt, env, GAS_UNLIMITED)
}

/// Reusable VM frame storage: operand stack, locals, loop counters, call
/// frames, and the table-key staging buffer.
///
/// The burst path keeps one `VmScratch` alive across an entire packet
/// vector so the per-packet frame setup is a handful of `clear()`s on
/// already-sized buffers instead of five heap allocations. A fresh
/// `VmScratch` per call (what [`execute_compiled_metered`] does) reproduces
/// the historical single-packet cost profile exactly.
#[derive(Debug, Default)]
pub struct VmScratch {
    stack: Vec<u64>,
    locals: Vec<u64>,
    loops: Vec<u64>,
    calls: Vec<usize>,
    keys: Vec<u64>,
    /// Prefetched field values, index-aligned with
    /// [`CompiledProgram::field_names`]. Only the vector executor
    /// ([`execute_compiled_vector`]) populates and reads this lane.
    fields: Vec<u64>,
}

impl VmScratch {
    /// An empty scratch with the historical initial capacities.
    pub fn new() -> VmScratch {
        VmScratch {
            stack: Vec::with_capacity(16),
            locals: Vec::new(),
            loops: Vec::new(),
            calls: Vec::new(),
            keys: Vec::with_capacity(4),
            fields: Vec::new(),
        }
    }
}

/// Executes `handler` of a compiled program over `pkt` against `env` under
/// a gas budget of `gas` abstract operations.
///
/// Verdicts, op counts, state effects, and traps are identical to
/// [`crate::interp::execute_metered`] on the same program — the
/// differential suite in `tests/` asserts this over every example program,
/// randomized packets, and trapping inputs. Faults attributable to the
/// packet or to a post-verification reconfiguration come back as `Ok`
/// outcomes carrying a [`Trap`]; an inconsistent image itself (stack/pc/
/// frame invariants broken) traps as [`Trap::CorruptImage`] so a device can
/// fail closed rather than crash its sweep.
pub fn execute_compiled_metered(
    prog: &CompiledProgram,
    handler: &str,
    pkt: &mut Packet,
    env: &mut dyn SlotEnv,
    gas: u64,
) -> Result<ExecOutcome> {
    let entry = prog
        .handler_entry(handler)
        .ok_or_else(|| FlexError::NotFound(format!("handler `{handler}`")))?;
    execute_compiled_at(prog, entry, pkt, env, gas, &mut VmScratch::new())
}

/// The burst-path executor: `handler_entry` already resolved to `entry`,
/// frame storage supplied by the caller, and the environment type left
/// generic so a device's concrete [`SlotEnv`] monomorphizes state access
/// into direct calls instead of vtable dispatch.
///
/// Semantics (verdicts, op counts, traps, state effects) are *identical* to
/// [`execute_compiled_metered`], which is now a thin wrapper over this.
pub fn execute_compiled_at<E: SlotEnv + ?Sized>(
    prog: &CompiledProgram,
    entry: u32,
    pkt: &mut Packet,
    env: &mut E,
    gas: u64,
    scratch: &mut VmScratch,
) -> Result<ExecOutcome> {
    exec_inner::<E, false>(prog, entry, pkt, env, gas, scratch)
}

/// The vector engine's executor: identical semantics to
/// [`execute_compiled_at`], plus a prefetched field-value lane. Every
/// interned field is read once into `scratch.fields` at handler entry
/// (and refreshed after any header-set mutation), so `PushField` and
/// table-key gathering become single indexed loads instead of a dotted
/// string split plus header scan per access. Gas accounting, verdicts,
/// traps, and state effects are unchanged — the differential suite pins
/// burst (this executor) against single-packet (the legacy one) across
/// the whole gallery.
pub fn execute_compiled_vector<E: SlotEnv + ?Sized>(
    prog: &CompiledProgram,
    entry: u32,
    pkt: &mut Packet,
    env: &mut E,
    gas: u64,
    scratch: &mut VmScratch,
) -> Result<ExecOutcome> {
    exec_inner::<E, true>(prog, entry, pkt, env, gas, scratch)
}

/// The shared VM loop. `PREFETCH` selects the field-access strategy at
/// monomorphization time: `false` reads fields live from the packet on
/// every touch (the historical single-packet cost profile), `true` serves
/// them from the scratch's prefetched lane.
///
#[inline]
fn exec_inner<E: SlotEnv + ?Sized, const PREFETCH: bool>(
    prog: &CompiledProgram,
    entry: u32,
    pkt: &mut Packet,
    env: &mut E,
    gas: u64,
    scratch: &mut VmScratch,
) -> Result<ExecOutcome> {
    let mut pc = entry as usize;
    let mut ops: u64 = 0;
    scratch.stack.clear();
    scratch.loops.clear();
    scratch.calls.clear();
    scratch.keys.clear();
    scratch.locals.clear();
    scratch.locals.resize(prog.n_locals as usize, 0);
    let VmScratch {
        stack,
        locals,
        loops,
        calls,
        keys,
        fields,
    } = scratch;

    // (Re)loads the prefetch lane from the live packet. Free under the gas
    // meter — it only relocates reads the legacy path performs lazily.
    macro_rules! refetch {
        () => {
            if PREFETCH {
                fields.clear();
                for (proto, field) in &prog.field_parts {
                    fields.push(pkt.get_field_at(proto, field).unwrap_or(0));
                }
            }
        };
    }
    refetch!();

    // Unwind to the packet boundary with a fail-closed trap outcome.
    macro_rules! trap {
        ($t:expr) => {
            return Ok(ExecOutcome {
                verdict: None,
                ops,
                trap: Some($t),
            })
        };
    }

    // Charge gas at exactly the interpreter's checkpoints; exhaustion fires
    // at the identical cumulative count in both engines.
    macro_rules! tick {
        ($n:expr) => {
            ops += $n;
            if ops > gas {
                trap!(Trap::GasExhausted { limit: gas });
            }
        };
    }

    macro_rules! pop {
        () => {
            match stack.pop() {
                Some(v) => v,
                None => trap!(Trap::CorruptImage {
                    reason: "bytecode stack underflow",
                }),
            }
        };
    }

    loop {
        let insn = match prog.insns.get(pc) {
            Some(i) => i,
            None => trap!(Trap::CorruptImage {
                reason: "bytecode pc out of range",
            }),
        };
        pc += 1;
        match insn {
            Insn::PushInt(v) => {
                tick!(1);
                stack.push(*v);
            }
            Insn::PushLocal(s) => {
                tick!(1);
                stack.push(locals[*s as usize]);
            }
            Insn::PushField(f) => {
                tick!(1);
                if PREFETCH {
                    stack.push(fields[*f as usize]);
                } else {
                    stack.push(pkt.get_field(&prog.field_names[*f as usize]).unwrap_or(0));
                }
            }
            Insn::PushValid(p) => {
                tick!(1);
                stack.push(pkt.has_header(&prog.proto_names[*p as usize]) as u64);
            }
            Insn::MapGet(m) => {
                tick!(1);
                let k = pop!();
                stack.push(env.map_get(*m, k).unwrap_or(0));
            }
            Insn::MapHas(m) => {
                tick!(1);
                let k = pop!();
                stack.push(env.map_get(*m, k).is_some() as u64);
            }
            Insn::RegRead(r) => {
                tick!(1);
                let i = pop!();
                match env.reg_read(*r, i) {
                    Ok(v) => stack.push(v),
                    Err(FlexError::Trap(t)) => trap!(t),
                    Err(e) => return Err(e),
                }
            }
            Insn::CounterRead(c) => {
                tick!(1);
                stack.push(env.counter_read(*c));
            }
            Insn::MeterCheck(m) => {
                tick!(1);
                let k = pop!();
                stack.push(env.meter_check(*m, k) as u64);
            }
            Insn::Hash(n) => {
                tick!(1);
                let at = stack.len() - *n as usize;
                let h = hash_values(&stack[at..]);
                stack.truncate(at);
                stack.push(h);
            }
            Insn::PktLen => {
                tick!(1);
                stack.push(pkt.wire_len() as u64);
            }
            Insn::Bin(op) => {
                tick!(1);
                let b = pop!();
                let a = pop!();
                match eval_bin(*op, a, b) {
                    Ok(v) => stack.push(v),
                    Err(FlexError::Trap(t)) => trap!(t),
                    Err(e) => return Err(e),
                }
            }
            Insn::Un(op) => {
                tick!(1);
                let a = pop!();
                stack.push(match op {
                    UnOp::Not => (a == 0) as u64,
                    UnOp::BitNot => !a,
                    UnOp::Neg => a.wrapping_neg(),
                });
            }
            Insn::LAndProbe(t) => {
                tick!(1);
                let a = pop!();
                if a == 0 {
                    stack.push(0);
                    pc = *t as usize;
                }
            }
            Insn::LOrProbe(t) => {
                tick!(1);
                let a = pop!();
                if a != 0 {
                    stack.push(1);
                    pc = *t as usize;
                }
            }
            Insn::BoolCast => {
                let b = pop!();
                stack.push((b != 0) as u64);
            }
            Insn::Jump(t) => pc = *t as usize,
            Insn::StoreLocal(s) => {
                tick!(1);
                locals[*s as usize] = pop!();
            }
            Insn::StoreField(f) => {
                tick!(1);
                let v = pop!();
                pkt.set_field(&prog.field_names[*f as usize], v);
                if PREFETCH {
                    // Write-through: refresh just this lane slot from the
                    // packet (a store to a missing header is a no-op, which
                    // the re-read reproduces exactly).
                    let (proto, field) = &prog.field_parts[*f as usize];
                    fields[*f as usize] = pkt.get_field_at(proto, field).unwrap_or(0);
                }
            }
            Insn::MapPut(m) => {
                tick!(1);
                let v = pop!();
                let k = pop!();
                // A full map drops the insert; data planes degrade, not trap.
                let _ = env.map_put(*m, k, v);
            }
            Insn::MapDelete(m) => {
                tick!(1);
                let k = pop!();
                env.map_del(*m, k);
            }
            Insn::RegWrite(r) => {
                tick!(1);
                let v = pop!();
                let i = pop!();
                match env.reg_write(*r, i, v) {
                    Ok(()) => {}
                    Err(FlexError::Trap(t)) => trap!(t),
                    Err(e) => return Err(e),
                }
            }
            Insn::Count(c) => {
                tick!(1);
                env.counter_add(*c, 1, pkt.wire_len() as u64);
            }
            Insn::BranchIfZero(t) => {
                tick!(1);
                if pop!() == 0 {
                    pc = *t as usize;
                }
            }
            Insn::LoopEnter(n) => {
                tick!(1);
                loops.push(*n);
            }
            Insn::LoopTest(t) => {
                let top = match loops.last_mut() {
                    Some(t) => t,
                    None => trap!(Trap::CorruptImage {
                        reason: "bytecode loop underflow",
                    }),
                };
                if *top == 0 {
                    loops.pop();
                    pc = *t as usize;
                } else {
                    *top -= 1;
                }
            }
            Insn::Apply(t) => {
                // 1 for the statement + 3 for key build, lookup, dispatch —
                // matching the interpreter's accounting.
                tick!(4);
                let meta = &prog.tables[*t as usize];
                if meta.key_fields.len() > MAX_TABLE_KEY_WIDTH {
                    trap!(Trap::KeyOverflow {
                        table: meta.name.clone(),
                        width: meta.key_fields.len() as u64,
                        max: MAX_TABLE_KEY_WIDTH as u64,
                    });
                }
                keys.clear();
                for &f in &meta.key_fields {
                    keys.push(if PREFETCH {
                        fields[f as usize]
                    } else {
                        pkt.get_field(&prog.field_names[f as usize]).unwrap_or(0)
                    });
                }
                let dispatch = match env.table_lookup(meta.slot, keys) {
                    Some((aidx, args)) => {
                        let Some(am) = meta.actions.get(aidx as usize) else {
                            // Only the index is known here; the interpreter
                            // reports the (unresolvable) name instead, so the
                            // differential suite compares this variant by
                            // kind, not payload.
                            let action = format!("#{aidx}");
                            trap!(Trap::UnknownAction {
                                table: meta.name.clone(),
                                action,
                            });
                        };
                        if am.arity as usize != args.len() {
                            let action = am.name.clone();
                            trap!(Trap::ArityMismatch {
                                table: meta.name.clone(),
                                action,
                            });
                        }
                        let base = am.param_base as usize;
                        locals[base..base + args.len()].copy_from_slice(args);
                        Some(am.entry)
                    }
                    None => match &meta.default {
                        Some((aidx, args)) => {
                            let am = &meta.actions[*aidx as usize];
                            let base = am.param_base as usize;
                            locals[base..base + args.len()].copy_from_slice(args);
                            Some(am.entry)
                        }
                        None => None,
                    },
                };
                if let Some(entry) = dispatch {
                    calls.push(pc);
                    pc = entry as usize;
                }
            }
            Insn::ActionEnd => {
                pc = match calls.pop() {
                    Some(p) => p,
                    None => trap!(Trap::CorruptImage {
                        reason: "bytecode call underflow",
                    }),
                };
            }
            Insn::HaltVerdict(v) => {
                tick!(1);
                return Ok(ExecOutcome {
                    verdict: Some(*v),
                    ops,
                    trap: None,
                });
            }
            Insn::HaltForward => {
                tick!(1);
                let port = pop!();
                return Ok(ExecOutcome {
                    verdict: Some(Verdict::Forward(port as u16)),
                    ops,
                    trap: None,
                });
            }
            Insn::HaltNone => {
                tick!(1);
                return Ok(ExecOutcome {
                    verdict: None,
                    ops,
                    trap: None,
                });
            }
            Insn::EndHandler => {
                return Ok(ExecOutcome {
                    verdict: None,
                    ops,
                    trap: None,
                })
            }
            Insn::Invoke(s, n) => {
                tick!(1);
                let at = stack.len() - *n as usize;
                env.invoke_service(*s, &stack[at..]);
                stack.truncate(at);
            }
            Insn::AddHeader(t) => {
                tick!(1);
                let tpl = &prog.header_templates[*t as usize];
                if !pkt.has_header(&tpl.proto) {
                    pkt.insert_header(
                        Header {
                            proto: tpl.proto.clone(),
                            fields: tpl.fields.clone(),
                        },
                        tpl.after.as_deref(),
                    );
                    refetch!();
                }
            }
            Insn::RemoveHeader(p) => {
                tick!(1);
                pkt.remove_header(&prog.proto_names[*p as usize]);
                refetch!();
            }
        }
    }
}

/// Adapts a name-keyed [`ExecEnv`] (e.g. [`crate::interp::MemEnv`]) to the
/// slot-indexed [`SlotEnv`] interface via a compiled program's reverse
/// name tables. This is the bridge the differential tests use to run both
/// engines against the *same* state; devices implement [`SlotEnv`]
/// natively and never pay this translation.
pub struct NamedSlotEnv<'a> {
    prog: &'a CompiledProgram,
    inner: &'a mut dyn ExecEnv,
    table_names: Vec<String>,
    last_call: Option<ActionCall>,
}

impl<'a> NamedSlotEnv<'a> {
    /// Wraps `inner`, translating `prog`'s slots back to names.
    pub fn new(prog: &'a CompiledProgram, inner: &'a mut dyn ExecEnv) -> NamedSlotEnv<'a> {
        // slot → table name (table slots come from the resolver, so build
        // the reverse map from the compiled metadata).
        let max = prog.tables.iter().map(|t| t.slot).max().map_or(0, |m| m + 1);
        let mut table_names = vec![String::new(); max as usize];
        for t in &prog.tables {
            table_names[t.slot as usize] = t.name.clone();
        }
        NamedSlotEnv {
            prog,
            inner,
            table_names,
            last_call: None,
        }
    }
}

impl SlotEnv for NamedSlotEnv<'_> {
    fn table_lookup(&mut self, table: u16, keys: &[u64]) -> Option<(u16, &[u64])> {
        let name = &self.table_names[table as usize];
        self.last_call = self.inner.table_lookup(name, keys);
        let call = self.last_call.as_ref()?;
        // Unknown action names map to an out-of-range index; the VM turns
        // that into the same class of runtime error the interpreter raises.
        let idx = self
            .prog
            .action_index(table, &call.action)
            .unwrap_or(u16::MAX);
        Some((idx, call.args.as_slice()))
    }

    fn map_get(&mut self, map: u16, key: u64) -> Option<u64> {
        self.inner.map_get(&self.prog.map_names[map as usize], key)
    }

    fn map_put(&mut self, map: u16, key: u64, value: u64) -> Result<()> {
        self.inner
            .map_put(&self.prog.map_names[map as usize], key, value)
    }

    fn map_del(&mut self, map: u16, key: u64) {
        self.inner.map_del(&self.prog.map_names[map as usize], key)
    }

    fn reg_read(&mut self, reg: u16, idx: u64) -> Result<u64> {
        self.inner
            .reg_read(&self.prog.register_names[reg as usize], idx)
    }

    fn reg_write(&mut self, reg: u16, idx: u64, val: u64) -> Result<()> {
        self.inner
            .reg_write(&self.prog.register_names[reg as usize], idx, val)
    }

    fn counter_add(&mut self, counter: u16, pkts: u64, bytes: u64) {
        self.inner
            .counter_add(&self.prog.counter_names[counter as usize], pkts, bytes)
    }

    fn counter_read(&mut self, counter: u16) -> u64 {
        self.inner
            .counter_read(&self.prog.counter_names[counter as usize])
    }

    fn meter_check(&mut self, meter: u16, key: u64) -> bool {
        self.inner
            .meter_check(&self.prog.meter_names[meter as usize], key)
    }

    fn invoke_service(&mut self, service: u16, args: &[u64]) {
        self.inner
            .invoke_service(&self.prog.service_names[service as usize], args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{execute, MemEnv};
    use crate::parser::parse_program;
    use crate::typecheck::check_program;

    fn compiled(src: &str) -> (Program, CompiledProgram, HeaderRegistry) {
        let p = parse_program(src).unwrap();
        let headers = HeaderRegistry::builtins();
        check_program(&p, &headers).unwrap();
        let c = compile_with_program_slots(&p, &headers).unwrap();
        (p, c, headers)
    }

    /// Runs both engines from identical initial state and asserts verdict,
    /// op count, and all observable state effects agree.
    fn assert_equivalent(src: &str, pkt: &Packet, setup: impl Fn(&mut MemEnv)) -> ExecOutcome {
        let (p, c, headers) = compiled(src);
        let mut env_i = MemEnv::new();
        setup(&mut env_i);
        let mut env_b = MemEnv::new();
        setup(&mut env_b);
        let mut pkt_i = pkt.clone();
        let mut pkt_b = pkt.clone();
        let out_i = execute(&p, "ingress", &mut pkt_i, &mut env_i, &headers).unwrap();
        let out_b = {
            let mut bridge = NamedSlotEnv::new(&c, &mut env_b);
            execute_compiled(&c, "ingress", &mut pkt_b, &mut bridge).unwrap()
        };
        assert_eq!(out_i, out_b, "verdict/ops diverged on {src}");
        assert_eq!(pkt_i, pkt_b, "packet effects diverged on {src}");
        assert_eq!(env_i.maps, env_b.maps, "map state diverged");
        assert_eq!(env_i.regs, env_b.regs, "register state diverged");
        assert_eq!(env_i.counters, env_b.counters, "counter state diverged");
        assert_eq!(env_i.meters, env_b.meters, "meter state diverged");
        assert_eq!(env_i.invocations, env_b.invocations, "invocations diverged");
        out_b
    }

    #[test]
    fn straight_line_ops_and_verdict_match() {
        let out = assert_equivalent(
            "program p { handler ingress(pkt) { let x = 1 + 2 * 3; forward(x); } }",
            &Packet::tcp(1, 1, 2, 3, 4, 0),
            |_| {},
        );
        assert_eq!(out.verdict, Some(Verdict::Forward(7)));
    }

    #[test]
    fn short_circuit_skips_rhs_in_both_engines() {
        // The rhs meter_check must not fire when the lhs decides; meters
        // are observable state, so divergence would show in the state
        // comparison as well as the op count.
        for src in [
            "program p { meter m rate 1 burst 1; handler ingress(pkt) {
               if (1 == 2 && meter_check(m, 1)) { drop(); } forward(1); } }",
            "program p { meter m rate 1 burst 1; handler ingress(pkt) {
               if (1 == 1 || meter_check(m, 1)) { forward(2); } drop(); } }",
            "program p { meter m rate 1 burst 1; handler ingress(pkt) {
               if (1 == 1 && meter_check(m, 1)) { forward(3); } drop(); } }",
            "program p { meter m rate 1 burst 1; handler ingress(pkt) {
               if (1 == 2 || meter_check(m, 1)) { forward(4); } drop(); } }",
        ] {
            assert_equivalent(src, &Packet::tcp(1, 1, 2, 3, 4, 0), |_| {});
        }
    }

    #[test]
    fn table_hit_default_and_miss_match() {
        let src = "program p {
            table acl {
              key { ipv4.src : exact; }
              action set_port(port: u16) { forward(port); }
              action deny() { drop(); }
              default deny();
              size 8;
            }
            handler ingress(pkt) { apply acl; forward(1); }
          }";
        // Hit.
        let out = assert_equivalent(src, &Packet::tcp(1, 99, 2, 3, 4, 0), |env| {
            env.install_entry(
                "acl",
                vec![99],
                ActionCall {
                    action: "set_port".into(),
                    args: vec![42],
                },
            );
        });
        assert_eq!(out.verdict, Some(Verdict::Forward(42)));
        // Miss → default.
        let out = assert_equivalent(src, &Packet::tcp(1, 7, 2, 3, 4, 0), |_| {});
        assert_eq!(out.verdict, Some(Verdict::Drop));
        // Miss, no default → fall through.
        let out = assert_equivalent(
            "program p {
               table acl { key { ipv4.src : exact; } size 8; }
               handler ingress(pkt) { apply acl; forward(9); } }",
            &Packet::tcp(1, 7, 2, 3, 4, 0),
            |_| {},
        );
        assert_eq!(out.verdict, Some(Verdict::Forward(9)));
    }

    #[test]
    fn repeat_headers_maps_registers_match() {
        assert_equivalent(
            "program p {
               map m : map<u32, u32>[64];
               register r : u64[8];
               counter c;
               handler ingress(pkt) {
                 repeat (5) {
                   reg_write(r, 1, reg_read(r, 1) + 3);
                   map_put(m, ipv4.src, map_get(m, ipv4.src) + 1);
                   count(c);
                 }
                 add_header(vlan);
                 vlan.vid = 7;
                 meta.mark = hash(ipv4.src, pktlen());
                 remove_header(vlan);
                 if (map_has(m, ipv4.src)) { forward(reg_read(r, 1)); }
                 drop();
               }
             }",
            &Packet::tcp(1, 10, 2, 3, 4, 0),
            |_| {},
        );
    }

    #[test]
    fn return_and_invoke_match() {
        assert_equivalent(
            "program p {
               service require mig(dst: u32, tag: u32);
               handler ingress(pkt) {
                 invoke mig(7, ipv4.src);
                 if (ipv4.src == 1) { return; }
                 forward(1);
               }
             }",
            &Packet::tcp(1, 1, 2, 3, 4, 0),
            |_| {},
        );
    }

    #[test]
    fn arity_mismatch_trap_is_identical() {
        let src = "program p {
            table t {
              key { ipv4.src : exact; }
              action go(port: u16) { forward(port); }
              size 8;
            }
            handler ingress(pkt) { apply t; forward(1); }
          }";
        let (p, c, headers) = compiled(src);
        let mut setup = MemEnv::new();
        setup.install_entry(
            "t",
            vec![1],
            ActionCall {
                action: "go".into(),
                args: vec![1, 2], // wrong arity
            },
        );
        let mut env_i = MemEnv::new();
        env_i.tables = setup.tables.clone();
        let mut pkt = Packet::tcp(1, 1, 2, 3, 4, 0);
        let out_i = execute(&p, "ingress", &mut pkt.clone(), &mut env_i, &headers).unwrap();
        let mut env_b = MemEnv::new();
        env_b.tables = setup.tables.clone();
        let mut bridge = NamedSlotEnv::new(&c, &mut env_b);
        let out_b = execute_compiled(&c, "ingress", &mut pkt, &mut bridge).unwrap();
        assert_eq!(out_i, out_b, "trap identity and gas count must agree");
        let trap = out_b.trap.expect("a bad entry traps, fail closed");
        assert_eq!(
            trap,
            flexnet_types::Trap::ArityMismatch {
                table: "t".into(),
                action: "go".into(),
            }
        );
        assert_eq!(
            trap.to_string(),
            "table `t` action `go` arity mismatch"
        );
        assert_eq!(out_b.verdict, None, "a trapped packet carries no verdict");
    }

    #[test]
    fn gas_exhaustion_identical_across_engines_at_every_budget() {
        // Sweep every budget from 0 to the true cost: both engines must
        // trap (or complete) at the identical ops count with the identical
        // trap, packet effects, and state — the strongest form of the
        // metering-parity invariant.
        let src = "program p {
            map m : map<u32, u32>[64];
            register r : u64[8];
            counter c;
            table t {
              key { ipv4.src : exact; }
              action tag(v: u16) { meta.mark = v; }
              default tag(3);
              size 4;
            }
            handler ingress(pkt) {
              repeat (3) {
                reg_write(r, 1, reg_read(r, 1) + 1);
                map_put(m, ipv4.src, map_get(m, ipv4.src) + 1);
                count(c);
              }
              apply t;
              if (map_has(m, ipv4.src) && reg_read(r, 1) > 1) { forward(2); }
              drop();
            }
          }";
        let (p, c, headers) = compiled(src);
        let base = Packet::tcp(1, 10, 2, 3, 4, 0);
        let full = {
            let mut env = MemEnv::new();
            let mut pkt = base.clone();
            execute(&p, "ingress", &mut pkt, &mut env, &headers).unwrap()
        };
        assert!(full.trap.is_none());
        for gas in 0..=full.ops {
            let mut env_i = MemEnv::new();
            let mut env_b = MemEnv::new();
            let mut pkt_i = base.clone();
            let mut pkt_b = base.clone();
            let out_i = crate::interp::execute_metered(
                &p, "ingress", &mut pkt_i, &mut env_i, &headers, gas,
            )
            .unwrap();
            let out_b = {
                let mut bridge = NamedSlotEnv::new(&c, &mut env_b);
                execute_compiled_metered(&c, "ingress", &mut pkt_b, &mut bridge, gas).unwrap()
            };
            assert_eq!(out_i, out_b, "divergence at gas={gas}");
            assert_eq!(pkt_i, pkt_b, "packet divergence at gas={gas}");
            assert_eq!(env_i.maps, env_b.maps, "map divergence at gas={gas}");
            assert_eq!(env_i.regs, env_b.regs, "register divergence at gas={gas}");
            assert_eq!(env_i.counters, env_b.counters, "counter divergence at gas={gas}");
            assert_eq!(env_i.invocations, env_b.invocations);
            if gas < full.ops {
                assert_eq!(
                    out_i.trap,
                    Some(flexnet_types::Trap::GasExhausted { limit: gas }),
                    "under-budget run must trap at gas={gas}"
                );
                assert!(
                    out_i.ops > gas && out_i.ops <= gas + 4,
                    "trapping op is the first charge over budget (ops={}, gas={gas}; \
                     apply charges 4 at once)",
                    out_i.ops
                );
            } else {
                assert!(out_i.trap.is_none());
            }
        }
    }

    #[test]
    fn division_by_zero_trap_is_identical() {
        let (p, c, headers) = compiled(
            "program p { handler ingress(pkt) { let x = 7 % meta.z; forward(x); } }",
        );
        let mut env_i = MemEnv::new();
        let mut env_b = MemEnv::new();
        let mut pkt_i = Packet::tcp(1, 1, 2, 3, 4, 0);
        let mut pkt_b = pkt_i.clone();
        let out_i = execute(&p, "ingress", &mut pkt_i, &mut env_i, &headers).unwrap();
        let out_b = {
            let mut bridge = NamedSlotEnv::new(&c, &mut env_b);
            execute_compiled(&c, "ingress", &mut pkt_b, &mut bridge).unwrap()
        };
        assert_eq!(out_i, out_b);
        assert_eq!(
            out_b.trap,
            Some(flexnet_types::Trap::DivisionByZero { op: "%" })
        );
    }

    #[test]
    fn corrupt_image_traps_instead_of_panicking() {
        // A hand-corrupted image (jump past the end) must fail closed with
        // a CorruptImage trap, never a panic or a hang.
        let (_, mut c, _) = compiled("program p { handler ingress(pkt) { forward(1); } }");
        c.insns.clear();
        c.insns.push(Insn::Jump(1000));
        let mut env = MemEnv::new();
        let mut bridge = NamedSlotEnv::new(&c, &mut env);
        let out = execute_compiled(
            &c,
            "ingress",
            &mut Packet::tcp(1, 1, 2, 3, 4, 0),
            &mut bridge,
        )
        .unwrap();
        assert_eq!(
            out.trap,
            Some(flexnet_types::Trap::CorruptImage {
                reason: "bytecode pc out of range",
            })
        );

        // A store with nothing on the stack underflows.
        let (_, mut c, _) = compiled("program p { handler ingress(pkt) { forward(1); } }");
        c.insns.clear();
        c.insns.push(Insn::StoreLocal(0));
        c.n_locals = 1;
        let mut env = MemEnv::new();
        let mut bridge = NamedSlotEnv::new(&c, &mut env);
        let out = execute_compiled(
            &c,
            "ingress",
            &mut Packet::tcp(1, 1, 2, 3, 4, 0),
            &mut bridge,
        )
        .unwrap();
        assert_eq!(
            out.trap,
            Some(flexnet_types::Trap::CorruptImage {
                reason: "bytecode stack underflow",
            })
        );
    }

    #[test]
    fn unresolved_symbols_surface_per_kind_at_compile_time() {
        // A resolver that knows nothing forces every kind's error path.
        struct Nothing;
        impl SlotResolver for Nothing {
            fn resolve(&self, _: SymbolKind, _: &str) -> Option<u16> {
                None
            }
        }
        let headers = HeaderRegistry::builtins();
        let cases = [
            (
                "program p { map m : map<u32, u32>[4];
                   handler ingress(pkt) { map_put(m, 1, 2); } }",
                "map",
                "m",
            ),
            (
                "program p { register r : u64[4];
                   handler ingress(pkt) { reg_write(r, 0, 1); } }",
                "register",
                "r",
            ),
            (
                "program p { counter c; handler ingress(pkt) { count(c); } }",
                "counter",
                "c",
            ),
            (
                "program p { meter m rate 1 burst 1;
                   handler ingress(pkt) { if (meter_check(m, 1)) { drop(); } } }",
                "meter",
                "m",
            ),
            (
                "program p { service require s(x: u32);
                   handler ingress(pkt) { invoke s(1); } }",
                "service",
                "s",
            ),
            (
                "program p { table t { key { ipv4.src : exact; } size 4; }
                   handler ingress(pkt) { apply t; } }",
                "table",
                "t",
            ),
        ];
        for (src, kind, name) in cases {
            let p = parse_program(src).unwrap();
            check_program(&p, &headers).unwrap();
            let err = compile(&p, &headers, &Nothing).unwrap_err();
            assert_eq!(
                err,
                FlexError::UnresolvedSymbol {
                    kind: kind.into(),
                    name: name.into(),
                },
                "wrong error for {src}"
            );
        }
    }

    #[test]
    fn unresolved_local_and_default_action_surface() {
        // Hand-built AST (the type checker would reject both), proving the
        // compiler degrades into typed errors rather than panics.
        let mut p = Program::empty("p", ProgramKind::Any);
        p.handlers.push(Handler {
            name: "ingress".into(),
            body: vec![Stmt::Forward(Expr::Local("nope".into()))],
        });
        let headers = HeaderRegistry::builtins();
        let err = compile_with_program_slots(&p, &headers).unwrap_err();
        assert_eq!(
            err,
            FlexError::UnresolvedSymbol {
                kind: "local".into(),
                name: "nope".into(),
            }
        );

        let mut p = Program::empty("p", ProgramKind::Any);
        p.tables.push(TableDecl {
            name: "t".into(),
            keys: vec![],
            actions: vec![],
            default_action: Some(ActionCall {
                action: "ghost".into(),
                args: vec![],
            }),
            size: 4,
        });
        p.handlers.push(Handler {
            name: "ingress".into(),
            body: vec![Stmt::Apply("t".into())],
        });
        let err = compile_with_program_slots(&p, &headers).unwrap_err();
        assert_eq!(
            err,
            FlexError::UnresolvedSymbol {
                kind: "action".into(),
                name: "ghost".into(),
            }
        );
    }

    #[test]
    fn unknown_handler_matches_interpreter_error() {
        let (_, c, _) = compiled("program p { handler ingress(pkt) { forward(1); } }");
        let mut env = MemEnv::new();
        let mut bridge = NamedSlotEnv::new(&c, &mut env);
        let err = execute_compiled(
            &c,
            "egress",
            &mut Packet::tcp(1, 1, 2, 3, 4, 0),
            &mut bridge,
        )
        .unwrap_err();
        assert_eq!(err, FlexError::NotFound("handler `egress`".into()));
    }

    #[test]
    fn action_locals_do_not_leak_into_the_handler_frame() {
        // The action writes a name the handler also declares; reads after
        // the apply must see the handler's value in both engines.
        let out = assert_equivalent(
            "program p {
               table t {
                 key { ipv4.src : exact; }
                 action tag(v: u16) { let x = v + 100; meta.inner = x; }
                 default tag(1);
                 size 4;
               }
               handler ingress(pkt) {
                 let x = 5;
                 apply t;
                 forward(x);
               }
             }",
            &Packet::tcp(1, 1, 2, 3, 4, 0),
            |_| {},
        );
        assert_eq!(out.verdict, Some(Verdict::Forward(5)));
    }

    #[test]
    fn program_resolver_slots_follow_declaration_order() {
        let (p, _, _) = compiled(
            "program p {
               counter a; map m : map<u32,u32>[4]; counter b; register r : u64[2];
               handler ingress(pkt) { count(b); forward(1); } }",
        );
        let r = ProgramResolver::new(&p);
        assert_eq!(r.resolve(SymbolKind::Counter, "a"), Some(0));
        assert_eq!(r.resolve(SymbolKind::Counter, "b"), Some(1));
        assert_eq!(r.resolve(SymbolKind::Map, "m"), Some(0));
        assert_eq!(r.resolve(SymbolKind::Register, "r"), Some(0));
        assert_eq!(r.resolve(SymbolKind::Counter, "m"), None, "kind-checked");
    }
}
