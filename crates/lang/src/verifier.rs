//! The FlexBPF verifier.
//!
//! Paper §3.1: "With constrained state, FlexBPF programs are analyzable to
//! certify bounded execution, well-behavedness, and to enable automated
//! compilation to constrained targets." The verifier certifies, statically:
//!
//! 1. **Bounded execution** — every handler has a worst-case operation count
//!    below [`MAX_OPS`]; `repeat` trip counts are constants at most
//!    [`MAX_REPEAT`]; tables cannot be applied from inside actions (which
//!    would create apply cycles).
//! 2. **Memory safety** — every register index is *provably* in bounds via a
//!    lightweight interval analysis (the eBPF-style trick: `x % size` always
//!    verifies).
//! 3. **Well-behavedness** — reporting whether every control path reaches an
//!    explicit verdict, which architectures without a default action require.
//!
//! The output [`VerifyReport`] also feeds the compiler: worst-case op counts
//! become per-packet processing-cost estimates, and the used-table/state sets
//! drive placement.

use crate::ast::*;
use crate::headers::HeaderRegistry;
use flexnet_types::{FlexError, Result};
use std::collections::{BTreeMap, BTreeSet};

/// Maximum constant trip count for a `repeat` loop.
pub const MAX_REPEAT: u64 = 64;
/// Maximum worst-case operation count per handler.
pub const MAX_OPS: u64 = 4096;

/// The verifier's certification of one program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Worst-case operation count per handler, keyed by handler name.
    pub handler_ops: BTreeMap<String, u64>,
    /// The largest per-handler worst case (the per-packet bound).
    pub max_ops: u64,
    /// Whether every control path in every handler ends in an explicit
    /// verdict (drop/forward/punt/recirculate/return).
    pub all_paths_verdict: bool,
    /// Whether the program ever recirculates (devices bound recirculation).
    pub uses_recirculate: bool,
    /// Tables applied anywhere in the program.
    pub tables_applied: BTreeSet<String>,
    /// State objects read or written anywhere in the program.
    pub state_used: BTreeSet<String>,
}

/// Verifies a type-checked program. Callers must run
/// [`crate::typecheck::check_program`] first; the verifier assumes names
/// resolve.
pub fn verify_program(program: &Program, headers: &HeaderRegistry) -> Result<VerifyReport> {
    let mut v = Verifier {
        program,
        headers,
        tables_applied: BTreeSet::new(),
        state_used: BTreeSet::new(),
        uses_recirculate: false,
    };

    // Actions must be straight-line primitives: no apply, no repeat.
    for t in &program.tables {
        for a in &t.actions {
            v.forbid_apply_and_repeat(&a.body, &format!("action `{}.{}`", t.name, a.name))?;
            let mut locals = Locals::default();
            for (p, _) in &a.params {
                // Action parameters come from table entries: full range.
                locals.set(p, Range::FULL);
            }
            v.walk_block(&a.body, &mut locals)?;
        }
    }

    let mut handler_ops = BTreeMap::new();
    let mut all_verdict = true;
    for h in &program.handlers {
        let mut locals = Locals::default();
        v.walk_block(&h.body, &mut locals)?;
        let action_worst = program
            .tables
            .iter()
            .flat_map(|t| t.actions.iter())
            .map(|a| block_ops(&a.body))
            .max()
            .unwrap_or(0);
        let ops = block_ops(&h.body).saturating_add(action_worst);
        if ops > MAX_OPS {
            return Err(FlexError::Verify(format!(
                "handler `{}` worst-case op count {} exceeds the bound {}",
                h.name, ops, MAX_OPS
            )));
        }
        all_verdict &= block_always_verdicts(&h.body);
        handler_ops.insert(h.name.clone(), ops);
    }

    let max_ops = handler_ops.values().copied().max().unwrap_or(0);
    Ok(VerifyReport {
        handler_ops,
        max_ops,
        all_paths_verdict: all_verdict,
        uses_recirculate: v.uses_recirculate,
        tables_applied: v.tables_applied,
        state_used: v.state_used,
    })
}

// ---------------------------------------------------------------------------
// Interval analysis
// ---------------------------------------------------------------------------

/// An unsigned interval `[lo, hi]`, both inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl Range {
    /// The full u64 range (nothing known).
    pub const FULL: Range = Range {
        lo: 0,
        hi: u64::MAX,
    };

    /// A single-value range.
    pub const fn exactly(v: u64) -> Range {
        Range { lo: v, hi: v }
    }

    /// `[0, hi]`.
    pub const fn up_to(hi: u64) -> Range {
        Range { lo: 0, hi }
    }

    /// The smallest range containing both inputs (join at control merges).
    pub fn union(self, other: Range) -> Range {
        Range {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// The value range of a field of the given bit width.
fn width_range(width: u8) -> Range {
    if width >= 64 {
        Range::FULL
    } else {
        Range::up_to((1u64 << width) - 1)
    }
}

#[derive(Debug, Clone, Default)]
struct Locals {
    ranges: BTreeMap<String, Range>,
}

impl Locals {
    fn set(&mut self, name: &str, r: Range) {
        self.ranges.insert(name.to_string(), r);
    }

    fn get(&self, name: &str) -> Range {
        self.ranges.get(name).copied().unwrap_or(Range::FULL)
    }

    /// Join of two branch outcomes.
    fn merge(a: Locals, b: Locals) -> Locals {
        let mut out = Locals::default();
        for (k, ra) in &a.ranges {
            let r = match b.ranges.get(k) {
                Some(rb) => ra.union(*rb),
                None => Range::FULL,
            };
            out.ranges.insert(k.clone(), r);
        }
        for (k, _) in b.ranges {
            out.ranges.entry(k).or_insert(Range::FULL);
        }
        out
    }
}

struct Verifier<'a> {
    program: &'a Program,
    headers: &'a HeaderRegistry,
    tables_applied: BTreeSet<String>,
    state_used: BTreeSet<String>,
    uses_recirculate: bool,
}

impl<'a> Verifier<'a> {
    fn forbid_apply_and_repeat(&self, block: &Block, ctx: &str) -> Result<()> {
        for s in block {
            match s {
                Stmt::Apply(_) => {
                    return Err(FlexError::Verify(format!(
                        "{ctx}: actions may not apply tables (apply cycles would be unbounded)"
                    )))
                }
                Stmt::Repeat(..) => {
                    return Err(FlexError::Verify(format!(
                        "{ctx}: actions may not contain loops"
                    )))
                }
                Stmt::If(_, t, e) => {
                    self.forbid_apply_and_repeat(t, ctx)?;
                    self.forbid_apply_and_repeat(e, ctx)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    fn walk_block(&mut self, block: &Block, locals: &mut Locals) -> Result<()> {
        for s in block {
            self.walk_stmt(s, locals)?;
        }
        Ok(())
    }

    fn walk_stmt(&mut self, stmt: &Stmt, locals: &mut Locals) -> Result<()> {
        match stmt {
            Stmt::Let(n, e) | Stmt::AssignLocal(n, e) => {
                let r = self.expr_range(e, locals)?;
                locals.set(n, r);
            }
            Stmt::AssignField(_, e) | Stmt::Forward(e) => {
                self.expr_range(e, locals)?;
            }
            Stmt::MapPut(m, k, v) => {
                self.state_used.insert(m.clone());
                self.expr_range(k, locals)?;
                self.expr_range(v, locals)?;
            }
            Stmt::MapDelete(m, k) => {
                self.state_used.insert(m.clone());
                self.expr_range(k, locals)?;
            }
            Stmt::RegWrite(r, i, v) => {
                self.state_used.insert(r.clone());
                self.check_reg_index(r, i, locals)?;
                self.expr_range(v, locals)?;
            }
            Stmt::Count(c) => {
                self.state_used.insert(c.clone());
            }
            Stmt::If(c, t, e) => {
                self.expr_range(c, locals)?;
                let mut lt = locals.clone();
                let mut le = locals.clone();
                self.walk_block(t, &mut lt)?;
                self.walk_block(e, &mut le)?;
                *locals = Locals::merge(lt, le);
            }
            Stmt::Repeat(n, body) => {
                if *n > MAX_REPEAT {
                    return Err(FlexError::Verify(format!(
                        "repeat count {n} exceeds the bound {MAX_REPEAT}"
                    )));
                }
                // Loop bodies may update locals; analyze to fixpoint-lite by
                // widening locals written in the body to FULL, then checking.
                let mut widened = locals.clone();
                widen_assigned(body, &mut widened);
                self.walk_block(body, &mut widened)?;
                *locals = widened;
            }
            Stmt::Apply(t) => {
                self.tables_applied.insert(t.clone());
            }
            Stmt::Recirculate => {
                self.uses_recirculate = true;
            }
            Stmt::Invoke(s, args) => {
                self.state_used.insert(format!("service:{s}"));
                for a in args {
                    self.expr_range(a, locals)?;
                }
            }
            Stmt::Drop
            | Stmt::Punt
            | Stmt::Return
            | Stmt::AddHeader(_)
            | Stmt::RemoveHeader(_) => {}
        }
        Ok(())
    }

    fn check_reg_index(&mut self, reg: &str, idx: &Expr, locals: &Locals) -> Result<()> {
        let size = self
            .program
            .state(reg)
            .map(|s| s.size)
            .unwrap_or(0);
        let r = self.expr_range(idx, locals)?;
        if size == 0 || r.hi >= size {
            return Err(FlexError::Verify(format!(
                "register `{reg}` index may reach {} but size is {size}; \
                 use `index % {size}` to prove bounds",
                r.hi
            )));
        }
        Ok(())
    }

    fn expr_range(&mut self, e: &Expr, locals: &Locals) -> Result<Range> {
        Ok(match e {
            Expr::Int(v) => Range::exactly(*v),
            Expr::Local(n) => locals.get(n),
            Expr::Field(FieldPath::Header(p, f)) => self
                .headers
                .field(p, f)
                .map(|fd| width_range(fd.width))
                .unwrap_or(Range::FULL),
            Expr::Field(FieldPath::Meta(_)) => Range::FULL,
            Expr::Valid(_) | Expr::MapHas(_, _) | Expr::MeterCheck(_, _) => {
                if let Expr::MapHas(m, k) | Expr::MeterCheck(m, k) = e {
                    self.state_used.insert(m.clone());
                    self.expr_range(k, locals)?;
                }
                Range::up_to(1)
            }
            Expr::MapGet(m, k) => {
                self.state_used.insert(m.clone());
                self.expr_range(k, locals)?;
                match self.program.state(m).map(|s| &s.kind) {
                    Some(StateKind::Map { value_width, .. }) => width_range(*value_width),
                    _ => Range::FULL,
                }
            }
            Expr::RegRead(r, i) => {
                self.state_used.insert(r.clone());
                self.check_reg_index(r, i, locals)?;
                match self.program.state(r).map(|s| &s.kind) {
                    Some(StateKind::Register { width }) => width_range(*width),
                    _ => Range::FULL,
                }
            }
            Expr::CounterRead(c) => {
                self.state_used.insert(c.clone());
                Range::FULL
            }
            Expr::Hash(args) => {
                for a in args {
                    self.expr_range(a, locals)?;
                }
                Range::FULL
            }
            Expr::PktLen => Range::up_to(u32::MAX as u64),
            Expr::Bin(op, l, r) => {
                let a = self.expr_range(l, locals)?;
                let b = self.expr_range(r, locals)?;
                bin_range(*op, a, b)
            }
            Expr::Un(op, v) => {
                let a = self.expr_range(v, locals)?;
                match op {
                    UnOp::Not => Range::up_to(1),
                    UnOp::BitNot | UnOp::Neg => {
                        // Wrapping: only exact inputs stay exact.
                        if a.lo == a.hi {
                            let v = if *op == UnOp::BitNot {
                                !a.lo
                            } else {
                                a.lo.wrapping_neg()
                            };
                            Range::exactly(v)
                        } else {
                            Range::FULL
                        }
                    }
                }
            }
        })
    }
}

/// Interval transfer function for binary operators (all arithmetic is
/// wrapping u64 at runtime; the analysis saturates, so a potential wrap
/// degrades to FULL rather than producing an unsound bound).
fn bin_range(op: BinOp, a: Range, b: Range) -> Range {
    match op {
        BinOp::Add => match a.hi.checked_add(b.hi) {
            Some(hi) => Range {
                lo: a.lo.saturating_add(b.lo),
                hi,
            },
            None => Range::FULL,
        },
        BinOp::Sub => {
            if a.lo >= b.hi {
                Range {
                    lo: a.lo - b.hi,
                    hi: a.hi - b.lo,
                }
            } else {
                Range::FULL // may wrap
            }
        }
        BinOp::Mul => match a.hi.checked_mul(b.hi) {
            Some(hi) => Range {
                lo: a.lo.saturating_mul(b.lo),
                hi,
            },
            None => Range::FULL,
        },
        // x / 0 traps at runtime, so only non-trapping executions flow on:
        // the result never exceeds the dividend.
        BinOp::Div => Range::up_to(a.hi),
        // x % 0 traps at runtime; when the divisor can only be 0 every
        // execution traps and any range is vacuously sound.
        BinOp::Mod => {
            if b.hi == 0 {
                Range::exactly(0)
            } else {
                Range::up_to((b.hi - 1).min(a.hi))
            }
        }
        BinOp::And => Range::up_to(a.hi.min(b.hi)),
        BinOp::Or | BinOp::Xor => {
            let m = a.hi.max(b.hi);
            let hi = if m == 0 {
                0
            } else {
                // Smallest all-ones mask covering both operands.
                u64::MAX >> m.leading_zeros()
            };
            Range::up_to(hi)
        }
        BinOp::Shl => {
            if b.hi >= 64 {
                Range::FULL
            } else {
                match a.hi.checked_shl(b.hi as u32) {
                    Some(hi) => Range {
                        lo: a.lo.checked_shl(b.lo as u32).unwrap_or(0),
                        hi,
                    },
                    None => Range::FULL,
                }
            }
        }
        BinOp::Shr => Range {
            // Runtime semantics: shifting by >= 64 yields 0, so a possibly
            // oversized shift amount makes 0 reachable.
            lo: if b.hi >= 64 { 0 } else { a.lo >> b.hi },
            hi: if b.lo >= 64 { 0 } else { a.hi >> b.lo },
        },
        // Comparisons / logical yield booleans.
        _ => Range::up_to(1),
    }
}

/// After a loop body may run 0..n times, locals assigned inside can hold
/// values from any iteration: widen them to FULL before checking the body.
fn widen_assigned(block: &Block, locals: &mut Locals) {
    for s in block {
        match s {
            Stmt::Let(n, _) | Stmt::AssignLocal(n, _) => locals.set(n, Range::FULL),
            Stmt::If(_, t, e) => {
                widen_assigned(t, locals);
                widen_assigned(e, locals);
            }
            Stmt::Repeat(_, b) => widen_assigned(b, locals),
            _ => {}
        }
    }
}

/// Computes the interval of a standalone expression with no locals in
/// scope, against `program`'s state declarations and `headers`. Exposed for
/// property tests that cross-check the static analysis against the
/// interpreter: for every packet, the evaluated value must lie within the
/// computed range.
pub fn analyze_expr_range(
    e: &Expr,
    program: &Program,
    headers: &HeaderRegistry,
) -> Result<Range> {
    let mut v = Verifier {
        program,
        headers,
        tables_applied: BTreeSet::new(),
        state_used: BTreeSet::new(),
        uses_recirculate: false,
    };
    v.expr_range(e, &Locals::default())
}

// ---------------------------------------------------------------------------
// Op counting and verdict analysis
// ---------------------------------------------------------------------------

fn expr_ops(e: &Expr) -> u64 {
    match e {
        Expr::Int(_) | Expr::Local(_) | Expr::PktLen => 1,
        Expr::Field(_) | Expr::Valid(_) | Expr::CounterRead(_) => 1,
        Expr::MapGet(_, k) | Expr::MapHas(_, k) | Expr::RegRead(_, k) | Expr::MeterCheck(_, k) => {
            1 + expr_ops(k)
        }
        Expr::Hash(args) => 1 + args.iter().map(expr_ops).sum::<u64>(),
        Expr::Bin(_, l, r) => 1 + expr_ops(l) + expr_ops(r),
        Expr::Un(_, v) => 1 + expr_ops(v),
    }
}

fn stmt_ops(s: &Stmt) -> u64 {
    match s {
        Stmt::Let(_, e) | Stmt::AssignLocal(_, e) | Stmt::AssignField(_, e) | Stmt::Forward(e) => {
            1 + expr_ops(e)
        }
        Stmt::MapPut(_, k, v) | Stmt::RegWrite(_, k, v) => 1 + expr_ops(k) + expr_ops(v),
        Stmt::MapDelete(_, k) => 1 + expr_ops(k),
        Stmt::Count(_) => 1,
        Stmt::If(c, t, e) => 1 + expr_ops(c) + block_ops(t).max(block_ops(e)),
        Stmt::Repeat(n, b) => 1 + n.saturating_mul(block_ops(b)),
        Stmt::Apply(_) => 4, // lookup + key build + action dispatch
        Stmt::Invoke(_, args) => 2 + args.iter().map(expr_ops).sum::<u64>(),
        Stmt::Drop
        | Stmt::Punt
        | Stmt::Recirculate
        | Stmt::Return
        | Stmt::AddHeader(_)
        | Stmt::RemoveHeader(_) => 1,
    }
}

/// Worst-case operation count of a block.
pub fn block_ops(block: &Block) -> u64 {
    block.iter().map(stmt_ops).sum()
}

fn stmt_is_verdict(s: &Stmt) -> bool {
    match s {
        Stmt::Drop | Stmt::Forward(_) | Stmt::Punt | Stmt::Recirculate | Stmt::Return => true,
        Stmt::If(_, t, e) => block_always_verdicts(t) && block_always_verdicts(e),
        _ => false,
    }
}

/// Whether every control path through the block reaches an explicit verdict.
pub fn block_always_verdicts(block: &Block) -> bool {
    block.iter().any(stmt_is_verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::typecheck::check_program;

    fn verify(src: &str) -> Result<VerifyReport> {
        let p = parse_program(src)?;
        let headers = HeaderRegistry::builtins();
        check_program(&p, &headers)?;
        verify_program(&p, &headers)
    }

    #[test]
    fn certifies_simple_program() {
        let r = verify(
            "program p {
               counter c;
               handler ingress(pkt) { count(c); forward(1); }
             }",
        )
        .unwrap();
        assert!(r.max_ops > 0 && r.max_ops < 10);
        assert!(r.all_paths_verdict);
        assert!(r.state_used.contains("c"));
    }

    #[test]
    fn modulo_proves_register_bounds() {
        verify(
            "program p {
               register r : u64[16];
               handler h(pkt) {
                 let i = hash(ipv4.src) % 16;
                 reg_write(r, i, reg_read(r, i) + 1);
                 forward(1);
               }
             }",
        )
        .unwrap();
    }

    #[test]
    fn unproven_register_index_rejected() {
        let err = verify(
            "program p {
               register r : u64[16];
               handler h(pkt) { reg_write(r, hash(ipv4.src), 1); }
             }",
        )
        .unwrap_err();
        assert!(matches!(err, FlexError::Verify(_)), "{err}");
    }

    #[test]
    fn narrow_fields_prove_bounds_without_modulo() {
        // ipv4.proto is 8 bits, so a 256-entry register is always safe.
        verify(
            "program p {
               register r : u64[256];
               handler h(pkt) { reg_write(r, ipv4.proto, 1); forward(1); }
             }",
        )
        .unwrap();
        // …but a 255-entry register is not.
        assert!(verify(
            "program p {
               register r : u64[255];
               handler h(pkt) { reg_write(r, ipv4.proto, 1); }
             }"
        )
        .is_err());
    }

    #[test]
    fn branch_join_unions_ranges() {
        // i is 0 or 10 after the if; 11-entry register is safe, 10 is not.
        verify(
            "program p {
               register r : u64[11];
               handler h(pkt) {
                 let i = 0;
                 if (valid(tcp)) { i = 10; }
                 reg_write(r, i, 1);
                 forward(1);
               }
             }",
        )
        .unwrap();
        assert!(verify(
            "program p {
               register r : u64[10];
               handler h(pkt) {
                 let i = 0;
                 if (valid(tcp)) { i = 10; }
                 reg_write(r, i, 1);
               }
             }"
        )
        .is_err());
    }

    #[test]
    fn loop_widening_is_sound() {
        // i grows each iteration: must not verify against size 8 without %.
        assert!(verify(
            "program p {
               register r : u64[8];
               handler h(pkt) {
                 let i = 0;
                 repeat (4) { reg_write(r, i, 1); i = i + 1; }
               }
             }"
        )
        .is_err());
        // With %, the same loop verifies.
        verify(
            "program p {
               register r : u64[8];
               handler h(pkt) {
                 let i = 0;
                 repeat (4) { reg_write(r, i % 8, 1); i = i + 1; }
                 forward(1);
               }
             }",
        )
        .unwrap();
    }

    #[test]
    fn repeat_bound_enforced() {
        assert!(verify(
            "program p { handler h(pkt) { repeat (65) { meta.x = 1; } forward(1); } }"
        )
        .is_err());
    }

    #[test]
    fn op_bound_enforced() {
        // 64 iterations x 64 inner = 4096 + overhead > MAX_OPS.
        let src = "program p { handler h(pkt) {
            repeat (64) { repeat (64) { meta.x = 1; } }
            forward(1); } }";
        assert!(verify(src).is_err());
    }

    #[test]
    fn apply_in_action_rejected() {
        let err = verify(
            "program p {
               table inner { key { ipv4.src : exact; } size 4; }
               table outer {
                 key { ipv4.dst : exact; }
                 action a() { apply inner; }
                 size 4;
               }
             }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("apply"), "{err}");
    }

    #[test]
    fn loops_in_actions_rejected() {
        assert!(verify(
            "program p {
               table t { key { ipv4.src : exact; }
                 action a() { repeat (2) { meta.x = 1; } } size 4; }
             }"
        )
        .is_err());
    }

    #[test]
    fn verdict_analysis() {
        let r = verify(
            "program p { handler h(pkt) {
               if (valid(tcp)) { drop(); } else { forward(1); }
             } }",
        )
        .unwrap();
        assert!(r.all_paths_verdict);
        let r = verify(
            "program p { handler h(pkt) {
               if (valid(tcp)) { drop(); }
             } }",
        )
        .unwrap();
        assert!(!r.all_paths_verdict, "fall-through path has no verdict");
    }

    #[test]
    fn report_collects_tables_and_recirculate() {
        let r = verify(
            "program p {
               table t { key { ipv4.src : exact; } size 4; }
               handler h(pkt) { apply t; recirculate(); }
             }",
        )
        .unwrap();
        assert!(r.tables_applied.contains("t"));
        assert!(r.uses_recirculate);
    }

    #[test]
    fn range_transfer_functions() {
        let full = Range::FULL;
        assert_eq!(
            bin_range(BinOp::Mod, full, Range::exactly(16)),
            Range::up_to(15)
        );
        assert_eq!(
            bin_range(BinOp::And, full, Range::exactly(0xff)),
            Range::up_to(0xff)
        );
        assert_eq!(
            bin_range(BinOp::Add, Range::exactly(3), Range::exactly(4)),
            Range::exactly(7)
        );
        assert_eq!(bin_range(BinOp::Sub, Range::up_to(4), Range::up_to(9)), full);
        assert_eq!(
            bin_range(BinOp::Shr, Range::up_to(255), Range::exactly(4)),
            Range::up_to(15)
        );
        assert_eq!(bin_range(BinOp::Div, Range::up_to(100), full), Range::up_to(100));
        assert_eq!(
            bin_range(BinOp::Or, Range::up_to(5), Range::up_to(9)),
            Range::up_to(15)
        );
    }
}
