//! The FlexBPF abstract syntax tree.
//!
//! FlexBPF (paper §3.1) is "a domain-specific language that mixes
//! match/action-style packet processing and eBPF-style offloads", exposing
//! network state as logical key/value maps. A source file contains global
//! `header` declarations (consumed by runtime parser reconfiguration) and
//! one or more `program` declarations; each program declares state (maps,
//! counters, registers, meters), match/action tables, dRPC services, and
//! imperative handlers.
//!
//! The AST doubles as the exchange format for the incremental-change DSL
//! (`patch.rs`) and datapath composition (`compose.rs`), so every node is
//! `Clone + PartialEq + Serialize` and the tree can be pretty-printed back
//! to parseable source (`to_source`), which the tests round-trip.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::fmt::Write as _;

/// A parsed FlexBPF source file.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SourceFile {
    /// Global header-type declarations.
    pub headers: Vec<HeaderDecl>,
    /// Program declarations.
    pub programs: Vec<Program>,
}

/// A header-type declaration, e.g.
/// `header vxlan { fields { vni: 24; } follows udp when udp.dport == 4789; }`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeaderDecl {
    /// Protocol name.
    pub name: String,
    /// Field declarations, in wire order.
    pub fields: Vec<FieldDecl>,
    /// Parser edge: which protocol this header follows and under what
    /// condition. `None` for root headers.
    pub follows: Option<FollowsClause>,
}

/// One field of a header type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Width in bits (1..=64).
    pub width: u8,
}

/// The parser transition that leads to a header.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FollowsClause {
    /// The predecessor protocol, e.g. `udp`.
    pub prev_proto: String,
    /// The select field on the predecessor, e.g. `dport`.
    pub select_field: String,
    /// The select value, e.g. `4789`.
    pub value: u64,
}

/// Which class of device a program is written for. Determines which
/// builtins the verifier admits and which targets the compiler considers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProgramKind {
    /// Switch ASIC datapath program (match/action oriented).
    Switch,
    /// SmartNIC program.
    Nic,
    /// Host (eBPF-style) program.
    Host,
    /// Placement decided entirely by the compiler.
    Any,
}

impl fmt::Display for ProgramKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramKind::Switch => write!(f, "switch"),
            ProgramKind::Nic => write!(f, "nic"),
            ProgramKind::Host => write!(f, "host"),
            ProgramKind::Any => write!(f, "any"),
        }
    }
}

/// A FlexBPF program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Target-class hint.
    pub kind: ProgramKind,
    /// State declarations (maps, counters, registers, meters).
    pub states: Vec<StateDecl>,
    /// Match/action table declarations.
    pub tables: Vec<TableDecl>,
    /// dRPC services this program invokes or provides.
    pub services: Vec<ServiceDecl>,
    /// Packet handlers (`ingress`, `egress`, …).
    pub handlers: Vec<Handler>,
}

impl Program {
    /// An empty program with the given name and kind.
    pub fn empty(name: &str, kind: ProgramKind) -> Program {
        Program {
            name: name.to_string(),
            kind,
            states: Vec::new(),
            tables: Vec::new(),
            services: Vec::new(),
            handlers: Vec::new(),
        }
    }

    /// Finds a table by name.
    pub fn table(&self, name: &str) -> Option<&TableDecl> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Finds a state declaration by name.
    pub fn state(&self, name: &str) -> Option<&StateDecl> {
        self.states.iter().find(|s| s.name == name)
    }

    /// Finds a handler by name.
    pub fn handler(&self, name: &str) -> Option<&Handler> {
        self.handlers.iter().find(|h| h.name == name)
    }
}

/// The kinds of logical state FlexBPF exposes (paper §3.1: "a logical and
/// constrained form of network state, organized in key/value maps").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateKind {
    /// A key/value map with fixed key and value widths.
    Map {
        /// Key width in bits.
        key_width: u8,
        /// Value width in bits.
        value_width: u8,
    },
    /// A packet/byte counter.
    Counter,
    /// An indexed register array.
    Register {
        /// Cell width in bits.
        width: u8,
    },
    /// A two-rate token-bucket meter.
    Meter {
        /// Committed rate in packets per second.
        rate_pps: u64,
        /// Burst size in packets.
        burst: u64,
    },
}

/// A state declaration, e.g. `map blocked : map<u32, u8>[1024];`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateDecl {
    /// State object name.
    pub name: String,
    /// What kind of state this is.
    pub kind: StateKind,
    /// Number of entries/cells (1 for counters and meters).
    pub size: u64,
}

/// How a table key field is matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchKind {
    /// Exact match (SRAM hash lookup).
    Exact,
    /// Longest-prefix match (TCAM).
    Lpm,
    /// Ternary match (TCAM).
    Ternary,
    /// Range match (TCAM expansion).
    Range,
}

impl fmt::Display for MatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchKind::Exact => write!(f, "exact"),
            MatchKind::Lpm => write!(f, "lpm"),
            MatchKind::Ternary => write!(f, "ternary"),
            MatchKind::Range => write!(f, "range"),
        }
    }
}

/// A reference to a packet field or metadata slot.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldPath {
    /// A header field, e.g. `ipv4.src`.
    Header(String, String),
    /// A metadata slot, e.g. `meta.mark`.
    Meta(String),
}

impl FieldPath {
    /// The dotted-path form used by `flexnet_types::Packet` accessors.
    pub fn dotted(&self) -> String {
        match self {
            FieldPath::Header(p, f) => format!("{p}.{f}"),
            FieldPath::Meta(f) => format!("meta.{f}"),
        }
    }
}

impl fmt::Display for FieldPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.dotted())
    }
}

/// One key of a match/action table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableKey {
    /// The matched field.
    pub field: FieldPath,
    /// How it is matched.
    pub match_kind: MatchKind,
}

/// An action declaration inside a table: a named parameterized block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionDecl {
    /// Action name (unique within the table).
    pub name: String,
    /// Parameter names and widths; bound as locals when the action runs.
    pub params: Vec<(String, u8)>,
    /// The action body.
    pub body: Block,
}

/// An action invocation with constant arguments (table entries and default
/// actions bind actions this way).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionCall {
    /// The action name.
    pub action: String,
    /// Constant arguments, one per declared parameter.
    pub args: Vec<u64>,
}

/// A match/action table declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableDecl {
    /// Table name.
    pub name: String,
    /// Match keys.
    pub keys: Vec<TableKey>,
    /// Declared actions.
    pub actions: Vec<ActionDecl>,
    /// Action to run on a miss.
    pub default_action: Option<ActionCall>,
    /// Maximum number of entries.
    pub size: u64,
}

impl TableDecl {
    /// Finds an action by name.
    pub fn action(&self, name: &str) -> Option<&ActionDecl> {
        self.actions.iter().find(|a| a.name == name)
    }

    /// Whether any key requires TCAM (lpm/ternary/range).
    pub fn needs_tcam(&self) -> bool {
        self.keys
            .iter()
            .any(|k| !matches!(k.match_kind, MatchKind::Exact))
    }
}

/// A dRPC service declaration (paper §3.4): either provided by this program
/// or imported from the infrastructure program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceDecl {
    /// Service name.
    pub name: String,
    /// Parameter names and widths.
    pub params: Vec<(String, u8)>,
    /// `true` when this program provides (exports) the service; `false`
    /// when it imports it.
    pub provided: bool,
}

/// A packet handler.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Handler {
    /// Handler name (`ingress`, `egress`, …).
    pub name: String,
    /// The handler body.
    pub body: Block,
}

/// A statement block.
pub type Block = Vec<Stmt>;

/// FlexBPF statements.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Stmt {
    /// `let x = expr;`
    Let(String, Expr),
    /// `x = expr;` (re-assigning a local)
    AssignLocal(String, Expr),
    /// `ipv4.ttl = expr;`
    AssignField(FieldPath, Expr),
    /// `map_put(m, key, value);`
    MapPut(String, Expr, Expr),
    /// `map_del(m, key);`
    MapDelete(String, Expr),
    /// `reg_write(r, index, value);`
    RegWrite(String, Expr, Expr),
    /// `count(c);`
    Count(String),
    /// `if (cond) { … } else { … }`
    If(Expr, Block, Block),
    /// `repeat (n) { … }` — constant trip count, verified bounded.
    Repeat(u64, Block),
    /// `apply t;`
    Apply(String),
    /// `drop();`
    Drop,
    /// `forward(port);`
    Forward(Expr),
    /// `punt();` — send to controller.
    Punt,
    /// `recirculate();`
    Recirculate,
    /// `invoke svc(args…);` — a dRPC call (paper §3.4).
    Invoke(String, Vec<Expr>),
    /// `add_header(proto);`
    AddHeader(String),
    /// `remove_header(proto);`
    RemoveHeader(String),
    /// `return;`
    Return,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    LAnd,
    /// `||`
    LOr,
}

impl BinOp {
    /// Whether this operator yields a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether this operator is logical (takes booleans).
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LAnd | BinOp::LOr)
    }

    /// Source token for pretty-printing.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::LAnd => "&&",
            BinOp::LOr => "||",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Logical `!`
    Not,
    /// Bitwise `~`
    BitNot,
    /// Arithmetic negation (wrapping on u64).
    Neg,
}

/// FlexBPF expressions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int(u64),
    /// Local variable (or action parameter).
    Local(String),
    /// Packet field or metadata read.
    Field(FieldPath),
    /// `valid(proto)` — header presence test.
    Valid(String),
    /// `map_get(m, key)` — returns the value or 0 on a miss.
    MapGet(String, Box<Expr>),
    /// `map_has(m, key)` — membership test.
    MapHas(String, Box<Expr>),
    /// `reg_read(r, index)`.
    RegRead(String, Box<Expr>),
    /// `counter_read(c)`.
    CounterRead(String),
    /// `meter_check(m, key)` — 1 when conforming, 0 when exceeding.
    MeterCheck(String, Box<Expr>),
    /// `hash(e1, e2, …)` — deterministic mixing of the arguments.
    Hash(Vec<Expr>),
    /// `pktlen()` — wire length of the packet.
    PktLen,
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
}

impl Expr {
    /// Convenience: `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Bin(BinOp::Eq, Box::new(a), Box::new(b))
    }

    /// Convenience: a header-field read.
    pub fn field(proto: &str, field: &str) -> Expr {
        Expr::Field(FieldPath::Header(proto.to_string(), field.to_string()))
    }
}

// ---------------------------------------------------------------------------
// Pretty printer
// ---------------------------------------------------------------------------

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_block(out: &mut String, block: &Block, depth: usize) {
    for stmt in block {
        write_stmt(out, stmt, depth);
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    indent(out, depth);
    match stmt {
        Stmt::Let(n, e) => {
            let _ = writeln!(out, "let {n} = {};", expr_src(e));
        }
        Stmt::AssignLocal(n, e) => {
            let _ = writeln!(out, "{n} = {};", expr_src(e));
        }
        Stmt::AssignField(p, e) => {
            let _ = writeln!(out, "{p} = {};", expr_src(e));
        }
        Stmt::MapPut(m, k, v) => {
            let _ = writeln!(out, "map_put({m}, {}, {});", expr_src(k), expr_src(v));
        }
        Stmt::MapDelete(m, k) => {
            let _ = writeln!(out, "map_del({m}, {});", expr_src(k));
        }
        Stmt::RegWrite(r, i, v) => {
            let _ = writeln!(out, "reg_write({r}, {}, {});", expr_src(i), expr_src(v));
        }
        Stmt::Count(c) => {
            let _ = writeln!(out, "count({c});");
        }
        Stmt::If(c, t, e) => {
            let _ = writeln!(out, "if ({}) {{", expr_src(c));
            write_block(out, t, depth + 1);
            if e.is_empty() {
                indent(out, depth);
                out.push_str("}\n");
            } else {
                indent(out, depth);
                out.push_str("} else {\n");
                write_block(out, e, depth + 1);
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::Repeat(n, b) => {
            let _ = writeln!(out, "repeat ({n}) {{");
            write_block(out, b, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Apply(t) => {
            let _ = writeln!(out, "apply {t};");
        }
        Stmt::Drop => out.push_str("drop();\n"),
        Stmt::Forward(e) => {
            let _ = writeln!(out, "forward({});", expr_src(e));
        }
        Stmt::Punt => out.push_str("punt();\n"),
        Stmt::Recirculate => out.push_str("recirculate();\n"),
        Stmt::Invoke(s, args) => {
            let args = args.iter().map(expr_src).collect::<Vec<_>>().join(", ");
            let _ = writeln!(out, "invoke {s}({args});");
        }
        Stmt::AddHeader(p) => {
            let _ = writeln!(out, "add_header({p});");
        }
        Stmt::RemoveHeader(p) => {
            let _ = writeln!(out, "remove_header({p});");
        }
        Stmt::Return => out.push_str("return;\n"),
    }
}

fn expr_src(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Local(n) => n.clone(),
        Expr::Field(p) => p.dotted(),
        Expr::Valid(p) => format!("valid({p})"),
        Expr::MapGet(m, k) => format!("map_get({m}, {})", expr_src(k)),
        Expr::MapHas(m, k) => format!("map_has({m}, {})", expr_src(k)),
        Expr::RegRead(r, i) => format!("reg_read({r}, {})", expr_src(i)),
        Expr::CounterRead(c) => format!("counter_read({c})"),
        Expr::MeterCheck(m, k) => format!("meter_check({m}, {})", expr_src(k)),
        Expr::Hash(args) => {
            let args = args.iter().map(expr_src).collect::<Vec<_>>().join(", ");
            format!("hash({args})")
        }
        Expr::PktLen => "pktlen()".to_string(),
        Expr::Bin(op, l, r) => format!("({} {} {})", expr_src(l), op.symbol(), expr_src(r)),
        Expr::Un(op, v) => {
            let sym = match op {
                UnOp::Not => "!",
                UnOp::BitNot => "~",
                UnOp::Neg => "-",
            };
            format!("{sym}{}", expr_src(v))
        }
    }
}

fn width_ty(w: u8) -> String {
    format!("u{w}")
}

impl SourceFile {
    /// Pretty-prints the file back to parseable FlexBPF source.
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        for h in &self.headers {
            let _ = writeln!(out, "header {} {{", h.name);
            out.push_str("  fields {\n");
            for f in &h.fields {
                let _ = writeln!(out, "    {}: {};", f.name, f.width);
            }
            out.push_str("  }\n");
            if let Some(fl) = &h.follows {
                let _ = writeln!(
                    out,
                    "  follows {} when {}.{} == {};",
                    fl.prev_proto, fl.prev_proto, fl.select_field, fl.value
                );
            }
            out.push_str("}\n\n");
        }
        for p in &self.programs {
            out.push_str(&p.to_source());
            out.push('\n');
        }
        out
    }
}

impl Program {
    /// Pretty-prints the program back to parseable FlexBPF source.
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "program {} kind {} {{", self.name, self.kind);
        for s in &self.states {
            indent(&mut out, 1);
            match &s.kind {
                StateKind::Map {
                    key_width,
                    value_width,
                } => {
                    let _ = writeln!(
                        out,
                        "map {} : map<{}, {}>[{}];",
                        s.name,
                        width_ty(*key_width),
                        width_ty(*value_width),
                        s.size
                    );
                }
                StateKind::Counter => {
                    let _ = writeln!(out, "counter {};", s.name);
                }
                StateKind::Register { width } => {
                    let _ = writeln!(out, "register {} : {}[{}];", s.name, width_ty(*width), s.size);
                }
                StateKind::Meter { rate_pps, burst } => {
                    let _ = writeln!(out, "meter {} rate {} burst {};", s.name, rate_pps, burst);
                }
            }
        }
        for svc in &self.services {
            indent(&mut out, 1);
            let params = svc
                .params
                .iter()
                .map(|(n, w)| format!("{n}: {}", width_ty(*w)))
                .collect::<Vec<_>>()
                .join(", ");
            let kw = if svc.provided { "provide" } else { "require" };
            let _ = writeln!(out, "service {kw} {}({params});", svc.name);
        }
        for t in &self.tables {
            indent(&mut out, 1);
            let _ = writeln!(out, "table {} {{", t.name);
            indent(&mut out, 2);
            out.push_str("key {");
            for k in &t.keys {
                let _ = write!(out, " {} : {};", k.field, k.match_kind);
            }
            out.push_str(" }\n");
            for a in &t.actions {
                indent(&mut out, 2);
                let params = a
                    .params
                    .iter()
                    .map(|(n, w)| format!("{n}: {}", width_ty(*w)))
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "action {}({params}) {{", a.name);
                write_block(&mut out, &a.body, 3);
                indent(&mut out, 2);
                out.push_str("}\n");
            }
            if let Some(d) = &t.default_action {
                indent(&mut out, 2);
                let args = d
                    .args
                    .iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                let _ = writeln!(out, "default {}({args});", d.action);
            }
            indent(&mut out, 2);
            let _ = writeln!(out, "size {};", t.size);
            indent(&mut out, 1);
            out.push_str("}\n");
        }
        for h in &self.handlers {
            indent(&mut out, 1);
            let _ = writeln!(out, "handler {}(pkt) {{", h.name);
            write_block(&mut out, &h.body, 2);
            indent(&mut out, 1);
            out.push_str("}\n");
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_path_dotted_forms() {
        assert_eq!(
            FieldPath::Header("ipv4".into(), "src".into()).dotted(),
            "ipv4.src"
        );
        assert_eq!(FieldPath::Meta("mark".into()).dotted(), "meta.mark");
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::LAnd.is_logical());
        assert!(!BinOp::Lt.is_logical());
    }

    #[test]
    fn program_lookups() {
        let mut p = Program::empty("x", ProgramKind::Any);
        p.tables.push(TableDecl {
            name: "acl".into(),
            keys: vec![],
            actions: vec![],
            default_action: None,
            size: 8,
        });
        assert!(p.table("acl").is_some());
        assert!(p.table("nope").is_none());
        assert!(p.state("s").is_none());
        assert!(p.handler("h").is_none());
    }

    #[test]
    fn needs_tcam_detects_non_exact_keys() {
        let mut t = TableDecl {
            name: "t".into(),
            keys: vec![TableKey {
                field: FieldPath::Header("ipv4".into(), "dst".into()),
                match_kind: MatchKind::Exact,
            }],
            actions: vec![],
            default_action: None,
            size: 1,
        };
        assert!(!t.needs_tcam());
        t.keys.push(TableKey {
            field: FieldPath::Header("ipv4".into(), "src".into()),
            match_kind: MatchKind::Lpm,
        });
        assert!(t.needs_tcam());
    }

    #[test]
    fn pretty_printer_emits_program_skeleton() {
        let mut p = Program::empty("fw", ProgramKind::Switch);
        p.states.push(StateDecl {
            name: "blocked".into(),
            kind: StateKind::Map {
                key_width: 32,
                value_width: 8,
            },
            size: 1024,
        });
        p.handlers.push(Handler {
            name: "ingress".into(),
            body: vec![Stmt::Forward(Expr::Int(1))],
        });
        let src = p.to_source();
        assert!(src.contains("program fw kind switch {"));
        assert!(src.contains("map blocked : map<u32, u8>[1024];"));
        assert!(src.contains("forward(1);"));
    }
}
