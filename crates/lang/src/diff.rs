//! Program diffing: computing the reconfiguration operations that turn one
//! installed program into another.
//!
//! Runtime changes "are simply additions, deletions, or changes to the
//! existing programs" (paper §3.2). The data plane applies changes as a
//! sequence of [`ReconfigOp`]s — the same primitives the paper reports for
//! Spectrum switches (§2: "match/action tables can be added and removed
//! on-the-fly … parser states can be similarly manipulated").

use crate::ast::*;
use serde::{Deserialize, Serialize};

/// A program together with the user header types it requires — the unit
/// installed on a device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramBundle {
    /// User-declared header types (parser additions).
    pub headers: Vec<HeaderDecl>,
    /// The program.
    pub program: Program,
}

impl ProgramBundle {
    /// Wraps a program with no user headers.
    pub fn new(program: Program) -> ProgramBundle {
        ProgramBundle {
            headers: Vec::new(),
            program,
        }
    }
}

/// One primitive runtime reconfiguration of a device program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconfigOp {
    /// Install a new match/action table.
    AddTable(TableDecl),
    /// Remove a table (and its entries).
    RemoveTable(String),
    /// Replace a table's definition in place (keys/actions/size changed).
    ModifyTable(TableDecl),
    /// Install a new state object.
    AddState(StateDecl),
    /// Remove a state object (its contents are lost).
    RemoveState(String),
    /// Replace a state object's declaration (size/kind changed).
    ModifyState(StateDecl),
    /// Add a parser state for a new header type.
    AddParserState(HeaderDecl),
    /// Remove a parser state.
    RemoveParserState(String),
    /// Install or replace a handler.
    SetHandler(Handler),
    /// Remove a handler.
    RemoveHandler(String),
    /// Add a service binding.
    AddService(ServiceDecl),
    /// Remove a service binding.
    RemoveService(String),
}

impl ReconfigOp {
    /// A short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            ReconfigOp::AddTable(t) => format!("add table `{}`", t.name),
            ReconfigOp::RemoveTable(n) => format!("remove table `{n}`"),
            ReconfigOp::ModifyTable(t) => format!("modify table `{}`", t.name),
            ReconfigOp::AddState(s) => format!("add state `{}`", s.name),
            ReconfigOp::RemoveState(n) => format!("remove state `{n}`"),
            ReconfigOp::ModifyState(s) => format!("modify state `{}`", s.name),
            ReconfigOp::AddParserState(h) => format!("add parser state `{}`", h.name),
            ReconfigOp::RemoveParserState(n) => format!("remove parser state `{n}`"),
            ReconfigOp::SetHandler(h) => format!("set handler `{}`", h.name),
            ReconfigOp::RemoveHandler(n) => format!("remove handler `{n}`"),
            ReconfigOp::AddService(s) => format!("add service `{}`", s.name),
            ReconfigOp::RemoveService(n) => format!("remove service `{n}`"),
        }
    }

    /// Whether this op only *adds* capability (safe to apply before traffic
    /// switches to the new program version).
    pub fn is_additive(&self) -> bool {
        matches!(
            self,
            ReconfigOp::AddTable(_)
                | ReconfigOp::AddState(_)
                | ReconfigOp::AddParserState(_)
                | ReconfigOp::AddService(_)
                | ReconfigOp::SetHandler(_)
        )
    }
}

/// Computes the ops that transform `old` into `new`.
///
/// The returned sequence is ordered additions-first (state before tables
/// before handlers, so new handlers never reference missing elements),
/// removals last — matching how a hitless reconfiguration engine must stage
/// changes so that both the old and the new program are runnable throughout
/// the transition.
pub fn diff_bundles(old: &ProgramBundle, new: &ProgramBundle) -> Vec<ReconfigOp> {
    let mut ops = Vec::new();

    // Parser additions first: new tables/handlers may match on new headers.
    for h in &new.headers {
        match old.headers.iter().find(|o| o.name == h.name) {
            None => ops.push(ReconfigOp::AddParserState(h.clone())),
            Some(o) if o != h => {
                // Header redefinition = remove + add (parsers have no
                // in-place modify on real hardware).
                ops.push(ReconfigOp::RemoveParserState(h.name.clone()));
                ops.push(ReconfigOp::AddParserState(h.clone()));
            }
            _ => {}
        }
    }

    for s in &new.program.states {
        match old.program.state(&s.name) {
            None => ops.push(ReconfigOp::AddState(s.clone())),
            Some(o) if o != s => ops.push(ReconfigOp::ModifyState(s.clone())),
            _ => {}
        }
    }

    for t in &new.program.tables {
        match old.program.table(&t.name) {
            None => ops.push(ReconfigOp::AddTable(t.clone())),
            Some(o) if o != t => ops.push(ReconfigOp::ModifyTable(t.clone())),
            _ => {}
        }
    }

    for svc in &new.program.services {
        match old.program.services.iter().find(|s| s.name == svc.name) {
            None => ops.push(ReconfigOp::AddService(svc.clone())),
            Some(o) if o != svc => {
                ops.push(ReconfigOp::RemoveService(svc.name.clone()));
                ops.push(ReconfigOp::AddService(svc.clone()));
            }
            _ => {}
        }
    }

    for h in &new.program.handlers {
        match old.program.handler(&h.name) {
            None => ops.push(ReconfigOp::SetHandler(h.clone())),
            Some(o) if o != h => ops.push(ReconfigOp::SetHandler(h.clone())),
            _ => {}
        }
    }

    // Removals, in reverse dependency order: handlers, services, tables,
    // state, parser states.
    for h in &old.program.handlers {
        if new.program.handler(&h.name).is_none() {
            ops.push(ReconfigOp::RemoveHandler(h.name.clone()));
        }
    }
    for svc in &old.program.services {
        if !new.program.services.iter().any(|s| s.name == svc.name) {
            ops.push(ReconfigOp::RemoveService(svc.name.clone()));
        }
    }
    for t in &old.program.tables {
        if new.program.table(&t.name).is_none() {
            ops.push(ReconfigOp::RemoveTable(t.name.clone()));
        }
    }
    for s in &old.program.states {
        if new.program.state(&s.name).is_none() {
            ops.push(ReconfigOp::RemoveState(s.name.clone()));
        }
    }
    for h in &old.headers {
        if !new.headers.iter().any(|n| n.name == h.name) {
            ops.push(ReconfigOp::RemoveParserState(h.name.clone()));
        }
    }

    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_source;

    fn bundle(src: &str) -> ProgramBundle {
        let file = parse_source(src).unwrap();
        ProgramBundle {
            headers: file.headers,
            program: file.programs.into_iter().next().unwrap(),
        }
    }

    #[test]
    fn identical_programs_diff_to_nothing() {
        let a = bundle("program p { counter c; handler h(pkt) { count(c); forward(1); } }");
        assert!(diff_bundles(&a, &a.clone()).is_empty());
    }

    #[test]
    fn added_table_and_state_detected() {
        let old = bundle("program p { handler h(pkt) { forward(1); } }");
        let new = bundle(
            "program p {
               counter c;
               table t { key { ipv4.src : exact; } size 4; }
               handler h(pkt) { apply t; forward(1); }
             }",
        );
        let ops = diff_bundles(&old, &new);
        assert!(ops.contains(&ReconfigOp::AddState(new.program.states[0].clone())));
        assert!(ops.contains(&ReconfigOp::AddTable(new.program.tables[0].clone())));
        // Handler changed, so it is re-set.
        assert!(ops
            .iter()
            .any(|o| matches!(o, ReconfigOp::SetHandler(h) if h.name == "h")));
        // Additions come before the (here absent) removals, and state
        // precedes tables precedes handlers.
        let idx = |pred: &dyn Fn(&ReconfigOp) -> bool| ops.iter().position(pred).unwrap();
        assert!(
            idx(&|o| matches!(o, ReconfigOp::AddState(_)))
                < idx(&|o| matches!(o, ReconfigOp::AddTable(_)))
        );
        assert!(
            idx(&|o| matches!(o, ReconfigOp::AddTable(_)))
                < idx(&|o| matches!(o, ReconfigOp::SetHandler(_)))
        );
    }

    #[test]
    fn removed_elements_detected_after_additions() {
        let old = bundle(
            "program p {
               counter c;
               table t { key { ipv4.src : exact; } size 4; }
               handler h(pkt) { forward(1); }
             }",
        );
        let new = bundle("program p { handler h(pkt) { forward(1); } }");
        let ops = diff_bundles(&old, &new);
        assert_eq!(
            ops,
            vec![
                ReconfigOp::RemoveTable("t".into()),
                ReconfigOp::RemoveState("c".into()),
            ]
        );
    }

    #[test]
    fn modified_table_uses_modify_op() {
        let old = bundle("program p { table t { key { ipv4.src : exact; } size 4; } }");
        let new = bundle("program p { table t { key { ipv4.src : exact; } size 99; } }");
        let ops = diff_bundles(&old, &new);
        assert_eq!(ops.len(), 1);
        assert!(matches!(&ops[0], ReconfigOp::ModifyTable(t) if t.size == 99));
    }

    #[test]
    fn parser_states_tracked() {
        let old = bundle("program p { handler h(pkt) { forward(1); } }");
        let new = bundle(
            "header vxlan { fields { vni: 24; } follows udp when udp.dport == 4789; }
             program p { handler h(pkt) { forward(1); } }",
        );
        let ops = diff_bundles(&old, &new);
        assert!(matches!(&ops[0], ReconfigOp::AddParserState(h) if h.name == "vxlan"));
        let back = diff_bundles(&new, &old);
        assert!(matches!(&back[0], ReconfigOp::RemoveParserState(n) if n == "vxlan"));
    }

    #[test]
    fn header_redefinition_is_remove_then_add() {
        let old = bundle(
            "header x { fields { a: 8; } }
             program p { handler h(pkt) { forward(1); } }",
        );
        let new = bundle(
            "header x { fields { a: 16; } }
             program p { handler h(pkt) { forward(1); } }",
        );
        let ops = diff_bundles(&old, &new);
        assert_eq!(
            ops,
            vec![
                ReconfigOp::RemoveParserState("x".into()),
                ReconfigOp::AddParserState(new.headers[0].clone()),
            ]
        );
    }

    #[test]
    fn additive_classification() {
        let t = TableDecl {
            name: "t".into(),
            keys: vec![],
            actions: vec![],
            default_action: None,
            size: 1,
        };
        assert!(ReconfigOp::AddTable(t).is_additive());
        assert!(!ReconfigOp::RemoveTable("t".into()).is_additive());
        assert!(!ReconfigOp::ModifyTable(TableDecl {
            name: "t".into(),
            keys: vec![],
            actions: vec![],
            default_action: None,
            size: 1,
        })
        .is_additive());
    }

    #[test]
    fn describe_is_human_readable() {
        assert_eq!(
            ReconfigOp::RemoveTable("acl".into()).describe(),
            "remove table `acl`"
        );
    }
}
