//! Property tests for the FlexBPF front end: the lexer and parser must be
//! total (never panic, only `Err`) on arbitrary input, and pretty-printed
//! source must round-trip programs exactly.

use flexnet_lang::lexer::lex;
use flexnet_lang::parser::{parse_program, parse_source};
use flexnet_lang::patch::parse_patch;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_is_total_on_arbitrary_bytes(src in "\\PC*") {
        // Must never panic; any result (Ok or Err) is acceptable.
        let _ = lex(&src);
    }

    #[test]
    fn parser_is_total_on_arbitrary_text(src in "\\PC*") {
        let _ = parse_source(&src);
        let _ = parse_program(&src);
        let _ = parse_patch(&src);
    }

    #[test]
    fn parser_is_total_on_token_soup(
        words in prop::collection::vec(
            prop_oneof![
                Just("program".to_string()),
                Just("handler".to_string()),
                Just("table".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just(";".to_string()),
                Just("if".to_string()),
                Just("forward".to_string()),
                Just("==".to_string()),
                Just("ipv4.src".to_string()),
                Just("42".to_string()),
                "[a-z]{1,6}".prop_map(|s| s),
            ],
            0..40,
        )
    ) {
        let src = words.join(" ");
        let _ = parse_source(&src);
    }

    #[test]
    fn source_round_trips_programs(
        name in "[a-z]{1,8}",
        size in 1u64..10_000,
        port in 0u64..65_536,
    ) {
        let src = format!(
            "program {name} kind any {{
               map m : map<u32, u64>[{size}];
               counter c;
               table t {{
                 key {{ ipv4.src : exact; }}
                 action go(p: u16) {{ forward(p); }}
                 default go({port});
                 size {size};
               }}
               handler ingress(pkt) {{
                 map_put(m, ipv4.src, map_get(m, ipv4.src) + 1);
                 count(c);
                 apply t;
                 forward({port});
               }}
             }}"
        );
        let program = parse_program(&src).unwrap();
        let printed = program.to_source();
        let back = parse_program(&printed).unwrap();
        prop_assert_eq!(program, back);
    }

    #[test]
    fn lexer_round_trips_integers(v in any::<u64>()) {
        let toks = lex(&v.to_string()).unwrap();
        prop_assert_eq!(toks.len(), 2); // Int + Eof
        prop_assert_eq!(&toks[0].kind, &flexnet_lang::token::TokenKind::Int(v));
        let hex = format!("0x{v:x}");
        let toks = lex(&hex).unwrap();
        prop_assert_eq!(&toks[0].kind, &flexnet_lang::token::TokenKind::Int(v));
    }
}
