//! Workspace-level helper library for FlexNet integration tests and examples.
//!
//! The real functionality lives in the `crates/` members; this crate only
//! hosts the cross-crate `tests/` and `examples/` required at the repository
//! root, plus a few conveniences shared between them.

/// Re-export of the facade crate so examples can `use flexnet_suite::flexnet`.
pub use flexnet;

/// Returns the workspace version string (kept in sync across all crates).
pub fn version() -> &'static str {
    env!("CARGO_PKG_VERSION")
}

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::version().is_empty());
    }
}
