//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access, so FlexNet vendors the
//! subset of the rand 0.8 API it actually uses: [`SeedableRng`],
//! [`rngs::StdRng`]/[`rngs::SmallRng`], and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`.
//!
//! Everything here is **fully deterministic**: the generators are seeded
//! explicitly (there is no `thread_rng`/`from_entropy` escape hatch), so
//! every simulation, Raft run, and injected-fault schedule reproduces
//! bit-identically across runs and platforms — which the FlexNet test
//! suite relies on.
#![allow(clippy::all)]

/// Core generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] (the vendored
/// equivalent of rand's `Standard` distribution).
pub trait FromRng {
    /// Draws one uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Scalar types that support uniform sampling from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)`; `hi` must be greater than `lo`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                lo + (rng.next_u64() % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                (lo as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let unit = <$t as FromRng>::from_rng(rng);
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Convenience extension methods over [`RngCore`], mirroring rand's `Rng`.
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::from_rng(self) < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Generators constructible from an explicit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose output is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 state expansion: turns one u64 seed into well-mixed words.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The vendored standard generator: xoshiro256** seeded via SplitMix64.
    /// Deterministic and identical on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// A small fast generator; here an alias of [`StdRng`] (both are cheap).
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0u64..=5);
            assert!(y <= 5);
            let z = r.gen_range(-8i32..8);
            assert!((-8..8).contains(&z));
            let f = r.gen_range(1e-12..1.0f64);
            assert!((1e-12..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).map(|_| r.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| r.gen_bool(1.0)).all(|b| b));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }
}
