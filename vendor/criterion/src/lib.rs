//! Offline vendored mini-criterion.
//!
//! The build environment has no network access, so this crate provides the
//! subset of the criterion 0.5 API the FlexNet microbenchmarks use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `Bencher::iter` /
//! `Bencher::iter_batched`, and the `criterion_group!` / `criterion_main!`
//! macros.
//!
//! Measurement is deliberately simple: each benchmark is warmed up briefly,
//! then timed over enough iterations to fill a short measurement window,
//! and the mean wall-clock time per iteration is printed. There is no
//! statistical analysis, outlier rejection, or HTML report — the numbers
//! are order-of-magnitude indicators, which is what the suite's benches
//! are used for.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(20);
const MEASURE: Duration = Duration::from_millis(100);

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `function/parameter`.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Types accepted as the benchmark name by group `bench_function`.
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into_id()), f);
        self
    }

    /// Ends the group (kept for API compatibility; no summary is emitted).
    pub fn finish(self) {}
}

/// Controls how batched setup output is sized; only a hint here.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Medium per-iteration inputs.
    MediumInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Passed to each benchmark closure to drive timed iterations.
pub struct Bencher {
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` over enough iterations to fill the measurement
    /// window and records the total elapsed time and iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm up and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) as u64 / warm_iters.max(1);
        let target_iters = (MEASURE.as_nanos() as u64 / per_iter.max(1)).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..target_iters {
            std::hint::black_box(routine());
        }
        self.result = Some((start.elapsed(), target_iters));
    }

    /// Like [`Bencher::iter`] but rebuilds the routine's input with `setup`
    /// outside the timed region on every iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        // Bound both wall-clock (incl. setup) and measured time so an
        // expensive setup cannot stall the harness.
        let wall = Instant::now();
        while total < MEASURE && wall.elapsed() < 4 * MEASURE {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.result = Some((total, iters));
    }
}

fn run_one<F: FnOnce(&mut Bencher)>(name: &str, f: F) {
    let mut b = Bencher { result: None };
    f(&mut b);
    match b.result {
        Some((elapsed, iters)) if iters > 0 => {
            let per = elapsed.as_nanos() as f64 / iters as f64;
            println!("bench {name:<40} {per:>12.1} ns/iter ({iters} iters)");
        }
        _ => println!("bench {name:<40} (no measurement)"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_and_iter_batched_record() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        let mut group = c.benchmark_group("g");
        group.bench_function(BenchmarkId::new("param", 42), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
