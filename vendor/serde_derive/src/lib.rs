//! Offline vendored no-op derive macros for `Serialize`/`Deserialize`.
//!
//! The build environment has no network access, so the real `serde_derive`
//! (and its `syn`/`quote` dependency tree) is unavailable. FlexNet does not
//! serialize at runtime — the derives on its types exist so the data model
//! stays serde-ready — so these derives accept the same syntax (including
//! `#[serde(...)]` helper attributes) and expand to nothing.
#![allow(clippy::all)]

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
