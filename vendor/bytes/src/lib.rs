//! Offline vendored stand-in for the `bytes` crate.
//!
//! Provides the subset of the `Bytes` API FlexNet uses: an immutable,
//! cheaply clonable byte buffer (`Arc<[u8]>` underneath, matching the real
//! crate's O(1) clone).
#![allow(clippy::all)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.into() }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
