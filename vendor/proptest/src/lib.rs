//! Offline vendored property-testing mini-framework.
//!
//! The build environment has no network access, so this crate reimplements
//! the subset of the `proptest` API the FlexNet test suite uses: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_recursive`/`boxed`,
//! range and `any::<T>()` strategies, tuple strategies, char-class string
//! patterns, [`collection`] strategies, `prop_oneof!`, and the `proptest!`
//! macro with `prop_assert!`/`prop_assert_eq!`/`prop_assume!`.
//!
//! Differences from real proptest, deliberate and documented:
//!
//! - **No shrinking.** A failing case panics with the generated inputs'
//!   debug output where the assertion message includes them; it is not
//!   minimized first.
//! - **Fully deterministic.** Each test's RNG is seeded from a hash of the
//!   test name, so failures reproduce bit-identically across runs — there
//!   is no persistence file or environment-variable seed override.
//! - String "regex" strategies support the char-class forms the suite uses
//!   (`[a-z_]{0,12}`-style classes and `\PC*` for printable soup), not
//!   arbitrary regexes.
#![allow(clippy::all)]

pub mod strategy;

pub mod collection;

pub mod test_runner;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Picks one of several strategies (uniformly) per generated case.
///
/// Arms may be different concrete strategy types as long as they produce
/// the same `Value`; each arm is boxed. Weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current test case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Discards the current test case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` (attributes written on the item pass through)
/// that draws inputs from the strategies and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_proptest(
                $cfg,
                stringify!($name),
                ($($strat,)+),
                |($($arg,)+)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
