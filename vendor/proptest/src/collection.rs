//! Collection strategies: `prop::collection::vec` and
//! `prop::collection::btree_map`.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive size range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeBounds {
    lo: usize,
    hi: usize,
}

impl SizeBounds {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<std::ops::Range<usize>> for SizeBounds {
    fn from(r: std::ops::Range<usize>) -> SizeBounds {
        assert!(r.end > r.start, "empty collection size range");
        SizeBounds {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeBounds {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeBounds {
        SizeBounds {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeBounds {
    fn from(n: usize) -> SizeBounds {
        SizeBounds { lo: n, hi: n }
    }
}

/// The strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeBounds,
}

/// Generates a `Vec` of values from `elem` with a length in `size`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeBounds>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.elem.sample(rng)).collect()
    }
}

/// The strategy returned by [`btree_map`].
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeBounds,
}

/// Generates a `BTreeMap` from the key/value strategies with up to the
/// requested number of entries (duplicate generated keys coalesce, so the
/// lower bound is best-effort, matching how the suite uses it).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeBounds>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn sample(&self, rng: &mut StdRng) -> BTreeMap<K::Value, V::Value> {
        let len = self.size.sample_len(rng);
        (0..len)
            .map(|_| (self.key.sample(rng), self.value.sample(rng)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_in_bounds() {
        let strat = vec(0u64..10, 2..5);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_map_size_bounded() {
        let strat = btree_map(any::<u64>(), any::<u64>(), 0..16);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(strat.sample(&mut rng).len() <= 15);
        }
    }
}
