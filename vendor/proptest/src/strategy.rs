//! The [`Strategy`] trait and the primitive strategies: `Just`, ranges,
//! `any::<T>()`, tuples, unions, maps, and char-class string patterns.

use std::marker::PhantomData;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

/// A generator of test-case values.
///
/// Only [`Strategy::sample`] is object-safe; the combinators require
/// `Self: Sized` so `dyn Strategy<Value = T>` works for [`BoxedStrategy`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves and
    /// `recurse`, given a strategy for smaller values, builds one level of
    /// larger values. Recursion is depth-limited to `depth` levels (the
    /// `_desired_size`/`_expected_branch` tuning knobs of real proptest are
    /// accepted for compatibility but unused).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
        R: Strategy<Value = Self::Value> + 'static,
    {
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = recurse(strat).boxed();
        }
        strat
    }

    /// Erases the concrete strategy type behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// A type-erased, cheaply clonable strategy handle.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.inner.sample(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T> Copy for Any<T> {}

/// Generates uniformly distributed values of `T` (ints, bool, floats).
pub fn any<T: rand::FromRng>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::FromRng> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// The strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed alternatives; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Builds a union over `arms`; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_strategy_tuple {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_strategy_tuple!(A.0);
impl_strategy_tuple!(A.0, B.1);
impl_strategy_tuple!(A.0, B.1, C.2);
impl_strategy_tuple!(A.0, B.1, C.2, D.3);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_strategy_tuple!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// String patterns as strategies: `"\PC*"` generates printable soup, and
/// `"[class]{m,n}"`-style char classes generate strings over the class.
/// Anything else is treated as a literal string.
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        sample_pattern(self, rng)
    }
}

/// Printable characters used by the `\PC*` pattern: mostly ASCII with a
/// sprinkling of multi-byte code points to exercise UTF-8 handling.
const EXOTIC: &[char] = &['é', 'λ', '→', '网', '\u{1F600}', 'ß', '¿'];

fn sample_pattern(pat: &str, rng: &mut StdRng) -> String {
    if pat == "\\PC*" {
        let len = rng.gen_range(0usize..64);
        return (0..len)
            .map(|_| {
                if rng.gen_range(0u32..10) == 0 {
                    EXOTIC[rng.gen_range(0..EXOTIC.len())]
                } else {
                    rng.gen_range(0x20u32..0x7f) as u8 as char
                }
            })
            .collect();
    }
    if let Some(rest) = pat.strip_prefix('[') {
        if let Some(close) = rest.find(']') {
            let class = expand_class(&rest[..close]);
            let (lo, hi) = parse_repeat(&rest[close + 1..]);
            let len = rng.gen_range(lo..=hi);
            return (0..len)
                .map(|_| class[rng.gen_range(0..class.len())])
                .collect();
        }
    }
    pat.to_string()
}

/// Expands a char class body like `a-z_` into its member characters.
fn expand_class(body: &str) -> Vec<char> {
    let chars: Vec<char> = body.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
            for c in lo..=hi {
                if let Some(c) = char::from_u32(c) {
                    out.push(c);
                }
            }
            i += 3;
        } else {
            out.push(chars[i]);
            i += 1;
        }
    }
    assert!(!out.is_empty(), "empty char class in string strategy");
    out
}

/// Parses the repetition suffix after a char class: `{m,n}`, `{m}`, `*`,
/// `+`, or nothing (meaning exactly one).
fn parse_repeat(suffix: &str) -> (usize, usize) {
    match suffix {
        "" => (1, 1),
        "*" => (0, 16),
        "+" => (1, 16),
        _ => {
            let inner = suffix
                .strip_prefix('{')
                .and_then(|s| s.strip_suffix('}'))
                .unwrap_or_else(|| panic!("unsupported repetition {suffix:?}"));
            match inner.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("repeat lower bound"),
                    n.trim().parse().expect("repeat upper bound"),
                ),
                None => {
                    let m = inner.trim().parse().expect("repeat count");
                    (m, m)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ranges_and_any_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let x = (5u64..10).sample(&mut rng);
            assert!((5..10).contains(&x));
            let y = (0u8..=32).sample(&mut rng);
            assert!(y <= 32);
            let _: bool = any::<bool>().sample(&mut rng);
        }
    }

    #[test]
    fn char_class_patterns() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let s = "[a-z_]{0,12}".sample(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()));
            let t = "[a-z]{1,6}".sample(&mut rng);
            assert!((1..=6).contains(&t.chars().count()));
            let soup = "\\PC*".sample(&mut rng);
            assert!(soup.chars().count() < 64);
        }
    }

    #[test]
    fn union_map_and_recursive_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(u64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0u64..100).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 24, 2, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let t = strat.sample(&mut rng);
            assert!(depth(&t) <= 4);
        }
    }
}
