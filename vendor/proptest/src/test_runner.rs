//! The per-test case loop behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::strategy::Strategy;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required for the test to succeed.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions did not hold; draw a fresh case instead.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `f` on freshly sampled inputs until `config.cases` cases pass.
///
/// The RNG is seeded from the test name, so each test's case sequence is
/// deterministic across runs and independent of other tests.
pub fn run_proptest<S, F>(config: ProptestConfig, name: &str, strat: S, mut f: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = StdRng::seed_from_u64(fnv1a(name));
    let max_rejects = (config.cases as u64).saturating_mul(16).max(1024);
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    while passed < config.cases {
        match f(strat.sample(&mut rng)) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest '{name}': too many rejected cases \
                         ({rejected}; last assumption: {why})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest '{name}' failed after {passed} passing cases:\n{msg}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_only_passing_cases() {
        let mut seen = 0u32;
        run_proptest(
            ProptestConfig::with_cases(10),
            "counts_only_passing_cases",
            0u64..100,
            |x| {
                if x % 2 == 0 {
                    return Err(TestCaseError::Reject("odd only".into()));
                }
                seen += 1;
                Ok(())
            },
        );
        assert_eq!(seen, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failure_panics() {
        run_proptest(
            ProptestConfig::with_cases(10),
            "failure_panics",
            0u64..100,
            |_| Err(TestCaseError::Fail("boom".into())),
        );
    }

    crate::proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(x in 0u64..50, y in 0u64..50) {
            crate::prop_assume!(x != y);
            crate::prop_assert!(x < 50 && y < 50, "bounds violated: {x} {y}");
            crate::prop_assert_eq!(x + y, y + x);
        }
    }
}
