//! Offline vendored stand-in for the `serde` crate.
//!
//! The build environment has no network access, so FlexNet vendors the
//! minimal surface it needs: the `Serialize`/`Deserialize` names resolve
//! (as marker traits) and `#[derive(Serialize, Deserialize)]` expands via
//! the no-op derives in `vendor/serde_derive`. Nothing in FlexNet
//! serializes at runtime; the annotations keep the data model serde-ready
//! for when the real crates are available.
#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait SerializeMarker {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait DeserializeMarker {}
