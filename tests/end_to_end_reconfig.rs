//! End-to-end reconfiguration semantics across the full stack
//! (language → device → simulator), exercising the paper's §2 claims.

use flexnet::prelude::*;

fn forwarding() -> ProgramBundle {
    flexnet::apps::routing::l3_router(64).unwrap()
}

fn counting() -> ProgramBundle {
    ProgramBundle::new(
        parse_program(
            "program counting kind any {
               counter seen;
               handler ingress(pkt) { count(seen); forward(0); }
             }",
        )
        .unwrap(),
    )
}

fn traffic(src: NodeId, dst: NodeId, pps: u64, secs: u64) -> Vec<flexnet_sim::Departure> {
    generate(
        &[FlowSpec::udp_cbr(
            src,
            dst,
            pps,
            SimTime::from_millis(1),
            SimDuration::from_secs(secs),
        )],
        42,
    )
}

#[test]
fn hitless_reconfig_zero_loss_under_load() {
    let (topo, sw, hosts) = Topology::single_switch(2);
    let mut sim = Simulation::new(topo);
    sim.schedule(
        SimTime::ZERO,
        Command::Install {
            node: sw,
            bundle: forwarding(),
        },
    );
    sim.load(traffic(hosts[0], hosts[1], 10_000, 3));
    sim.schedule(
        SimTime::from_millis(1500),
        Command::RuntimeReconfig {
            node: sw,
            bundle: counting(),
        },
    );
    sim.run_to_completion();

    assert_eq!(sim.metrics.sent, 30_000);
    assert_eq!(sim.metrics.delivered, 30_000, "losses: {:?}", sim.metrics.losses);
    assert_eq!(sim.metrics.total_lost(), 0);

    // The paper's timing claim: the transition completed within a second.
    let (_, _, rep) = &sim.reconfig_reports[0];
    assert!(rep.duration < SimDuration::from_secs(1));

    // Consistency: exactly two program versions processed packets, and the
    // new program's counter saw exactly the packets stamped with v2.
    let versions = sim.metrics.versions_seen(sw);
    assert_eq!(versions.len(), 2);
    let new_version_count = sim
        .metrics
        .version_counts
        .get(&(sw, versions[1]))
        .copied()
        .unwrap();
    let seen = sim
        .topo
        .node(sw)
        .unwrap()
        .device
        .program()
        .unwrap()
        .state
        .counter_read("seen");
    assert_eq!(seen, new_version_count);
}

#[test]
fn reflash_baseline_disrupts_the_same_change() {
    let (topo, sw, hosts) = Topology::single_switch(2);
    let mut sim = Simulation::new(topo);
    sim.schedule(
        SimTime::ZERO,
        Command::Install {
            node: sw,
            bundle: forwarding(),
        },
    );
    sim.load(traffic(hosts[0], hosts[1], 1_000, 40));
    sim.schedule(
        SimTime::from_secs(2),
        Command::Reflash {
            node: sw,
            bundle: counting(),
        },
    );
    sim.run_to_completion();

    let refused = sim
        .metrics
        .losses
        .get(&LossKind::Refused)
        .copied()
        .unwrap_or(0);
    assert!(refused >= 25_000, "downtime should refuse ~30s of 1kpps: {refused}");
    assert!(sim.metrics.disruption_window().unwrap() >= SimDuration::from_secs(24));
}

#[test]
fn unsafe_inplace_ablation_shows_why_atomicity_matters() {
    // Build a change whose intermediate states are observable: the old
    // program forwards everything; the new program drops TCP dport 80.
    // In-place, the handler flips *after* the state/table ops, so packets
    // mid-transition see partially-applied programs; with the shadow+flip
    // design, behaviour switches at one instant.
    let old = ProgramBundle::new(
        parse_program("program app kind any { handler ingress(pkt) { forward(0); } }").unwrap(),
    );
    let new = ProgramBundle::new(
        parse_program(
            "program app kind any {
               counter blocked;
               handler ingress(pkt) {
                 if (valid(tcp) && tcp.dport == 80) { count(blocked); drop(); }
                 forward(0);
               }
             }",
        )
        .unwrap(),
    );

    // Hitless path: behaviour is old until ready_at, new after.
    let mut dev = Device::new(
        NodeId(1),
        Architecture::drmt_default(),
        StateEncoding::StatefulTable,
    );
    dev.install(old.clone()).unwrap();
    let rep = dev
        .begin_runtime_reconfig(new.clone(), SimTime::ZERO)
        .unwrap();
    let mid = SimTime::from_nanos(rep.ready_at.as_nanos() / 2);
    let mut p = Packet::tcp(1, 1, 2, 3, 80, 0x10);
    assert_eq!(
        dev.process(&mut p, mid).unwrap().verdict,
        Verdict::Forward(0),
        "old semantics before the flip"
    );
    let mut p2 = Packet::tcp(2, 1, 2, 3, 80, 0x10);
    assert_eq!(
        dev.process(&mut p2, rep.ready_at).unwrap().verdict,
        Verdict::Drop,
        "new semantics after the flip"
    );

    // Ablation: in-place application exposes an intermediate program
    // (counter installed, handler still old).
    let mut dev2 = Device::new(
        NodeId(2),
        Architecture::drmt_default(),
        StateEncoding::StatefulTable,
    );
    dev2.install(old).unwrap();
    let rep2 = dev2.begin_unsafe_inplace(new, SimTime::ZERO).unwrap();
    assert!(rep2.ops >= 2);
    let state_op = dev2.cost_model().state_op;
    let mid2 = SimTime::ZERO + state_op + SimDuration::from_nanos(1);
    let mut p3 = Packet::tcp(3, 1, 2, 3, 80, 0x10);
    let r = dev2.process(&mut p3, mid2).unwrap();
    let has_counter = dev2.program().unwrap().state.has("blocked");
    assert!(
        has_counter && r.verdict == Verdict::Forward(0),
        "mixed program observed: new state present but old handler ran"
    );
}

#[test]
fn parser_reconfig_enables_new_protocol_mid_stream() {
    // A VXLAN-aware program arrives at runtime; before it, VXLAN headers
    // are invisible (carried opaquely); after, the program matches on vni.
    let vxlan_aware = {
        let file = parse_source(
            "header vxlan { fields { vni: 24; } follows udp when udp.dport == 4789; }
             program app kind any {
               counter tunnel;
               handler ingress(pkt) {
                 if (valid(vxlan) && vxlan.vni == 7) { count(tunnel); drop(); }
                 forward(0);
               }
             }",
        )
        .unwrap();
        ProgramBundle {
            headers: file.headers,
            program: file.programs.into_iter().next().unwrap(),
        }
    };
    let mut dev = Device::new(
        NodeId(1),
        Architecture::drmt_default(),
        StateEncoding::StatefulTable,
    );
    dev.install(ProgramBundle::new(
        parse_program("program app kind any { handler ingress(pkt) { forward(0); } }").unwrap(),
    ))
    .unwrap();

    let mk_pkt = |id| {
        let mut p = Packet::udp(id, 1, 2, 3, 4789);
        p.headers
            .push(flexnet_types::Header::new("vxlan", [("vni", 7u64)]));
        p
    };

    // Before: invisible -> forwarded.
    let mut before = mk_pkt(1);
    assert_eq!(
        dev.process(&mut before, SimTime::ZERO).unwrap().verdict,
        Verdict::Forward(0)
    );
    assert!(before.has_header("vxlan"), "opaque header preserved");

    let rep = dev.begin_runtime_reconfig(vxlan_aware, SimTime::ZERO).unwrap();
    // After: the parser extracts vxlan and the program drops vni 7.
    let mut after = mk_pkt(2);
    assert_eq!(
        dev.process(&mut after, rep.ready_at).unwrap().verdict,
        Verdict::Drop
    );
    assert!(dev.parser().can_parse("vxlan"));
}
