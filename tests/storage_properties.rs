//! Property tests for crash-consistent durable control state (ISSUE 9,
//! experiment E21):
//!
//! - the recovery scrub is a *projection*: scrubbing the bytes it kept
//!   changes nothing (truncation is idempotent), and scanning any crash
//!   prefix of the synced region yields a record-exact prefix of what
//!   was appended — never a phantom record, never a reordering;
//! - `compact_records` preserves replay semantics: the snapshot summary
//!   plus any log tail digests identically to the full log, and
//!   compaction is idempotent;
//! - `NodeStorage::recover` replays exactly the tail after the snapshot
//!   point — recovery work is O(tail), not O(history);
//! - the full storage-chaos harness converges for *any* seed with
//!   checksums armed.

use flexnet_controller::storage::{
    encode_entry, encode_record, run_storage_seed, scrub, NodeStorage,
};
use flexnet_controller::wal::IntentRecord;
use flexnet_types::SimTime;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

/// Arbitrary WAL payloads: raft log entries with arbitrary terms and
/// commands (including empty and non-ASCII ones).
fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        (0u64..1000, "[a-z0-9 ]{0,24}").prop_map(|(term, cmd)| encode_entry(term, &cmd)),
        0..24,
    )
}

fn arb_record() -> impl Strategy<Value = IntentRecord> {
    let devices = proptest::collection::vec(1u64..16, 0..6);
    prop_oneof![
        (1u64..64, devices.clone())
            .prop_map(|(txn, devices)| IntentRecord::Intent { txn, devices }),
        (1u64..64, devices).prop_map(|(txn, devices)| IntentRecord::Prepared { txn, devices }),
        (1u64..64, any::<u32>()).prop_map(|(txn, ns)| IntentRecord::FlipScheduled {
            txn,
            commit_at: SimTime::from_nanos(u64::from(ns)),
        }),
        (1u64..64).prop_map(|txn| IntentRecord::Committed { txn }),
        (1u64..64).prop_map(|txn| IntentRecord::Aborted { txn }),
        (1u64..64, 1u64..16, any::<u64>()).prop_map(|(txn, device, digest)| {
            IntentRecord::IntendedState { txn, device, digest }
        }),
    ]
}

proptest! {
    /// Scrubbing the verified prefix of a scrub is a no-op: same
    /// records, nothing further to truncate. Recovery can run any
    /// number of times (crash during recovery included) and lands on
    /// the same log.
    #[test]
    fn scrub_then_truncate_is_idempotent(
        payloads in arb_payloads(),
        cut_back in 0usize..64,
        flip in (any::<bool>(), 0usize..4096, 0u8..8),
    ) {
        let mut bytes: Vec<u8> = Vec::new();
        for p in &payloads {
            bytes.extend(encode_record(p));
        }
        // Damage the image arbitrarily: drop a suffix (torn tail) and
        // optionally flip one bit (rot).
        let cut = bytes.len().saturating_sub(cut_back);
        bytes.truncate(cut);
        let (do_flip, pos, bit) = flip;
        if do_flip && !bytes.is_empty() {
            let pos = pos % bytes.len();
            bytes[pos] ^= 1 << bit;
        }
        let first = scrub(&bytes, 0, true);
        bytes.truncate(first.valid_bytes);
        let second = scrub(&bytes, 0, true);
        prop_assert_eq!(&second.payloads, &first.payloads);
        prop_assert_eq!(second.valid_bytes, first.valid_bytes);
        prop_assert!(!second.truncated, "second scrub must be clean");
        prop_assert!(second.fault.is_none());
    }

    /// A crash exposes an arbitrary prefix of the synced bytes. Whatever
    /// the cut, the scrub recovers an exact record-prefix of what was
    /// appended: every verified payload matches the original at its
    /// position, and a mid-record cut costs exactly the in-flight
    /// record, never a synced predecessor.
    #[test]
    fn any_crash_prefix_recovers_an_exact_record_prefix(
        payloads in arb_payloads(),
        cut_back in 0usize..4096,
    ) {
        let mut bytes: Vec<u8> = Vec::new();
        for p in &payloads {
            bytes.extend(encode_record(p));
        }
        let cut = bytes.len().saturating_sub(cut_back);
        let out = scrub(&bytes[..cut], 0, true);
        prop_assert!(out.payloads.len() <= payloads.len(), "no phantom records");
        for (i, got) in out.payloads.iter().enumerate() {
            prop_assert_eq!(got, &payloads[i], "record {} must match", i);
        }
        // The verified prefix may fall short of the cut only by the one
        // torn record the cut bisected.
        if out.payloads.len() < payloads.len() {
            let next_full = out.valid_bytes + encode_record(&payloads[out.payloads.len()]).len();
            prop_assert!(cut < next_full, "a fully-synced record may never be dropped");
        }
    }

    /// The snapshot summary replays to the same recovery state as the
    /// prefix it folded: for any split point, digest(summary + tail) ==
    /// digest(full log). This is the invariant that makes compaction
    /// safe to run at any committed index.
    #[test]
    fn snapshot_plus_tail_replays_to_the_full_log_digest(
        records in proptest::collection::vec(arb_record(), 0..40),
        split in 0usize..40,
    ) {
        use flexnet_controller::{compact_records, replay_digest};
        let split = split.min(records.len());
        let mut folded = compact_records(&records[..split]);
        folded.extend(records[split..].iter().cloned());
        prop_assert_eq!(replay_digest(&folded), replay_digest(&records));
        // Compaction is idempotent: folding a summary changes nothing.
        let summary = compact_records(&records);
        prop_assert_eq!(compact_records(&summary), summary);
    }

    /// Recovery replay is O(tail): after compacting through an arbitrary
    /// point, a crash+recover replays exactly the entries behind the
    /// snapshot — no re-read of folded history, no catch-up demotion.
    #[test]
    fn recovery_replays_exactly_the_tail_after_the_snapshot(
        n in 1usize..40,
        at_frac in 0u32..=100,
    ) {
        let mut storage = NodeStorage::fault_free(7);
        let cmds: Vec<String> = (0..n).map(|i| format!("cmd {i}")).collect();
        for (i, cmd) in cmds.iter().enumerate() {
            storage.sync_log(i as u64, &[(1, cmd.clone())]).expect("append");
        }
        let at = (n * at_frac as usize) / 100;
        storage
            .compact_snapshot(at as u64, 1, &cmds[..at])
            .expect("compact");
        storage.crash();
        let rec = storage.recover();
        prop_assert_eq!(rec.base_index, at as u64);
        prop_assert_eq!(rec.entries.len(), n - at, "replay is the tail, exactly");
        for (i, (term, cmd)) in rec.entries.iter().enumerate() {
            prop_assert_eq!(*term, 1u64);
            prop_assert_eq!(cmd, &cmds[at + i]);
        }
        prop_assert!(!rec.needs_catchup, "clean recovery must keep its vote");
    }
}

proptest! {
    // Each case is a full storage-chaos scenario (crash/rot/failover/
    // recovery/grading), so keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// With checksums armed, *any* seed converges: torn tails truncate
    /// at the fsync barrier, rot demotes or falls back a generation,
    /// and every replica replays to the leader's digest.
    #[test]
    fn any_seed_replays_to_one_state(seed in 0u64..1_000_000) {
        let report = run_storage_seed(seed).expect("harness runs");
        prop_assert!(
            report.passed(),
            "seed {} ({}): {:?}",
            seed,
            report.schedule.scenario.label(),
            report.violations
        );
        prop_assert!(report.delivered > 0, "traffic must flow after healing");
    }
}
