//! Integration: the full compile pipeline — patch DSL → diff → fungible
//! placement → live deployment — across crates.

use flexnet::apps;
use flexnet::prelude::*;
use flexnet_lang::diff::diff_bundles;

#[test]
fn patch_to_live_device_pipeline() {
    // 1. A running firewall on a device.
    let base = apps::security::firewall(64).unwrap();
    let mut dev = Device::new(
        NodeId(1),
        Architecture::drmt_default(),
        StateEncoding::StatefulTable,
    );
    dev.install(base.clone()).unwrap();

    // 2. An incremental patch (the zero-day hardening from the app library).
    let patch = parse_patch(apps::security::firewall_hardening_patch()).unwrap();
    let patched = apply_patch(&base, &patch).unwrap();

    // 3. Re-certify and diff to runtime ops.
    let reg = HeaderRegistry::with_user_headers(&patched.headers).unwrap();
    check_program(&patched.program, &reg).unwrap();
    verify_program(&patched.program, &reg).unwrap();
    let ops = diff_bundles(&base, &patched);
    assert!(
        ops.len() >= 3,
        "meter + counter + handler + table default: {ops:?}"
    );

    // 4. Apply hitlessly; behaviour flips at ready_at.
    let rep = dev.begin_runtime_reconfig(patched, SimTime::ZERO).unwrap();
    assert!(rep.duration < SimDuration::from_secs(1));
    let mut pre = Packet::tcp(1, 7, 2, 3, 80, 0x10);
    assert_eq!(
        dev.process(&mut pre, SimTime::ZERO).unwrap().verdict,
        Verdict::Forward(0),
        "old default-allow before the flip"
    );
    let mut post = Packet::tcp(2, 7, 2, 3, 80, 0x10);
    assert_eq!(
        dev.process(&mut post, rep.ready_at).unwrap().verdict,
        Verdict::Drop,
        "patched default-deny after the flip"
    );
}

#[test]
fn fungible_compilation_over_a_real_fabric() {
    // A leaf-spine fabric; fill a leaf with an unused telemetry program,
    // then place a workload that only fits after GC.
    let (topo, spines, leaves, _hosts) = Topology::leaf_spine(2, 2, 2);
    let mut targets: Vec<TargetView> = spines
        .iter()
        .chain(leaves.iter())
        .map(|&n| TargetView::of_device(&topo.node(n).unwrap().device))
        .collect();

    // Artificially occupy most of every device with "dead" programs.
    let mut reclaimable = Vec::new();
    for t in &mut targets {
        let hog = ResourceVec::of(
            ResourceKind::SramKb,
            t.free.get(ResourceKind::SramKb) * 9 / 10,
        );
        t.free = t.free.saturating_sub(&hog);
        reclaimable.push(flexnet_compiler::Reclaimable {
            node: t.node,
            name: format!("dead_telemetry_{}", t.node),
            canonical_demand: hog,
        });
    }

    // A set of components that exceeds the post-hog capacity.
    let comps: Vec<Component> = (0..4)
        .map(|i| {
            Component::new(
                &format!("fw{i}"),
                apps::security::firewall(400_000).unwrap(),
            )
        })
        .collect();

    // One-shot (non-fungible) fails…
    let one_shot = FungibleOptions {
        reclaimable: reclaimable.clone(),
        one_shot: true,
    };
    assert!(compile_fungible(&comps, &targets, &one_shot).is_err());

    // …the fungible loop reclaims and succeeds.
    let opts = FungibleOptions {
        reclaimable,
        one_shot: false,
    };
    let out = compile_fungible(&comps, &targets, &opts).unwrap();
    assert!(out.iterations >= 2);
    assert!(!out.reclaimed.is_empty());
    assert_eq!(out.placement.len(), 4);
}

#[test]
fn incremental_recompile_touches_less_than_full() {
    let comps: Vec<Component> = (0..8)
        .map(|i| {
            Component::new(
                &format!("app{i}"),
                apps::telemetry::heavy_hitter(2048, 100).unwrap(),
            )
        })
        .collect();
    let targets: Vec<TargetView> = (0..3)
        .map(|i| TargetView::fresh(NodeId(i), Architecture::drmt_default()))
        .collect();
    let mut working = targets.clone();
    let old = pack(&comps, &mut working, PackStrategy::FirstFitDecreasing).unwrap();

    // Change: one app grows, one is added.
    let mut new_comps = comps.clone();
    new_comps[2] = Component::new("app2", apps::telemetry::heavy_hitter(65_536, 100).unwrap());
    new_comps.push(Component::new(
        "app8",
        apps::telemetry::heavy_hitter(2048, 100).unwrap(),
    ));

    let inc = recompile_incremental(&old, &comps, &new_comps, &targets, None).unwrap();
    let full = recompile_full(&old, &new_comps, &targets).unwrap();
    assert!(inc.churn() <= full.churn());
    assert!(inc.kept.len() >= 7, "unchanged apps stay put: {:?}", inc.kept);
    assert!(inc.added.contains(&"app8".to_string()));
}

#[test]
fn whole_stack_datapath_deploys_and_processes() {
    // Deploy a 3-component datapath (host CC, NIC telemetry, switch ECN)
    // across the vertical line, then push each component to its device and
    // pass a packet through the chain.
    let (topo, nodes) = Topology::host_nic_switch_line();
    let dp = LogicalDatapath::new(
        "stack",
        vec![
            Component::new("host_cc", apps::cc::dctcp_host().unwrap()),
            Component::new("nic_rate", apps::cc::hpcc_nic().unwrap()),
            Component::new("sw_ecn", apps::cc::ecn_marking(10).unwrap()),
        ],
    );
    let mut views: Vec<TargetView> = nodes
        .iter()
        .map(|&n| TargetView::of_device(&topo.node(n).unwrap().device))
        .collect();
    let split = split_datapath(&dp, &mut views).unwrap();

    let mut sim = Simulation::new(topo);
    for (comp, bundle) in [
        ("host_cc", apps::cc::dctcp_host().unwrap()),
        ("nic_rate", apps::cc::hpcc_nic().unwrap()),
        ("sw_ecn", apps::cc::ecn_marking(10).unwrap()),
    ] {
        sim.schedule(
            SimTime::ZERO,
            Command::Install {
                node: split.placement.node_of(comp).unwrap(),
                bundle,
            },
        );
    }
    let flow = FlowSpec {
        proto: 6,
        ..FlowSpec::udp_cbr(
            nodes[0],
            nodes[4],
            1000,
            SimTime::from_millis(1),
            SimDuration::from_millis(100),
        )
    };
    sim.load(generate(&[flow], 4));
    sim.run_to_completion();
    assert_eq!(sim.metrics.delivered, 100, "errors: {:?}", sim.errors);
    // Every delivered packet crossed all five devices.
    assert!(sim
        .metrics
        .version_counts
        .keys()
        .map(|(n, _)| *n)
        .collect::<std::collections::BTreeSet<_>>()
        .len()
        >= 5);
}
