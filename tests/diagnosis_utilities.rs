//! Paper §3.4: "in-network monitoring, execution tracking, and diagnosis
//! primitives will prove useful for runtime programmable app management …
//! These 'utility' functions for network control do not have a persistent
//! footprint inside the network, but are injected in real-time for
//! maintenance tasks and removed soon after."
//!
//! End-to-end: inject the path tracer onto every switch of a leaf-spine
//! fabric at runtime, verify a probe's fingerprint identifies its exact
//! path, then retire the utility and confirm the footprint is gone.

use flexnet::apps::telemetry::{path_tracer, trace_fingerprint};
use flexnet::prelude::*;

#[test]
fn inject_trace_retire_cycle() {
    let (topo, spines, leaves, hosts) = Topology::leaf_spine(2, 2, 1);
    let mut sim = Simulation::new(topo);

    // Baseline: switches run nothing (default forwarding); snapshot their
    // resource usage.
    let idle_use: Vec<_> = leaves
        .iter()
        .chain(spines.iter())
        .map(|&n| sim.topo.node(n).unwrap().device.used())
        .collect();

    // t=1ms: inject the tracer on every switch, at runtime.
    for &n in leaves.iter().chain(spines.iter()) {
        sim.schedule(
            SimTime::from_millis(1),
            Command::RuntimeReconfig {
                node: n,
                bundle: path_tracer(n.raw()).unwrap(),
            },
        );
    }
    // Wait out the transitions, then send one probe cross-pod.
    sim.run(SimTime::from_millis(200));
    let mut probe = Packet::udp(1, 1, 2, 3, 4);
    probe.metadata.insert("dst_node".into(), hosts[1].raw() as u64);
    sim.metrics.keep_packets = true;
    sim.schedule(
        SimTime::from_millis(250),
        Command::Inject {
            node: hosts[0],
            packet: probe,
        },
    );
    sim.run(SimTime::from_millis(400));

    assert_eq!(sim.metrics.delivered, 1, "probe delivered: {:?}", sim.errors);
    let delivered = &sim.metrics.delivered_packets[0];
    let fingerprint = delivered.metadata["trace"];
    let depth = delivered.metadata["trace_depth"];

    // Reconstruct the path from the packet's device trace (ground truth)
    // and check the in-band fingerprint identifies exactly that switch
    // sequence.
    let switch_path: Vec<u32> = delivered
        .trace
        .iter()
        .map(|(n, _)| n.raw())
        .filter(|id| {
            leaves.iter().chain(spines.iter()).any(|s| s.raw() == *id)
        })
        .collect();
    assert_eq!(depth, switch_path.len() as u64);
    assert_eq!(fingerprint, trace_fingerprint(&switch_path));
    // Both pods' leaves were crossed (cross-pod probe).
    assert!(switch_path.len() >= 2);

    // Retire the utility everywhere: "removed soon after".
    for &n in leaves.iter().chain(spines.iter()) {
        sim.schedule(
            SimTime::from_millis(500),
            Command::RuntimeReconfig {
                node: n,
                bundle: ProgramBundle::new(
                    parse_program(
                        "program idle kind any { handler ingress(pkt) { forward(0); } }",
                    )
                    .unwrap(),
                ),
            },
        );
    }
    sim.run(SimTime::from_secs(2));
    for (i, &n) in leaves.iter().chain(spines.iter()).enumerate() {
        let dev = &sim.topo.node(n).unwrap().device;
        assert!(
            dev.program().unwrap().bundle.program.name == "idle",
            "tracer retired on {n}"
        );
        // No persistent footprint: usage back to (at most) baseline plus
        // the trivial idle handler.
        let now = dev.used().heuristic_weight();
        let before = idle_use[i].heuristic_weight();
        assert!(
            now <= before + 2,
            "{n}: footprint {now} should return to ~baseline {before}"
        );
    }
}
