//! Property tests for controller crash-recovery (ISSUE 2, experiment
//! E13):
//!
//! - for *any* seed, the full chaos scenario — journaled transaction,
//!   coordinator killed at a seed-chosen two-phase-commit phase, optional
//!   participant crash, failover, recovery, zombie replay, live traffic —
//!   upholds every global invariant;
//! - intent-log records survive arbitrary encode/decode round trips;
//! - the seed→schedule expansion is total, in-range, and phase-covering.

use flexnet_controller::chaos::run_chaos_seed;
use flexnet_controller::wal::IntentRecord;
use flexnet_sim::{ChaosSchedule, CrashPhase};
use flexnet_types::SimTime;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

proptest! {
    // 32 cases: each one is a full crash/failover/recovery scenario.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Recovery resolves every transaction, sweeps every orphan, fences
    /// every zombie, and leaves a single-program network — for any seed.
    #[test]
    fn any_seed_survives_coordinator_death(seed in 0u64..1_000_000) {
        let report = run_chaos_seed(seed).expect("harness runs");
        prop_assert!(
            report.passed(),
            "seed {} ({}): {:?}",
            seed,
            report.schedule.crash_phase.label(),
            report.violations
        );
        prop_assert_eq!(report.zombie_attempts, report.zombie_rejected);
        prop_assert!(report.new_epoch > report.old_epoch);
        prop_assert!(report.delivered > 0);
    }
}

fn arb_record() -> impl Strategy<Value = IntentRecord> {
    let devices = proptest::collection::vec(any::<u64>(), 0..8);
    prop_oneof![
        (any::<u64>(), devices.clone())
            .prop_map(|(txn, devices)| IntentRecord::Intent { txn, devices }),
        (any::<u64>(), devices).prop_map(|(txn, devices)| IntentRecord::Prepared { txn, devices }),
        (any::<u64>(), any::<u64>()).prop_map(|(txn, ns)| IntentRecord::FlipScheduled {
            txn,
            commit_at: SimTime::from_nanos(ns),
        }),
        any::<u64>().prop_map(|txn| IntentRecord::Committed { txn }),
        any::<u64>().prop_map(|txn| IntentRecord::Aborted { txn }),
    ]
}

proptest! {
    /// The write-ahead log's wire encoding loses nothing: any record (any
    /// txn id, any device list, any flip instant) round-trips exactly.
    #[test]
    fn intent_records_round_trip(rec in arb_record()) {
        let wire = rec.encode();
        prop_assert_eq!(IntentRecord::decode(&wire).expect("decodes"), rec);
    }

    /// Seed expansion is total and well-formed for any seed and any
    /// participant count, and four consecutive seeds always cover all
    /// four crash phases.
    #[test]
    fn schedules_are_total_and_phase_covering(
        seed in any::<u64>(),
        participants in 0usize..16,
    ) {
        let s = ChaosSchedule::from_seed(seed, participants);
        prop_assert!((0.0..=0.25).contains(&s.fabric_loss));
        if let Some(v) = s.victim {
            prop_assert!(v < participants);
        } else if participants == 0 {
            prop_assert_eq!(s.victim, None);
        }
        if seed <= u64::MAX - 4 {
            let mut phases: Vec<CrashPhase> = (seed..seed + 4)
                .map(|x| ChaosSchedule::from_seed(x, participants).crash_phase)
                .collect();
            phases.sort();
            phases.dedup();
            prop_assert_eq!(phases.len(), 4);
        }
    }
}
